//! A multi-stage processing pipeline built on wait-free queues — the kind
//! of "concurrent data structures … essential for programming such systems
//! efficiently" workload the paper's introduction motivates.
//!
//! ```text
//! cargo run -p wfq-examples --release --bin pipeline
//! ```
//!
//! Stage 1 parses raw "records", stage 2 enriches them, stage 3 aggregates.
//! Stages are connected by `WfQueue`s, so no stage can be blocked by a
//! descheduled peer — every handoff completes in a bounded number of steps.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use wfqueue::WfQueue;

#[derive(Debug)]
struct Raw {
    id: u64,
    payload: u64,
}

#[derive(Debug)]
#[allow(dead_code)]
struct Enriched {
    id: u64,
    score: u64,
}

const RECORDS: u64 = 200_000;

fn main() {
    let parse_q: WfQueue<Raw> = WfQueue::new();
    let enrich_q: WfQueue<Enriched> = WfQueue::new();
    let parsed = AtomicU64::new(0);
    let enriched = AtomicU64::new(0);
    let done_producing = AtomicBool::new(false);
    let total_score = AtomicU64::new(0);
    let aggregated = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|s| {
        // Stage 0: source.
        {
            let parse_q = &parse_q;
            let done_producing = &done_producing;
            s.spawn(move || {
                let mut h = parse_q.handle();
                for id in 0..RECORDS {
                    h.enqueue(Raw { id, payload: id * 7 + 13 });
                }
                done_producing.store(true, Ordering::Release);
            });
        }
        // Stage 1 → 2: two parser/enricher workers.
        for _ in 0..2 {
            let parse_q = &parse_q;
            let enrich_q = &enrich_q;
            let parsed = &parsed;
            let done_producing = &done_producing;
            s.spawn(move || {
                let mut src = parse_q.handle();
                let mut dst = enrich_q.handle();
                loop {
                    match src.dequeue() {
                        Some(raw) => {
                            parsed.fetch_add(1, Ordering::Relaxed);
                            // "Enrichment": a little arithmetic.
                            let score = raw.payload % 97 + raw.id % 11;
                            dst.enqueue(Enriched { id: raw.id, score });
                        }
                        None => {
                            if done_producing.load(Ordering::Acquire)
                                && parsed.load(Ordering::Relaxed) >= RECORDS
                            {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                }
            });
        }
        // Stage 3: aggregator.
        {
            let enrich_q = &enrich_q;
            let enriched = &enriched;
            let total_score = &total_score;
            let aggregated = &aggregated;
            s.spawn(move || {
                let mut h = enrich_q.handle();
                while aggregated.load(Ordering::Relaxed) < RECORDS {
                    if let Some(e) = h.dequeue() {
                        enriched.fetch_add(1, Ordering::Relaxed);
                        total_score.fetch_add(e.score, Ordering::Relaxed);
                        aggregated.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let elapsed = start.elapsed();

    // Deterministic cross-check of the aggregate.
    let expect: u64 = (0..RECORDS).map(|id| (id * 7 + 13) % 97 + id % 11).sum();
    assert_eq!(total_score.load(Ordering::Relaxed), expect);
    println!(
        "pipeline processed {RECORDS} records in {elapsed:?} \
         ({:.2} Krecords/s), aggregate score {}",
        RECORDS as f64 / elapsed.as_secs_f64() / 1e3,
        total_score.load(Ordering::Relaxed)
    );
    println!(
        "stage-1 queue: {:?}\nstage-2 queue: {:?}",
        parse_q.stats(),
        enrich_q.stats()
    );
}
