//! Quickstart: the typed wait-free queue in 40 lines.
//!
//! ```text
//! cargo run -p wfq-examples --release --bin quickstart
//! ```
//!
//! Spawns producers and consumers over one [`wfqueue::WfQueue`], moves a
//! million messages, and prints the throughput and the queue's execution-
//! path statistics (how often the wait-free slow path actually ran).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use wfqueue::WfQueue;

const PRODUCERS: usize = 2;
const CONSUMERS: usize = 2;
const PER_PRODUCER: u64 = 250_000;

fn main() {
    let queue: WfQueue<u64> = WfQueue::new();
    let consumed = AtomicU64::new(0);
    let checksum = AtomicU64::new(0);
    let total = PRODUCERS as u64 * PER_PRODUCER;

    let start = Instant::now();
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let queue = &queue;
            s.spawn(move || {
                let mut h = queue.handle();
                for i in 0..PER_PRODUCER {
                    h.enqueue(p as u64 * PER_PRODUCER + i);
                }
            });
        }
        for _ in 0..CONSUMERS {
            let queue = &queue;
            let consumed = &consumed;
            let checksum = &checksum;
            s.spawn(move || {
                let mut h = queue.handle();
                let mut local_sum = 0u64;
                loop {
                    if consumed.load(Ordering::Relaxed) >= total {
                        break;
                    }
                    if let Some(v) = h.dequeue() {
                        local_sum = local_sum.wrapping_add(v);
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                checksum.fetch_add(local_sum, Ordering::Relaxed);
            });
        }
    });
    let elapsed = start.elapsed();

    let expect: u64 = (0..total).sum();
    assert_eq!(checksum.load(Ordering::Relaxed), expect, "value conservation");
    let stats = queue.stats();
    println!(
        "moved {total} messages through {PRODUCERS}P/{CONSUMERS}C in {elapsed:?} \
         ({:.2} Mops/s)",
        (2 * total) as f64 / elapsed.as_secs_f64() / 1e6
    );
    println!(
        "fast/slow enqueues: {}/{}  fast/slow dequeues: {}/{}  empty dequeues: {}",
        stats.enq_fast, stats.enq_slow, stats.deq_fast, stats.deq_slow, stats.deq_empty
    );
    println!(
        "segments allocated/freed: {}/{} (reclamation ran {} times)",
        stats.segs_alloc, stats.segs_freed, stats.cleanups
    );
}
