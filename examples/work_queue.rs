//! A detached worker pool over owned handles: jobs flow through a
//! wait-free queue to workers spawned with `std::thread::spawn` (no
//! scoped lifetimes — the queue lives exactly as long as its last user,
//! via `Arc`).
//!
//! ```text
//! cargo run -p wfq-examples --release --bin work_queue
//! ```
//!
//! Demonstrates the [`wfqueue::OwnedLocalHandle`] API and a clean
//! shutdown idiom: one poison-pill job per worker.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use wfqueue::{OwnedLocalHandle, WfQueue};

enum Job {
    /// Compute a checksum over a pseudo-payload.
    Work { id: u64, rounds: u32 },
    /// Poison pill: the receiving worker exits.
    Shutdown,
}

const WORKERS: usize = 3;
const JOBS: u64 = 60_000;

fn main() {
    let queue: Arc<WfQueue<Job>> = Arc::new(WfQueue::new());
    let completed = Arc::new(AtomicU64::new(0));
    let checksum = Arc::new(AtomicU64::new(0));

    // Detached workers: nothing borrows the stack.
    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let mut jobs = OwnedLocalHandle::new(Arc::clone(&queue));
        let completed = Arc::clone(&completed);
        let checksum = Arc::clone(&checksum);
        workers.push(std::thread::spawn(move || {
            let mut local = 0u64;
            let mut done = 0u64;
            loop {
                match jobs.dequeue() {
                    Some(Job::Work { id, rounds }) => {
                        // "Work": a small deterministic hash chain.
                        let mut acc = id;
                        for _ in 0..rounds {
                            acc = acc.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(7);
                        }
                        local = local.wrapping_add(acc);
                        done += 1;
                    }
                    Some(Job::Shutdown) => break,
                    None => std::hint::spin_loop(),
                }
            }
            checksum.fetch_add(local, Ordering::Relaxed);
            completed.fetch_add(done, Ordering::Relaxed);
            (w, done)
        }));
    }

    // Producer: this thread.
    let start = Instant::now();
    let mut submit = OwnedLocalHandle::new(Arc::clone(&queue));
    for id in 0..JOBS {
        submit.enqueue(Job::Work {
            id,
            rounds: 8 + (id % 16) as u32,
        });
    }
    for _ in 0..WORKERS {
        submit.enqueue(Job::Shutdown);
    }

    let mut per_worker = Vec::new();
    for w in workers {
        per_worker.push(w.join().expect("worker panicked"));
    }
    let elapsed = start.elapsed();

    assert_eq!(completed.load(Ordering::Relaxed), JOBS);
    println!(
        "{JOBS} jobs through {WORKERS} detached workers in {elapsed:?} \
         ({:.0} Kjobs/s), checksum {:#x}",
        JOBS as f64 / elapsed.as_secs_f64() / 1e3,
        checksum.load(Ordering::Relaxed)
    );
    for (w, n) in per_worker {
        println!("  worker {w}: {n} jobs");
    }
    let stats = queue.stats();
    println!(
        "queue paths: {} fast / {} slow enq, {} fast / {} slow deq, {} empty probes",
        stats.enq_fast, stats.enq_slow, stats.deq_fast, stats.deq_slow, stats.deq_empty
    );
}
