//! Bounded-memory mode: a fast producer against a slow consumer, with the
//! queue capped at a segment ceiling and the producer reacting to
//! [`wfqueue::Full`] backpressure instead of growing the heap without
//! bound.
//!
//! ```text
//! cargo run -p wfq-examples --release --bin backpressure
//! ```
//!
//! Demonstrates [`wfqueue::Config::with_segment_ceiling`], the fallible
//! [`try_enqueue`](wfqueue::LocalHandle::try_enqueue) API, and the
//! bounded-mode gauges (pool occupancy, ceiling headroom, rejection
//! counter) that docs/ROBUSTNESS.md describes.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use wfqueue::{Config, WfQueue};

/// Cells per segment (small, so the ceiling bites quickly in a demo).
const SEG: usize = 64;
/// The ceiling: at most this many segments of memory, ever.
const CEILING: u64 = 8;
/// Items the producer wants to ship.
const ITEMS: u64 = 200_000;

fn main() {
    let queue: WfQueue<u64, SEG> =
        WfQueue::with_config(Config::default().with_segment_ceiling(CEILING));
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Producer: ships as fast as the ceiling admits; on Full it backs
        // off and retries the SAME value — Full hands the rejected value
        // back, so nothing is lost.
        s.spawn(|| {
            let mut h = queue.handle();
            let mut rejections = 0u64;
            let mut item = 0u64;
            while item < ITEMS {
                match h.try_enqueue(item) {
                    Ok(()) => item += 1,
                    Err(full) => {
                        rejections += 1;
                        let _ = full.into_inner(); // the value comes back
                        std::thread::sleep(Duration::from_micros(50));
                    }
                }
            }
            println!("producer: {ITEMS} items shipped, {rejections} backpressure stalls");
            done.store(true, Ordering::Release);
        });

        // Slow consumer: drains at a throttled pace, forcing the ceiling
        // to matter.
        s.spawn(|| {
            let mut h = queue.handle();
            let mut got = 0u64;
            let mut expected = 0u64;
            while !(done.load(Ordering::Acquire) && got >= ITEMS) {
                match h.dequeue() {
                    Some(v) => {
                        assert_eq!(v, expected, "FIFO order broken");
                        expected += 1;
                        got += 1;
                        if got % 1024 == 0 {
                            std::thread::sleep(Duration::from_micros(200));
                        }
                    }
                    None => std::hint::spin_loop(),
                }
            }
            println!("consumer: {got} items received, in order");
        });

        // Observer: the bounded-mode gauges in flight. With try_enqueue on
        // the producer side and the emptiness fast-out on the consumer
        // side, live segments stay at the ceiling plus at most one
        // in-flight segment per spinning consumer (DESIGN.md §9).
        s.spawn(|| {
            let mut max_live = 0u64;
            while !done.load(Ordering::Acquire) {
                let g = queue.gauges();
                assert!(
                    g.live_segments <= CEILING + 1,
                    "ceiling breached: {g:?}"
                );
                max_live = max_live.max(g.live_segments);
                std::thread::sleep(Duration::from_millis(5));
            }
            println!(
                "observer: live segments peaked at {max_live} (ceiling {CEILING})"
            );
        });
    });

    let stats = queue.stats();
    let gauges = queue.gauges();
    println!(
        "\nfinal: rejected={} forced_cleanups={} recycled={} pooled={} headroom={:?}",
        stats.enq_rejected,
        stats.forced_cleanups,
        stats.segs_recycled,
        gauges.pooled_segments,
        gauges.ceiling_headroom,
    );
}
