//! Latency-sensitive telemetry: why wait-freedom matters — now with the
//! full observability stack attached.
//!
//! ```text
//! cargo run -p wfq-examples --release --bin telemetry -- \
//!     [--trace out.trace.json] [--metrics-out metrics.prom]
//! ```
//!
//! The paper: wait-free structures are "particularly desirable for mission
//! critical applications that have real-time constraints". This example
//! measures per-operation latency percentiles of the wait-free queue vs. a
//! mutex queue while a rogue thread periodically grabs and *holds* shared
//! resources (simulating preemption of a lock holder). The mutex queue's
//! tail latency degrades by orders of magnitude; the wait-free queue's
//! worst case stays bounded.
//!
//! The wait-free run doubles as a smoke test of the observability layer
//! (`wfq-obs`): a starvation watchdog samples the flight recorders while
//! the workload runs, the path statistics are printed via `QueueStats`'
//! Table-2-style `Display`, and `--trace` / `--metrics-out` write the
//! Chrome trace and Prometheus exposition artifacts. Build with
//! `--features trace` to get events in the trace; without it the run is
//! identical (the recorder compiles to nothing) and the artifacts are
//! valid-but-empty.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use wfq_baselines::{BenchQueue, MutexQueue, QueueHandle};
use wfq_harness::histogram::{fmt_ns, Histogram};
use wfq_obs::{Watchdog, WatchdogConfig};
use wfqueue::RawQueue;

const OPS: usize = 120_000;

/// Runs enqueue+dequeue pairs on `q` while a rogue thread periodically
/// bursts traffic and sleeps (for the mutex queue, a descheduled peer can
/// hold the lock). Returns the latency histogram of the measured thread.
fn run_with_disturbance<Q: BenchQueue>(q: &Q, hold: Duration) -> Histogram {
    let stop = AtomicBool::new(false);
    let mut hist = Histogram::new();

    std::thread::scope(|s| {
        // The rogue thread: performs an operation, then sleeps while
        // *inside* an operation window by enqueueing between pauses. For
        // the mutex queue the blocking happens inside the lock via a slow
        // consumer pattern: we emulate a descheduled holder by pausing
        // between acquire-heavy bursts.
        {
            let stop = &stop;
            s.spawn(move || {
                let mut h = q.register();
                let mut i = 1u64 << 50;
                while !stop.load(Ordering::Relaxed) {
                    // burst of traffic
                    for _ in 0..64 {
                        i += 1;
                        h.enqueue(i);
                        let _ = h.dequeue();
                    }
                    std::thread::sleep(hold);
                }
            });
        }
        // The measured thread.
        {
            let stop = &stop;
            let hist = &mut hist;
            s.spawn(move || {
                let mut h = q.register();
                for i in 0..OPS as u64 {
                    let t0 = Instant::now();
                    h.enqueue(i + 1);
                    hist.record(t0.elapsed().as_nanos() as u64);
                    let t1 = Instant::now();
                    let _ = h.dequeue();
                    hist.record(t1.elapsed().as_nanos() as u64);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    hist
}

fn report(name: &str, hist: &Histogram) {
    println!(
        "{name:>8}: p50 {:>8}  p99 {:>9}  p99.9 {:>9}  max {:>9}",
        fmt_ns(hist.quantile(0.50)),
        fmt_ns(hist.quantile(0.99)),
        fmt_ns(hist.quantile(0.999)),
        fmt_ns(hist.max()),
    );
}

/// `--key value` flags (the example keeps its CLI dependency-free).
fn flag_value(args: &[String], key: &str) -> Option<PathBuf> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_out = flag_value(&args, "--trace");
    let metrics_out = flag_value(&args, "--metrics-out");

    let hold = Duration::from_micros(200);
    println!("per-operation latency under a disruptive peer (hold = {hold:?}, {OPS} pairs)\n");

    // The wait-free run, observed: a starvation watchdog samples every
    // flight recorder while the workload runs. A healthy run prints no
    // stall reports — a thread stuck >100 ms inside one slow-path op would.
    let dog = Watchdog::spawn_with_callback(WatchdogConfig::default(), |r| {
        eprintln!(
            "WATCHDOG: recorder {} ({}) stuck in {} for {:?}",
            r.recorder,
            r.thread,
            r.kind.name(),
            r.stalled
        );
    });
    let q: RawQueue = RawQueue::new();
    let wf = run_with_disturbance(&q, hold);
    report("WF-10", &wf);
    let stalls = dog.stop();
    println!(
        "\nwatchdog: {} stall(s) detected across {} recorder(s)",
        stalls.len(),
        wfq_obs::recorder_count()
    );
    println!("\nexecution-path statistics (Table 2 layout):\n{}", q.stats());

    if let Some(path) = &metrics_out {
        wfq_harness::write_metrics(path, &q.stats(), Some(&q.gauges()))
            .expect("write metrics");
        println!("prometheus metrics written to {}", path.display());
    }
    if let Some(path) = &trace_out {
        let events = wfq_harness::dump_chrome_trace(path).expect("write trace");
        println!(
            "chrome trace written to {} ({events} events{})",
            path.display(),
            if wfq_obs::ENABLED {
                ""
            } else {
                "; rebuild with --features trace to record events"
            }
        );
    }

    let mq = MutexQueue::new();
    let mutex = run_with_disturbance(&mq, hold);
    report("MUTEX", &mutex);
    println!(
        "\nwait-free p99.9 = {}, mutex p99.9 = {}",
        fmt_ns(wf.quantile(0.999)),
        fmt_ns(mutex.quantile(0.999)),
    );
    println!(
        "(on a single-CPU host both queues suffer scheduler noise; on a \
         multicore host the mutex tail grows with contention while the \
         wait-free bound holds)"
    );
}
