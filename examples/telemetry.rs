//! Latency-sensitive telemetry: why wait-freedom matters.
//!
//! ```text
//! cargo run -p wfq-examples --release --bin telemetry
//! ```
//!
//! The paper: wait-free structures are "particularly desirable for mission
//! critical applications that have real-time constraints". This example
//! measures per-operation latency percentiles of the wait-free queue vs. a
//! mutex queue while a rogue thread periodically grabs and *holds* shared
//! resources (simulating preemption of a lock holder). The mutex queue's
//! tail latency degrades by orders of magnitude; the wait-free queue's
//! worst case stays bounded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use wfq_baselines::{BenchQueue, MutexQueue, QueueHandle};
use wfq_harness::histogram::{fmt_ns, Histogram};
use wfqueue::RawQueue;

const OPS: usize = 120_000;

/// Runs enqueue+dequeue pairs on `Q` while a rogue thread periodically
/// bursts traffic and sleeps (for the mutex queue, a descheduled peer can
/// hold the lock). Returns the latency histogram of the measured thread.
fn run_with_disturbance<Q: BenchQueue>(hold: Duration) -> Histogram {
    let q = Q::new();
    let stop = AtomicBool::new(false);
    let mut hist = Histogram::new();

    std::thread::scope(|s| {
        // The rogue thread: performs an operation, then sleeps while
        // *inside* an operation window by enqueueing between pauses. For
        // the mutex queue the blocking happens inside the lock via a slow
        // consumer pattern: we emulate a descheduled holder by pausing
        // between acquire-heavy bursts.
        {
            let q = &q;
            let stop = &stop;
            s.spawn(move || {
                let mut h = q.register();
                let mut i = 1u64 << 50;
                while !stop.load(Ordering::Relaxed) {
                    // burst of traffic
                    for _ in 0..64 {
                        i += 1;
                        h.enqueue(i);
                        let _ = h.dequeue();
                    }
                    std::thread::sleep(hold);
                }
            });
        }
        // The measured thread.
        {
            let q = &q;
            let stop = &stop;
            let hist = &mut hist;
            s.spawn(move || {
                let mut h = q.register();
                for i in 0..OPS as u64 {
                    let t0 = Instant::now();
                    h.enqueue(i + 1);
                    hist.record(t0.elapsed().as_nanos() as u64);
                    let t1 = Instant::now();
                    let _ = h.dequeue();
                    hist.record(t1.elapsed().as_nanos() as u64);
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    });
    hist
}

fn report(name: &str, hist: &Histogram) {
    println!(
        "{name:>8}: p50 {:>8}  p99 {:>9}  p99.9 {:>9}  max {:>9}",
        fmt_ns(hist.quantile(0.50)),
        fmt_ns(hist.quantile(0.99)),
        fmt_ns(hist.quantile(0.999)),
        fmt_ns(hist.max()),
    );
}

fn main() {
    let hold = Duration::from_micros(200);
    println!("per-operation latency under a disruptive peer (hold = {hold:?}, {OPS} pairs)\n");
    let wf = run_with_disturbance::<RawQueue>(hold);
    report("WF-10", &wf);
    let mutex = run_with_disturbance::<MutexQueue>(hold);
    report("MUTEX", &mutex);
    println!(
        "\nwait-free p99.9 = {}, mutex p99.9 = {}",
        fmt_ns(wf.quantile(0.999)),
        fmt_ns(mutex.quantile(0.999)),
    );
    println!(
        "(on a single-CPU host both queues suffer scheduler noise; on a \
         multicore host the mutex tail grows with contention while the \
         wait-free bound holds)"
    );
}
