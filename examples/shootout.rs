//! Mini shootout: every queue in the repository side by side on one
//! command line — a condensed, self-contained Figure 2 data point.
//!
//! ```text
//! cargo run -p wfq-examples --release --bin shootout -- [threads] [ops]
//! ```

use std::sync::Barrier;
use std::time::Instant;

use wfq_baselines::{BenchQueue, CcQueue, FaaBench, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Wf0};
use wfqueue::RawQueue;

fn run<Q: BenchQueue>(threads: usize, total_ops: u64) -> f64 {
    let q = Q::new();
    let pairs = (total_ops / threads as u64 / 2).max(1);
    let barrier = Barrier::new(threads);
    let mut worst_ns = 0u64;
    std::thread::scope(|s| {
        let hs: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut h = q.register();
                    let tag = ((t as u64 + 1) << 40) | 1;
                    barrier.wait();
                    let start = Instant::now();
                    for i in 0..pairs {
                        h.enqueue(tag + i);
                        let _ = h.dequeue();
                    }
                    start.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for h in hs {
            worst_ns = worst_ns.max(h.join().unwrap());
        }
    });
    (pairs * 2 * threads as u64) as f64 / worst_ns as f64 * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(4);
    let ops: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(400_000);
    println!("pairs workload, {threads} threads, {ops} ops, best of 3:\n");

    macro_rules! shoot {
        ($q:ty) => {{
            let best = (0..3).map(|_| run::<$q>(threads, ops)).fold(0.0f64, f64::max);
            println!("{:>8}: {best:>8.2} Mops/s", <$q as BenchQueue>::NAME);
        }};
    }
    shoot!(FaaBench);
    shoot!(RawQueue);
    shoot!(Wf0);
    shoot!(Lcrq);
    shoot!(CcQueue);
    shoot!(MsQueue);
    shoot!(KpQueue);
    shoot!(MutexQueue);
    println!("\nF&A is the practical upper bound for FAA-based queues (paper §5).");
}
