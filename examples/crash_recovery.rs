//! Durable mode end to end: kill a process mid-traffic, reopen its heap
//! file, recover, and account for every value.
//!
//! ```text
//! cargo run -p wfq-examples --release --features durable --bin crash_recovery
//! ```
//!
//! The parent re-executes itself as a **child** wired to a
//! [`wfqueue::HeapFileStore`] (an mmap'd file standing in for persistent
//! memory — see DESIGN.md §12). The child pumps enqueues and dequeues
//! through the persisted queue until the parent SIGKILLs it mid-operation
//! — no shutdown handler, no flush, the moral equivalent of a power cut.
//! The parent then reopens the file with [`wfqueue::RawQueue::recover`]
//! and checks the detectable-recovery contract:
//!
//! - every value the image durably **consumed** was delivered pre-crash
//!   and does not come back;
//! - every value the image durably **deposited** (or claimed-but-
//!   uncommitted) is redelivered exactly once, in FIFO order;
//! - at most the single in-flight value (volatile-visible at the instant
//!   of the kill, persist cut) is missing entirely — provably rejected.

#[cfg(all(feature = "durable", unix))]
mod demo {
    use std::sync::Arc;
    use std::time::Duration;

    use wfqueue::{Config, HeapFileStore, PersistSink, RawQueue, RecoveryOptions};

    const SEG: usize = 64;
    /// Index-space capacity of the store: bounds cells ever FAA-claimed,
    /// not live values. The child stops well short of it on its own if the
    /// parent somehow fails to kill it.
    const STORE_CELLS: u64 = 1 << 16;
    const STORE_SLOTS: u64 = 4;
    const CHILD_ENV: &str = "WFQ_CRASH_RECOVERY_CHILD";

    /// The child: enqueue a counter forever (dequeuing every third value
    /// so the image holds consumes as well as deposits), until killed.
    pub fn child(path: &std::path::Path) -> ! {
        let store = Arc::new(HeapFileStore::create(path, STORE_CELLS, STORE_SLOTS).unwrap());
        let q = RawQueue::<SEG>::with_persist(
            Config::default(),
            Arc::clone(&store) as Arc<dyn PersistSink>,
        );
        let mut h = q.register();
        let mut v = 0u64;
        // Leave index-space headroom: every dequeue burns a cell index too.
        while v < STORE_CELLS / 4 {
            v += 1;
            h.enqueue(v);
            if v % 3 == 0 {
                let _ = h.dequeue();
            }
            // Pace the traffic so the parent's kill lands mid-stream, not
            // after the loop bound.
            std::thread::sleep(Duration::from_micros(20));
        }
        unreachable!("the parent must kill this process long before the loop bound");
    }

    pub fn main() {
        if let Ok(path) = std::env::var(CHILD_ENV) {
            child(path.as_ref());
        }

        let path = std::env::temp_dir().join(format!("wfq-crash-recovery-{}.image", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // Run the child and cut its power mid-traffic.
        let exe = std::env::current_exe().expect("self path");
        let mut kid = std::process::Command::new(exe)
            .env(CHILD_ENV, &path)
            .spawn()
            .expect("spawn child");
        std::thread::sleep(Duration::from_millis(400));
        kid.kill().expect("SIGKILL the child");
        let status = kid.wait().expect("reap the child");
        println!("child killed mid-traffic ({status})");

        // Reopen the image the kill left behind and recover.
        let store = Arc::new(HeapFileStore::open(&path).expect("reopen the heap file"));
        let (q, report) =
            RawQueue::<SEG>::recover(Config::default(), &store, &RecoveryOptions::default())
                .expect("recover from the crash image");
        println!(
            "recovered generation {}: {} survivors ({} from the help-replay window), \
             {} delivered pre-crash, {} provably rejected, {} torn cells sealed",
            report.generation,
            report.survivors.len(),
            report.recompleted,
            report.delivered_pre_crash.len(),
            report.rejected_published.len(),
            report.sealed_cells,
        );

        // Account for every value the child ever attempted: the child
        // enqueued the contiguous counter 1, 2, 3, …, so delivered and
        // redelivered values must partition a prefix of the naturals, with
        // at most one hole — the single value whose enqueue the kill cut
        // between volatile visibility and the persist.
        let delivered: std::collections::BTreeSet<u64> =
            report.delivered_pre_crash.iter().copied().collect();
        let mut redelivered = Vec::new();
        let mut h = q.register();
        while let Some(v) = h.dequeue() {
            redelivered.push(v);
        }
        drop(h);
        assert_eq!(redelivered, report.survivors, "drain must match the report");
        assert!(
            redelivered.windows(2).all(|w| w[0] < w[1]),
            "redelivery must preserve FIFO order: {redelivered:?}"
        );
        let mut union: Vec<u64> = delivered.iter().copied().chain(redelivered.iter().copied()).collect();
        union.sort_unstable();
        let max = union.last().copied().unwrap_or(0);
        assert_eq!(
            union.iter().copied().collect::<std::collections::BTreeSet<_>>().len(),
            union.len(),
            "a value was delivered twice across the crash"
        );
        let holes: Vec<u64> = (1..=max).filter(|v| !union.contains(v)).collect();
        assert!(
            holes.len() <= 1,
            "more than the single in-flight value went missing: {holes:?}"
        );
        println!(
            "accounted for values 1..={max}: {} delivered pre-crash, {} redelivered, \
             {} cut in flight — exactly-once across the kill",
            delivered.len(),
            redelivered.len(),
            holes.len()
        );

        let _ = std::fs::remove_file(&path);
    }
}

#[cfg(all(feature = "durable", unix))]
fn main() {
    demo::main();
}

#[cfg(not(all(feature = "durable", unix)))]
fn main() {
    eprintln!(
        "crash_recovery needs the durable feature (and unix):\n  \
         cargo run -p wfq-examples --release --features durable --bin crash_recovery"
    );
}
