//! Hazard-pointer memory reclamation (Michael, TPDS 2004).
//!
//! The paper's evaluation insists that *"memory reclamation is an integral
//! responsibility of the queue algorithms"* and retrofits the hazard-pointer
//! scheme onto MS-Queue and LCRQ, which originally leaked (§5.1). This crate
//! is that retrofit substrate: a small, self-contained hazard-pointer
//! domain used by the baselines in `wfq-baselines`.
//!
//! Design:
//!
//! - A [`Domain`] owns a lock-free list of hazard-slot records, each with
//!   `K` pointer slots. Threads acquire a record ([`HazardThread`]) and
//!   recycle it on drop.
//! - [`HazardThread::protect`] publishes a pointer and re-validates it
//!   against the source location (the standard store–fence–reload loop).
//! - [`HazardThread::retire`] buffers a node with its deleter; once the
//!   buffer reaches the scan threshold, a scan collects all published
//!   hazards into a sorted vector and frees every retired node not present.
//!
//! This scheme is lock-free, not wait-free — fitting, since it backs the
//! *lock-free* baselines the paper compares against. A classic epoch-based
//! alternative lives in [`ebr`], so the fence-count comparison the paper
//! makes in §3.6 can be measured in-repo.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ebr;

use core::sync::atomic::{fence, AtomicBool, AtomicPtr, Ordering};
use std::sync::atomic::AtomicUsize;

/// Number of hazard slots per thread record; two suffice for MS-Queue and
/// LCRQ (head + next traversal).
pub const SLOTS_PER_THREAD: usize = 2;

/// Retired-node deleter: reconstructs and frees the erased allocation.
pub type Deleter = unsafe fn(*mut u8);

struct Retired {
    ptr: *mut u8,
    deleter: Deleter,
}

/// One thread's hazard record, linked into the domain's global list.
struct Record {
    slots: [AtomicPtr<u8>; SLOTS_PER_THREAD],
    active: AtomicBool,
    next: AtomicPtr<Record>,
}

impl Record {
    fn new() -> Self {
        Self {
            slots: Default::default(),
            active: AtomicBool::new(true),
            next: AtomicPtr::new(core::ptr::null_mut()),
        }
    }
}

/// A hazard-pointer domain. Typically one static or queue-owned domain per
/// data structure.
///
/// ```
/// use wfq_reclaim::Domain;
/// let domain = Domain::new();
/// let thread = domain.register();
/// // ... protect/retire through `thread` ...
/// # drop(thread);
/// ```
pub struct Domain {
    records: AtomicPtr<Record>,
    /// Number of records ever created (drives the scan threshold).
    record_count: AtomicUsize,
}

// SAFETY: all record access is via atomics; retired nodes are owned by
// exactly one HazardThread until freed.
unsafe impl Send for Domain {}
unsafe impl Sync for Domain {}

impl Default for Domain {
    fn default() -> Self {
        Self::new()
    }
}

impl Domain {
    /// Creates an empty domain.
    pub const fn new() -> Self {
        Self {
            records: AtomicPtr::new(core::ptr::null_mut()),
            record_count: AtomicUsize::new(0),
        }
    }

    /// Acquires a hazard record for the calling thread, reusing an inactive
    /// record if one exists (lock-free).
    pub fn register(&self) -> HazardThread<'_> {
        // Try to adopt an inactive record.
        let mut cur = self.records.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records are never freed while the domain lives.
            let rec = unsafe { &*cur };
            if !rec.active.load(Ordering::Relaxed)
                && rec
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return HazardThread {
                    domain: self,
                    record: cur,
                    retired: Vec::new(),
                };
            }
            cur = rec.next.load(Ordering::Acquire);
        }
        // None available: push a fresh record at the head.
        let rec = Box::into_raw(Box::new(Record::new()));
        let mut head = self.records.load(Ordering::Acquire);
        loop {
            // SAFETY: rec is exclusively owned until published.
            unsafe { (*rec).next.store(head, Ordering::Relaxed) };
            match self
                .records
                .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        self.record_count.fetch_add(1, Ordering::Relaxed);
        HazardThread {
            domain: self,
            record: rec,
            retired: Vec::new(),
        }
    }

    /// Scan threshold: retire buffers flush when they reach
    /// `2 × slots-in-domain`, the classical H·(1+ε) amortization.
    fn scan_threshold(&self) -> usize {
        (2 * SLOTS_PER_THREAD * self.record_count.load(Ordering::Relaxed)).max(16)
    }

    /// Collects every currently published hazard, sorted.
    fn collect_hazards(&self) -> Vec<*mut u8> {
        let mut hazards = Vec::new();
        let mut cur = self.records.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records live while the domain lives.
            let rec = unsafe { &*cur };
            for slot in &rec.slots {
                let p = slot.load(Ordering::Acquire);
                if !p.is_null() {
                    hazards.push(p);
                }
            }
            cur = rec.next.load(Ordering::Acquire);
        }
        hazards.sort_unstable();
        hazards
    }
}

impl Drop for Domain {
    fn drop(&mut self) {
        // Free the record list. Retired nodes were flushed by the
        // HazardThread drops (which the 'd borrow sequences before us).
        let mut cur = *self.records.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; records were Box-allocated.
            let next = unsafe { *(*cur).next.as_ptr() };
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

/// A thread's capability to protect and retire pointers in a [`Domain`].
pub struct HazardThread<'d> {
    domain: &'d Domain,
    record: *mut Record,
    retired: Vec<Retired>,
}

// SAFETY: the record is exclusively owned by this HazardThread; retired
// nodes are owned until freed.
unsafe impl Send for HazardThread<'_> {}

impl HazardThread<'_> {
    #[inline]
    fn slots(&self) -> &[AtomicPtr<u8>; SLOTS_PER_THREAD] {
        // SAFETY: record lives while the domain lives; we own it.
        unsafe { &(*self.record).slots }
    }

    /// Publishes `ptr` in hazard slot `slot` and re-validates that `src`
    /// still holds it, looping until the publication is stable. Returns the
    /// protected pointer (which may have changed from the initial read).
    #[inline]
    pub fn protect<T>(&self, slot: usize, src: &AtomicPtr<T>) -> *mut T {
        let slots = self.slots();
        let mut ptr = src.load(Ordering::Acquire);
        loop {
            slots[slot].store(ptr as *mut u8, Ordering::SeqCst);
            fence(Ordering::SeqCst);
            let cur = src.load(Ordering::Acquire);
            if cur == ptr {
                return ptr;
            }
            ptr = cur;
        }
    }

    /// Publishes a raw pointer without validation (caller revalidates).
    #[inline]
    pub fn set<T>(&self, slot: usize, ptr: *mut T) {
        self.slots()[slot].store(ptr as *mut u8, Ordering::SeqCst);
        fence(Ordering::SeqCst);
    }

    /// Clears hazard slot `slot`.
    #[inline]
    pub fn clear(&self, slot: usize) {
        self.slots()[slot].store(core::ptr::null_mut(), Ordering::Release);
    }

    /// Retires `ptr`: it will be freed with `deleter` once no published
    /// hazard references it.
    ///
    /// # Safety
    /// `ptr` must be unlinked (unreachable for new readers), not retired
    /// elsewhere, and valid for `deleter`.
    pub unsafe fn retire(&mut self, ptr: *mut u8, deleter: Deleter) {
        self.retired.push(Retired { ptr, deleter });
        if self.retired.len() >= self.domain.scan_threshold() {
            self.scan();
        }
    }

    /// Number of nodes currently buffered for reclamation (observability
    /// for tests and benchmarks).
    pub fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Frees every buffered node that no published hazard protects.
    pub fn scan(&mut self) {
        let hazards = self.domain.collect_hazards();
        let mut kept = Vec::with_capacity(self.retired.len());
        for r in self.retired.drain(..) {
            if hazards.binary_search(&r.ptr).is_ok() {
                kept.push(r);
            } else {
                // SAFETY: the node was retired (unreachable) and no hazard
                // references it, so this thread is the unique owner.
                unsafe { (r.deleter)(r.ptr) };
            }
        }
        self.retired = kept;
    }
}

impl Drop for HazardThread<'_> {
    fn drop(&mut self) {
        for slot in 0..SLOTS_PER_THREAD {
            self.clear(slot);
        }
        // Flush; anything still protected by other threads gets a brief
        // grace period. Queues drop their HazardThreads after quiescing,
        // so the buffer normally empties on the first scan.
        for _ in 0..64 {
            if self.retired.is_empty() {
                break;
            }
            self.scan();
            if !self.retired.is_empty() {
                std::thread::yield_now();
            }
        }
        for r in self.retired.drain(..) {
            // Post-quiescence fallback: freeing is the lesser evil vs. a
            // guaranteed leak. SAFETY: nodes are unreachable; any hazard
            // still naming them belongs to a thread that already validated
            // against a newer source and will not dereference.
            unsafe { (r.deleter)(r.ptr) };
        }
        // SAFETY: record stays in the domain list for reuse.
        unsafe { (*self.record).active.store(false, Ordering::Release) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    unsafe fn count_deleter(p: *mut u8) {
        DROPS.fetch_add(1, Ordering::Relaxed);
        unsafe { drop(Box::from_raw(p as *mut u64)) };
    }

    fn boxed(v: u64) -> *mut u8 {
        Box::into_raw(Box::new(v)) as *mut u8
    }

    #[test]
    fn retire_without_hazard_frees_on_scan() {
        DROPS.store(0, Ordering::Relaxed);
        let d = Domain::new();
        let mut t = d.register();
        for i in 0..10 {
            unsafe { t.retire(boxed(i), count_deleter) };
        }
        t.scan();
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
        assert_eq!(t.retired_len(), 0);
    }

    #[test]
    fn hazard_blocks_reclamation_until_cleared() {
        DROPS.store(0, Ordering::Relaxed);
        let d = Domain::new();
        let t_protect = d.register();
        let mut t_retire = d.register();

        let node = boxed(42);
        let src = AtomicPtr::new(node as *mut u64);
        let got = t_protect.protect(0, &src);
        assert_eq!(got, node as *mut u64);

        unsafe { t_retire.retire(node, count_deleter) };
        t_retire.scan();
        assert_eq!(DROPS.load(Ordering::Relaxed), 0, "protected: must survive");
        assert_eq!(t_retire.retired_len(), 1);

        t_protect.clear(0);
        t_retire.scan();
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn protect_revalidates_against_moving_source() {
        let d = Domain::new();
        let t = d.register();
        let a = boxed(1) as *mut u64;
        let src = AtomicPtr::new(a);
        let p = t.protect(1, &src);
        assert_eq!(p, a);
        unsafe { drop(Box::from_raw(a)) };
    }

    #[test]
    fn records_recycle_after_drop() {
        let d = Domain::new();
        let r1 = {
            let t = d.register();
            t.record as usize
        };
        let t2 = d.register();
        assert_eq!(t2.record as usize, r1, "inactive record must be adopted");
        assert_eq!(d.record_count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn threshold_scales_with_records() {
        let d = Domain::new();
        let _a = d.register();
        let _b = d.register();
        assert!(d.scan_threshold() >= 2 * SLOTS_PER_THREAD * 2);
    }

    #[test]
    fn concurrent_protect_retire_stress() {
        DROPS.store(0, Ordering::Relaxed);
        let d = Arc::new(Domain::new());
        let shared = Arc::new(AtomicPtr::new(boxed(0) as *mut u64));
        let iters = 2_000u64;
        std::thread::scope(|s| {
            // Writer: swaps the shared pointer and retires the old one.
            {
                let d = Arc::clone(&d);
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let mut t = d.register();
                    for i in 1..=iters {
                        let fresh = boxed(i) as *mut u64;
                        let old = shared.swap(fresh, Ordering::AcqRel);
                        unsafe { t.retire(old as *mut u8, count_deleter) };
                    }
                });
            }
            // Readers: protect and read; value must always be sane.
            for _ in 0..2 {
                let d = Arc::clone(&d);
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    let t = d.register();
                    for _ in 0..iters {
                        let p = t.protect(0, &shared);
                        // SAFETY: protected by slot 0.
                        let v = unsafe { *p };
                        assert!(v <= iters);
                        t.clear(0);
                    }
                });
            }
        });
        // Everything except the final node is eventually freed.
        let final_ptr = shared.load(Ordering::Acquire);
        unsafe { drop(Box::from_raw(final_ptr)) };
        assert_eq!(DROPS.load(Ordering::Relaxed), iters as usize);
    }
}
