//! Epoch-based reclamation (Fraser 2004 / Harris 2001 style).
//!
//! The paper's §3.6 positions its custom scheme against "other epoch-based
//! memory reclamation strategies": classic EBR needs a fence on *every*
//! critical-section entry, while the paper's scheme rides the queue's own
//! FAA on the x86 fast path. This module provides that classic EBR so the
//! comparison is concrete and measurable in-repo (see the `reclaim`
//! criterion group): the MS-Queue baseline can run over either hazard
//! pointers or EBR.
//!
//! Design (three-epoch scheme):
//!
//! - A global epoch counter advances when every *pinned* participant has
//!   been observed in the current epoch.
//! - Threads **pin** before touching shared nodes and unpin after; retired
//!   garbage is tagged with the epoch at retirement and freed once the
//!   global epoch has advanced twice past it (no pinned thread can still
//!   hold a reference).
//! - Unlike hazard pointers, readers never announce *which* nodes they
//!   use — reclamation stalls while any thread stays pinned (the paper's
//!   "thread failure" caveat applies to EBR far more than to HP).

use core::sync::atomic::{fence, AtomicBool, AtomicPtr, AtomicU64, Ordering};

use crate::Deleter;

/// Number of epoch generations garbage must age before freeing.
const GRACE: u64 = 2;
/// Retire-buffer length that triggers a collection attempt.
const COLLECT_THRESHOLD: usize = 64;

struct EbrRecord {
    /// Odd = pinned at epoch `value >> 1`; even = unpinned.
    local: AtomicU64,
    active: AtomicBool,
    next: AtomicPtr<EbrRecord>,
}

struct EbrRetired {
    ptr: *mut u8,
    deleter: Deleter,
    epoch: u64,
}

/// An epoch-based reclamation domain.
pub struct EbrDomain {
    epoch: AtomicU64,
    records: AtomicPtr<EbrRecord>,
}

// SAFETY: record list is append-only and atomic; garbage is owned by one
// participant until freed.
unsafe impl Send for EbrDomain {}
unsafe impl Sync for EbrDomain {}

impl Default for EbrDomain {
    fn default() -> Self {
        Self::new()
    }
}

impl EbrDomain {
    /// Creates an empty domain at epoch 0.
    pub const fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            records: AtomicPtr::new(core::ptr::null_mut()),
        }
    }

    /// Registers a participant.
    pub fn register(&self) -> EbrThread<'_> {
        // Adopt an inactive record if possible.
        let mut cur = self.records.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records live while the domain lives.
            let rec = unsafe { &*cur };
            if !rec.active.load(Ordering::Relaxed)
                && rec
                    .active
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                return EbrThread {
                    domain: self,
                    record: cur,
                    retired: Vec::new(),
                    pins: 0,
                };
            }
            cur = rec.next.load(Ordering::Acquire);
        }
        let rec = Box::into_raw(Box::new(EbrRecord {
            local: AtomicU64::new(0),
            active: AtomicBool::new(true),
            next: AtomicPtr::new(core::ptr::null_mut()),
        }));
        let mut head = self.records.load(Ordering::Acquire);
        loop {
            // SAFETY: rec exclusively owned until published.
            unsafe { (*rec).next.store(head, Ordering::Relaxed) };
            match self
                .records
                .compare_exchange(head, rec, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(h) => head = h,
            }
        }
        EbrThread {
            domain: self,
            record: rec,
            retired: Vec::new(),
            pins: 0,
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Tries to advance the global epoch: succeeds iff every pinned
    /// participant has been observed in the current epoch.
    fn try_advance(&self) -> u64 {
        let global = self.epoch.load(Ordering::SeqCst);
        let mut cur = self.records.load(Ordering::Acquire);
        while !cur.is_null() {
            // SAFETY: records live while the domain lives.
            let rec = unsafe { &*cur };
            let local = rec.local.load(Ordering::SeqCst);
            if local & 1 == 1 && local >> 1 != global {
                return global; // a straggler pins an older epoch
            }
            cur = rec.next.load(Ordering::Acquire);
        }
        let _ = self.epoch.compare_exchange(
            global,
            global + 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        self.epoch.load(Ordering::SeqCst)
    }
}

impl Drop for EbrDomain {
    fn drop(&mut self) {
        let mut cur = *self.records.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access at drop.
            let next = unsafe { *(*cur).next.as_ptr() };
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

/// A participant in an [`EbrDomain`].
pub struct EbrThread<'d> {
    domain: &'d EbrDomain,
    record: *mut EbrRecord,
    retired: Vec<EbrRetired>,
    pins: u64,
}

// SAFETY: the record is exclusively owned by this participant.
unsafe impl Send for EbrThread<'_> {}

/// RAII guard for a pinned critical section.
pub struct EbrGuard<'a, 'd> {
    thread: &'a EbrThread<'d>,
}

impl EbrThread<'_> {
    /// Pins this thread: shared nodes read under the returned guard stay
    /// valid until the guard drops. This is the operation that costs a
    /// full fence per critical section — the overhead the paper's custom
    /// scheme avoids on x86.
    #[inline]
    pub fn pin(&self) -> EbrGuard<'_, '_> {
        let global = self.domain.epoch.load(Ordering::Relaxed);
        // SAFETY: record lives while the domain lives.
        unsafe {
            (*self.record)
                .local
                .store((global << 1) | 1, Ordering::SeqCst);
        }
        fence(Ordering::SeqCst);
        // Re-read: if the epoch moved between load and publish, re-publish
        // so try_advance never waits on a stale announcement.
        let fresh = self.domain.epoch.load(Ordering::SeqCst);
        if fresh != global {
            // SAFETY: as above.
            unsafe {
                (*self.record)
                    .local
                    .store((fresh << 1) | 1, Ordering::SeqCst);
            }
            fence(Ordering::SeqCst);
        }
        EbrGuard { thread: self }
    }

    /// Retires `ptr` for deferred freeing.
    ///
    /// # Safety
    /// `ptr` must be unlinked, not retired elsewhere, and valid for
    /// `deleter`.
    pub unsafe fn retire(&mut self, ptr: *mut u8, deleter: Deleter) {
        let epoch = self.domain.epoch();
        self.retired.push(EbrRetired { ptr, deleter, epoch });
        self.pins += 1;
        if self.retired.len() >= COLLECT_THRESHOLD {
            self.collect();
        }
    }

    /// Attempts to advance the epoch and frees sufficiently aged garbage.
    pub fn collect(&mut self) {
        let global = self.domain.try_advance();
        let mut kept = Vec::with_capacity(self.retired.len());
        for r in self.retired.drain(..) {
            if global >= r.epoch + GRACE {
                // SAFETY: retired at epoch r.epoch; every participant has
                // since been observed in a newer epoch twice, so no live
                // reference can remain.
                unsafe { (r.deleter)(r.ptr) };
            } else {
                kept.push(r);
            }
        }
        self.retired = kept;
    }

    /// Number of nodes awaiting reclamation (observability).
    pub fn retired_len(&self) -> usize {
        self.retired.len()
    }
}

impl Drop for EbrGuard<'_, '_> {
    #[inline]
    fn drop(&mut self) {
        // SAFETY: record lives while the domain lives.
        unsafe {
            (*self.thread.record).local.store(
                self.thread.domain.epoch.load(Ordering::Relaxed) << 1,
                Ordering::Release,
            );
        }
    }
}

impl Drop for EbrThread<'_> {
    fn drop(&mut self) {
        // Age out what we can; hand anything left to a best-effort final
        // sweep (same rationale as HazardThread::drop).
        for _ in 0..64 {
            if self.retired.is_empty() {
                break;
            }
            self.collect();
            if !self.retired.is_empty() {
                std::thread::yield_now();
            }
        }
        for r in self.retired.drain(..) {
            // SAFETY: queue teardown quiescence; see HazardThread::drop.
            unsafe { (r.deleter)(r.ptr) };
        }
        // SAFETY: record stays in the domain for reuse.
        unsafe {
            (*self.record).local.store(0, Ordering::Release);
            (*self.record).active.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    static DROPS: AtomicUsize = AtomicUsize::new(0);

    unsafe fn count_deleter(p: *mut u8) {
        DROPS.fetch_add(1, Ordering::Relaxed);
        unsafe { drop(Box::from_raw(p as *mut u64)) };
    }

    fn boxed(v: u64) -> *mut u8 {
        Box::into_raw(Box::new(v)) as *mut u8
    }

    #[test]
    fn unpinned_garbage_ages_out() {
        DROPS.store(0, Ordering::Relaxed);
        let d = EbrDomain::new();
        let mut t = d.register();
        for i in 0..10 {
            unsafe { t.retire(boxed(i), count_deleter) };
        }
        // Each collect may advance the epoch once; after a few, the
        // garbage is two epochs old and freed.
        for _ in 0..4 {
            t.collect();
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn pinned_reader_blocks_the_epoch() {
        DROPS.store(0, Ordering::Relaxed);
        let d = EbrDomain::new();
        let reader = d.register();
        let mut writer = d.register();

        let guard = reader.pin();
        unsafe { writer.retire(boxed(1), count_deleter) };
        for _ in 0..8 {
            writer.collect();
        }
        assert_eq!(
            DROPS.load(Ordering::Relaxed),
            0,
            "pinned reader must hold the epoch back"
        );
        drop(guard);
        for _ in 0..4 {
            writer.collect();
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn epoch_advances_with_active_pin_unpin_cycles() {
        let d = EbrDomain::new();
        let t = d.register();
        let e0 = d.epoch();
        for _ in 0..10 {
            let g = t.pin();
            drop(g);
            d.try_advance();
        }
        assert!(d.epoch() > e0);
    }

    #[test]
    fn records_recycle() {
        let d = EbrDomain::new();
        let r1 = {
            let t = d.register();
            t.record as usize
        };
        let t2 = d.register();
        assert_eq!(t2.record as usize, r1);
    }

    #[test]
    fn concurrent_readers_and_reclaimer() {
        DROPS.store(0, Ordering::Relaxed);
        let d = EbrDomain::new();
        let shared = AtomicPtr::new(boxed(0) as *mut u64);
        let iters = 2_000u64;
        std::thread::scope(|s| {
            {
                let d = &d;
                let shared = &shared;
                s.spawn(move || {
                    let mut t = d.register();
                    for i in 1..=iters {
                        let fresh = boxed(i) as *mut u64;
                        let old = shared.swap(fresh, Ordering::AcqRel);
                        unsafe { t.retire(old as *mut u8, count_deleter) };
                    }
                    for _ in 0..8 {
                        t.collect();
                    }
                });
            }
            for _ in 0..2 {
                let d = &d;
                let shared = &shared;
                s.spawn(move || {
                    let t = d.register();
                    for _ in 0..iters {
                        let g = t.pin();
                        let p = shared.load(Ordering::Acquire);
                        // SAFETY: read under the pin; the swapper retires
                        // but EBR defers the free past our unpin.
                        let v = unsafe { *p };
                        assert!(v <= iters);
                        drop(g);
                    }
                });
            }
        });
        let final_ptr = shared.load(Ordering::Acquire);
        unsafe { drop(Box::from_raw(final_ptr)) };
        assert_eq!(DROPS.load(Ordering::Relaxed), iters as usize);
    }
}
