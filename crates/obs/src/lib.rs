//! # wfq-obs — flight recorder, metrics plumbing, starvation watchdog
//!
//! Observability for the wait-free queue's *protocols*, not just its
//! throughput. The paper's evaluation (§5, Table 2) is built on counting
//! what the protocol did — fast vs. slow path, helping, cleanup — and
//! `wfqueue::QueueStats` reproduces those aggregates; this crate answers
//! the question an aggregate cannot: **what happened, in what order, on
//! which thread** when a fuzz seed fails or a benchmark regresses.
//!
//! Three pieces:
//!
//! - **Flight recorder** ([`record!`], [`drain`]): each thread running
//!   instrumented protocol code owns a fixed-size SPSC event ring written
//!   with relaxed stores and raw TSC-or-`Instant` timestamps. Rings
//!   overwrite oldest-first, so after a failure each thread holds the last
//!   few thousand protocol steps it took. [`chrome_trace_json`] serializes
//!   a drain into Chrome trace-event JSON loadable in `chrome://tracing`
//!   or [Perfetto](https://ui.perfetto.dev).
//! - **Progress epochs + starvation watchdog** ([`Watchdog`]): span
//!   enter/exit events maintain three per-recorder words (slow-path entry
//!   time, slow-path kind, completed-op epoch); a sampling thread reports
//!   any thread stuck inside one slow-path op beyond a threshold.
//! - **The `trace` feature gate**: without it, [`record!`] expands to
//!   literally nothing — provably: the expansion is a valid constant
//!   expression, which no atomic store, TSC read, or thread-local access
//!   is (the same const-proof trick as `wfq_sync::fault`, whose runtime
//!   twin lives in the `primitives` bench). The drain/serialize/watchdog
//!   API surface compiles in both modes (a drain is simply empty), so
//!   tools can be feature-agnostic.
//!
//! Prometheus-style metrics exposition lives in `wfq-harness::obs` (it
//! needs `QueueStats` from the core crate, which this crate deliberately
//! does not depend on — the recorder must be linkable *from* the core).

#![warn(missing_docs)]

pub mod chrome;
pub mod clock;
mod event;
pub mod ledger;
pub mod perf;
mod recorder;
mod ring;
pub mod watchdog;

pub use chrome::chrome_trace_json;
pub use event::{Event, EventKind, HandleTrace, ALL_KINDS};
pub use ledger::{
    ledger_totals, probe_overhead_split, probe_overhead_ticks, LedgerTotals, NestState, Phase,
    ALL_PHASES, CYCLES_ENABLED, NUM_PHASES,
};
pub use perf::{
    scale_count, CounterGroup, CounterKind, GroupSnapshot, PerfStatus, ALL_COUNTERS, NUM_COUNTERS,
    PERF_DENY_ENV,
};
pub use recorder::{
    drain, mark_ns, recorder_count, register_current_thread, resident_events, RecorderShared,
    DEFAULT_RING_CAPACITY, RING_CAPACITY_ENV,
};
pub use watchdog::{StallReport, Watchdog, WatchdogConfig};

/// Whether this build has the flight-recorder runtime compiled in.
pub const ENABLED: bool = cfg!(feature = "trace");

/// Records a typed protocol event on the calling thread's flight recorder.
///
/// Expands to `()` in the default build — the arguments are not even
/// evaluated; with the `trace` feature it timestamps the event and pushes
/// it into the thread's ring (creating and registering the recorder on
/// first use).
///
/// The optional third argument is the causal operation id (the slow-path
/// request's publish id); the two-argument form records op 0 (no episode).
///
/// ```
/// use wfq_obs::{record, EventKind};
/// record!(EventKind::EnqFast, 42u64);
/// record!(EventKind::EnqSlowEnter, 42u64, 42u64);
/// ```
#[macro_export]
#[cfg(not(feature = "trace"))]
macro_rules! record {
    ($kind:expr, $arg:expr) => {
        ()
    };
    ($kind:expr, $arg:expr, $op:expr) => {
        ()
    };
}

/// Records a typed protocol event on the calling thread's flight recorder.
///
/// This build has `trace` enabled: every expansion takes a raw timestamp
/// and appends to the calling thread's event ring. The optional third
/// argument is the causal operation id (0 when omitted).
#[macro_export]
#[cfg(feature = "trace")]
macro_rules! record {
    ($kind:expr, $arg:expr) => {
        $crate::rt_record($kind, $arg as u64, 0u64)
    };
    ($kind:expr, $arg:expr, $op:expr) => {
        $crate::rt_record($kind, $arg as u64, $op as u64)
    };
}

/// Runtime behind [`record!`] in `trace` builds. Not part of the stable
/// API; call the macro instead.
#[cfg(feature = "trace")]
#[doc(hidden)]
pub use recorder::record as rt_record;

/// Brackets an expression as one cycle-ledger phase, yielding the
/// expression's value.
///
/// This is the default build (`cycles` off): the expansion is **exactly
/// the body** — the phase token is discarded, no clock is read, no
/// thread-local is touched. Provably so: the expansion of a const body
/// stays a valid constant expression (see `_PHASE_ZERO_OVERHEAD_PROOF`).
///
/// ```
/// use wfq_obs::{phase, Phase};
/// let claimed = phase!(Phase::Faa, 40u64 + 2);
/// assert_eq!(claimed, 42);
/// ```
#[macro_export]
#[cfg(not(feature = "cycles"))]
macro_rules! phase {
    ($phase:expr, $body:expr) => {
        $body
    };
}

/// Brackets an expression as one cycle-ledger phase, yielding the
/// expression's value.
///
/// This build has `cycles` enabled: the expansion takes a raw timestamp on
/// entry and exit and accumulates the phase's **self-time** (nested
/// `phase!` spans are subtracted) into the calling thread's ledger,
/// registering it on first use. Drain cumulative totals with
/// [`ledger_totals`].
#[macro_export]
#[cfg(feature = "cycles")]
macro_rules! phase {
    ($phase:expr, $body:expr) => {{
        $crate::ledger::rt_phase_enter($phase);
        let __wfq_phase_result = $body;
        $crate::ledger::rt_phase_exit($phase);
        __wfq_phase_result
    }};
}

// Zero-overhead guard, statically checked (the mirror of
// `wfq_sync::fault::_ZERO_OVERHEAD_PROOF`): with the feature off, the
// macro's expansion must be a constant expression. Thread-local access,
// TSC reads, and atomic stores are not permitted in constants, so this
// item compiling proves the default build's instrumented fast paths carry
// no trace of the recorder. The runtime twin is the `inject_overhead`
// group of the `primitives` bench.
#[cfg(not(feature = "trace"))]
const _ZERO_OVERHEAD_PROOF: () = {
    record!(EventKind::EnqFast, 0u64);
    record!(EventKind::EnqSlowEnter, 0u64, 0u64);
};

// The ledger's zero-overhead guard: with `cycles` off, `phase!` must be a
// pure pass-through of its body — a const body stays const, which no clock
// read or thread-local access would allow. The runtime twin is the
// `phase_hooks_overhead` group of the `primitives` bench.
#[cfg(not(feature = "cycles"))]
const _PHASE_ZERO_OVERHEAD_PROOF: u64 = phase!(Phase::Faa, 40u64 + 2);

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_reflects_the_feature() {
        assert_eq!(super::ENABLED, cfg!(feature = "trace"));
    }

    #[cfg(not(feature = "trace"))]
    #[test]
    fn default_build_macro_is_a_unit_expression() {
        // "Unused" precisely because the macro discards its tokens.
        #[allow(unused_imports)]
        use super::EventKind;
        // Usable as a plain expression…
        let unit: () = record!(EventKind::DeqFast, 1u64);
        // …and in const position — and it must not evaluate its arguments
        // (the diverging expression below would run otherwise).
        let _: () = record!(EventKind::DeqFast, {
            #[allow(unreachable_code)]
            {
                if true {
                    panic!("record! must not evaluate args in default builds")
                }
                0u64
            }
        });
        const IN_CONST: () = record!(EventKind::EnqFast, 0u64);
        assert_eq!(unit, IN_CONST);
        // The three-argument (op-carrying) form is equally inert.
        let _: () = record!(EventKind::DeqSlowEnter, 1u64, {
            #[allow(unreachable_code)]
            {
                if true {
                    panic!("record! must not evaluate the op in default builds")
                }
                0u64
            }
        });
        const OP_IN_CONST: () = record!(EventKind::DeqSlowEnter, 0u64, 0u64);
        assert_eq!(unit, OP_IN_CONST);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn macro_records_into_the_thread_recorder() {
        use super::*;
        std::thread::spawn(|| {
            let before = recorder_count();
            record!(EventKind::CleanerElected, 0xC0FFEE_u64);
            record!(EventKind::SegFree, 3u64, 11u64);
            assert!(recorder_count() > before);
            // Tests share the process-global registry; find our trace by
            // the marker argument rather than by position.
            let traces = drain();
            let mine = traces
                .iter()
                .find(|t| {
                    t.events
                        .iter()
                        .any(|e| e.kind == EventKind::CleanerElected && e.arg == 0xC0FFEE)
                })
                .expect("registered by first record!");
            let seg_free = mine
                .events
                .iter()
                .find(|e| e.kind == EventKind::SegFree)
                .expect("second record! landed");
            assert_eq!((seg_free.arg, seg_free.op), (3, 11));
        })
        .join()
        .unwrap();
    }
}
