//! The starvation watchdog.
//!
//! Wait-freedom bounds the *number of steps* an operation takes, not the
//! wall time a descheduled or livelocked thread spends inside it — and a
//! bug in the helping protocol (a helper that never completes a request, a
//! request left pending by a lost transition) manifests exactly as a thread
//! stuck in a slow-path op while everyone else makes progress. The watchdog
//! turns that symptom into a report: it samples every recorder's progress
//! words (slow-path entry timestamp + completed-op epoch, maintained by
//! [`record!`](crate::record) on span enter/exit) and flags any recorder
//! that has been inside one slow-path operation longer than a threshold.
//!
//! The sampled words are plain relaxed/acquire atomics on the recorder —
//! the watchdog adds zero work to the instrumented threads and can run in
//! production builds with `trace` enabled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::clock;
use crate::event::EventKind;
use crate::recorder::registry_snapshot;

/// Watchdog sampling parameters.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How often to sample the recorders.
    pub interval: Duration,
    /// How long a thread may sit inside one slow-path op before it is
    /// reported. Should be orders of magnitude above an honest slow path
    /// (which completes in microseconds) — the default is 100 ms.
    pub threshold: Duration,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(10),
            threshold: Duration::from_millis(100),
        }
    }
}

/// One detected stall: a recorder that entered a slow-path op and hadn't
/// left it after [`WatchdogConfig::threshold`].
#[derive(Debug, Clone)]
pub struct StallReport {
    /// Recorder id (matches the Chrome trace `tid`).
    pub recorder: u64,
    /// Thread name at registration.
    pub thread: String,
    /// Which slow path it is stuck in.
    pub kind: EventKind,
    /// How long it had been stuck when sampled.
    pub stalled: Duration,
    /// The recorder's completed-op epoch at detection (for correlating
    /// with later samples: an unchanged epoch means still no progress).
    pub epoch: u64,
}

/// A running watchdog thread. Dropping it stops and joins the thread.
pub struct Watchdog {
    stop: Arc<AtomicBool>,
    reports: Arc<Mutex<Vec<StallReport>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a watchdog that collects reports (readable via
    /// [`reports`](Self::reports)).
    pub fn spawn(config: WatchdogConfig) -> Self {
        Self::spawn_with(config, None)
    }

    /// Spawns a watchdog that additionally invokes `callback` on every new
    /// report (e.g. to log to stderr as soon as a stall is seen).
    pub fn spawn_with_callback(
        config: WatchdogConfig,
        callback: impl Fn(&StallReport) + Send + 'static,
    ) -> Self {
        Self::spawn_with(config, Some(Box::new(callback)))
    }

    fn spawn_with(
        config: WatchdogConfig,
        callback: Option<Box<dyn Fn(&StallReport) + Send>>,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let reports = Arc::new(Mutex::new(Vec::new()));
        let thread = {
            let stop = Arc::clone(&stop);
            let reports = Arc::clone(&reports);
            std::thread::Builder::new()
                .name("wfq-watchdog".into())
                .spawn(move || watchdog_loop(config, &stop, &reports, callback))
                .expect("spawn watchdog thread")
        };
        Self {
            stop,
            reports,
            thread: Some(thread),
        }
    }

    /// All stalls detected so far. One entry per stalled *episode*: a
    /// recorder stuck through many sampling rounds is reported once until
    /// it makes progress and stalls again.
    pub fn reports(&self) -> Vec<StallReport> {
        self.reports.lock().unwrap().clone()
    }

    /// Stops the sampling thread and returns the collected reports.
    pub fn stop(mut self) -> Vec<StallReport> {
        self.shutdown();
        std::mem::take(&mut *self.reports.lock().unwrap())
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn watchdog_loop(
    config: WatchdogConfig,
    stop: &AtomicBool,
    reports: &Mutex<Vec<StallReport>>,
    callback: Option<Box<dyn Fn(&StallReport) + Send>>,
) {
    // (recorder id, slow_since_raw) of episodes already reported: the same
    // stall is not re-reported every interval.
    let mut seen: Vec<(u64, u64)> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(config.interval);
        let now = clock::raw_now();
        for rec in registry_snapshot() {
            let (since, kind, epoch) = rec.progress();
            if since == 0 {
                seen.retain(|&(id, _)| id != rec.id);
                continue;
            }
            let stalled_ns = clock::raw_delta_ns(since, now);
            if stalled_ns < config.threshold.as_nanos() as u64 {
                continue;
            }
            if seen.contains(&(rec.id, since)) {
                continue;
            }
            seen.push((rec.id, since));
            let report = StallReport {
                recorder: rec.id,
                thread: rec.thread.clone(),
                kind: kind.unwrap_or(EventKind::EnqSlowEnter),
                stalled: Duration::from_nanos(stalled_ns),
                epoch,
            };
            if let Some(cb) = &callback {
                cb(&report);
            }
            reports.lock().unwrap().push(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::register_current_thread;

    fn quick() -> WatchdogConfig {
        WatchdogConfig {
            interval: Duration::from_millis(2),
            threshold: Duration::from_millis(20),
        }
    }

    /// The acceptance-criteria test: an artificially parked slow-path
    /// thread must be detected, and a healthy one must not be.
    #[test]
    fn detects_a_parked_slow_path_thread() {
        let rec = register_current_thread();
        let dog = Watchdog::spawn(quick());
        // Enter a slow path and "park" (never exit) past the threshold.
        rec.record(EventKind::DeqSlowEnter, 1, 0);
        std::thread::sleep(Duration::from_millis(80));
        let reports = dog.stop();
        let mine: Vec<_> = reports.iter().filter(|r| r.recorder == rec.id).collect();
        assert!(!mine.is_empty(), "parked thread not detected: {reports:?}");
        assert_eq!(mine[0].kind, EventKind::DeqSlowEnter);
        assert!(mine[0].stalled >= Duration::from_millis(20));
        // One episode → one report, however many sampling rounds passed.
        assert_eq!(mine.len(), 1, "stall re-reported: {mine:?}");
        rec.record(EventKind::DeqSlowExit, 1, 0); // unpark for later tests
    }

    #[test]
    fn healthy_progress_is_never_reported() {
        let rec = register_current_thread();
        let dog = Watchdog::spawn(quick());
        for i in 0..50 {
            rec.record(EventKind::EnqSlowEnter, i, 0);
            rec.record(EventKind::EnqSlowExit, i, 0);
            std::thread::sleep(Duration::from_millis(1));
        }
        let reports = dog.stop();
        assert!(
            reports.iter().all(|r| r.recorder != rec.id),
            "healthy thread reported: {reports:?}"
        );
    }

    #[test]
    fn callback_fires_on_detection() {
        let hits = Arc::new(Mutex::new(0u32));
        let rec = register_current_thread();
        let dog = {
            let hits = Arc::clone(&hits);
            let id = rec.id;
            Watchdog::spawn_with_callback(quick(), move |r| {
                if r.recorder == id {
                    *hits.lock().unwrap() += 1;
                }
            })
        };
        rec.record(EventKind::EnqSlowEnter, 1, 0);
        std::thread::sleep(Duration::from_millis(60));
        rec.record(EventKind::EnqSlowExit, 1, 0);
        drop(dog);
        assert_eq!(*hits.lock().unwrap(), 1);
    }
}
