//! Per-thread recorders, the global registry, and the drain pass.
//!
//! Each thread that executes an instrumented protocol step lazily creates a
//! **recorder**: an [`EventRing`] plus the three watchdog words (slow-path
//! entry timestamp, slow-path kind, completed-op epoch). Recorders register
//! into a process-global list the moment they are created and stay there
//! for the process lifetime (threads are cheap to leak a few hundred bytes
//! for; a dead thread's ring simply stops growing), so drainers and the
//! watchdog never race registration teardown.
//!
//! The hot side — [`record`] — touches only thread-local state and the
//! owner's own ring: no locks, no shared cursors, no allocation after the
//! first event. Everything here except [`record`] itself is compiled in
//! both build modes; without the `trace` feature nothing ever registers,
//! so every drain is trivially empty.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock;
use crate::event::{Event, EventKind, HandleTrace};
use crate::ring::EventRing;

/// Default events retained per recorder ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Environment variable overriding the per-recorder ring capacity (events;
/// rounded up to a power of two). Read once, at first recorder creation.
pub const RING_CAPACITY_ENV: &str = "WFQ_TRACE_RING";

/// The shared half of one thread's recorder, visible to drainers and the
/// watchdog.
pub struct RecorderShared {
    /// Small dense id (Chrome trace `tid`).
    pub(crate) id: u64,
    /// Owning thread's name at creation.
    pub(crate) thread: String,
    pub(crate) ring: EventRing,
    /// Raw-clock instant the owner entered its current slow-path op, or 0
    /// when not in a slow path. The watchdog's whole signal.
    pub(crate) slow_since_raw: AtomicU64,
    /// `EventKind` discriminant of the slow-path entry (valid only while
    /// `slow_since_raw != 0`).
    pub(crate) slow_kind: AtomicU32,
    /// Completed slow-path ops: the per-handle progress epoch.
    pub(crate) epoch: AtomicU64,
}

impl RecorderShared {
    /// This recorder's dense id (the Chrome trace `tid`).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Name of the thread that registered this recorder.
    pub fn thread_name(&self) -> &str {
        &self.thread
    }

    /// Records one event directly (bypassing the thread-local lookup).
    /// For tests and tools; protocol code uses [`record!`](crate::record).
    /// **Single-writer**: one thread at a time may record on a recorder.
    pub fn record_event(&self, kind: EventKind, arg: u64) {
        self.record(kind, arg, 0);
    }

    /// Like [`record_event`](Self::record_event) but carrying a causal
    /// operation id (the slow-path request's publish id).
    pub fn record_event_op(&self, kind: EventKind, arg: u64, op: u64) {
        self.record(kind, arg, op);
    }

    fn new(id: u64, capacity: usize) -> Self {
        Self {
            id,
            thread: std::thread::current()
                .name()
                .unwrap_or("unnamed")
                .to_string(),
            ring: EventRing::with_capacity(capacity),
            slow_since_raw: AtomicU64::new(0),
            slow_kind: AtomicU32::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    /// Records one event (owner thread only). Only *progress* kinds drive
    /// the watchdog words: the nested `HelpDeq` span pairs for Chrome
    /// rendering but must not clear `slow_since` mid-`deq_slow`.
    #[inline]
    pub(crate) fn record(&self, kind: EventKind, arg: u64, op: u64) {
        let now = clock::raw_now();
        if kind.is_progress_enter() {
            self.slow_kind.store(kind as u32, Ordering::Relaxed);
            // `max(1)`: raw 0 is the idle sentinel; the first-ever reading
            // can legitimately be 0.
            self.slow_since_raw.store(now.max(1), Ordering::Release);
        } else if kind.is_progress_exit() {
            self.slow_since_raw.store(0, Ordering::Release);
            self.epoch.fetch_add(1, Ordering::Release);
        }
        self.ring.push(now, kind, arg, op);
    }

    /// Watchdog view: `(slow_since_raw, kind, epoch)`.
    pub(crate) fn progress(&self) -> (u64, Option<EventKind>, u64) {
        let since = self.slow_since_raw.load(Ordering::Acquire);
        let kind = EventKind::from_u8(self.slow_kind.load(Ordering::Relaxed) as u8);
        (since, kind, self.epoch.load(Ordering::Acquire))
    }
}

fn registry() -> &'static Mutex<Vec<Arc<RecorderShared>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<RecorderShared>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn registry_snapshot() -> Vec<Arc<RecorderShared>> {
    registry().lock().unwrap().clone()
}

fn ring_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var(RING_CAPACITY_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_RING_CAPACITY)
    })
}

/// Creates and registers a recorder for the calling thread. Public for
/// tests and tools; protocol code reaches it through [`record`].
pub fn register_current_thread() -> Arc<RecorderShared> {
    let mut reg = registry().lock().unwrap();
    let rec = Arc::new(RecorderShared::new(reg.len() as u64, ring_capacity()));
    reg.push(Arc::clone(&rec));
    rec
}

#[cfg(feature = "trace")]
thread_local! {
    static RECORDER: std::cell::OnceCell<Arc<RecorderShared>> =
        const { std::cell::OnceCell::new() };
}

/// Records one event on the calling thread's recorder, creating and
/// registering it on first use. Called by [`record!`](crate::record); not
/// meant to be called directly.
#[cfg(feature = "trace")]
pub fn record(kind: EventKind, arg: u64, op: u64) {
    RECORDER.with(|r| r.get_or_init(register_current_thread).record(kind, arg, op));
}

/// Number of recorders ever registered.
pub fn recorder_count() -> usize {
    registry().lock().unwrap().len()
}

/// A raw-clock mark; events drained later can be filtered to those with
/// `ts_ns >= ns_of(mark)` via the value returned here (already converted).
/// Lets tests scope assertions to their own traffic in a shared process.
pub fn mark_ns() -> u64 {
    clock::raw_to_ns(clock::raw_now())
}

/// Drains every registered recorder: snapshots each ring (lock-free with
/// respect to the owners) and converts timestamps to nanoseconds. Returns
/// one [`HandleTrace`] per recorder, id-ordered. Without the `trace`
/// feature nothing ever registers, so this returns an empty vector.
pub fn drain() -> Vec<HandleTrace> {
    registry_snapshot()
        .iter()
        .map(|rec| {
            let (raw, dropped) = rec.ring.snapshot();
            HandleTrace {
                id: rec.id,
                thread: rec.thread.clone(),
                events: raw
                    .into_iter()
                    .map(|e| Event {
                        ts_ns: clock::raw_to_ns(e.ts_raw),
                        kind: e.kind,
                        arg: e.arg,
                        op: e.op,
                    })
                    .collect(),
                dropped,
            }
        })
        .collect()
}

/// Total events currently resident across all recorders.
pub fn resident_events() -> usize {
    drain().iter().map(|t| t.events.len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registration is process-global, so these tests tolerate recorders
    // left behind by other tests in the same binary.

    #[test]
    fn manual_registration_shows_up_in_drain() {
        let before = recorder_count();
        let rec = std::thread::spawn(|| {
            let rec = register_current_thread();
            rec.record_event(EventKind::EnqFast, 7);
            rec.record_event_op(EventKind::EnqSlowEnter, 8, 8);
            rec.record_event_op(EventKind::EnqSlowExit, 9, 8);
            rec.id
        })
        .join()
        .unwrap();
        assert!(recorder_count() > before);
        let traces = drain();
        let t = traces.iter().find(|t| t.id == rec).expect("registered");
        let kinds: Vec<EventKind> = t.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::EnqFast,
                EventKind::EnqSlowEnter,
                EventKind::EnqSlowExit
            ]
        );
        assert_eq!(t.dropped, 0);
        // Timestamps are monotone within one recorder.
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        // The op id rode through the ring; the point event carries op 0.
        assert_eq!(
            t.events.iter().map(|e| e.op).collect::<Vec<_>>(),
            vec![0, 8, 8]
        );
    }

    #[test]
    fn span_enter_and_exit_drive_the_progress_words() {
        let rec = register_current_thread();
        let (idle, _, e0) = rec.progress();
        assert_eq!(idle, 0);
        rec.record_event(EventKind::DeqSlowEnter, 1);
        let (since, kind, _) = rec.progress();
        assert_ne!(since, 0);
        assert_eq!(kind, Some(EventKind::DeqSlowEnter));
        rec.record_event(EventKind::DeqSlowExit, 1);
        let (after, _, e1) = rec.progress();
        assert_eq!(after, 0);
        assert_eq!(e1, e0 + 1);
    }

    #[test]
    fn non_span_events_do_not_touch_progress() {
        let rec = register_current_thread();
        let (_, _, e0) = rec.progress();
        rec.record_event(EventKind::HelpEnqCommit, 3);
        rec.record_event(EventKind::SegAlloc, 4);
        let (since, _, e1) = rec.progress();
        assert_eq!(since, 0);
        assert_eq!(e1, e0);
    }

    #[test]
    fn nested_help_span_leaves_the_watchdog_words_armed() {
        // deq_slow self-helps: DeqSlowEnter, then a HelpDeqEnter/Exit pair,
        // then DeqSlowExit — all on one recorder. The inner pair must not
        // disarm `slow_since` or bump the epoch, or a thread parked *after*
        // its self-help returned would look idle to the watchdog.
        let rec = register_current_thread();
        let (_, _, e0) = rec.progress();
        rec.record_event_op(EventKind::DeqSlowEnter, 5, 5);
        let (armed, kind, _) = rec.progress();
        assert_ne!(armed, 0);
        assert_eq!(kind, Some(EventKind::DeqSlowEnter));
        rec.record_event_op(EventKind::HelpDeqEnter, 5, 5);
        rec.record_event_op(EventKind::HelpDeqExit, 9, 5);
        let (still_armed, kind, e_mid) = rec.progress();
        assert_eq!(still_armed, armed, "help span disarmed the watchdog");
        assert_eq!(kind, Some(EventKind::DeqSlowEnter));
        assert_eq!(e_mid, e0, "help span bumped the progress epoch");
        rec.record_event_op(EventKind::DeqSlowExit, 9, 5);
        let (after, _, e1) = rec.progress();
        assert_eq!(after, 0);
        assert_eq!(e1, e0 + 1);
    }
}
