//! The recorder's timestamp source: TSC where available, `Instant` elsewhere.
//!
//! Recording must be cheap enough to sit inside the queue's fast paths when
//! tracing is on, so the hot side takes a **raw** reading — `rdtsc` on
//! x86_64 (a ~10-cycle, fence-free instruction), an [`Instant`] delta
//! elsewhere — and defers the conversion to nanoseconds until drain time.
//! Conversion calibrates the raw rate against the monotonic OS clock over
//! the recorder's whole lifetime, so it gets *more* accurate the longer the
//! program runs; drift of a non-invariant TSC shows up as a small uniform
//! scale error in trace timestamps, never as unsoundness.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

struct Anchor {
    t0: Instant,
    raw0: u64,
}

fn anchor() -> &'static Anchor {
    static ANCHOR: OnceLock<Anchor> = OnceLock::new();
    ANCHOR.get_or_init(|| Anchor {
        t0: Instant::now(),
        raw0: raw_reading(),
    })
}

#[inline]
fn raw_reading() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: rdtsc has no preconditions; it reads a counter.
        unsafe { core::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Fallback: monotonic nanoseconds. The first call through
        // `anchor()` makes raw0 ≈ 0 for subsequent readings.
        static FALLBACK_T0: OnceLock<Instant> = OnceLock::new();
        FALLBACK_T0.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// A raw timestamp: cheap to take, meaningless until [`raw_to_ns`].
/// The first call anchors the process-wide epoch.
#[inline]
pub fn raw_now() -> u64 {
    let a = anchor();
    raw_reading().wrapping_sub(a.raw0)
}

/// Raw ticks per nanosecond, in fixed point (`<< 20`). Calibrated lazily
/// against the monotonic clock and cached once the measurement window is
/// wide enough to bound the error.
fn rate_fp20() -> u64 {
    static CACHED: AtomicU64 = AtomicU64::new(0);
    let cached = CACHED.load(Ordering::Relaxed);
    if cached != 0 {
        return cached;
    }
    let a = anchor();
    let elapsed_ns = a.t0.elapsed().as_nanos() as u64;
    let raw = raw_reading().wrapping_sub(a.raw0);
    if elapsed_ns == 0 || raw == 0 {
        return 1 << 20; // degenerate: identity rate
    }
    let fp = (((raw as u128) << 20) / elapsed_ns as u128).max(1) as u64;
    // Cache only once ≥ 50 ms have been observed: a window that wide puts
    // the calibration error below ~0.1% even with µs-noisy clock reads.
    if elapsed_ns >= 50_000_000 {
        let _ = CACHED.compare_exchange(0, fp, Ordering::Relaxed, Ordering::Relaxed);
    }
    fp
}

/// Converts a [`raw_now`] reading to nanoseconds since the anchor.
pub fn raw_to_ns(raw: u64) -> u64 {
    (((raw as u128) << 20) / rate_fp20() as u128) as u64
}

/// Nanoseconds between two raw readings (`later` taken after `earlier`).
pub fn raw_delta_ns(earlier: u64, later: u64) -> u64 {
    raw_to_ns(later.saturating_sub(earlier))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_now_is_monotone_nondecreasing() {
        let mut prev = raw_now();
        for _ in 0..1000 {
            let cur = raw_now();
            assert!(cur >= prev, "raw clock went backwards: {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn conversion_tracks_real_time() {
        let r0 = raw_now();
        let t0 = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(60));
        let r1 = raw_now();
        let wall = t0.elapsed().as_nanos() as u64;
        let measured = raw_delta_ns(r0, r1);
        // Within 25% of wall time: loose enough for CI noise and the
        // lazy-calibration window, tight enough to catch unit mistakes
        // (off by 2^20, tick-vs-ns confusion) by orders of magnitude.
        let lo = wall - wall / 4;
        let hi = wall + wall / 4;
        assert!(
            (lo..=hi).contains(&measured),
            "converted {measured} ns vs wall {wall} ns"
        );
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        assert_eq!(raw_delta_ns(100, 50), 0);
    }
}
