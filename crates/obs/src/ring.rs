//! The fixed-size SPSC event ring behind each recorder.
//!
//! One ring has exactly one writer — the thread that owns the recorder —
//! and is read concurrently by drainers (the harness, the fuzzer's failure
//! dump) and never blocks either side:
//!
//! - The writer's protocol is four relaxed/release stores per event:
//!   invalidate the slot's sequence word, write the payload, publish the
//!   sequence, bump the write cursor. No CAS, no branch on shared state.
//! - A reader snapshots the cursor and walks the most recent `capacity`
//!   slots, accepting a slot only if its sequence word reads the same slot
//!   generation before *and* after the payload (a per-slot seqlock). A slot
//!   being overwritten mid-read is simply skipped — a flight recorder
//!   prefers losing one event to stalling the protocol it is observing.
//!
//! The ring overwrites oldest-first, so after a failure it holds the *last*
//! `capacity` events of each thread — the window that explains the failure.

use core::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use wfq_sync::CachePadded;

use crate::event::EventKind;

/// A raw ring entry: timestamp still in raw clock units.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RawEvent {
    pub ts_raw: u64,
    pub kind: EventKind,
    pub arg: u64,
    pub op: u64,
}

#[derive(Default)]
struct Slot {
    /// `index + 1` of the event stored here; 0 while empty or mid-write.
    seq: AtomicU64,
    ts: AtomicU64,
    kind: AtomicU32,
    arg: AtomicU64,
    op: AtomicU64,
}

pub(crate) struct EventRing {
    mask: u64,
    /// Monotonic count of events ever pushed (the next write index).
    wcur: CachePadded<AtomicU64>,
    slots: Box<[Slot]>,
}

impl EventRing {
    /// Creates a ring holding `capacity` events, rounded up to a power of
    /// two (minimum 16).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(16).next_power_of_two();
        let slots = (0..cap).map(|_| Slot::default()).collect::<Vec<_>>();
        Self {
            mask: cap as u64 - 1,
            wcur: CachePadded::new(AtomicU64::new(0)),
            slots: slots.into_boxed_slice(),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed (not the resident count).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn pushed(&self) -> u64 {
        self.wcur.load(Ordering::Acquire)
    }

    /// Appends one event. **Single-writer**: only the owning thread may
    /// call this; `&self` because the owner reaches the ring through a
    /// shared [`Arc`](std::sync::Arc).
    #[inline]
    pub fn push(&self, ts_raw: u64, kind: EventKind, arg: u64, op: u64) {
        let idx = self.wcur.load(Ordering::Relaxed);
        let slot = &self.slots[(idx & self.mask) as usize];
        // Invalidate, so a concurrent reader can't accept a half-new slot.
        slot.seq.store(0, Ordering::Release);
        slot.ts.store(ts_raw, Ordering::Relaxed);
        slot.kind.store(kind as u32, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.op.store(op, Ordering::Relaxed);
        // Publish payload (Release), then advance the cursor. The cursor
        // store is Release too so `pushed()` readers see published slots.
        slot.seq.store(idx + 1, Ordering::Release);
        self.wcur.store(idx + 1, Ordering::Release);
    }

    /// Reads the resident events, oldest first, skipping any slot the
    /// writer is concurrently overwriting. Returns the events and the
    /// number dropped to wrap-around before this snapshot.
    pub fn snapshot(&self) -> (Vec<RawEvent>, u64) {
        let end = self.wcur.load(Ordering::Acquire);
        let start = end.saturating_sub(self.slots.len() as u64);
        let mut out = Vec::with_capacity((end - start) as usize);
        for idx in start..end {
            let slot = &self.slots[(idx & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != idx + 1 {
                continue; // overwritten or mid-write
            }
            let ts_raw = slot.ts.load(Ordering::Relaxed);
            let kind = slot.kind.load(Ordering::Relaxed);
            let arg = slot.arg.load(Ordering::Relaxed);
            let op = slot.op.load(Ordering::Relaxed);
            // Re-check: if the writer lapped us mid-read, discard.
            if slot.seq.load(Ordering::Acquire) != idx + 1 {
                continue;
            }
            let Some(kind) = EventKind::from_u8(kind as u8) else {
                continue; // torn beyond recognition; drop it
            };
            out.push(RawEvent { ts_raw, kind, arg, op });
        }
        (out, start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventRing::with_capacity(0).capacity(), 16);
        assert_eq!(EventRing::with_capacity(17).capacity(), 32);
        assert_eq!(EventRing::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn push_then_snapshot_roundtrips_in_order() {
        let r = EventRing::with_capacity(64);
        for i in 0..10u64 {
            r.push(i * 100, EventKind::EnqFast, i, i * 7);
        }
        let (evs, dropped) = r.snapshot();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 10);
        for (i, e) in evs.iter().enumerate() {
            assert_eq!(e.ts_raw, i as u64 * 100);
            assert_eq!(e.kind, EventKind::EnqFast);
            assert_eq!(e.arg, i as u64);
            assert_eq!(e.op, i as u64 * 7);
        }
    }

    #[test]
    fn overwrite_keeps_the_most_recent_window() {
        let r = EventRing::with_capacity(16);
        for i in 0..100u64 {
            r.push(i, EventKind::DeqFast, i, 0);
        }
        let (evs, dropped) = r.snapshot();
        assert_eq!(dropped, 100 - 16);
        assert_eq!(evs.len(), 16);
        assert_eq!(evs.first().unwrap().arg, 84);
        assert_eq!(evs.last().unwrap().arg, 99);
        assert_eq!(r.pushed(), 100);
    }

    #[test]
    fn snapshot_between_laps_yields_the_latest_window_in_order() {
        // Wraparound with quiescent snapshots at each stage: the resident
        // window must always be the most recent `capacity` pushes, oldest
        // first, with an exact dropped count.
        let r = EventRing::with_capacity(16);
        for i in 0..5u64 {
            r.push(i, EventKind::EnqFast, i, i);
        }
        let (evs, dropped) = r.snapshot();
        assert_eq!((evs.len(), dropped), (5, 0));
        // Lap the ring six times over.
        for i in 5..105u64 {
            r.push(i, EventKind::EnqFast, i, i);
        }
        let (evs, dropped) = r.snapshot();
        assert_eq!(dropped, 105 - 16);
        let args: Vec<u64> = evs.iter().map(|e| e.arg).collect();
        assert_eq!(args, (89..105).collect::<Vec<u64>>());
        for e in &evs {
            assert_eq!(e.ts_raw, e.arg);
            assert_eq!(e.op, e.arg);
        }
    }

    #[test]
    fn concurrent_reader_never_sees_torn_kinds() {
        // The writer floods the ring while a reader snapshots repeatedly;
        // every accepted event must be internally consistent (ts == arg ==
        // op, our invariant below) — torn reads must be skipped, not
        // surfaced.
        let r = EventRing::with_capacity(32);
        std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || {
                for i in 0..200_000u64 {
                    r.push(i, EventKind::HelpEnqCommit, i, i);
                }
            });
            s.spawn(move || {
                for _ in 0..2_000 {
                    let (evs, _) = r.snapshot();
                    for e in evs {
                        assert_eq!(e.ts_raw, e.arg, "torn slot surfaced");
                        assert_eq!(e.op, e.arg, "torn op word surfaced");
                        assert_eq!(e.kind, EventKind::HelpEnqCommit);
                    }
                }
            });
        });
    }

    #[test]
    fn writer_lapping_a_reader_never_yields_out_of_order_events() {
        // The seqlock skips slots the writer is overwriting, but skipping
        // must never reorder: within one snapshot the accepted events'
        // payloads must be strictly increasing (we push a monotone counter)
        // and bounded by what had been pushed. Run with a tiny ring so the
        // writer laps the reader mid-walk constantly.
        let r = EventRing::with_capacity(16);
        std::thread::scope(|s| {
            let r = &r;
            s.spawn(move || {
                for i in 0..300_000u64 {
                    r.push(i, EventKind::DeqFast, i, i);
                }
            });
            s.spawn(move || {
                let mut last_dropped = 0u64;
                for _ in 0..5_000 {
                    let (evs, dropped) = r.snapshot();
                    assert!(evs.len() <= r.capacity());
                    assert!(
                        dropped >= last_dropped,
                        "dropped count went backwards: {dropped} < {last_dropped}"
                    );
                    last_dropped = dropped;
                    let mut prev: Option<u64> = None;
                    for e in evs {
                        assert_eq!(e.ts_raw, e.arg, "torn slot surfaced");
                        assert_eq!(e.op, e.arg, "torn op word surfaced");
                        assert!(
                            e.arg >= dropped,
                            "event older than the drop horizon surfaced"
                        );
                        if let Some(p) = prev {
                            assert!(
                                e.arg > p,
                                "out-of-order events: {} after {}",
                                e.arg,
                                p
                            );
                        }
                        prev = Some(e.arg);
                    }
                }
            });
        });
    }
}
