//! Hardware performance counters via `perf_event_open(2)` — own ffi,
//! no external crates (the same discipline as the crossbeam-free sync
//! layer: raw syscalls on x86_64 Linux, honest stubs everywhere else).
//!
//! The cycle ledger wants five counters per measured thread — cycles,
//! instructions, L1d read misses, LLC read misses, branch misses — opened
//! as one **group** so the kernel schedules them together and their ratios
//! are meaningful. Reads prefer the user-space `rdpmc` path through the
//! mmap'd [`perf_event_mmap_page`] when the kernel grants it
//! (`cap_user_rdpmc`), falling back to the `read(2)` syscall with
//! `PERF_FORMAT_GROUP`.
//!
//! Two kinds of degradation, both mandatory for CI containers:
//!
//! - **Multiplexing**: more groups than hardware counters means the kernel
//!   time-slices them. Every read carries `time_enabled`/`time_running`;
//!   [`scale_count`] extrapolates and flags the value as *estimated*.
//! - **Denial**: `perf_event_open` returns `EPERM`/`EACCES` (locked-down
//!   `perf_event_paranoid`, seccomp) or `ENOSYS`. [`CounterGroup::open`]
//!   then yields a TSC-only group: cycle counts come from the raw clock
//!   (estimated), the other counters read as unavailable, and nothing
//!   panics. Setting `WFQ_PERF_DENY=1` forces this path for tests.
//!
//! [`perf_event_mmap_page`]: https://man7.org/linux/man-pages/man2/perf_event_open.2.html

use crate::clock;

/// Environment variable forcing the denied-`perf_event_open` fallback
/// path, for tests and CI smoke runs on hosts that would otherwise grant
/// real counters.
pub const PERF_DENY_ENV: &str = "WFQ_PERF_DENY";

// ----------------------------------------------------------------------
// Raw syscall layer (x86_64 Linux only; everything else is denied)
// ----------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod sys {
    use core::arch::asm;

    pub const SYS_READ: i64 = 0;
    pub const SYS_CLOSE: i64 = 3;
    pub const SYS_MMAP: i64 = 9;
    pub const SYS_MUNMAP: i64 = 11;
    pub const SYS_IOCTL: i64 = 16;
    pub const SYS_PERF_EVENT_OPEN: i64 = 298;

    /// Raw syscall; returns the kernel's value (negative errno on error).
    ///
    /// SAFETY: callers must uphold the specific syscall's contract
    /// (valid pointers/lengths for the arguments that take them).
    #[inline]
    pub unsafe fn syscall5(nr: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64) -> i64 {
        let ret: i64;
        asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a1,
            in("rsi") a2,
            in("rdx") a3,
            in("r10") a4,
            in("r8") a5,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        ret
    }

    /// `rdpmc` — reads hardware PMC `counter`. Only meaningful while the
    /// mmap page advertises `cap_user_rdpmc` and an index for the event.
    ///
    /// SAFETY: executing rdpmc with CR4.PCE clear faults; callers must
    /// have checked `cap_user_rdpmc` first.
    #[inline]
    pub unsafe fn rdpmc(counter: u32) -> u64 {
        let lo: u32;
        let hi: u32;
        asm!(
            "rdpmc",
            in("ecx") counter,
            out("eax") lo,
            out("edx") hi,
            options(nostack, nomem, preserves_flags),
        );
        ((hi as u64) << 32) | lo as u64
    }
}

/// `perf_event_attr`, the 136-byte layout this code was written against
/// (`PERF_ATTR_SIZE_VER5`; older kernels accept it, newer kernels
/// zero-extend).
#[repr(C)]
#[derive(Clone, Copy)]
struct PerfEventAttr {
    type_: u32,
    size: u32,
    config: u64,
    sample_period_or_freq: u64,
    sample_type: u64,
    read_format: u64,
    flags: u64,
    wakeup_events_or_watermark: u32,
    bp_type: u32,
    bp_addr_or_config1: u64,
    bp_len_or_config2: u64,
    branch_sample_type: u64,
    sample_regs_user: u64,
    sample_stack_user: u32,
    clockid: i32,
    sample_regs_intr: u64,
    aux_watermark: u32,
    sample_max_stack: u16,
    reserved2: u16,
}

const PERF_ATTR_SIZE_VER5: u32 = 112;

const PERF_TYPE_HARDWARE: u32 = 0;
const PERF_TYPE_HW_CACHE: u32 = 3;

const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
const PERF_COUNT_HW_BRANCH_MISSES: u64 = 5;

const PERF_COUNT_HW_CACHE_L1D: u64 = 0;
const PERF_COUNT_HW_CACHE_LL: u64 = 2;
const PERF_COUNT_HW_CACHE_OP_READ: u64 = 0;
const PERF_COUNT_HW_CACHE_RESULT_MISS: u64 = 1;

const fn cache_config(cache: u64, op: u64, result: u64) -> u64 {
    cache | (op << 8) | (result << 16)
}

const PERF_FORMAT_TOTAL_TIME_ENABLED: u64 = 1 << 0;
const PERF_FORMAT_TOTAL_TIME_RUNNING: u64 = 1 << 1;
const PERF_FORMAT_ID: u64 = 1 << 2;
const PERF_FORMAT_GROUP: u64 = 1 << 3;

// attr.flags bits (bit offsets in the packed bitfield word).
const ATTR_FLAG_DISABLED: u64 = 1 << 0;
const ATTR_FLAG_EXCLUDE_KERNEL: u64 = 1 << 5;
const ATTR_FLAG_EXCLUDE_HV: u64 = 1 << 6;

const PERF_EVENT_IOC_ENABLE: u64 = 0x2400;
const PERF_EVENT_IOC_RESET: u64 = 0x2403;

const EPERM: i64 = 1;
const ENOENT: i64 = 2;
const EACCES: i64 = 13;
const ENOSYS: i64 = 38;

// ----------------------------------------------------------------------
// Counter kinds
// ----------------------------------------------------------------------

/// The hardware events the ledger samples, in group order (cycles is the
/// group leader).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CounterKind {
    /// Core clock cycles (`PERF_COUNT_HW_CPU_CYCLES`).
    Cycles = 0,
    /// Retired instructions.
    Instructions = 1,
    /// L1 data-cache read misses.
    L1dMisses = 2,
    /// Last-level-cache read misses (the coherence-traffic proxy).
    LlcMisses = 3,
    /// Mispredicted branches.
    BranchMisses = 4,
}

/// Number of counters in a full group.
pub const NUM_COUNTERS: usize = 5;

/// Every counter kind, in group order — the canonical enumeration for
/// snapshots and exposition.
pub const ALL_COUNTERS: [CounterKind; NUM_COUNTERS] = [
    CounterKind::Cycles,
    CounterKind::Instructions,
    CounterKind::L1dMisses,
    CounterKind::LlcMisses,
    CounterKind::BranchMisses,
];

impl CounterKind {
    /// Stable snake_case name for snapshots, metrics, and reports.
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::Cycles => "cycles",
            CounterKind::Instructions => "instructions",
            CounterKind::L1dMisses => "l1d_miss",
            CounterKind::LlcMisses => "llc_miss",
            CounterKind::BranchMisses => "branch_miss",
        }
    }

    /// Inverse of [`CounterKind::name`].
    pub fn from_name(s: &str) -> Option<CounterKind> {
        ALL_COUNTERS.iter().copied().find(|c| c.name() == s)
    }

    fn attr_type_config(self) -> (u32, u64) {
        match self {
            CounterKind::Cycles => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES),
            CounterKind::Instructions => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS),
            CounterKind::L1dMisses => (
                PERF_TYPE_HW_CACHE,
                cache_config(
                    PERF_COUNT_HW_CACHE_L1D,
                    PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS,
                ),
            ),
            CounterKind::LlcMisses => (
                PERF_TYPE_HW_CACHE,
                cache_config(
                    PERF_COUNT_HW_CACHE_LL,
                    PERF_COUNT_HW_CACHE_OP_READ,
                    PERF_COUNT_HW_CACHE_RESULT_MISS,
                ),
            ),
            CounterKind::BranchMisses => (PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES),
        }
    }
}

// ----------------------------------------------------------------------
// Pure arithmetic (unit-testable without a kernel)
// ----------------------------------------------------------------------

/// Multiplexing-aware extrapolation: scales a raw counter value by
/// `time_enabled / time_running` and reports whether the result is an
/// estimate (`running < enabled`) rather than a direct measurement.
///
/// `running == 0` with `enabled > 0` means the event never got on the
/// hardware; the honest answer is `(0, estimated=true)`.
pub fn scale_count(value: u64, time_enabled: u64, time_running: u64) -> (u64, bool) {
    if time_running == time_enabled {
        return (value, false);
    }
    if time_running == 0 {
        return (0, true);
    }
    let scaled = (value as u128 * time_enabled as u128) / time_running as u128;
    (scaled.min(u64::MAX as u128) as u64, true)
}

// ----------------------------------------------------------------------
// Group status and snapshots
// ----------------------------------------------------------------------

/// How a [`CounterGroup`] is sourcing its numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfStatus {
    /// `perf_event_open` succeeded; counters are live hardware events.
    /// `rdpmc` reports whether reads go through user-space `rdpmc`
    /// (true) or the `read(2)` syscall (false).
    Hardware {
        /// True when every live counter supports user-space `rdpmc`.
        rdpmc: bool,
    },
    /// `perf_event_open` was denied or unavailable; only TSC-derived
    /// cycle estimates exist. `reason` says why (for reports).
    TscOnly {
        /// Human-readable denial cause (`"EPERM"`, `"ENOSYS"`,
        /// `"WFQ_PERF_DENY"`, `"unsupported platform"`, …).
        reason: String,
    },
}

impl PerfStatus {
    /// Short mode string for JSON snapshots: `"hardware"` or `"tsc-only"`.
    pub fn mode(&self) -> &'static str {
        match self {
            PerfStatus::Hardware { .. } => "hardware",
            PerfStatus::TscOnly { .. } => "tsc-only",
        }
    }
}

/// One point-in-time reading of a [`CounterGroup`].
///
/// Counter slots are indexed by `CounterKind as usize`. `measured[i]`
/// distinguishes a true hardware reading (`true`) from an estimate or an
/// unavailable counter; `counts` of unavailable counters are 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupSnapshot {
    /// Raw TSC reading taken with the counters (always present).
    pub tsc: u64,
    /// Multiplex-scaled counter values.
    pub counts: [u64; NUM_COUNTERS],
    /// Whether each count is a direct measurement (true) as opposed to a
    /// multiplex-scaled estimate, TSC-derived estimate, or absent.
    pub measured: [bool; NUM_COUNTERS],
    /// Whether each counter has any value at all (false ⇒ count is 0 and
    /// the counter should be reported as unavailable, not as zero events).
    pub available: [bool; NUM_COUNTERS],
    /// Nanoseconds the group was scheduled-enabled (0 in TSC-only mode).
    pub time_enabled: u64,
    /// Nanoseconds the group actually ran on hardware.
    pub time_running: u64,
}

impl GroupSnapshot {
    /// Value of one counter.
    pub fn count(&self, kind: CounterKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Whether one counter carries a direct hardware measurement.
    pub fn is_measured(&self, kind: CounterKind) -> bool {
        self.measured[kind as usize]
    }

    /// Whether one counter has a value (measured or estimated).
    pub fn is_available(&self, kind: CounterKind) -> bool {
        self.available[kind as usize]
    }

    /// Component-wise `self − earlier`. Availability/measuredness is the
    /// AND of both endpoints; the TSC delta rides along.
    pub fn delta_since(&self, earlier: &GroupSnapshot) -> GroupSnapshot {
        let mut d = GroupSnapshot {
            tsc: self.tsc.saturating_sub(earlier.tsc),
            time_enabled: self.time_enabled.saturating_sub(earlier.time_enabled),
            time_running: self.time_running.saturating_sub(earlier.time_running),
            ..Default::default()
        };
        for i in 0..NUM_COUNTERS {
            d.counts[i] = self.counts[i].saturating_sub(earlier.counts[i]);
            d.measured[i] = self.measured[i] && earlier.measured[i];
            d.available[i] = self.available[i] && earlier.available[i];
        }
        d
    }
}

// ----------------------------------------------------------------------
// The counter group
// ----------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
struct LiveCounter {
    fd: i32,
    id: u64,
    kind: CounterKind,
    /// mmap'd `perf_event_mmap_page` for rdpmc reads; null when the page
    /// could not be mapped.
    page: *mut u8,
}

/// A per-thread group of hardware counters, or its TSC-only stand-in.
///
/// Opening **never fails**: on any denial the group degrades to
/// [`PerfStatus::TscOnly`] and every read still yields a snapshot with
/// TSC-derived cycle estimates. Dropping closes fds and unmaps pages.
pub struct CounterGroup {
    status: PerfStatus,
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    live: Vec<LiveCounter>,
    /// TSC anchor used to estimate cycles in TSC-only mode.
    tsc_origin: u64,
}

// SAFETY: the mmap pages are only dereferenced by the owning group, and
// moving the group between threads just changes which thread reads its
// (monitored-thread-bound) counters via read(2)/rdpmc — the kernel keys
// events to the opened thread, not the reading thread.
unsafe impl Send for CounterGroup {}

impl CounterGroup {
    /// Opens the five-counter group monitoring the **calling thread**.
    ///
    /// Degrades instead of failing: see the module docs. The returned
    /// group is already enabled and counting.
    pub fn open() -> CounterGroup {
        if std::env::var_os(PERF_DENY_ENV).is_some_and(|v| v != "0" && !v.is_empty()) {
            return Self::tsc_only(PERF_DENY_ENV.to_string());
        }
        Self::open_real()
    }

    fn tsc_only(reason: String) -> CounterGroup {
        CounterGroup {
            status: PerfStatus::TscOnly { reason },
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            live: Vec::new(),
            tsc_origin: clock::raw_now(),
        }
    }

    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    fn open_real() -> CounterGroup {
        Self::tsc_only("unsupported platform".to_string())
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn open_real() -> CounterGroup {
        fn errno_name(e: i64) -> String {
            match e {
                EPERM => "EPERM".into(),
                ENOENT => "ENOENT (no PMU)".into(),
                EACCES => "EACCES".into(),
                ENOSYS => "ENOSYS".into(),
                other => format!("errno {other}"),
            }
        }

        let mut live: Vec<LiveCounter> = Vec::with_capacity(NUM_COUNTERS);
        let mut leader_fd: i64 = -1;
        for kind in ALL_COUNTERS {
            let (type_, config) = kind.attr_type_config();
            let mut attr: PerfEventAttr = unsafe { core::mem::zeroed() };
            attr.type_ = type_;
            attr.size = PERF_ATTR_SIZE_VER5;
            attr.config = config;
            attr.read_format = PERF_FORMAT_GROUP
                | PERF_FORMAT_TOTAL_TIME_ENABLED
                | PERF_FORMAT_TOTAL_TIME_RUNNING
                | PERF_FORMAT_ID;
            // Leader starts disabled (enabled once the group is built);
            // siblings inherit the leader's schedule.
            attr.flags = ATTR_FLAG_EXCLUDE_KERNEL | ATTR_FLAG_EXCLUDE_HV;
            if leader_fd < 0 {
                attr.flags |= ATTR_FLAG_DISABLED;
            }
            // perf_event_open(attr, pid=0 (self), cpu=-1 (any), group_fd, flags=0)
            let ret = unsafe {
                sys::syscall5(
                    sys::SYS_PERF_EVENT_OPEN,
                    &attr as *const PerfEventAttr as i64,
                    0,
                    -1,
                    leader_fd,
                    0,
                )
            };
            if ret < 0 {
                let err = -ret;
                if leader_fd < 0 {
                    // The leader (cycles) failed: nothing to salvage.
                    return Self::tsc_only(errno_name(err));
                }
                // A sibling failed (e.g. cache events unsupported on this
                // PMU): mark it unavailable and carry on with the rest.
                continue;
            }
            let fd = ret as i32;
            if leader_fd < 0 {
                leader_fd = ret;
            }
            // Map the metadata page for rdpmc; failure just means syscall
            // reads for this counter.
            let page = map_perf_page(fd);
            live.push(LiveCounter {
                fd,
                id: 0,
                kind,
                page,
            });
        }

        if live.is_empty() {
            return Self::tsc_only("no counters opened".into());
        }

        // Reset and enable the whole group through the leader.
        unsafe {
            let lf = live[0].fd as i64;
            sys::syscall5(sys::SYS_IOCTL, lf, PERF_EVENT_IOC_RESET as i64, 1, 0, 0);
            sys::syscall5(sys::SYS_IOCTL, lf, PERF_EVENT_IOC_ENABLE as i64, 1, 0, 0);
        }

        let mut group = CounterGroup {
            status: PerfStatus::Hardware { rdpmc: false },
            live,
            tsc_origin: clock::raw_now(),
        };

        // Learn each event's kernel id (matches read(2) group records) and
        // whether every page advertises rdpmc capability.
        group.learn_ids();
        let rdpmc = group
            .live
            .iter()
            .all(|c| !c.page.is_null() && unsafe { page_cap_rdpmc(c.page) });
        group.status = PerfStatus::Hardware { rdpmc };
        group
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn learn_ids(&mut self) {
        // One group read through the leader: the returned records are in
        // creation order, carrying each event's id.
        if let Some(buf) = self.read_group_raw() {
            let nr = buf[0] as usize;
            for (i, c) in self.live.iter_mut().enumerate() {
                if i < nr {
                    // layout: nr, time_enabled, time_running, (value, id)*
                    c.id = buf[3 + 2 * i + 1];
                }
            }
        }
    }

    /// read(2) on the leader with PERF_FORMAT_GROUP:
    /// `[nr, time_enabled, time_running, value0, id0, value1, id1, ...]`.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn read_group_raw(&self) -> Option<Vec<u64>> {
        let words = 3 + 2 * NUM_COUNTERS;
        let mut buf = vec![0u64; words];
        let n = unsafe {
            sys::syscall5(
                sys::SYS_READ,
                self.live[0].fd as i64,
                buf.as_mut_ptr() as i64,
                (words * 8) as i64,
                0,
                0,
            )
        };
        if n < 24 {
            return None;
        }
        Some(buf)
    }

    /// How this group is sourcing numbers.
    pub fn status(&self) -> &PerfStatus {
        &self.status
    }

    /// Takes a snapshot of every counter plus the TSC.
    ///
    /// In TSC-only mode the cycles slot carries the raw TSC delta since
    /// the group opened (an *estimate* — on a modern invariant-TSC part
    /// the TSC ticks at base frequency, not the current core clock) and
    /// every other slot is unavailable.
    pub fn snapshot(&self) -> GroupSnapshot {
        let tsc = clock::raw_now();
        match &self.status {
            PerfStatus::TscOnly { .. } => {
                let mut s = GroupSnapshot {
                    tsc,
                    ..Default::default()
                };
                let i = CounterKind::Cycles as usize;
                s.counts[i] = tsc.saturating_sub(self.tsc_origin);
                s.available[i] = true;
                // measured stays false: TSC-derived cycles are estimates.
                s
            }
            #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
            PerfStatus::Hardware { .. } => unreachable!("hardware mode requires linux/x86_64"),
            #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
            PerfStatus::Hardware { rdpmc } => {
                let mut s = GroupSnapshot {
                    tsc,
                    ..Default::default()
                };
                if *rdpmc {
                    if self.snapshot_rdpmc(&mut s) {
                        return s;
                    }
                    // rdpmc raced with a reschedule too many times; the
                    // syscall path below is always safe.
                }
                self.snapshot_syscall(&mut s);
                s
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn snapshot_syscall(&self, s: &mut GroupSnapshot) {
        let Some(buf) = self.read_group_raw() else {
            return;
        };
        let nr = buf[0] as usize;
        s.time_enabled = buf[1];
        s.time_running = buf[2];
        for (i, c) in self.live.iter().enumerate() {
            if i >= nr {
                break;
            }
            let raw = buf[3 + 2 * i];
            let (scaled, estimated) = scale_count(raw, s.time_enabled, s.time_running);
            let slot = c.kind as usize;
            s.counts[slot] = scaled;
            s.available[slot] = true;
            s.measured[slot] = !estimated;
        }
    }

    /// User-space read of every counter through its mmap page. Returns
    /// false if any page's seqlock kept moving (caller falls back).
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    fn snapshot_rdpmc(&self, s: &mut GroupSnapshot) -> bool {
        for c in &self.live {
            match unsafe { rdpmc_read(c.page) } {
                Some((value, enabled, running)) => {
                    let (scaled, estimated) = scale_count(value, enabled, running);
                    let slot = c.kind as usize;
                    s.counts[slot] = scaled;
                    s.available[slot] = true;
                    s.measured[slot] = !estimated;
                    s.time_enabled = s.time_enabled.max(enabled);
                    s.time_running = s.time_running.max(running);
                }
                None => return false,
            }
        }
        true
    }
}

impl Drop for CounterGroup {
    fn drop(&mut self) {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        for c in &self.live {
            unsafe {
                if !c.page.is_null() {
                    sys::syscall5(sys::SYS_MUNMAP, c.page as i64, PAGE_SIZE as i64, 0, 0, 0);
                }
                sys::syscall5(sys::SYS_CLOSE, c.fd as i64, 0, 0, 0, 0);
            }
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
const PAGE_SIZE: usize = 4096;

/// mmap of one page over a perf fd (PROT_READ|WRITE, MAP_SHARED, offset 0).
/// Returns null on failure.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
fn map_perf_page(fd: i32) -> *mut u8 {
    // mmap takes 6 arguments; r9 carries the offset.
    unsafe {
        let ret: i64;
        core::arch::asm!(
            "syscall",
            inlateout("rax") sys::SYS_MMAP => ret,
            in("rdi") 0i64,
            in("rsi") PAGE_SIZE as i64,
            in("rdx") 0x1i64 | 0x2, // PROT_READ | PROT_WRITE
            in("r10") 0x1i64,       // MAP_SHARED
            in("r8") fd as i64,
            in("r9") 0i64,
            out("rcx") _,
            out("r11") _,
            options(nostack),
        );
        if ret < 0 {
            core::ptr::null_mut()
        } else {
            ret as *mut u8
        }
    }
}

// Offsets into struct perf_event_mmap_page (stable ABI).
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod page {
    pub const LOCK: usize = 8; // u32 seqlock
    pub const INDEX: usize = 12; // u32 rdpmc index (0 = unavailable)
    pub const OFFSET: usize = 16; // i64 to add to the pmc value
    pub const TIME_ENABLED: usize = 24; // u64
    pub const TIME_RUNNING: usize = 32; // u64
    pub const CAPABILITIES: usize = 40; // u64 bitfield; bit 2 = cap_user_rdpmc
}

/// SAFETY: `p` must be a live perf mmap page.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe fn page_cap_rdpmc(p: *mut u8) -> bool {
    let caps = (p.add(page::CAPABILITIES) as *const u64).read_volatile();
    caps & (1 << 2) != 0
}

/// Seqlock-protected user-space counter read:
/// `(value, time_enabled, time_running)`, or `None` after too many racing
/// retries / rdpmc-unavailable.
///
/// SAFETY: `p` must be a live perf mmap page with `cap_user_rdpmc` set.
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
unsafe fn rdpmc_read(p: *mut u8) -> Option<(u64, u64, u64)> {
    for _ in 0..16 {
        let seq = (p.add(page::LOCK) as *const u32).read_volatile();
        core::sync::atomic::fence(core::sync::atomic::Ordering::Acquire);
        let index = (p.add(page::INDEX) as *const u32).read_volatile();
        let offset = (p.add(page::OFFSET) as *const i64).read_volatile();
        let enabled = (p.add(page::TIME_ENABLED) as *const u64).read_volatile();
        let running = (p.add(page::TIME_RUNNING) as *const u64).read_volatile();
        if index == 0 {
            // Not currently on hardware (multiplexed out); the stored
            // offset alone is the count so far.
            core::sync::atomic::fence(core::sync::atomic::Ordering::Acquire);
            if (p.add(page::LOCK) as *const u32).read_volatile() == seq {
                return Some((offset.max(0) as u64, enabled, running));
            }
            continue;
        }
        let pmc = sys::rdpmc(index - 1);
        // Counters are 48-bit on most PMUs; sign-extend via the offset.
        let value = offset.wrapping_add((pmc & ((1 << 48) - 1)) as i64);
        core::sync::atomic::fence(core::sync::atomic::Ordering::Acquire);
        if (p.add(page::LOCK) as *const u32).read_volatile() == seq {
            return Some((value.max(0) as u64, enabled, running));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_round_trip() {
        for c in ALL_COUNTERS {
            assert_eq!(CounterKind::from_name(c.name()), Some(c));
        }
        assert_eq!(CounterKind::from_name("tlb_miss"), None);
        let mut names: Vec<&str> = ALL_COUNTERS.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_COUNTERS);
    }

    #[test]
    fn scaling_is_identity_when_never_multiplexed() {
        assert_eq!(scale_count(1000, 500, 500), (1000, false));
        assert_eq!(scale_count(0, 0, 0), (0, false));
    }

    #[test]
    fn scaling_extrapolates_when_multiplexed() {
        // Ran half the time: double the count, flagged as estimated.
        assert_eq!(scale_count(1000, 800, 400), (2000, true));
        // Ran a third of the time.
        assert_eq!(scale_count(300, 900, 300), (900, true));
    }

    #[test]
    fn scaling_handles_never_scheduled() {
        assert_eq!(scale_count(0, 1000, 0), (0, true));
        // Even a spurious nonzero value is zeroed: it cannot be trusted.
        assert_eq!(scale_count(7, 1000, 0), (0, true));
    }

    #[test]
    fn scaling_does_not_overflow_u64() {
        let (v, est) = scale_count(u64::MAX / 2, u64::MAX, 1);
        assert!(est);
        assert_eq!(v, u64::MAX);
    }

    #[test]
    fn denied_group_degrades_to_tsc_only_and_still_counts() {
        // Force the denial path regardless of host configuration.
        std::env::set_var(PERF_DENY_ENV, "1");
        let g = CounterGroup::open();
        std::env::remove_var(PERF_DENY_ENV);
        match g.status() {
            PerfStatus::TscOnly { reason } => assert_eq!(reason, PERF_DENY_ENV),
            other => panic!("expected TscOnly, got {other:?}"),
        }
        assert_eq!(g.status().mode(), "tsc-only");
        let a = g.snapshot();
        // Burn some cycles so the TSC moves.
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = g.snapshot();
        let d = b.delta_since(&a);
        assert!(d.is_available(CounterKind::Cycles));
        assert!(
            !d.is_measured(CounterKind::Cycles),
            "TSC-derived cycles must be flagged as estimated"
        );
        assert!(d.count(CounterKind::Cycles) > 0, "TSC must have advanced");
        for k in [
            CounterKind::Instructions,
            CounterKind::L1dMisses,
            CounterKind::LlcMisses,
            CounterKind::BranchMisses,
        ] {
            assert!(!d.is_available(k), "{k:?} cannot exist without perf");
            assert_eq!(d.count(k), 0);
        }
    }

    #[test]
    fn open_never_panics_whatever_the_host_grants() {
        // Whichever way the container is configured, open() must return a
        // usable group with a coherent status.
        let g = CounterGroup::open();
        let s = g.snapshot();
        match g.status() {
            PerfStatus::Hardware { .. } => {
                assert_eq!(g.status().mode(), "hardware");
                assert!(s.is_available(CounterKind::Cycles));
            }
            PerfStatus::TscOnly { reason } => {
                assert!(!reason.is_empty());
            }
        }
    }

    #[test]
    fn hardware_group_counts_real_work_if_granted() {
        let g = CounterGroup::open();
        if !matches!(g.status(), PerfStatus::Hardware { .. }) {
            return; // container denied perf; the denial test covers this
        }
        let a = g.snapshot();
        let mut x = 1u64;
        for i in 0..1_000_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(x);
        let b = g.snapshot();
        let d = b.delta_since(&a);
        assert!(d.count(CounterKind::Cycles) > 0, "cycles must advance");
        assert!(
            d.count(CounterKind::Instructions) > 1_000_000,
            "the loop retired ≥1M instructions, counted {}",
            d.count(CounterKind::Instructions)
        );
    }

    #[test]
    fn snapshot_delta_is_componentwise_and_saturating() {
        let mut a = GroupSnapshot::default();
        let mut b = GroupSnapshot::default();
        a.tsc = 100;
        b.tsc = 350;
        a.counts[0] = 10;
        b.counts[0] = 60;
        a.available[0] = true;
        b.available[0] = true;
        a.measured[0] = true;
        b.measured[0] = false; // became estimated mid-window
        let d = b.delta_since(&a);
        assert_eq!(d.tsc, 250);
        assert_eq!(d.counts[0], 50);
        assert!(d.available[0]);
        assert!(!d.measured[0], "estimated at either endpoint taints the delta");
        // Reversed order saturates instead of wrapping.
        let r = a.delta_since(&b);
        assert_eq!(r.counts[0], 0);
        assert_eq!(r.tsc, 0);
    }
}
