//! The **cycle ledger**: per-phase cost attribution for the hot paths.
//!
//! The paper's headline claim — "as fast as fetch-and-add" — is a claim
//! about *where cycles go*: the WF fast path is supposed to cost one FAA
//! plus a deposit CAS and almost nothing else. The flight recorder can say
//! which protocol branch an operation took; this module says what each
//! **phase** of the operation *cost*, in raw timestamp ticks (≈ cycles on
//! an invariant-TSC x86), so the WF − F&A gap can be decomposed into
//! measured phases instead of guesses.
//!
//! Protocol code brackets its phases with [`phase!`]:
//!
//! ```ignore
//! let i = phase!(Phase::Faa, self.tail_index.fetch_add(1, SeqCst));
//! ```
//!
//! With the `cycles` feature **off** (the default) the macro expands to
//! exactly its body expression — no timestamp, no thread-local, provably
//! (the expansion stays a valid constant expression, the same const-proof
//! trick as `record!` and `inject!`). With the feature on, each expansion
//! takes two raw clock readings and accumulates the **self-time** of the
//! phase (nested phases are subtracted from their parent) into a
//! per-thread ledger that registers into a process-global list on first
//! use, exactly like the flight recorder.
//!
//! The nesting/attribution arithmetic lives in [`NestState`], a pure
//! structure driven by explicit timestamps so synthetic counter streams
//! can unit-test it; the multiplexing-scaling arithmetic shared with the
//! perf layer lives in [`crate::perf::scale_count`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

#[cfg(feature = "cycles")]
use crate::clock;

/// One attributable phase of a queue operation.
///
/// The first five are the decomposition the gap analysis needs (ISSUE 10):
/// the FAA index claim, the `find_cell` segment walk, the cell CAS
/// (deposit/consume, including `help_enq` on the dequeue side), the stats
/// update, and slow-path episodes. `Hazard` (publication + epilogue
/// mirror/clear), `Helping` (the dequeuer's peer help + cleanup epilogue)
/// and `SegAlloc` (list extension inside `find_cell` — a *nested* phase)
/// close the accounting so the per-phase sum tracks the op total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// The fetch-and-add claiming an index on `T` or `H` (plus the
    /// emptiness-probe index reads on the dequeue side).
    Faa = 0,
    /// The `find_cell` segment-list walk from the handle's cached segment
    /// to the claimed cell.
    FindCell = 1,
    /// The cell-level commit: deposit CAS, consume claim, and the
    /// dequeuer's `help_enq` value resolution.
    CellCas = 2,
    /// Execution-path statistics updates on the operation epilogue.
    Stats = 3,
    /// A slow-path episode (`enq_slow` / `deq_slow`), entered after
    /// patience ran out.
    SlowPath = 4,
    /// Hazard publication and the epilogue mirror update + clear.
    Hazard = 5,
    /// Peer helping and reclamation probes on the dequeue epilogue.
    Helping = 6,
    /// Segment allocation/publication inside `find_cell` (nested under
    /// [`Phase::FindCell`]; its self-time is carved out of the walk).
    SegAlloc = 7,
    /// The whole-operation envelope bracketing each public
    /// enqueue/dequeue. Every named phase nests inside it, so its
    /// **self**-time is exactly the glue the named phases do not cover
    /// (argument checks, handle bookkeeping, loop control) — the explicit
    /// remainder that lets the per-phase sum reconcile with the op total
    /// by construction instead of by hope.
    Glue = 8,
}

/// Number of distinct phases.
pub const NUM_PHASES: usize = 9;

/// Every phase, in discriminant order — the canonical enumeration the
/// exposition and snapshot schema derive their lists from (the same
/// drift-guard idea as `QueueStats::for_each_counter`).
pub const ALL_PHASES: [Phase; NUM_PHASES] = [
    Phase::Faa,
    Phase::FindCell,
    Phase::CellCas,
    Phase::Stats,
    Phase::SlowPath,
    Phase::Hazard,
    Phase::Helping,
    Phase::SegAlloc,
    Phase::Glue,
];

impl Phase {
    /// Stable snake_case name used in JSON snapshots, Prometheus labels
    /// and markdown reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Faa => "faa",
            Phase::FindCell => "find_cell",
            Phase::CellCas => "cell_cas",
            Phase::Stats => "stats",
            Phase::SlowPath => "slow_path",
            Phase::Hazard => "hazard",
            Phase::Helping => "helping",
            Phase::SegAlloc => "seg_alloc",
            Phase::Glue => "glue",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(s: &str) -> Option<Phase> {
        ALL_PHASES.iter().copied().find(|p| p.name() == s)
    }
}

/// Whether this build has the phase-ledger runtime compiled in.
pub const CYCLES_ENABLED: bool = cfg!(feature = "cycles");

// ----------------------------------------------------------------------
// Pure nesting arithmetic (unit-testable on synthetic timestamp streams)
// ----------------------------------------------------------------------

/// Maximum phase-nesting depth tracked. The protocol nests at most three
/// deep today (op → slow_path → find_cell → seg_alloc); deeper frames are
/// counted flat (their time stays with the innermost tracked parent) so
/// the accounting degrades to under-attribution, never double-counting.
pub const MAX_NEST_DEPTH: usize = 8;

/// One open phase frame.
#[derive(Debug, Clone, Copy)]
struct Frame {
    phase: Phase,
    start: u64,
    /// Raw ticks consumed by already-closed nested phases.
    child: u64,
}

/// The phase-nesting state machine, driven by explicit timestamps.
///
/// `enter`/`exit` pairs accumulate each phase's **self-time** — the ticks
/// between its own enter and exit minus the ticks spent in nested phases —
/// so summing self-times over phases never double-counts nesting, and the
/// invariant "Σ per-phase self-time ≤ enclosing span" holds by
/// construction (exactly, on a monotone clock).
#[derive(Debug)]
pub struct NestState {
    stack: [Option<Frame>; MAX_NEST_DEPTH],
    depth: usize,
    /// Frames dropped because the stack was full (accounting degraded).
    pub overflowed: u64,
}

impl NestState {
    /// Fresh, empty nesting state.
    pub const fn new() -> Self {
        Self {
            stack: [None; MAX_NEST_DEPTH],
            depth: 0,
            overflowed: 0,
        }
    }

    /// Opens a phase at timestamp `now`.
    #[inline]
    pub fn enter(&mut self, phase: Phase, now: u64) {
        if self.depth >= MAX_NEST_DEPTH {
            self.overflowed += 1;
            return;
        }
        self.stack[self.depth] = Some(Frame {
            phase,
            start: now,
            child: 0,
        });
        self.depth += 1;
    }

    /// Closes the innermost phase at timestamp `now`, returning
    /// `(phase, self_ticks)` — or `None` for an overflowed/unmatched exit.
    ///
    /// A mismatched `phase` (exit without enter, e.g. after overflow)
    /// leaves the stack untouched and returns `None`: under-attribution,
    /// never corruption.
    #[inline]
    pub fn exit(&mut self, phase: Phase, now: u64) -> Option<(Phase, u64)> {
        if self.depth == 0 {
            return None;
        }
        let frame = self.stack[self.depth - 1]?;
        if frame.phase != phase {
            // An overflowed enter was dropped; its exit must not pop the
            // wrong frame.
            self.overflowed += 1;
            return None;
        }
        self.depth -= 1;
        self.stack[self.depth] = None;
        let total = now.saturating_sub(frame.start);
        let own = total.saturating_sub(frame.child);
        // The whole nested span (including the child's instrumentation)
        // is the parent's child-time.
        if self.depth > 0 {
            if let Some(parent) = self.stack[self.depth - 1].as_mut() {
                parent.child = parent.child.saturating_add(total);
            }
        }
        Some((frame.phase, own))
    }

    /// Current nesting depth (open frames).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Default for NestState {
    fn default() -> Self {
        Self::new()
    }
}

// ----------------------------------------------------------------------
// Per-thread ledgers and the global registry
// ----------------------------------------------------------------------

/// The shared half of one thread's ledger: per-phase raw-tick and entry
/// totals, owner-written with relaxed stores, snapshot-read by drainers.
pub struct LedgerShared {
    /// Raw self-ticks accumulated per phase (indexed by discriminant).
    ticks: [AtomicU64; NUM_PHASES],
    /// Enter/exit pairs completed per phase.
    entries: [AtomicU64; NUM_PHASES],
    /// Frames lost to nesting overflow or unmatched exits.
    overflows: AtomicU64,
}

impl LedgerShared {
    fn new() -> Self {
        Self {
            ticks: core::array::from_fn(|_| AtomicU64::new(0)),
            entries: core::array::from_fn(|_| AtomicU64::new(0)),
            overflows: AtomicU64::new(0),
        }
    }

    /// Adds one closed phase frame (owner thread only).
    #[inline]
    pub fn add(&self, phase: Phase, self_ticks: u64) {
        let i = phase as usize;
        // Owner-exclusive writer: load+store beats a locked RMW on the
        // hot path and is linearizable for a single writer.
        let t = self.ticks[i].load(Ordering::Relaxed);
        self.ticks[i].store(t.wrapping_add(self_ticks), Ordering::Relaxed);
        let n = self.entries[i].load(Ordering::Relaxed);
        self.entries[i].store(n + 1, Ordering::Relaxed);
    }

    #[cfg_attr(not(feature = "cycles"), allow(dead_code))]
    fn note_overflow(&self) {
        let n = self.overflows.load(Ordering::Relaxed);
        self.overflows.store(n + 1, Ordering::Relaxed);
    }
}

/// Cumulative per-phase totals aggregated over every registered ledger.
///
/// Totals are monotone; measurement code snapshots them before and after a
/// run and works with the difference (see [`LedgerTotals::delta_since`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerTotals {
    /// Raw self-ticks per phase, indexed by `Phase as usize`.
    pub ticks: [u64; NUM_PHASES],
    /// Completed enter/exit pairs per phase.
    pub entries: [u64; NUM_PHASES],
    /// Frames lost to nesting overflow (accounting degraded if nonzero).
    pub overflows: u64,
}

impl LedgerTotals {
    /// Ticks recorded for one phase.
    pub fn ticks_of(&self, p: Phase) -> u64 {
        self.ticks[p as usize]
    }

    /// Entries recorded for one phase.
    pub fn entries_of(&self, p: Phase) -> u64 {
        self.entries[p as usize]
    }

    /// Sum of self-ticks over all phases.
    pub fn total_ticks(&self) -> u64 {
        self.ticks.iter().sum()
    }

    /// Sum of entries over all phases.
    pub fn total_entries(&self) -> u64 {
        self.entries.iter().sum()
    }

    /// Component-wise difference `self − earlier` (saturating — a fresh
    /// thread registering mid-window can only grow the totals).
    pub fn delta_since(&self, earlier: &LedgerTotals) -> LedgerTotals {
        let mut d = LedgerTotals::default();
        for i in 0..NUM_PHASES {
            d.ticks[i] = self.ticks[i].saturating_sub(earlier.ticks[i]);
            d.entries[i] = self.entries[i].saturating_sub(earlier.entries[i]);
        }
        d.overflows = self.overflows.saturating_sub(earlier.overflows);
        d
    }
}

fn ledger_registry() -> &'static Mutex<Vec<Arc<LedgerShared>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<LedgerShared>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Creates and registers a ledger for the calling thread. Public for tests
/// and tools; protocol code reaches it through [`phase!`](crate::phase).
pub fn register_ledger() -> Arc<LedgerShared> {
    let mut reg = ledger_registry().lock().unwrap();
    let led = Arc::new(LedgerShared::new());
    reg.push(Arc::clone(&led));
    led
}

/// Number of ledgers ever registered (0 in builds without `cycles` unless
/// a test registered one manually).
pub fn ledger_count() -> usize {
    ledger_registry().lock().unwrap().len()
}

/// Snapshots the cumulative per-phase totals across every registered
/// ledger. Without the `cycles` feature nothing registers from protocol
/// code, so this returns zeros.
pub fn ledger_totals() -> LedgerTotals {
    let mut t = LedgerTotals::default();
    for led in ledger_registry().lock().unwrap().iter() {
        for i in 0..NUM_PHASES {
            t.ticks[i] = t.ticks[i].wrapping_add(led.ticks[i].load(Ordering::Relaxed));
            t.entries[i] = t.entries[i].wrapping_add(led.entries[i].load(Ordering::Relaxed));
        }
        t.overflows = t.overflows.wrapping_add(led.overflows.load(Ordering::Relaxed));
    }
    t
}

#[cfg(feature = "cycles")]
thread_local! {
    static LEDGER: std::cell::RefCell<Option<(Arc<LedgerShared>, NestState)>> =
        const { std::cell::RefCell::new(None) };
}

/// Runtime behind [`phase!`](crate::phase) in `cycles` builds: opens a
/// phase frame on the calling thread's ledger. Not part of the stable API.
#[cfg(feature = "cycles")]
#[doc(hidden)]
#[inline]
pub fn rt_phase_enter(phase: Phase) {
    let now = clock::raw_now();
    LEDGER.with(|l| {
        let mut slot = l.borrow_mut();
        let (_, nest) = slot.get_or_insert_with(|| (register_ledger(), NestState::new()));
        nest.enter(phase, now);
    });
}

/// Runtime behind [`phase!`](crate::phase) in `cycles` builds: closes the
/// innermost frame and accumulates its self-time. Not part of the stable
/// API.
#[cfg(feature = "cycles")]
#[doc(hidden)]
#[inline]
pub fn rt_phase_exit(phase: Phase) {
    let now = clock::raw_now();
    LEDGER.with(|l| {
        let mut slot = l.borrow_mut();
        if let Some((led, nest)) = slot.as_mut() {
            match nest.exit(phase, now) {
                Some((p, own)) => led.add(p, own),
                None => led.note_overflow(),
            }
        }
    });
}

/// Mean raw-tick cost of one `phase!` enter/exit pair in this build,
/// measured over an empty body, split into `(full, inner)`:
///
/// - `full` — the whole per-span price as seen by an *outer* clock: what
///   each span adds to a surrounding measurement window (e.g. the
///   `cycle_ledger` op total);
/// - `inner` — the part the span records as its own self-time (the ticks
///   between `enter`'s and `exit`'s clock reads on an empty body): what
///   each entry inflates its phase's ledger by.
///
/// Measurement code subtracts `inner × entries` from a phase's self-ticks
/// and `full × entries` from a hook-inclusive total to estimate
/// uninstrumented costs. Returns `(0, 0)` without the `cycles` feature,
/// where the macro is free by construction.
pub fn probe_overhead_split() -> (u64, u64) {
    #[cfg(feature = "cycles")]
    {
        const ROUNDS: u64 = 4096;
        // Warm the thread-local + registration outside the timed window.
        crate::phase!(Phase::Faa, ());
        let before = ledger_totals();
        let t0 = clock::raw_now();
        for _ in 0..ROUNDS {
            crate::phase!(Phase::Faa, std::hint::black_box(()));
        }
        let dt = clock::raw_now().saturating_sub(t0);
        let after = ledger_totals();
        let inner = after
            .delta_since(&before)
            .ticks_of(Phase::Faa)
            .checked_div(ROUNDS)
            .unwrap_or(0);
        // A span cannot cost less from outside than the self-time it
        // recorded inside.
        ((dt / ROUNDS).max(inner), inner)
    }
    #[cfg(not(feature = "cycles"))]
    {
        (0, 0)
    }
}

/// Mean raw-tick cost of one `phase!` enter/exit pair in this build — the
/// `full` half of [`probe_overhead_split`]. Returns 0 without the `cycles`
/// feature.
pub fn probe_overhead_ticks() -> u64 {
    probe_overhead_split().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_round_trip() {
        for p in ALL_PHASES {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("no_such_phase"), None);
        // Names are unique.
        let mut names: Vec<&str> = ALL_PHASES.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_PHASES);
    }

    #[test]
    fn flat_phases_accumulate_their_own_time() {
        let mut n = NestState::new();
        n.enter(Phase::Faa, 100);
        assert_eq!(n.exit(Phase::Faa, 130), Some((Phase::Faa, 30)));
        n.enter(Phase::CellCas, 200);
        assert_eq!(n.exit(Phase::CellCas, 260), Some((Phase::CellCas, 60)));
        assert_eq!(n.depth(), 0);
        assert_eq!(n.overflowed, 0);
    }

    #[test]
    fn nested_phase_time_is_subtracted_from_the_parent() {
        // find_cell [10, 100] containing seg_alloc [40, 70]:
        // seg_alloc self = 30, find_cell self = 90 − 30 = 60.
        let mut n = NestState::new();
        n.enter(Phase::FindCell, 10);
        n.enter(Phase::SegAlloc, 40);
        assert_eq!(n.exit(Phase::SegAlloc, 70), Some((Phase::SegAlloc, 30)));
        assert_eq!(n.exit(Phase::FindCell, 100), Some((Phase::FindCell, 60)));
    }

    #[test]
    fn self_times_sum_to_the_enclosing_span_exactly() {
        // Three levels deep; the sum of all self-times must equal the
        // outermost span on a gap-free synthetic stream.
        let mut n = NestState::new();
        let mut sum = 0;
        n.enter(Phase::SlowPath, 0);
        n.enter(Phase::FindCell, 10);
        n.enter(Phase::SegAlloc, 20);
        sum += n.exit(Phase::SegAlloc, 50).unwrap().1;
        sum += n.exit(Phase::FindCell, 80).unwrap().1;
        n.enter(Phase::CellCas, 90);
        sum += n.exit(Phase::CellCas, 120).unwrap().1;
        sum += n.exit(Phase::SlowPath, 200).unwrap().1;
        assert_eq!(sum, 200, "Σ self-times must equal the outer span");
    }

    #[test]
    fn sibling_children_both_reduce_the_parent() {
        let mut n = NestState::new();
        n.enter(Phase::SlowPath, 0);
        n.enter(Phase::Faa, 10);
        n.exit(Phase::Faa, 20).unwrap();
        n.enter(Phase::Faa, 30);
        n.exit(Phase::Faa, 45).unwrap();
        let (_, own) = n.exit(Phase::SlowPath, 100).unwrap();
        assert_eq!(own, 100 - 10 - 15);
    }

    #[test]
    fn overflow_degrades_to_under_attribution() {
        let mut n = NestState::new();
        for i in 0..MAX_NEST_DEPTH {
            n.enter(Phase::SlowPath, i as u64);
        }
        // One past the stack: dropped, counted.
        n.enter(Phase::Faa, 99);
        assert_eq!(n.overflowed, 1);
        // Its exit must not pop SlowPath.
        assert_eq!(n.exit(Phase::Faa, 100), None);
        assert_eq!(n.overflowed, 2);
        // The real frames still unwind cleanly.
        for _ in 0..MAX_NEST_DEPTH {
            assert!(n.exit(Phase::SlowPath, 200).is_some());
        }
        assert_eq!(n.depth(), 0);
    }

    #[test]
    fn unmatched_exit_on_empty_stack_is_ignored() {
        let mut n = NestState::new();
        assert_eq!(n.exit(Phase::Faa, 10), None);
        assert_eq!(n.depth(), 0);
    }

    #[test]
    fn backwards_clock_saturates_to_zero() {
        let mut n = NestState::new();
        n.enter(Phase::Faa, 100);
        assert_eq!(n.exit(Phase::Faa, 40), Some((Phase::Faa, 0)));
    }

    #[test]
    fn manual_ledger_registration_feeds_the_totals() {
        let before = ledger_totals();
        let led = register_ledger();
        led.add(Phase::FindCell, 25);
        led.add(Phase::FindCell, 5);
        led.add(Phase::Stats, 7);
        let after = ledger_totals();
        let d = after.delta_since(&before);
        assert_eq!(d.ticks_of(Phase::FindCell), 30);
        assert_eq!(d.entries_of(Phase::FindCell), 2);
        assert_eq!(d.ticks_of(Phase::Stats), 7);
        assert_eq!(d.total_ticks(), 37);
        assert_eq!(d.total_entries(), 3);
    }

    #[test]
    fn delta_since_saturates_instead_of_wrapping() {
        let a = LedgerTotals {
            ticks: [10; NUM_PHASES],
            entries: [1; NUM_PHASES],
            overflows: 0,
        };
        let b = LedgerTotals {
            ticks: [4; NUM_PHASES],
            entries: [2; NUM_PHASES],
            overflows: 3,
        };
        let d = a.delta_since(&b);
        assert_eq!(d.ticks, [6; NUM_PHASES]);
        assert_eq!(d.entries, [0; NUM_PHASES]);
    }

    #[cfg(feature = "cycles")]
    #[test]
    fn macro_records_into_the_thread_ledger() {
        std::thread::spawn(|| {
            let before = ledger_totals();
            let v = crate::phase!(Phase::CellCas, {
                std::hint::black_box(3u64) + 4
            });
            assert_eq!(v, 7, "phase! must be an expression yielding its body");
            let nested = crate::phase!(Phase::FindCell, {
                crate::phase!(Phase::SegAlloc, std::hint::black_box(1u64))
            });
            assert_eq!(nested, 1);
            let d = ledger_totals().delta_since(&before);
            assert_eq!(d.entries_of(Phase::CellCas), 1);
            assert_eq!(d.entries_of(Phase::FindCell), 1);
            assert_eq!(d.entries_of(Phase::SegAlloc), 1);
            assert_eq!(d.overflows, 0);
        })
        .join()
        .unwrap();
    }

    #[cfg(feature = "cycles")]
    #[test]
    fn probe_overhead_is_measurable_and_sane() {
        let cost = probe_overhead_ticks();
        // Two clock reads plus TLS bookkeeping: nonzero, but far below a
        // microsecond's worth of ticks.
        assert!(cost > 0, "enabled probes cannot be free");
        assert!(cost < 1_000_000, "absurd probe cost {cost}");
    }

    #[cfg(not(feature = "cycles"))]
    #[test]
    fn probe_overhead_is_zero_when_disabled() {
        assert_eq!(probe_overhead_ticks(), 0);
    }
}
