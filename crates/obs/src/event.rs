//! The typed event taxonomy the flight recorder captures.
//!
//! Every event is one protocol step the paper's evaluation reasons about:
//! which path completed an operation (§5.2, Table 2), when helping actually
//! fired (§3.4–3.5), and what the reclaimer did (§3.6). The taxonomy
//! deliberately mirrors the fault-injection point list in
//! `wfqueue::FAULT_POINTS` — the same windows that are interesting to
//! *perturb* are the ones worth *recording* — but events carry a timestamp
//! and a protocol argument (cell index, segment id, boundary) where
//! injection points are bare markers.

/// What happened. The discriminants are stable (they are what the ring
/// stores), so renumbering is a trace-format break — append only.
#[repr(u8)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Enqueue completed on the fast path (arg: cell index).
    EnqFast = 0,
    /// Enqueue fell into the wait-free slow path (arg: first failed cell).
    EnqSlowEnter = 1,
    /// Slow-path enqueue committed (arg: cell the request claimed).
    EnqSlowExit = 2,
    /// Dequeue took a value on the fast path (arg: cell index).
    DeqFast = 3,
    /// Dequeue witnessed EMPTY (arg: cell index that proved `T ≤ i`).
    DeqEmpty = 4,
    /// Dequeue fell into the wait-free slow path (arg: first failed cell).
    DeqSlowEnter = 5,
    /// Slow-path dequeue finished (arg: the announced cell).
    DeqSlowExit = 6,
    /// `help_enq` committed a peer's value into a cell (arg: cell index).
    HelpEnqCommit = 7,
    /// A cell was sealed with ⊤e — no enqueue can ever use it (arg: cell).
    CellSeal = 8,
    /// `help_deq` announced a candidate cell into a request (arg: cell).
    HelpDeqAnnounce = 9,
    /// `help_deq` completed a request's final transition (arg: cell).
    HelpDeqComplete = 10,
    /// A helper adopted its helpee's published hazard — the source of the
    /// reclaimer's "backward jump" (arg: adopted segment id, `u64::MAX`
    /// when the helpee was already idle).
    HazardAdopt = 11,
    /// A dequeuer won the cleaner election (arg: displaced oldest id).
    CleanerElected = 12,
    /// A reclamation pass clamped its boundary below a published hazard or
    /// a concurrently-moved pointer (arg: the new, lower boundary).
    HazardClamp = 13,
    /// A new segment was allocated *and published* (arg: segment id).
    SegAlloc = 14,
    /// A reclamation pass freed a segment prefix (arg: segments freed).
    SegFree = 15,
    /// Bounded mode rejected an enqueue at the segment ceiling (arg: the
    /// configured ceiling).
    EnqRejected = 16,
    /// An enqueuer elected itself cleaner after finding no headroom (arg:
    /// the head-frontier segment id it offered as a boundary).
    ForcedCleanup = 17,
    /// A reclamation pass recycled segments into the bounded-mode pool
    /// instead of freeing them (arg: segments recycled).
    SegRecycle = 18,
    /// A batch enqueue claimed its cells with one FAA (arg: batch width k).
    /// Per-element completions still emit their own fast/slow events when a
    /// straggler falls back, so widths — not op counts — are the payload.
    EnqBatch = 19,
    /// A batch dequeue claimed its cell run with one FAA (arg: claimed
    /// width, after the `(H, T)` partial-probe trim).
    DeqBatch = 20,
    /// `help_deq` started working on a pending request (arg: the request's
    /// publish id; op: same). Opens a helper span — nested inside the
    /// helper's own slow-path span when `deq_slow` self-helps.
    HelpDeqEnter = 21,
    /// `help_deq` stopped working on that request (arg: the request's
    /// final announced index; op: the request's publish id).
    HelpDeqExit = 22,
    /// Durable-mode recovery replayed surviving values into a fresh queue
    /// (arg: number of values re-enqueued).
    RecoverReplay = 23,
    /// Durable-mode recovery sealed torn cells — claimed by a pre-crash
    /// FAA but with no durable deposit (arg: cells sealed).
    RecoverSeal = 24,
}

/// Every kind, in discriminant order (index `k as usize` is `ALL[k]`).
pub const ALL_KINDS: &[EventKind] = &[
    EventKind::EnqFast,
    EventKind::EnqSlowEnter,
    EventKind::EnqSlowExit,
    EventKind::DeqFast,
    EventKind::DeqEmpty,
    EventKind::DeqSlowEnter,
    EventKind::DeqSlowExit,
    EventKind::HelpEnqCommit,
    EventKind::CellSeal,
    EventKind::HelpDeqAnnounce,
    EventKind::HelpDeqComplete,
    EventKind::HazardAdopt,
    EventKind::CleanerElected,
    EventKind::HazardClamp,
    EventKind::SegAlloc,
    EventKind::SegFree,
    EventKind::EnqRejected,
    EventKind::ForcedCleanup,
    EventKind::SegRecycle,
    EventKind::EnqBatch,
    EventKind::DeqBatch,
    EventKind::HelpDeqEnter,
    EventKind::HelpDeqExit,
    EventKind::RecoverReplay,
    EventKind::RecoverSeal,
];

impl EventKind {
    /// Recovers a kind from its stored discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        ALL_KINDS.get(v as usize).copied()
    }

    /// Short name, used as the Chrome trace event name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::EnqFast => "enq_fast",
            EventKind::EnqSlowEnter => "enq_slow",
            EventKind::EnqSlowExit => "enq_slow_exit",
            EventKind::DeqFast => "deq_fast",
            EventKind::DeqEmpty => "deq_empty",
            EventKind::DeqSlowEnter => "deq_slow",
            EventKind::DeqSlowExit => "deq_slow_exit",
            EventKind::HelpEnqCommit => "help_enq_commit",
            EventKind::CellSeal => "cell_seal",
            EventKind::HelpDeqAnnounce => "help_deq_announce",
            EventKind::HelpDeqComplete => "help_deq_complete",
            EventKind::HazardAdopt => "hazard_adopt",
            EventKind::CleanerElected => "cleaner_elected",
            EventKind::HazardClamp => "hazard_clamp",
            EventKind::SegAlloc => "seg_alloc",
            EventKind::SegFree => "seg_free",
            EventKind::EnqRejected => "enq_rejected",
            EventKind::ForcedCleanup => "forced_cleanup",
            EventKind::SegRecycle => "seg_recycle",
            EventKind::EnqBatch => "enq_batch",
            EventKind::DeqBatch => "deq_batch",
            EventKind::HelpDeqEnter => "help_deq",
            EventKind::HelpDeqExit => "help_deq_exit",
            EventKind::RecoverReplay => "recover_replay",
            EventKind::RecoverSeal => "recover_seal",
        }
    }

    /// Chrome trace category (Perfetto groups and filters by these).
    pub fn category(self) -> &'static str {
        match self {
            EventKind::EnqFast
            | EventKind::DeqFast
            | EventKind::DeqEmpty
            | EventKind::EnqBatch
            | EventKind::DeqBatch => "fast",
            EventKind::EnqSlowEnter | EventKind::EnqSlowExit => "slow",
            EventKind::DeqSlowEnter | EventKind::DeqSlowExit => "slow",
            EventKind::HelpEnqCommit
            | EventKind::CellSeal
            | EventKind::HelpDeqAnnounce
            | EventKind::HelpDeqComplete
            | EventKind::HazardAdopt
            | EventKind::HelpDeqEnter
            | EventKind::HelpDeqExit => "help",
            EventKind::CleanerElected
            | EventKind::HazardClamp
            | EventKind::SegAlloc
            | EventKind::SegFree => "reclaim",
            EventKind::EnqRejected
            | EventKind::ForcedCleanup
            | EventKind::SegRecycle => "bounded",
            EventKind::RecoverReplay | EventKind::RecoverSeal => "recover",
        }
    }

    /// Label of the `arg` payload in trace output.
    pub fn arg_label(self) -> &'static str {
        match self {
            EventKind::EnqFast
            | EventKind::EnqSlowEnter
            | EventKind::EnqSlowExit
            | EventKind::DeqFast
            | EventKind::DeqEmpty
            | EventKind::DeqSlowEnter
            | EventKind::DeqSlowExit
            | EventKind::HelpEnqCommit
            | EventKind::CellSeal
            | EventKind::HelpDeqAnnounce
            | EventKind::HelpDeqComplete => "cell",
            EventKind::HazardAdopt | EventKind::SegAlloc => "segment",
            EventKind::CleanerElected | EventKind::HazardClamp => "boundary",
            EventKind::ForcedCleanup => "boundary",
            EventKind::SegFree => "segments_freed",
            EventKind::EnqRejected => "ceiling",
            EventKind::SegRecycle => "segments_recycled",
            EventKind::EnqBatch | EventKind::DeqBatch => "width",
            EventKind::HelpDeqEnter => "request",
            EventKind::HelpDeqExit => "cell",
            EventKind::RecoverReplay => "values",
            EventKind::RecoverSeal => "cells",
        }
    }

    /// Whether this kind opens a span (matched by
    /// [`span_exit`](Self::span_exit) in the Chrome conversion). Spans may
    /// nest: `deq_slow` self-helps, so a `HelpDeqEnter`/`HelpDeqExit` pair
    /// can sit inside a `DeqSlowEnter`/`DeqSlowExit` pair on one recorder.
    pub fn is_span_enter(self) -> bool {
        matches!(
            self,
            EventKind::EnqSlowEnter | EventKind::DeqSlowEnter | EventKind::HelpDeqEnter
        )
    }

    /// The exit kind closing this enter kind's span, if any.
    pub fn span_exit(self) -> Option<EventKind> {
        match self {
            EventKind::EnqSlowEnter => Some(EventKind::EnqSlowExit),
            EventKind::DeqSlowEnter => Some(EventKind::DeqSlowExit),
            EventKind::HelpDeqEnter => Some(EventKind::HelpDeqExit),
            _ => None,
        }
    }

    /// Whether this kind closes a span.
    pub fn is_span_exit(self) -> bool {
        matches!(
            self,
            EventKind::EnqSlowExit | EventKind::DeqSlowExit | EventKind::HelpDeqExit
        )
    }

    /// Whether this kind arms the starvation watchdog's per-recorder
    /// progress words. Only the two *operation-level* slow-path spans
    /// qualify: the nested `HelpDeq` span must not clear `slow_since` or
    /// bump the epoch mid-`deq_slow`, or a thread parked after its
    /// self-help returned would look like it was making progress.
    pub fn is_progress_enter(self) -> bool {
        matches!(self, EventKind::EnqSlowEnter | EventKind::DeqSlowEnter)
    }

    /// Whether this kind disarms the watchdog progress words.
    pub fn is_progress_exit(self) -> bool {
        matches!(self, EventKind::EnqSlowExit | EventKind::DeqSlowExit)
    }
}

/// One recorded event, timestamp already converted to nanoseconds since
/// the recorder clock's process-wide anchor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the clock anchor (first recorder activity).
    pub ts_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Protocol argument — see [`EventKind::arg_label`].
    pub arg: u64,
    /// Causal operation id: the request's publish id (the requester's
    /// first failed FAA cell index), or 0 when the event belongs to no
    /// slow-path episode. Enqueue and dequeue request ids live in separate
    /// FAA index spaces; the event kind disambiguates the side.
    pub op: u64,
}

/// One handle's drained flight-recorder contents.
#[derive(Debug, Clone)]
pub struct HandleTrace {
    /// Small dense recorder id (Chrome trace `tid`).
    pub id: u64,
    /// Name of the owning thread at registration time.
    pub thread: String,
    /// Events still resident in the ring, oldest first. The ring keeps the
    /// most recent `capacity` events; `dropped` older ones were overwritten.
    pub events: Vec<Event>,
    /// Events lost to ring wrap-around before this drain.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_roundtrip() {
        for (i, &k) in ALL_KINDS.iter().enumerate() {
            assert_eq!(k as usize, i, "ALL_KINDS must be in discriminant order");
            assert_eq!(EventKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(EventKind::from_u8(ALL_KINDS.len() as u8), None);
        assert_eq!(EventKind::from_u8(255), None);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for &k in ALL_KINDS {
            assert!(!k.name().is_empty());
            assert!(seen.insert(k.name()), "duplicate event name {}", k.name());
        }
    }

    #[test]
    fn span_enters_pair_with_exits() {
        for &k in ALL_KINDS {
            if let Some(exit) = k.span_exit() {
                assert!(k.is_span_enter());
                assert!(exit.is_span_exit());
                assert_eq!(k.category(), exit.category());
            } else {
                assert!(!k.is_span_enter());
            }
        }
    }

    #[test]
    fn progress_kinds_are_a_strict_subset_of_span_kinds() {
        for &k in ALL_KINDS {
            if k.is_progress_enter() {
                assert!(k.is_span_enter());
            }
            if k.is_progress_exit() {
                assert!(k.is_span_exit());
            }
        }
        // The help span pairs for Chrome rendering but must not drive the
        // watchdog words (it nests inside deq_slow's own span).
        assert!(EventKind::HelpDeqEnter.is_span_enter());
        assert!(!EventKind::HelpDeqEnter.is_progress_enter());
        assert!(EventKind::HelpDeqExit.is_span_exit());
        assert!(!EventKind::HelpDeqExit.is_progress_exit());
    }
}
