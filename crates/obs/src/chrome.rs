//! Chrome trace-event JSON serialization.
//!
//! Emits the subset of the [Trace Event Format] that `chrome://tracing`
//! and Perfetto both load: one process (`pid` 1), one track per recorder
//! (`tid` = recorder id, labelled with the thread name via an `M` metadata
//! event), slow-path operations as complete (`"X"`) duration events, and
//! everything else as thread-scoped instant (`"i"`) events. Timestamps are
//! microseconds with sub-µs fractions, as the format requires.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Serialization is hand-rolled: the repository builds in a container
//! without network access, so no serde — and the format needed here is a
//! flat array of small objects, comfortably within `format!` territory.

use std::fmt::Write as _;

use crate::event::{Event, HandleTrace};

/// Escapes a string for a JSON string literal (control chars, `"`, `\`).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

/// `,"op":N` when the event belongs to a slow-path episode; Perfetto's
/// args-search on the op value then finds every hop of one help chain.
fn op_arg(op: u64) -> String {
    if op == 0 {
        String::new()
    } else {
        format!(",\"op\":{op}")
    }
}

fn push_instant(out: &mut String, tid: u64, e: &Event, suffix: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{}{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
         \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"{}\":{}{}}}}}",
        e.kind.name(),
        suffix,
        e.kind.category(),
        ts_us(e.ts_ns),
        tid,
        e.kind.arg_label(),
        e.arg,
        op_arg(e.op)
    );
}

fn push_complete(out: &mut String, tid: u64, enter: &Event, exit: &Event) {
    let dur_ns = exit.ts_ns.saturating_sub(enter.ts_ns);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":{},\"args\":{{\"{}\":{},\"exit_{}\":{}{}}}}}",
        enter.kind.name(),
        enter.kind.category(),
        ts_us(enter.ts_ns),
        ts_us(dur_ns),
        tid,
        enter.kind.arg_label(),
        enter.arg,
        exit.kind.arg_label(),
        exit.arg,
        op_arg(enter.op)
    );
}

/// Serializes drained traces to a Chrome trace-event JSON document.
///
/// Slow-path enter/exit pairs on the same recorder become duration events;
/// an enter whose exit was lost (ring wrap, thread died mid-op) degrades to
/// an instant marked `(unfinished)`, and an orphaned exit to one marked
/// `(orphan)` — the trace stays loadable either way.
pub fn chrome_trace_json(traces: &[HandleTrace]) -> String {
    let mut events = String::new();
    let mut first = true;
    let mut sep = |events: &mut String| {
        if first {
            first = false;
        } else {
            events.push_str(",\n");
        }
    };

    for t in traces {
        // Track label: thread name + drop count, once per recorder.
        sep(&mut events);
        let _ = write!(
            events,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{} (handle {}{})\"}}}}",
            t.id,
            escape_json(&t.thread),
            t.id,
            if t.dropped > 0 {
                format!(", {} events dropped", t.dropped)
            } else {
                String::new()
            }
        );

        // One pass in ring (≈ time) order, pairing spans with a stack:
        // a handle runs one operation at a time, but `deq_slow` self-helps,
        // so a `HelpDeq` span can nest inside the operation's own span.
        // Nesting is proper by construction; mismatches only come from
        // events lost to ring wrap, and degrade to labelled instants.
        let mut open: Vec<&Event> = Vec::new();
        for e in &t.events {
            if e.kind.is_span_enter() {
                open.push(e);
            } else if e.kind.is_span_exit() {
                if open
                    .iter()
                    .any(|enter| enter.kind.span_exit() == Some(e.kind))
                {
                    // Unwind to the matching enter; anything above it lost
                    // its exit to ring wrap.
                    loop {
                        let enter = open.pop().expect("matching enter exists");
                        if enter.kind.span_exit() == Some(e.kind) {
                            sep(&mut events);
                            push_complete(&mut events, t.id, enter, e);
                            break;
                        }
                        sep(&mut events);
                        push_instant(&mut events, t.id, enter, " (unfinished)");
                    }
                } else {
                    sep(&mut events);
                    push_instant(&mut events, t.id, e, " (orphan)");
                }
            } else {
                sep(&mut events);
                push_instant(&mut events, t.id, e, "");
            }
        }
        while let Some(enter) = open.pop() {
            sep(&mut events);
            push_instant(&mut events, t.id, enter, " (unfinished)");
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{events}\n]}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, HandleTrace};

    fn ev(ts_ns: u64, kind: EventKind, arg: u64) -> Event {
        Event { ts_ns, kind, arg, op: 0 }
    }

    fn ev_op(ts_ns: u64, kind: EventKind, arg: u64, op: u64) -> Event {
        Event { ts_ns, kind, arg, op }
    }

    fn trace(id: u64, events: Vec<Event>) -> HandleTrace {
        HandleTrace {
            id,
            thread: format!("worker-{id}"),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn empty_input_is_still_a_document() {
        let doc = chrome_trace_json(&[]);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
    }

    #[test]
    fn spans_become_complete_events() {
        let doc = chrome_trace_json(&[trace(
            0,
            vec![
                ev(1_000, EventKind::EnqSlowEnter, 5),
                ev(4_500, EventKind::EnqSlowExit, 6),
            ],
        )]);
        assert!(doc.contains("\"ph\":\"X\""), "no duration event: {doc}");
        assert!(doc.contains("\"name\":\"enq_slow\""));
        assert!(doc.contains("\"ts\":1.000"));
        assert!(doc.contains("\"dur\":3.500"));
        assert!(doc.contains("\"cell\":5"));
        assert!(doc.contains("\"exit_cell\":6"));
        // op 0 means "no episode" and is omitted from args.
        assert!(!doc.contains("\"op\":"));
    }

    #[test]
    fn nested_help_span_pairs_inside_the_slow_span() {
        // deq_slow self-helps: the HelpDeq pair sits inside the DeqSlow
        // pair on one recorder, and both must become duration events.
        let doc = chrome_trace_json(&[trace(
            0,
            vec![
                ev_op(1_000, EventKind::DeqSlowEnter, 7, 7),
                ev_op(2_000, EventKind::HelpDeqEnter, 7, 7),
                ev_op(3_000, EventKind::HelpDeqExit, 9, 7),
                ev_op(5_000, EventKind::DeqSlowExit, 9, 7),
            ],
        )]);
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 2, "{doc}");
        assert!(doc.contains("\"name\":\"deq_slow\""));
        assert!(doc.contains("\"name\":\"help_deq\""));
        assert!(doc.contains("\"dur\":4.000")); // outer
        assert!(doc.contains("\"dur\":1.000")); // inner
        assert_eq!(doc.matches("\"op\":7").count(), 2);
        assert!(!doc.contains("unfinished"));
        assert!(!doc.contains("orphan"));
    }

    #[test]
    fn lost_inner_exit_degrades_only_the_inner_span() {
        // The HelpDeqExit fell off the ring: the outer DeqSlow pair must
        // still become a duration event, the inner enter an instant.
        let doc = chrome_trace_json(&[trace(
            0,
            vec![
                ev_op(1_000, EventKind::DeqSlowEnter, 7, 7),
                ev_op(2_000, EventKind::HelpDeqEnter, 7, 7),
                ev_op(5_000, EventKind::DeqSlowExit, 9, 7),
            ],
        )]);
        assert_eq!(doc.matches("\"ph\":\"X\"").count(), 1);
        assert!(doc.contains("\"name\":\"deq_slow\""));
        assert!(doc.contains("help_deq (unfinished)"));
    }

    #[test]
    fn instants_carry_the_op_id() {
        let doc = chrome_trace_json(&[trace(
            3,
            vec![ev_op(2_000, EventKind::HelpDeqAnnounce, 42, 17)],
        )]);
        assert!(doc.contains("\"cell\":42,\"op\":17"));
    }

    #[test]
    fn point_events_become_instants_with_args() {
        let doc = chrome_trace_json(&[trace(
            3,
            vec![ev(2_000, EventKind::HelpDeqAnnounce, 42)],
        )]);
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.contains("\"cell\":42"));
        assert!(doc.contains("\"cat\":\"help\""));
    }

    #[test]
    fn unmatched_spans_degrade_to_instants() {
        let doc = chrome_trace_json(&[trace(
            0,
            vec![
                ev(10, EventKind::DeqSlowExit, 1),  // orphan exit
                ev(20, EventKind::DeqSlowEnter, 2), // never exits
            ],
        )]);
        assert!(doc.contains("deq_slow_exit (orphan)"));
        assert!(doc.contains("deq_slow (unfinished)"));
        assert!(!doc.contains("\"ph\":\"X\""));
    }

    #[test]
    fn thread_names_are_escaped() {
        let mut t = trace(0, vec![]);
        t.thread = "evil\"name\\with\ncontrol".into();
        let doc = chrome_trace_json(&[t]);
        assert!(doc.contains("evil\\\"name\\\\with\\ncontrol"));
    }

    #[test]
    fn every_recorder_gets_a_metadata_track() {
        let doc = chrome_trace_json(&[trace(0, vec![]), trace(7, vec![])]);
        assert_eq!(doc.matches("\"ph\":\"M\"").count(), 2);
        assert!(doc.contains("worker-7 (handle 7)"));
    }
}
