//! Chrome trace-event JSON serialization.
//!
//! Emits the subset of the [Trace Event Format] that `chrome://tracing`
//! and Perfetto both load: one process (`pid` 1), one track per recorder
//! (`tid` = recorder id, labelled with the thread name via an `M` metadata
//! event), slow-path operations as complete (`"X"`) duration events, and
//! everything else as thread-scoped instant (`"i"`) events. Timestamps are
//! microseconds with sub-µs fractions, as the format requires.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Serialization is hand-rolled: the repository builds in a container
//! without network access, so no serde — and the format needed here is a
//! flat array of small objects, comfortably within `format!` territory.

use std::fmt::Write as _;

use crate::event::{Event, HandleTrace};

/// Escapes a string for a JSON string literal (control chars, `"`, `\`).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ts_us(ts_ns: u64) -> String {
    format!("{}.{:03}", ts_ns / 1_000, ts_ns % 1_000)
}

fn push_instant(out: &mut String, tid: u64, e: &Event, suffix: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{}{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\
         \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"{}\":{}}}}}",
        e.kind.name(),
        suffix,
        e.kind.category(),
        ts_us(e.ts_ns),
        tid,
        e.kind.arg_label(),
        e.arg
    );
}

fn push_complete(out: &mut String, tid: u64, enter: &Event, exit: &Event) {
    let dur_ns = exit.ts_ns.saturating_sub(enter.ts_ns);
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
         \"pid\":1,\"tid\":{},\"args\":{{\"{}\":{},\"exit_{}\":{}}}}}",
        enter.kind.name(),
        enter.kind.category(),
        ts_us(enter.ts_ns),
        ts_us(dur_ns),
        tid,
        enter.kind.arg_label(),
        enter.arg,
        exit.kind.arg_label(),
        exit.arg
    );
}

/// Serializes drained traces to a Chrome trace-event JSON document.
///
/// Slow-path enter/exit pairs on the same recorder become duration events;
/// an enter whose exit was lost (ring wrap, thread died mid-op) degrades to
/// an instant marked `(unfinished)`, and an orphaned exit to one marked
/// `(orphan)` — the trace stays loadable either way.
pub fn chrome_trace_json(traces: &[HandleTrace]) -> String {
    let mut events = String::new();
    let mut first = true;
    let mut sep = |events: &mut String| {
        if first {
            first = false;
        } else {
            events.push_str(",\n");
        }
    };

    for t in traces {
        // Track label: thread name + drop count, once per recorder.
        sep(&mut events);
        let _ = write!(
            events,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\
             \"args\":{{\"name\":\"{} (handle {}{})\"}}}}",
            t.id,
            escape_json(&t.thread),
            t.id,
            if t.dropped > 0 {
                format!(", {} events dropped", t.dropped)
            } else {
                String::new()
            }
        );

        // One pass in ring (≈ time) order, pairing spans. A handle runs
        // one operation at a time, so at most one span is open at once.
        let mut open: Option<&Event> = None;
        for e in &t.events {
            if e.kind.is_span_enter() {
                if let Some(prev) = open.take() {
                    sep(&mut events);
                    push_instant(&mut events, t.id, prev, " (unfinished)");
                }
                open = Some(e);
            } else if e.kind.is_span_exit() {
                match open.take() {
                    Some(enter) if enter.kind.span_exit() == Some(e.kind) => {
                        sep(&mut events);
                        push_complete(&mut events, t.id, enter, e);
                    }
                    Some(prev) => {
                        sep(&mut events);
                        push_instant(&mut events, t.id, prev, " (unfinished)");
                        sep(&mut events);
                        push_instant(&mut events, t.id, e, " (orphan)");
                    }
                    None => {
                        sep(&mut events);
                        push_instant(&mut events, t.id, e, " (orphan)");
                    }
                }
            } else {
                sep(&mut events);
                push_instant(&mut events, t.id, e, "");
            }
        }
        if let Some(enter) = open {
            sep(&mut events);
            push_instant(&mut events, t.id, enter, " (unfinished)");
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{events}\n]}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, HandleTrace};

    fn ev(ts_ns: u64, kind: EventKind, arg: u64) -> Event {
        Event { ts_ns, kind, arg }
    }

    fn trace(id: u64, events: Vec<Event>) -> HandleTrace {
        HandleTrace {
            id,
            thread: format!("worker-{id}"),
            events,
            dropped: 0,
        }
    }

    #[test]
    fn empty_input_is_still_a_document() {
        let doc = chrome_trace_json(&[]);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.starts_with('{') && doc.trim_end().ends_with('}'));
    }

    #[test]
    fn spans_become_complete_events() {
        let doc = chrome_trace_json(&[trace(
            0,
            vec![
                ev(1_000, EventKind::EnqSlowEnter, 5),
                ev(4_500, EventKind::EnqSlowExit, 6),
            ],
        )]);
        assert!(doc.contains("\"ph\":\"X\""), "no duration event: {doc}");
        assert!(doc.contains("\"name\":\"enq_slow\""));
        assert!(doc.contains("\"ts\":1.000"));
        assert!(doc.contains("\"dur\":3.500"));
        assert!(doc.contains("\"cell\":5"));
        assert!(doc.contains("\"exit_cell\":6"));
    }

    #[test]
    fn point_events_become_instants_with_args() {
        let doc = chrome_trace_json(&[trace(
            3,
            vec![ev(2_000, EventKind::HelpDeqAnnounce, 42)],
        )]);
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"tid\":3"));
        assert!(doc.contains("\"cell\":42"));
        assert!(doc.contains("\"cat\":\"help\""));
    }

    #[test]
    fn unmatched_spans_degrade_to_instants() {
        let doc = chrome_trace_json(&[trace(
            0,
            vec![
                ev(10, EventKind::DeqSlowExit, 1),  // orphan exit
                ev(20, EventKind::DeqSlowEnter, 2), // never exits
            ],
        )]);
        assert!(doc.contains("deq_slow_exit (orphan)"));
        assert!(doc.contains("deq_slow (unfinished)"));
        assert!(!doc.contains("\"ph\":\"X\""));
    }

    #[test]
    fn thread_names_are_escaped() {
        let mut t = trace(0, vec![]);
        t.thread = "evil\"name\\with\ncontrol".into();
        let doc = chrome_trace_json(&[t]);
        assert!(doc.contains("evil\\\"name\\\\with\\ncontrol"));
    }

    #[test]
    fn every_recorder_gets_a_metadata_track() {
        let doc = chrome_trace_json(&[trace(0, vec![]), trace(7, vec![])]);
        assert_eq!(doc.matches("\"ph\":\"M\"").count(), 2);
        assert!(doc.contains("worker-7 (handle 7)"));
    }
}
