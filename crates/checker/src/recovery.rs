//! Crash-recovery certification (ISSUE 8): detectable recovery for the
//! durable queue mode.
//!
//! The volatile checkers in this crate certify *linearizability* of a live
//! execution. After a crash the question changes: the authoritative record
//! is no longer the volatile history (which died with the process) but the
//! **durable image** snapshotted at the crash instant. This module
//! certifies the recovery contract of `wfqueue`'s durable mode:
//!
//! > Every pre-crash enqueue is delivered **exactly once** or **provably
//! > rejected** — and which of the two is decidable from the image alone.
//!
//! Concretely, each attempted value's [`DurableFate`] in the crash image
//! dictates its obligation:
//!
//! | fate in image                  | obligation                              |
//! |--------------------------------|-----------------------------------------|
//! | consumed                       | delivered pre-crash; must NOT reappear  |
//! | deposited (not consumed)       | must be redelivered exactly once        |
//! | claimed, cell still empty      | must be redelivered exactly once (the   |
//! |                                | help-replay window)                     |
//! | published only / no trace      | provably rejected; must NOT reappear    |
//!
//! plus FIFO preservation: redeliveries must come out in the values'
//! original cell order. The harness builds a [`RecoveryHistory`] from the
//! crash snapshot and the post-recovery drain; [`certify_recovery`] either
//! issues a [`RecoveryCertificate`] or convicts with the first
//! [`RecoveryViolation`] found (deterministic order, smallest value first).
//!
//! The checker is deliberately independent of `wfqueue`'s store layout: it
//! consumes plain fates, so a deliberately broken recovery (the
//! skip-help-replay negative control) is convicted on the same evidence a
//! correct one is certified on.

use std::collections::{BTreeMap, BTreeSet};

/// A value's durable state in the crash-instant image, already reduced by
/// the harness (a claim record pointing at a non-empty cell dedupes to the
/// cell's own fate; priority consumed > deposited > claimed > published).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableFate {
    /// A durable consume record exists: delivered before the crash.
    Consumed {
        /// The cell the value lived in (original FIFO position).
        cell: u64,
    },
    /// A durable deposit with no consume: committed, undelivered.
    Deposited {
        /// The cell the value lives in.
        cell: u64,
    },
    /// A claimed request record whose cell has no durable deposit — the
    /// claimed-but-uncommitted help window recovery must re-complete.
    ClaimedUncommitted {
        /// The cell the claim names.
        cell: u64,
    },
    /// Only a published (unclaimed) request record: provably rejected.
    Published,
    /// No durable trace at all: provably rejected.
    Absent,
}

impl DurableFate {
    /// The redelivery obligation: `Some(cell)` if the image commits the
    /// value (it must come back out, in cell order), `None` if it rejects.
    pub fn committed_cell(self) -> Option<u64> {
        match self {
            DurableFate::Deposited { cell } | DurableFate::ClaimedUncommitted { cell } => {
                Some(cell)
            }
            _ => None,
        }
    }
}

/// Everything the certification needs about one crashed-and-recovered run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryHistory {
    /// Values whose enqueue was *invoked* before the crash (unique per
    /// run; recorded by the producer before calling into the queue).
    pub attempted: Vec<u64>,
    /// Each attempted value's durable fate in the crash snapshot. Values
    /// absent from the map default to [`DurableFate::Absent`].
    pub fates: BTreeMap<u64, DurableFate>,
    /// Values the *recovered* queue delivered, in delivery order (the
    /// post-recovery drain).
    pub redelivered: Vec<u64>,
}

/// Proof of a detectable-recovery violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryViolation {
    /// The image durably commits this value, but the recovered queue never
    /// delivered it.
    Lost {
        /// The committed-but-undelivered value.
        value: u64,
        /// The cell the image committed it to.
        cell: u64,
    },
    /// The value was delivered more than once (durably consumed pre-crash
    /// *and* redelivered, or redelivered twice).
    Duplicated {
        /// The twice-delivered value.
        value: u64,
    },
    /// The recovered queue delivered a value the image does not commit —
    /// either never attempted, or attempted but provably rejected.
    Invented {
        /// The unjustified value.
        value: u64,
    },
    /// Two committed values were redelivered out of their original cell
    /// order (FIFO must survive the crash).
    OrderInversion {
        /// The value that should have come out first (lower cell).
        first: u64,
        /// The value that came out before it (higher cell).
        second: u64,
    },
    /// A fate was recorded for a value never attempted — a harness
    /// staging bug, convicted rather than silently ignored.
    UnknownValue {
        /// The value with a fate but no attempt record.
        value: u64,
    },
}

impl std::fmt::Display for RecoveryViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryViolation::Lost { value, cell } => {
                write!(f, "lost: value {value} durably committed to cell {cell} was never redelivered")
            }
            RecoveryViolation::Duplicated { value } => {
                write!(f, "duplicated: value {value} delivered more than once")
            }
            RecoveryViolation::Invented { value } => {
                write!(f, "invented: value {value} delivered without a durable commit")
            }
            RecoveryViolation::OrderInversion { first, second } => {
                write!(f, "order inversion: {second} redelivered before {first}")
            }
            RecoveryViolation::UnknownValue { value } => {
                write!(f, "unknown value {value}: fate recorded but never attempted")
            }
        }
    }
}

/// What a passing certification proved (counts for reporting/metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryCertificate {
    /// Values durably delivered before the crash.
    pub delivered_pre_crash: usize,
    /// Committed values the recovered queue redelivered (deposited cells
    /// plus re-completed claims).
    pub redelivered: usize,
    /// Of the redelivered, how many came from the claimed-but-uncommitted
    /// help window (the re-completion path under test).
    pub recompleted: usize,
    /// Values provably rejected (published-only or no durable trace).
    pub rejected: usize,
}

/// Certifies one crashed-and-recovered run, returning the certificate or
/// the first violation (ordered: unknown values, duplicates/inventions in
/// delivery order, losses by value, inversions by position).
pub fn certify_recovery(h: &RecoveryHistory) -> Result<RecoveryCertificate, RecoveryViolation> {
    let attempted: BTreeSet<u64> = h.attempted.iter().copied().collect();
    for &v in h.fates.keys() {
        if !attempted.contains(&v) {
            return Err(RecoveryViolation::UnknownValue { value: v });
        }
    }
    let fate_of = |v: u64| -> DurableFate {
        h.fates.get(&v).copied().unwrap_or(DurableFate::Absent)
    };

    // Walk the redelivery sequence: every value must be justified by a
    // committed fate, appear at most once, and respect cell order.
    let mut seen = BTreeSet::new();
    let mut last: Option<(u64, u64)> = None; // (cell, value)
    for &v in &h.redelivered {
        if !attempted.contains(&v) {
            return Err(RecoveryViolation::Invented { value: v });
        }
        if !seen.insert(v) {
            return Err(RecoveryViolation::Duplicated { value: v });
        }
        match fate_of(v) {
            DurableFate::Consumed { .. } => {
                // Already delivered pre-crash; a redelivery is a duplicate.
                return Err(RecoveryViolation::Duplicated { value: v });
            }
            f => {
                let Some(cell) = f.committed_cell() else {
                    return Err(RecoveryViolation::Invented { value: v });
                };
                if let Some((prev_cell, prev_val)) = last {
                    if cell < prev_cell {
                        return Err(RecoveryViolation::OrderInversion {
                            first: v,
                            second: prev_val,
                        });
                    }
                }
                last = Some((cell, v));
            }
        }
    }

    // Every committed value must have been redelivered.
    let mut cert = RecoveryCertificate::default();
    for &v in &attempted {
        match fate_of(v) {
            DurableFate::Consumed { .. } => cert.delivered_pre_crash += 1,
            DurableFate::Deposited { cell } => {
                if !seen.contains(&v) {
                    return Err(RecoveryViolation::Lost { value: v, cell });
                }
                cert.redelivered += 1;
            }
            DurableFate::ClaimedUncommitted { cell } => {
                if !seen.contains(&v) {
                    return Err(RecoveryViolation::Lost { value: v, cell });
                }
                cert.redelivered += 1;
                cert.recompleted += 1;
            }
            DurableFate::Published | DurableFate::Absent => cert.rejected += 1,
        }
    }
    Ok(cert)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history(
        attempted: &[u64],
        fates: &[(u64, DurableFate)],
        redelivered: &[u64],
    ) -> RecoveryHistory {
        RecoveryHistory {
            attempted: attempted.to_vec(),
            fates: fates.iter().copied().collect(),
            redelivered: redelivered.to_vec(),
        }
    }

    #[test]
    fn clean_run_certifies_with_correct_counts() {
        let h = history(
            &[1, 2, 3, 4, 5],
            &[
                (1, DurableFate::Consumed { cell: 0 }),
                (2, DurableFate::Deposited { cell: 1 }),
                (3, DurableFate::ClaimedUncommitted { cell: 2 }),
                (4, DurableFate::Published),
                // 5: no fate entry → Absent.
            ],
            &[2, 3],
        );
        let cert = certify_recovery(&h).unwrap();
        assert_eq!(cert.delivered_pre_crash, 1);
        assert_eq!(cert.redelivered, 2);
        assert_eq!(cert.recompleted, 1);
        assert_eq!(cert.rejected, 2);
    }

    #[test]
    fn committed_but_undelivered_is_lost() {
        let h = history(
            &[7],
            &[(7, DurableFate::Deposited { cell: 3 })],
            &[],
        );
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::Lost { value: 7, cell: 3 })
        );
    }

    #[test]
    fn skipped_help_replay_is_lost() {
        // The negative control: a claimed-but-uncommitted value dropped by
        // a recovery that skips the help replay.
        let h = history(
            &[9],
            &[(9, DurableFate::ClaimedUncommitted { cell: 5 })],
            &[],
        );
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::Lost { value: 9, cell: 5 })
        );
    }

    #[test]
    fn redelivering_a_consumed_value_is_duplicated() {
        let h = history(
            &[1],
            &[(1, DurableFate::Consumed { cell: 0 })],
            &[1],
        );
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::Duplicated { value: 1 })
        );
    }

    #[test]
    fn double_redelivery_is_duplicated() {
        let h = history(
            &[2],
            &[(2, DurableFate::Deposited { cell: 1 })],
            &[2, 2],
        );
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::Duplicated { value: 2 })
        );
    }

    #[test]
    fn delivery_without_commit_is_invented() {
        // Rejected fate but delivered anyway.
        let h = history(&[3], &[(3, DurableFate::Published)], &[3]);
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::Invented { value: 3 })
        );
        // Never attempted at all.
        let h = history(&[], &[], &[4]);
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::Invented { value: 4 })
        );
    }

    #[test]
    fn out_of_cell_order_redelivery_is_inverted() {
        let h = history(
            &[1, 2],
            &[
                (1, DurableFate::Deposited { cell: 0 }),
                (2, DurableFate::Deposited { cell: 1 }),
            ],
            &[2, 1],
        );
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::OrderInversion { first: 1, second: 2 })
        );
    }

    #[test]
    fn fate_for_unattempted_value_is_convicted() {
        let h = history(&[], &[(8, DurableFate::Deposited { cell: 0 })], &[]);
        assert_eq!(
            certify_recovery(&h),
            Err(RecoveryViolation::UnknownValue { value: 8 })
        );
    }

    #[test]
    fn empty_history_certifies_vacuously() {
        let cert = certify_recovery(&RecoveryHistory::default()).unwrap();
        assert_eq!(cert, RecoveryCertificate::default());
    }
}
