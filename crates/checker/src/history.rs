//! Concurrent history recording.
//!
//! A *history* is a set of completed operations, each with an invocation
//! and a response timestamp drawn from one global atomic counter. The
//! counter gives a total order on events that is consistent with real time
//! (a `fetch_add` that returns a smaller tick happened before one returning
//! a larger tick), which is all linearizability checking needs.
//!
//! Recording is designed to perturb the system under test as little as
//! possible: each thread buffers its operations locally and the buffers are
//! merged after the run.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// What an operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// `enqueue(value)`.
    Enqueue(u64),
    /// `dequeue()` returning `Some(value)` or EMPTY (`None`).
    Dequeue(Option<u64>),
}

/// Membership of an operation in a batch call.
///
/// A batch `enqueue_batch(&[v1..vk])` / `dequeue_batch` call is recorded as
/// `k` element operations sharing one invocation/response interval and
/// linked by a `BatchPos` each; the exhaustive checker then requires the
/// `k` elements to linearize *adjacently* in batch order — the sequential
/// meaning of "one atomic batch".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPos {
    /// Batch identity, unique within a history (the recorder uses the
    /// batch's invocation tick, which no other event shares).
    pub id: u64,
    /// This element's position within the batch, `0 .. len`.
    pub pos: u32,
    /// Total number of elements in the batch.
    pub len: u32,
}

/// One completed operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operation {
    /// Recording thread id (not the OS tid — the recorder slot).
    pub thread: usize,
    /// Operation and its result.
    pub kind: OpKind,
    /// Tick at invocation.
    pub invoke: u64,
    /// Tick at response. Always > `invoke`.
    pub response: u64,
    /// `Some` if this operation is one element of a batch call (see
    /// [`BatchPos`]); `None` for ordinary single operations.
    pub batch: Option<BatchPos>,
}

impl Operation {
    /// True if `self` completed strictly before `other` began (real-time
    /// precedence, the paper's `op1 ≺ op2`).
    #[inline]
    pub fn precedes(&self, other: &Operation) -> bool {
        self.response < other.invoke
    }
}

/// A complete recorded history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct History {
    /// All operations, in no particular order.
    pub ops: Vec<Operation>,
}

impl History {
    /// Builds a history directly (mainly for tests of the checkers).
    pub fn from_ops(ops: Vec<Operation>) -> Self {
        Self { ops }
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Operations sorted by invocation tick (useful for the search checker).
    pub fn sorted_by_invoke(&self) -> Vec<Operation> {
        let mut v = self.ops.clone();
        v.sort_by_key(|o| o.invoke);
        v
    }

    /// Convenience constructor for a sequential history: ops happen one
    /// after another in the given order.
    pub fn sequential(kinds: &[OpKind]) -> Self {
        let mut t = 0;
        let ops = kinds
            .iter()
            .map(|&kind| {
                let invoke = t;
                t += 1;
                let response = t;
                t += 1;
                Operation {
                    thread: 0,
                    kind,
                    invoke,
                    response,
                    batch: None,
                }
            })
            .collect();
        Self { ops }
    }
}

/// Shared recorder: one per experiment.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    logs: Mutex<Vec<Vec<Operation>>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a recording thread.
    pub fn thread(&self) -> ThreadRecorder<'_> {
        let id = {
            let mut logs = self.logs.lock().unwrap();
            logs.push(Vec::new());
            logs.len() - 1
        };
        ThreadRecorder {
            recorder: self,
            thread: id,
            buf: Vec::new(),
        }
    }

    /// Current tick (monotone, shared).
    #[inline]
    pub fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Merges all thread buffers into one history. Call after every
    /// [`ThreadRecorder`] has been dropped.
    pub fn finish(self) -> History {
        let logs = self.logs.into_inner().unwrap();
        History {
            ops: logs.into_iter().flatten().collect(),
        }
    }
}

/// Per-thread recording capability.
#[derive(Debug)]
pub struct ThreadRecorder<'r> {
    recorder: &'r Recorder,
    thread: usize,
    buf: Vec<Operation>,
}

impl ThreadRecorder<'_> {
    /// Takes the invocation tick; pass it to [`Self::record`].
    #[inline]
    pub fn invoke(&self) -> u64 {
        self.recorder.tick()
    }

    /// Records a completed operation given its invocation tick.
    #[inline]
    pub fn record(&mut self, kind: OpKind, invoke: u64) {
        let response = self.recorder.tick();
        self.buf.push(Operation {
            thread: self.thread,
            kind,
            invoke,
            response,
            batch: None,
        });
    }

    /// Records a completed `enqueue_batch(vals)` given its invocation tick:
    /// one [`OpKind::Enqueue`] per element, all sharing the batch's
    /// `[invoke, response]` interval and linked by [`BatchPos`] so the
    /// exhaustive checker linearizes them adjacently and in order. An empty
    /// batch records nothing.
    pub fn record_enqueue_batch(&mut self, vals: &[u64], invoke: u64) {
        let response = self.recorder.tick();
        let len = vals.len() as u32;
        for (pos, &v) in vals.iter().enumerate() {
            self.buf.push(Operation {
                thread: self.thread,
                kind: OpKind::Enqueue(v),
                invoke,
                response,
                batch: Some(BatchPos { id: invoke, pos: pos as u32, len }),
            });
        }
    }

    /// Records a completed `dequeue_batch` that returned `got`, given its
    /// invocation tick. A non-empty result records one
    /// [`OpKind::Dequeue`]`(Some)` per element, batch-linked like
    /// [`Self::record_enqueue_batch`]. An empty result observed emptiness
    /// and records a single `Dequeue(None)`.
    pub fn record_dequeue_batch(&mut self, got: &[u64], invoke: u64) {
        if got.is_empty() {
            self.record(OpKind::Dequeue(None), invoke);
            return;
        }
        let response = self.recorder.tick();
        let len = got.len() as u32;
        for (pos, &v) in got.iter().enumerate() {
            self.buf.push(Operation {
                thread: self.thread,
                kind: OpKind::Dequeue(Some(v)),
                invoke,
                response,
                batch: Some(BatchPos { id: invoke, pos: pos as u32, len }),
            });
        }
    }

    /// Number of operations recorded by this thread so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if this thread recorded nothing yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Drop for ThreadRecorder<'_> {
    fn drop(&mut self) {
        let buf = core::mem::take(&mut self.buf);
        self.recorder.logs.lock().unwrap()[self.thread] = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_are_strictly_increasing() {
        let r = Recorder::new();
        let a = r.tick();
        let b = r.tick();
        assert!(b > a);
    }

    #[test]
    fn record_and_merge() {
        let r = Recorder::new();
        {
            let mut t0 = r.thread();
            let mut t1 = r.thread();
            let i = t0.invoke();
            t0.record(OpKind::Enqueue(1), i);
            let i = t1.invoke();
            t1.record(OpKind::Dequeue(Some(1)), i);
        }
        let h = r.finish();
        assert_eq!(h.len(), 2);
        for op in &h.ops {
            assert!(op.response > op.invoke);
        }
    }

    #[test]
    fn precedes_is_strict_real_time() {
        let a = Operation {
            thread: 0,
            kind: OpKind::Enqueue(1),
            invoke: 0,
            response: 1,
            batch: None,
        };
        let b = Operation {
            thread: 1,
            kind: OpKind::Dequeue(Some(1)),
            invoke: 2,
            response: 3,
            batch: None,
        };
        let c = Operation {
            thread: 2,
            kind: OpKind::Dequeue(None),
            invoke: 1,
            response: 4,
            batch: None,
        };
        assert!(a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(!a.precedes(&c), "overlapping ops do not precede");
    }

    #[test]
    fn sequential_builder_orders_ops() {
        let h = History::sequential(&[
            OpKind::Enqueue(1),
            OpKind::Enqueue(2),
            OpKind::Dequeue(Some(1)),
        ]);
        assert_eq!(h.len(), 3);
        assert!(h.ops[0].precedes(&h.ops[1]));
        assert!(h.ops[1].precedes(&h.ops[2]));
    }

    #[test]
    fn batch_recording_links_elements_and_shares_the_interval() {
        let r = Recorder::new();
        {
            let mut t = r.thread();
            let i = t.invoke();
            t.record_enqueue_batch(&[10, 11, 12], i);
            let i = t.invoke();
            t.record_dequeue_batch(&[10, 11], i);
            let i = t.invoke();
            t.record_dequeue_batch(&[], i);
        }
        let h = r.finish();
        // 3 enqueue elements + 2 dequeue elements + 1 EMPTY.
        assert_eq!(h.len(), 6);
        let enqs: Vec<&Operation> = h
            .ops
            .iter()
            .filter(|o| matches!(o.kind, OpKind::Enqueue(_)))
            .collect();
        assert_eq!(enqs.len(), 3);
        let b0 = enqs[0].batch.expect("batch-linked");
        for (pos, e) in enqs.iter().enumerate() {
            let b = e.batch.expect("batch-linked");
            assert_eq!((b.id, b.len), (b0.id, 3));
            assert_eq!(b.pos, pos as u32);
            assert_eq!((e.invoke, e.response), (enqs[0].invoke, enqs[0].response));
            assert!(e.response > e.invoke);
        }
        let empty = h
            .ops
            .iter()
            .find(|o| o.kind == OpKind::Dequeue(None))
            .expect("empty batch records one EMPTY");
        assert_eq!(empty.batch, None);
        // Distinct batches get distinct ids.
        let deq_id = h
            .ops
            .iter()
            .find(|o| matches!(o.kind, OpKind::Dequeue(Some(_))))
            .and_then(|o| o.batch)
            .expect("dequeue batch linked")
            .id;
        assert_ne!(deq_id, b0.id);
    }

    #[test]
    fn concurrent_recording_produces_consistent_intervals() {
        let r = Recorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let mut t = r.thread();
                s.spawn(move || {
                    for v in 0..100 {
                        let i = t.invoke();
                        t.record(OpKind::Enqueue(v), i);
                    }
                });
            }
        });
        let h = r.finish();
        assert_eq!(h.len(), 400);
        // All ticks distinct.
        let mut ticks: Vec<u64> = h
            .ops
            .iter()
            .flat_map(|o| [o.invoke, o.response])
            .collect();
        ticks.sort_unstable();
        ticks.dedup();
        assert_eq!(ticks.len(), 800);
    }
}
