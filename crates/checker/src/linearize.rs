//! Sound-and-complete linearizability checking for FIFO histories.
//!
//! Implementation of the Wing–Gong search (1993) with Lowe's memoization
//! (2017): repeatedly pick a *minimal* pending operation — one that no
//! other unlinearized operation wholly precedes — apply it to a model
//! `VecDeque`, and recurse; a visited-state cache of
//! `(linearized-set, model-queue)` pairs prunes re-exploration. The search
//! succeeds iff some linearization of the history matches the sequential
//! FIFO specification, which is the definition of linearizability.
//!
//! Worst-case exponential; intended for histories up to ~100 operations
//! (the stress tests record short windows precisely so this checker can
//! certify them).

use std::collections::{HashMap, HashSet, VecDeque};
use std::hash::{Hash, Hasher};

use crate::history::{History, OpKind, Operation};

/// Outcome of the exhaustive check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckResult {
    /// A valid linearization exists (witness: operation indices in
    /// linearization order).
    Linearizable(Vec<usize>),
    /// No linearization exists.
    NotLinearizable,
    /// The search exceeded `max_states` explored states.
    Inconclusive,
}

impl CheckResult {
    /// True for [`CheckResult::Linearizable`].
    pub fn is_ok(&self) -> bool {
        matches!(self, CheckResult::Linearizable(_))
    }
}

/// Exhaustively checks `history` against the FIFO queue specification.
///
/// `max_states` bounds the number of distinct search states explored
/// (10^6 is plenty for ≤100-op histories).
pub fn check(history: &History, max_states: usize) -> CheckResult {
    let ops: Vec<Operation> = history.sorted_by_invoke();
    let n = ops.len();
    if n == 0 {
        return CheckResult::Linearizable(Vec::new());
    }
    if n > 128 {
        // The bitset below is two u64 words; larger histories should use
        // the invariant checker anyway.
        return CheckResult::Inconclusive;
    }

    // Batch adjacency: element `pos` of a batch may only be followed by
    // element `pos + 1` of the same batch (a batch call is k *adjacent*
    // atomic ops). Precompute each element's successor index.
    let mut by_batch: HashMap<u64, Vec<(u32, usize)>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if let Some(b) = op.batch {
            by_batch.entry(b.id).or_default().push((b.pos, i));
        }
    }
    let mut succ: Vec<Option<usize>> = vec![None; n];
    let mut pred: Vec<Option<usize>> = vec![None; n];
    for elems in by_batch.values_mut() {
        elems.sort_unstable();
        for w in elems.windows(2) {
            succ[w[0].1] = Some(w[1].1);
            pred[w[1].1] = Some(w[0].1);
        }
    }

    let mut searcher = Searcher {
        ops: &ops,
        succ: &succ,
        pred: &pred,
        seen: HashSet::new(),
        explored: 0,
        max_states,
        witness: Vec::with_capacity(n),
    };
    let mut queue = VecDeque::new();
    match searcher.dfs(Bits::default(), &mut queue) {
        Some(true) => CheckResult::Linearizable(searcher.witness.clone()),
        Some(false) => CheckResult::NotLinearizable,
        None => CheckResult::Inconclusive,
    }
}

/// 128-bit set of linearized operation indices.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
struct Bits([u64; 2]);

impl Bits {
    #[inline]
    fn contains(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
    #[inline]
    fn insert(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn remove(&mut self, i: usize) {
        self.0[i / 64] &= !(1 << (i % 64));
    }
    #[inline]
    fn len(&self) -> u32 {
        self.0[0].count_ones() + self.0[1].count_ones()
    }
}

struct Searcher<'h> {
    ops: &'h [Operation],
    /// `succ[i]` is the index of batch element `pos + 1` when op `i` is a
    /// non-final batch element, else `None`; `pred[i]` the converse link.
    succ: &'h [Option<usize>],
    pred: &'h [Option<usize>],
    seen: HashSet<u64>,
    explored: usize,
    max_states: usize,
    witness: Vec<usize>,
}

impl Searcher<'_> {
    /// DFS over linearization prefixes. Returns Some(true) on success,
    /// Some(false) on exhausted search, None on state-budget overrun.
    fn dfs(&mut self, done: Bits, queue: &mut VecDeque<u64>) -> Option<bool> {
        let n = self.ops.len();
        if done.len() as usize == n {
            return Some(true);
        }
        // Memoize on (done-set, queue-contents).
        let key = state_key(done, queue);
        if !self.seen.insert(key) {
            return Some(false);
        }
        self.explored += 1;
        if self.explored > self.max_states {
            return None;
        }

        // The earliest response among unlinearized ops bounds which ops
        // may linearize next: op i is eligible iff it invoked before every
        // unlinearized op's response, i.e. invoke(i) <= min_response.
        let mut min_response = u64::MAX;
        for (i, op) in self.ops.iter().enumerate() {
            if !done.contains(i) {
                min_response = min_response.min(op.response);
            }
        }

        // A partially linearized batch pins the next pick: its elements
        // are adjacent atomic ops, so the only candidate is the first
        // unlinearized element. Deriving this from `done` (rather than the
        // witness stack) keeps the memo key sound — at most one batch can
        // be partial at a time, precisely because we force completion.
        let mut forced = None;
        for i in 0..n {
            if let Some(j) = self.succ[i] {
                if done.contains(i) && !done.contains(j) {
                    forced = Some(j);
                    break;
                }
            }
        }

        for i in 0..n {
            if done.contains(i) {
                continue;
            }
            if let Some(f) = forced {
                if i != f {
                    continue;
                }
            } else if let Some(p) = self.pred[i] {
                if !done.contains(p) {
                    // A batch element cannot linearize before its
                    // predecessor element (in-batch order is fixed).
                    continue;
                }
            }
            let op = &self.ops[i];
            if op.invoke > min_response {
                // Some other pending op finished before this one started:
                // that op must linearize first. ops are invoke-sorted, so
                // no later op can be eligible either.
                break;
            }
            // Try to apply op to the model queue.
            let applied = match op.kind {
                OpKind::Enqueue(v) => {
                    queue.push_back(v);
                    true
                }
                OpKind::Dequeue(Some(v)) => {
                    if queue.front() == Some(&v) {
                        queue.pop_front();
                        true
                    } else {
                        false
                    }
                }
                OpKind::Dequeue(None) => queue.is_empty(),
            };
            if !applied {
                continue;
            }
            let mut next = done;
            next.insert(i);
            self.witness.push(i);
            match self.dfs(next, queue) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            self.witness.pop();
            // Undo the model mutation.
            match op.kind {
                OpKind::Enqueue(_) => {
                    queue.pop_back();
                }
                OpKind::Dequeue(Some(v)) => queue.push_front(v),
                OpKind::Dequeue(None) => {}
            }
            let mut undo = next;
            undo.remove(i);
            debug_assert_eq!(undo, done);
        }
        Some(false)
    }
}

fn state_key(done: Bits, queue: &VecDeque<u64>) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    done.0.hash(&mut h);
    queue.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpKind::{Dequeue, Enqueue};

    fn op(thread: usize, kind: OpKind, invoke: u64, response: u64) -> Operation {
        Operation { thread, kind, invoke, response, batch: None }
    }

    fn check_h(ops: Vec<Operation>) -> CheckResult {
        check(&History::from_ops(ops), 1_000_000)
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_h(vec![]).is_ok());
    }

    #[test]
    fn sequential_fifo_accepted() {
        let h = History::sequential(&[
            Enqueue(1),
            Enqueue(2),
            Dequeue(Some(1)),
            Dequeue(Some(2)),
            Dequeue(None),
        ]);
        assert!(check(&h, 1_000_000).is_ok());
    }

    #[test]
    fn sequential_lifo_rejected() {
        let h = History::sequential(&[
            Enqueue(1),
            Enqueue(2),
            Dequeue(Some(2)), // stack order: illegal for a queue
            Dequeue(Some(1)),
        ]);
        assert_eq!(check(&h, 1_000_000), CheckResult::NotLinearizable);
    }

    #[test]
    fn overlapping_enqueues_allow_either_dequeue_order() {
        let ops = vec![
            op(0, Enqueue(1), 0, 10),
            op(1, Enqueue(2), 1, 9),
            op(0, Dequeue(Some(2)), 11, 12),
            op(1, Dequeue(Some(1)), 13, 14),
        ];
        assert!(check_h(ops).is_ok());
    }

    #[test]
    fn non_overlapping_enqueues_pin_the_order() {
        let ops = vec![
            op(0, Enqueue(1), 0, 1),
            op(1, Enqueue(2), 2, 3),
            op(0, Dequeue(Some(2)), 4, 5),
            op(1, Dequeue(Some(1)), 6, 7),
        ];
        assert_eq!(check_h(ops), CheckResult::NotLinearizable);
    }

    #[test]
    fn empty_must_have_a_moment_of_emptiness() {
        // enq(1) [0,1], deq(EMPTY) [2,3] with 1 never dequeued: illegal.
        let ops = vec![op(0, Enqueue(1), 0, 1), op(1, Dequeue(None), 2, 3)];
        assert_eq!(check_h(ops), CheckResult::NotLinearizable);
        // But overlapping: EMPTY can linearize first.
        let ops = vec![op(0, Enqueue(1), 0, 5), op(1, Dequeue(None), 2, 3)];
        assert!(check_h(ops).is_ok());
    }

    #[test]
    fn witness_is_a_valid_linearization() {
        let h = History::sequential(&[Enqueue(5), Dequeue(Some(5)), Dequeue(None)]);
        match check(&h, 1_000_000) {
            CheckResult::Linearizable(w) => {
                assert_eq!(w.len(), 3);
                // Replay the witness against a model queue.
                let ops = h.sorted_by_invoke();
                let mut q = VecDeque::new();
                for &i in &w {
                    match ops[i].kind {
                        Enqueue(v) => q.push_back(v),
                        Dequeue(Some(v)) => assert_eq!(q.pop_front(), Some(v)),
                        Dequeue(None) => assert!(q.is_empty()),
                    }
                }
            }
            other => panic!("expected linearizable, got {other:?}"),
        }
    }

    #[test]
    fn dequeue_of_unseen_value_rejected() {
        let ops = vec![op(0, Dequeue(Some(3)), 0, 1)];
        assert_eq!(check_h(ops), CheckResult::NotLinearizable);
    }

    #[test]
    fn real_time_order_is_respected() {
        // deq completes before enq begins: illegal even though values match.
        let ops = vec![
            op(0, Dequeue(Some(1)), 0, 1),
            op(1, Enqueue(1), 2, 3),
        ];
        assert_eq!(check_h(ops), CheckResult::NotLinearizable);
    }

    #[test]
    fn wide_concurrency_is_searchable() {
        // 6 fully concurrent enqueues + 6 matching dequeues afterwards.
        let mut ops = Vec::new();
        for v in 1..=6u64 {
            ops.push(op(v as usize, Enqueue(v), 0, 100));
        }
        for v in 1..=6u64 {
            ops.push(op(v as usize, Dequeue(Some(7 - v)), 101 + v, 102 + v));
        }
        // Dequeue order 6,5,4,3,2,1 is fine: enqueues all overlap.
        assert!(check_h(ops).is_ok());
    }

    #[test]
    fn oversize_history_reports_inconclusive() {
        let ops: Vec<Operation> = (0..130)
            .map(|i| op(0, Enqueue(i as u64 + 1), 2 * i, 2 * i + 1))
            .collect();
        assert_eq!(check_h(ops), CheckResult::Inconclusive);
    }

    #[test]
    fn state_budget_reports_inconclusive() {
        let mut ops = Vec::new();
        for v in 1..=20u64 {
            ops.push(op(v as usize, Enqueue(v), 0, 1000));
        }
        assert_eq!(check(&History::from_ops(ops), 3), CheckResult::Inconclusive);
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::history::OpKind::{Dequeue, Enqueue};
    use crate::history::{History, Operation};

    fn op(thread: usize, kind: crate::history::OpKind, invoke: u64, response: u64) -> Operation {
        Operation { thread, kind, invoke, response, batch: None }
    }

    #[test]
    fn empty_between_two_batches_is_legal() {
        let h = History::sequential(&[
            Enqueue(1),
            Dequeue(Some(1)),
            Dequeue(None),
            Enqueue(2),
            Dequeue(Some(2)),
        ]);
        assert!(check(&h, 1_000_000).is_ok());
    }

    #[test]
    fn concurrent_empty_and_enqueue_pair_both_orders() {
        // deq(EMPTY) overlaps enq(1); a later deq takes 1. Legal: EMPTY
        // linearizes before the enqueue.
        let ops = vec![
            op(0, Enqueue(1), 0, 10),
            op(1, Dequeue(None), 1, 5),
            op(1, Dequeue(Some(1)), 11, 12),
        ];
        assert!(check(&History::from_ops(ops), 1_000_000).is_ok());
    }

    #[test]
    fn value_dequeued_twice_rejected_even_with_overlap() {
        let ops = vec![
            op(0, Enqueue(1), 0, 1),
            op(1, Dequeue(Some(1)), 2, 10),
            op(2, Dequeue(Some(1)), 3, 9),
        ];
        assert_eq!(
            check(&History::from_ops(ops), 1_000_000),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn interleaved_producers_consumers_searchable_depth() {
        // 3 producers × 4 values + 12 matching dequeues, all overlapping
        // within their group: a denser search space with a known witness.
        let mut ops = Vec::new();
        for p in 0..3u64 {
            for i in 0..4u64 {
                let v = p * 10 + i + 1;
                ops.push(op(p as usize, Enqueue(v), i * 10, i * 10 + 9));
            }
        }
        // Dequeue in an order consistent with per-producer FIFO: round-
        // robin across producers.
        let mut t = 100;
        for i in 0..4u64 {
            for p in 0..3u64 {
                let v = p * 10 + i + 1;
                ops.push(op(3 + p as usize, Dequeue(Some(v)), t, t + 1));
                t += 2;
            }
        }
        assert!(check(&History::from_ops(ops), 4_000_000).is_ok());
    }

    #[test]
    fn unmatched_pending_style_enqueues_at_the_end_are_fine() {
        let ops = vec![
            op(0, Enqueue(1), 0, 1),
            op(0, Dequeue(Some(1)), 2, 3),
            op(1, Enqueue(2), 4, 5),
            op(2, Enqueue(3), 4, 5),
        ];
        assert!(check(&History::from_ops(ops), 1_000_000).is_ok());
    }
}

#[cfg(test)]
mod batch_tests {
    //! A batch call = k *adjacent* atomic ops: the search may place the
    //! batch anywhere its interval allows, but nothing can interleave
    //! between its elements and their order is fixed.

    use super::*;
    use crate::history::OpKind::{Dequeue, Enqueue};
    use crate::history::{BatchPos, History, Operation};

    fn op(thread: usize, kind: OpKind, invoke: u64, response: u64) -> Operation {
        Operation { thread, kind, invoke, response, batch: None }
    }

    fn bop(
        thread: usize,
        kind: OpKind,
        invoke: u64,
        response: u64,
        id: u64,
        pos: u32,
        len: u32,
    ) -> Operation {
        Operation {
            thread,
            kind,
            invoke,
            response,
            batch: Some(BatchPos { id, pos, len }),
        }
    }

    #[test]
    fn nothing_interleaves_inside_a_batch_enqueue() {
        // batch enq [1,2] fully overlaps single enq(3). Dequeue order
        // 1,3,2 splits the batch: rejected. Without the batch links the
        // same intervals accept it — proving adjacency does the work.
        let linked = vec![
            bop(0, Enqueue(1), 0, 10, 100, 0, 2),
            bop(0, Enqueue(2), 0, 10, 100, 1, 2),
            op(1, Enqueue(3), 0, 10),
            op(2, Dequeue(Some(1)), 20, 21),
            op(2, Dequeue(Some(3)), 22, 23),
            op(2, Dequeue(Some(2)), 24, 25),
        ];
        let mut unlinked = linked.clone();
        for o in &mut unlinked {
            o.batch = None;
        }
        assert!(check(&History::from_ops(unlinked), 1_000_000).is_ok());
        assert_eq!(
            check(&History::from_ops(linked), 1_000_000),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn batch_floats_as_a_unit_within_its_interval() {
        // Same overlap; dequeue orders 3,1,2 and 1,2,3 keep the batch
        // contiguous, so both are accepted.
        for order in [[3u64, 1, 2], [1, 2, 3]] {
            let mut ops = vec![
                bop(0, Enqueue(1), 0, 10, 100, 0, 2),
                bop(0, Enqueue(2), 0, 10, 100, 1, 2),
                op(1, Enqueue(3), 0, 10),
            ];
            for (i, &v) in order.iter().enumerate() {
                ops.push(op(2, Dequeue(Some(v)), 20 + 2 * i as u64, 21 + 2 * i as u64));
            }
            assert!(
                check(&History::from_ops(ops), 1_000_000).is_ok(),
                "dequeue order {order:?} should linearize"
            );
        }
    }

    #[test]
    fn within_batch_order_is_fixed() {
        // Elements of one batch share an interval, but their positions pin
        // the order: dequeuing 2 before 1 is rejected.
        let ops = vec![
            bop(0, Enqueue(1), 0, 10, 7, 0, 2),
            bop(0, Enqueue(2), 0, 10, 7, 1, 2),
            op(1, Dequeue(Some(2)), 20, 21),
            op(1, Dequeue(Some(1)), 22, 23),
        ];
        assert_eq!(
            check(&History::from_ops(ops), 1_000_000),
            CheckResult::NotLinearizable
        );
    }

    #[test]
    fn nothing_interleaves_inside_a_batch_dequeue() {
        // Queue holds 1,2,3 (pinned). A batch dequeue returning [1,3]
        // concurrent with a single dequeue of 2 cannot linearize: the
        // single would have to land between the batch's elements.
        let base = vec![
            op(0, Enqueue(1), 0, 1),
            op(0, Enqueue(2), 2, 3),
            op(0, Enqueue(3), 4, 5),
        ];
        let mut bad = base.clone();
        bad.push(bop(1, Dequeue(Some(1)), 10, 20, 50, 0, 2));
        bad.push(bop(1, Dequeue(Some(3)), 10, 20, 50, 1, 2));
        bad.push(op(2, Dequeue(Some(2)), 10, 20));
        assert_eq!(
            check(&History::from_ops(bad), 1_000_000),
            CheckResult::NotLinearizable
        );
        // The adjacent split [1,2] + single 3 is fine.
        let mut good = base;
        good.push(bop(1, Dequeue(Some(1)), 10, 20, 50, 0, 2));
        good.push(bop(1, Dequeue(Some(2)), 10, 20, 50, 1, 2));
        good.push(op(2, Dequeue(Some(3)), 10, 20));
        assert!(check(&History::from_ops(good), 1_000_000).is_ok());
    }

    #[test]
    fn witness_keeps_batch_elements_adjacent() {
        let ops = vec![
            bop(0, Enqueue(1), 0, 10, 9, 0, 3),
            bop(0, Enqueue(2), 0, 10, 9, 1, 3),
            bop(0, Enqueue(3), 0, 10, 9, 2, 3),
            op(1, Enqueue(4), 0, 10),
            op(2, Dequeue(Some(4)), 20, 21),
            op(2, Dequeue(Some(1)), 22, 23),
        ];
        let h = History::from_ops(ops);
        match check(&h, 1_000_000) {
            CheckResult::Linearizable(w) => {
                let sorted = h.sorted_by_invoke();
                let batch_positions: Vec<usize> = w
                    .iter()
                    .enumerate()
                    .filter(|(_, &i)| sorted[i].batch.is_some())
                    .map(|(at, _)| at)
                    .collect();
                assert_eq!(batch_positions.len(), 3);
                assert_eq!(
                    batch_positions[2] - batch_positions[0],
                    2,
                    "batch elements must be adjacent in the witness: {w:?}"
                );
            }
            other => panic!("expected linearizable, got {other:?}"),
        }
    }
}
