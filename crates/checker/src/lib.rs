//! History recording and FIFO linearizability checking.
//!
//! The paper's §4 proves the queue linearizable by constructing an explicit
//! linearization procedure. This crate provides the *testing* counterpart:
//! record real concurrent executions and check them against the sequential
//! FIFO specification.
//!
//! Two checkers with complementary cost/completeness trade-offs:
//!
//! - [`linearize::check`] — a Wing–Gong-style exhaustive search with
//!   memoization (Lowe's optimization). Sound **and** complete: it accepts
//!   a history iff a valid linearization exists. Exponential worst case;
//!   use on small histories (≤ ~100 operations).
//! - [`invariants::check_necessary`] — linear/near-linear *necessary*
//!   conditions (value conservation, uniqueness, real-time FIFO order,
//!   EMPTY witnesses). Any violation proves non-linearizability; passing
//!   does not prove linearizability. Use on large stress histories.
//!
//! Values must be unique per history (the harness tags them), which is what
//! makes the queue specification efficiently checkable.
//!
//! A third, orthogonal checker — [`recovery::certify_recovery`] — certifies
//! *detectable recovery* of the durable queue mode: after a crash, the
//! durable image (not the dead volatile history) is the authoritative
//! record, and every pre-crash enqueue must be delivered exactly once or
//! provably rejected.

#![warn(missing_docs)]

pub mod history;
pub mod invariants;
pub mod linearize;
pub mod recovery;

pub use history::{BatchPos, History, OpKind, Operation, Recorder, ThreadRecorder};
pub use invariants::{check_necessary, Violation};
pub use linearize::{check as check_linearizable, CheckResult};
pub use recovery::{
    certify_recovery, DurableFate, RecoveryCertificate, RecoveryHistory, RecoveryViolation,
};
