//! Linear-time-ish *necessary* conditions for FIFO linearizability.
//!
//! These correspond to the violation aspects of Henzinger et al. (ESOP'13):
//! any hit proves the history is not linearizable with respect to a FIFO
//! queue; all-clear does not prove linearizability (use
//! [`crate::linearize::check`] for that, on small histories).
//!
//! Requires unique enqueued values (the harness tags values per thread).

use std::collections::HashMap;

use crate::history::{History, OpKind, Operation};

/// A concrete linearizability violation.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// The same value was enqueued twice — a precondition failure of the
    /// checker itself (values must be unique).
    DuplicateEnqueue {
        /// The offending value.
        value: u64,
    },
    /// A dequeue returned a value no enqueue produced (VFresh).
    ValueFromNowhere {
        /// The offending value.
        value: u64,
    },
    /// Two dequeues returned the same value (VRepet).
    DuplicateDequeue {
        /// The offending value.
        value: u64,
    },
    /// A dequeue completed before the matching enqueue was invoked.
    DequeueBeforeEnqueue {
        /// The offending value.
        value: u64,
    },
    /// `enq(first)` preceded `enq(second)` in real time, both were
    /// dequeued, but `deq(second)` completed before `deq(first)` began
    /// (VOrd).
    FifoOrder {
        /// Value enqueued first.
        first: u64,
        /// Value enqueued second but dequeued strictly earlier.
        second: u64,
    },
    /// `enq(first)` preceded `enq(second)`, `second` was dequeued, but
    /// `first` never was — impossible for a FIFO with a complete history.
    LostValue {
        /// The value that should have come out first.
        first: u64,
        /// The later value that did come out.
        second: u64,
    },
    /// A dequeue returned EMPTY although some value was provably in the
    /// queue for the dequeue's entire execution interval (VWit).
    EmptyWithWitness {
        /// A value that was present throughout.
        witness: u64,
    },
}

/// Runs every necessary-condition check; returns the first violation found
/// per category (deterministic order) or `Ok(())`.
pub fn check_necessary(h: &History) -> Result<(), Violation> {
    let mut enq: HashMap<u64, &Operation> = HashMap::new();
    let mut deq: HashMap<u64, &Operation> = HashMap::new();
    let mut empties: Vec<&Operation> = Vec::new();

    for op in &h.ops {
        match op.kind {
            OpKind::Enqueue(v) => {
                if enq.insert(v, op).is_some() {
                    return Err(Violation::DuplicateEnqueue { value: v });
                }
            }
            OpKind::Dequeue(Some(v)) => {
                if deq.insert(v, op).is_some() {
                    return Err(Violation::DuplicateDequeue { value: v });
                }
            }
            OpKind::Dequeue(None) => empties.push(op),
        }
    }

    // Conservation + elementary ordering per matched pair.
    for (&v, d) in &deq {
        match enq.get(&v) {
            None => return Err(Violation::ValueFromNowhere { value: v }),
            Some(e) => {
                if d.response < e.invoke {
                    return Err(Violation::DequeueBeforeEnqueue { value: v });
                }
            }
        }
    }

    // Real-time FIFO order (VOrd + lost values), O(n²) over enqueues —
    // intended for histories up to a few thousand operations.
    let mut enqs: Vec<(&u64, &&Operation)> = enq.iter().collect();
    enqs.sort_by_key(|(_, e)| e.response);
    for (i, &(&v1, e1)) in enqs.iter().enumerate() {
        for &(&v2, e2) in &enqs[i + 1..] {
            if !e1.precedes(e2) {
                continue; // overlapping enqueues: either order linearizes
            }
            match (deq.get(&v1), deq.get(&v2)) {
                (Some(d1), Some(d2)) => {
                    if d2.precedes(d1) {
                        return Err(Violation::FifoOrder { first: v1, second: v2 });
                    }
                }
                (None, Some(_)) => {
                    return Err(Violation::LostValue { first: v1, second: v2 });
                }
                _ => {}
            }
        }
    }

    // EMPTY witnesses: value v witnesses against an EMPTY dequeue D if
    // enq(v) completed before D began and v's dequeue (if any) began after
    // D completed — then v is in the queue at every point of D.
    for d in &empties {
        for (&v, e) in &enq {
            if e.precedes(d) {
                let gone_before = deq.get(&v).map(|dv| dv.invoke < d.response).unwrap_or(false);
                if !gone_before {
                    return Err(Violation::EmptyWithWitness { witness: v });
                }
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::OpKind::{Dequeue, Enqueue};

    fn op(kind: OpKind, invoke: u64, response: u64) -> Operation {
        Operation { thread: 0, kind, invoke, response, batch: None }
    }

    #[test]
    fn accepts_a_correct_sequential_history() {
        let h = History::sequential(&[
            Enqueue(1),
            Enqueue(2),
            Dequeue(Some(1)),
            Dequeue(Some(2)),
            Dequeue(None),
        ]);
        assert_eq!(check_necessary(&h), Ok(()));
    }

    #[test]
    fn accepts_overlapping_enqueues_in_either_order() {
        // enq(1) and enq(2) overlap; dequeues may see 2 before 1.
        let h = History::from_ops(vec![
            op(Enqueue(1), 0, 10),
            op(Enqueue(2), 1, 9),
            op(Dequeue(Some(2)), 11, 12),
            op(Dequeue(Some(1)), 13, 14),
        ]);
        assert_eq!(check_necessary(&h), Ok(()));
    }

    #[test]
    fn detects_value_from_nowhere() {
        let h = History::sequential(&[Dequeue(Some(42))]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::ValueFromNowhere { value: 42 })
        );
    }

    #[test]
    fn detects_duplicate_dequeue() {
        let h = History::sequential(&[Enqueue(1), Dequeue(Some(1)), Dequeue(Some(1))]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::DuplicateDequeue { value: 1 })
        );
    }

    #[test]
    fn detects_dequeue_before_enqueue() {
        let h = History::from_ops(vec![
            op(Enqueue(7), 10, 11),
            op(Dequeue(Some(7)), 0, 1),
        ]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::DequeueBeforeEnqueue { value: 7 })
        );
    }

    #[test]
    fn detects_fifo_inversion() {
        let h = History::from_ops(vec![
            op(Enqueue(1), 0, 1),
            op(Enqueue(2), 2, 3),
            op(Dequeue(Some(2)), 4, 5),
            op(Dequeue(Some(1)), 6, 7),
        ]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::FifoOrder { first: 1, second: 2 })
        );
    }

    #[test]
    fn detects_lost_value() {
        let h = History::from_ops(vec![
            op(Enqueue(1), 0, 1),
            op(Enqueue(2), 2, 3),
            op(Dequeue(Some(2)), 4, 5),
        ]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::LostValue { first: 1, second: 2 })
        );
    }

    #[test]
    fn detects_empty_with_witness() {
        // Value 9 enqueued and never dequeued; EMPTY after it: illegal.
        let h = History::from_ops(vec![
            op(Enqueue(9), 0, 1),
            op(Dequeue(None), 2, 3),
        ]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::EmptyWithWitness { witness: 9 })
        );
    }

    #[test]
    fn empty_overlapping_the_enqueue_is_fine() {
        // EMPTY may linearize before the overlapping enqueue takes effect.
        let h = History::from_ops(vec![
            op(Enqueue(9), 0, 10),
            op(Dequeue(None), 1, 2),
        ]);
        assert_eq!(check_necessary(&h), Ok(()));
    }

    #[test]
    fn empty_after_drain_is_fine() {
        let h = History::sequential(&[Enqueue(1), Dequeue(Some(1)), Dequeue(None)]);
        assert_eq!(check_necessary(&h), Ok(()));
    }

    #[test]
    fn duplicate_enqueue_is_a_precondition_failure() {
        let h = History::sequential(&[Enqueue(1), Enqueue(1)]);
        assert_eq!(
            check_necessary(&h),
            Err(Violation::DuplicateEnqueue { value: 1 })
        );
    }

    #[test]
    fn unmatched_enqueues_alone_are_fine() {
        // Values still in the queue at the end: perfectly legal.
        let h = History::sequential(&[Enqueue(1), Enqueue(2)]);
        assert_eq!(check_necessary(&h), Ok(()));
    }
}
