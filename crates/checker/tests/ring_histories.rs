//! The checker against the bounded-ring backends (DESIGN.md §11): a clean
//! SCQ execution — including histories that wrap the ring's cycle several
//! times — must certify, and a ring with a *skipped-cycle* dequeue bug
//! (the dequeuer consumes a slot one position ahead of head, as if the
//! entry's cycle tag were never compared) must be convicted by the
//! Wing–Gong search. The negative control proves the certification of the
//! real rings is not vacuous.

use std::sync::Mutex;

use wfq_baselines::scq::ScqRing;
use wfq_baselines::{BenchQueue, QueueHandle, Scq, Wcq};
use wfq_checker::{check_linearizable, check_necessary, History, OpKind, Recorder};

/// Records `threads` workers doing `ops_per_thread` coin-flip operations
/// each on a fresh `Q` (same shape as the repo-wide certification suite).
fn record<Q: BenchQueue>(threads: usize, ops_per_thread: usize, seed: u64) -> History {
    let q = Q::new();
    let rec = Recorder::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let q = &q;
            let mut tr = rec.thread();
            s.spawn(move || {
                let mut h = q.register();
                let mut rng = wfq_sync::XorShift64::for_stream(seed, t as u64);
                let tag = ((t as u64 + 1) << 32) | 1;
                let mut counter = 0;
                for _ in 0..ops_per_thread {
                    if rng.coin() {
                        counter += 1;
                        let i = tr.invoke();
                        h.enqueue(tag + counter);
                        tr.record(OpKind::Enqueue(tag + counter), i);
                    } else {
                        let i = tr.invoke();
                        let r = h.dequeue();
                        tr.record(OpKind::Dequeue(r), i);
                    }
                }
            });
        }
    });
    rec.finish()
}

#[test]
fn clean_scq_histories_certify() {
    for seed in 0..6 {
        let h = record::<Scq>(3, 14, seed);
        assert_eq!(check_necessary(&h), Ok(()), "SCQ seed {seed}");
        assert!(
            check_linearizable(&h, 2_000_000).is_ok(),
            "SCQ seed {seed}: {h:?}"
        );
    }
}

#[test]
fn clean_wcq_histories_certify() {
    for seed in 0..6 {
        let h = record::<Wcq>(3, 14, seed);
        assert_eq!(check_necessary(&h), Ok(()), "wCQ seed {seed}");
        assert!(
            check_linearizable(&h, 2_000_000).is_ok(),
            "wCQ seed {seed}: {h:?}"
        );
    }
}

#[test]
fn scq_ring_history_across_cycle_wraps_certifies() {
    // The raw index ring, driven far enough that every entry's cycle tag
    // wraps several times; the recorded (sequential, hence unambiguous)
    // history must still be FIFO. Catches cycle-comparison bugs that only
    // manifest after wraparound.
    let r = ScqRing::new(3, 0); // capacity 8, 16 entries
    let rec = Recorder::new();
    let mut tr = rec.thread();
    // 8 rounds × 12 ops stays inside the exhaustive checker's practical
    // window (~100 ops) while still lapping the 16-entry ring three times.
    let mut next = 0u64;
    for _round in 0..8 {
        for _ in 0..6 {
            let i = tr.invoke();
            r.enqueue(next % 8); // ring indices are 0..capacity
            tr.record(OpKind::Enqueue(1 + (next % 8)), i);
            next += 1;
        }
        for _ in 0..6 {
            let i = tr.invoke();
            let got = r.dequeue().map(|x| 1 + x);
            tr.record(OpKind::Dequeue(got), i);
        }
    }
    drop(tr);
    let h = rec.finish();
    // Ring indices repeat, so value-uniqueness-based necessary checks do
    // not apply — but the complete search must accept the history once
    // values are disambiguated per occurrence. Disambiguate: tag each
    // enqueue/dequeue pair by occurrence count of its index.
    let h = disambiguate(h);
    assert_eq!(check_necessary(&h), Ok(()), "{h:?}");
    let res = check_linearizable(&h, 4_000_000);
    assert!(res.is_ok(), "wrap history rejected: {res:?}");
}

/// Rewrites repeated values `v` into unique `(occurrence << 8) | v` codes,
/// matching enqueue and dequeue occurrences in FIFO order per value — the
/// checker requires unique values, the ring recycles its 8 indices.
fn disambiguate(h: History) -> History {
    use std::collections::HashMap;
    let mut ops = h.ops;
    ops.sort_by_key(|o| o.invoke);
    let mut enq_seen: HashMap<u64, u64> = HashMap::new();
    let mut deq_seen: HashMap<u64, u64> = HashMap::new();
    for o in ops.iter_mut() {
        match o.kind {
            OpKind::Enqueue(v) => {
                let n = enq_seen.entry(v).or_insert(0);
                o.kind = OpKind::Enqueue((*n << 8) | v);
                *n += 1;
            }
            OpKind::Dequeue(Some(v)) => {
                let n = deq_seen.entry(v).or_insert(0);
                o.kind = OpKind::Dequeue(Some((*n << 8) | v));
                *n += 1;
            }
            OpKind::Dequeue(None) => {}
        }
    }
    History::from_ops(ops)
}

// ---------------------------------------------------------------------
// Negative control: the skipped-cycle ring.
// ---------------------------------------------------------------------

/// A queue modelling an SCQ ring whose dequeuer fails to compare the
/// entry's cycle tag: when at least two values are resident it consumes
/// the slot *after* head first (the next cycle's entry), delivering values
/// one position out of order — exactly the observable effect of a
/// skipped-cycle consume. Deterministic: every third dequeue skips.
struct SkippedCycleRing {
    inner: Mutex<(Vec<u64>, u64)>, // (resident values, dequeue count)
}

struct SkippedHandle<'q>(&'q SkippedCycleRing);

impl QueueHandle for SkippedHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        self.0.inner.lock().unwrap().0.push(v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        let mut g = self.0.inner.lock().unwrap();
        let (ref mut vals, ref mut count) = *g;
        if vals.is_empty() {
            return None;
        }
        *count += 1;
        if *count % 3 == 0 && vals.len() >= 2 {
            Some(vals.remove(1)) // the bug: consumes one slot ahead of head
        } else {
            Some(vals.remove(0))
        }
    }
}

impl BenchQueue for SkippedCycleRing {
    type Handle<'q> = SkippedHandle<'q>;
    const NAME: &'static str = "SKIPPED-CYCLE";
    fn new() -> Self {
        SkippedCycleRing {
            inner: Mutex::new((Vec::new(), 0)),
        }
    }
    fn register(&self) -> Self::Handle<'_> {
        SkippedHandle(self)
    }
}

#[test]
fn wing_gong_convicts_a_skipped_cycle_ring_sequentially() {
    // Single thread, deterministic: enqueue 1,2,3,4 then drain. The third
    // dequeue skips, so the drain reads 1,2,4,3 — a sequential history
    // with exactly one candidate linearization, which is not FIFO. Both
    // checkers must reject; no luck involved.
    let q = SkippedCycleRing::new();
    let rec = Recorder::new();
    let mut tr = rec.thread();
    let mut h = q.register();
    for v in 1..=4u64 {
        let i = tr.invoke();
        h.enqueue(v);
        tr.record(OpKind::Enqueue(v), i);
    }
    let mut drained = Vec::new();
    for _ in 0..4 {
        let i = tr.invoke();
        let r = h.dequeue();
        drained.push(r);
        tr.record(OpKind::Dequeue(r), i);
    }
    assert_eq!(
        drained,
        vec![Some(1), Some(2), Some(4), Some(3)],
        "the negative control's bug did not fire as designed"
    );
    drop(tr);
    let hist = rec.finish();
    assert!(
        check_necessary(&hist).is_err(),
        "necessary conditions missed a sequential FIFO violation: {hist:?}"
    );
    assert!(
        !check_linearizable(&hist, 2_000_000).is_ok(),
        "Wing–Gong accepted a non-FIFO sequential history: {hist:?}"
    );
}

#[test]
fn wing_gong_convicts_a_skipped_cycle_ring_concurrently() {
    // Concurrent flavour: overlap can excuse some reorderings, but across
    // seeds the skip must surface as a certified violation at least once.
    let mut caught = false;
    for seed in 0..20 {
        let h = record::<SkippedCycleRing>(3, 14, seed);
        if check_necessary(&h).is_err() || !check_linearizable(&h, 2_000_000).is_ok() {
            caught = true;
            break;
        }
    }
    assert!(caught, "skipped-cycle ring evaded 20 rounds of checking");
}
