//! `wfq-regress` — the statistical performance-regression gate.
//!
//! Compares two benchmark snapshot JSONs (the normalized schema emitted by
//! `figure2 --json`, committed under `results/`) point-by-point on the
//! `(queue, threads)` key, using the harness's Student-t 95% CI machinery
//! (Georges et al. §5.1). A point regresses when the candidate mean is
//! slower by more than `--threshold` percent **and** the two confidence
//! intervals do not overlap — wide CIs (noisy hosts, quick runs) cannot
//! trip the gate, and significant-but-tiny wobbles cannot either.
//!
//! ```text
//! # gate: exit 0 on pass, 1 on regression, 2 on usage/parse error
//! wfq-regress --baseline results/BENCH_pairwise.json \
//!             --candidate /tmp/head.json [--threshold 5]
//!
//! # latency gate: p99 on the (queue, rate) key, same CI machinery,
//! # polarity flipped (higher is worse), default threshold 10%
//! wfq-regress --latency --baseline results/BENCH_latency.json \
//!             --candidate /tmp/head_latency.json [--threshold 10]
//!
//! # cycles gate: per-phase cycles/op on the (queue, threads, phase) key
//! # (the `total` pseudo-phase gates the whole op), higher is worse,
//! # default threshold 10%
//! wfq-regress --cycles --baseline results/BENCH_cycles.json \
//!             --candidate /tmp/head_cycles.json [--threshold 10]
//!
//! # record: append a normalized one-line snapshot to the perf trajectory
//! wfq-regress --record /tmp/head.json [--out results/trajectory.jsonl] \
//!             [--commit SHA]   # add --latency / --cycles for those snapshots
//! ```
//!
//! `--record` normalizes the snapshot (stable key order, fixed-precision
//! numbers, one line) and appends it to `results/trajectory.jsonl`, so the
//! repository accumulates a `git diff`-able perf history; `--commit`
//! overrides/sets the snapshot's commit field at record time. See
//! EXPERIMENTS.md ("Regression gate") for how to bless an intentional
//! perf change.

use std::process::ExitCode;

use wfq_bench::Args;
use wfq_harness::cycles::{compare_cycles, cycles_trajectory_line, parse_cycles_snapshot};
use wfq_harness::regress::{
    compare, compare_latency, latency_trajectory_line, parse_latency_snapshot, parse_snapshot,
    trajectory_line,
};

fn die(msg: &str) -> ExitCode {
    eprintln!("wfq-regress: {msg}");
    eprintln!(
        "usage: wfq-regress [--latency|--cycles] --baseline BASE.json --candidate CAND.json [--threshold PCT]\n\
                wfq-regress [--latency|--cycles] --record SNAP.json [--out results/trajectory.jsonl] [--commit SHA]"
    );
    ExitCode::from(2)
}

/// Parses `--threshold`, defaulting only when the flag is *absent* — a
/// present-but-garbled value is a usage error (exit 2), never a silent
/// fall-back to the default that would gate at the wrong sensitivity.
fn threshold_or(args: &Args, default: f64) -> Result<f64, String> {
    match args.get("threshold") {
        None => Ok(default),
        Some(t) => match t.parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
            _ => Err(format!(
                "--threshold must be a non-negative percentage, got {t:?}"
            )),
        },
    }
}

fn load(path: &str) -> Result<wfq_harness::regress::Snapshot, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_snapshot(&doc).map_err(|e| format!("{path}: {e}"))
}

fn load_latency(path: &str) -> Result<wfq_harness::regress::LatencySnapshot, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_latency_snapshot(&doc).map_err(|e| format!("{path}: {e}"))
}

fn append_line(out: &str, line: &str) -> Result<(), String> {
    let mut body = std::fs::read_to_string(out).unwrap_or_default();
    if !body.is_empty() && !body.ends_with('\n') {
        body.push('\n');
    }
    body.push_str(line);
    body.push('\n');
    std::fs::write(out, body).map_err(|e| format!("cannot write {out}: {e}"))
}

fn load_cycles(path: &str) -> Result<wfq_harness::cycles::CyclesSnapshot, String> {
    let doc =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_cycles_snapshot(&doc).map_err(|e| format!("{path}: {e}"))
}

/// The `--cycles` paths: the per-phase cycles gate (default threshold 10%)
/// and cycles trajectory recording, on the snapshots of
/// `cycle_ledger --json`.
fn cycles_main(args: &Args) -> ExitCode {
    if let Some(snap_path) = args.get("record") {
        let mut snap = match load_cycles(snap_path) {
            Ok(s) => s,
            Err(e) => return die(&e),
        };
        if let Some(c) = args.get("commit") {
            snap.commit = Some(c.to_string());
        }
        let out = args.get("out").unwrap_or("results/trajectory.jsonl");
        if let Err(e) = append_line(out, &cycles_trajectory_line(&snap)) {
            return die(&e);
        }
        eprintln!(
            "wfq-regress: recorded {} / {} / {} ({} series) to {out}",
            snap.benchmark,
            snap.workload,
            snap.perf.mode,
            snap.series.len()
        );
        return ExitCode::SUCCESS;
    }

    let (Some(base_path), Some(cand_path)) = (args.get("baseline"), args.get("candidate"))
    else {
        return die("need --baseline and --candidate (or --record)");
    };
    // Per-phase cycle counts are noisier than throughput means: the
    // cycles gate defaults to 10%, like the latency gate.
    let threshold = match threshold_or(args, 10.0) {
        Ok(t) => t,
        Err(e) => return die(&e),
    };
    let base = match load_cycles(base_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    let cand = match load_cycles(cand_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    if base.perf.mode != cand.perf.mode {
        eprintln!(
            "wfq-regress: warning: comparing different counter sources ({} vs {}) — \
             cycle scales may not be commensurable",
            base.perf.mode, cand.perf.mode
        );
    }

    let cmp = compare_cycles(&base, &cand, threshold);
    println!(
        "wfq-regress: {} / {} cycles — baseline {} vs candidate {} (threshold {threshold}%)",
        base.benchmark,
        base.workload,
        base.commit.as_deref().unwrap_or("?"),
        cand.commit.as_deref().unwrap_or("?"),
    );
    print!("{}", cmp.render());
    if cmp.deltas.is_empty() {
        return die(
            "no overlapping (queue, threads, phase) points between the snapshots — nothing was gated",
        );
    }
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "PASS: no significant per-phase cycle regression past {threshold}% across {} points",
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} of {} points regressed (significant cycles/op growth > {threshold}%)",
            regressions.len(),
            cmp.deltas.len()
        );
        ExitCode::FAILURE
    }
}

/// The `--latency` paths: p99 gate (default threshold 10%) and latency
/// trajectory recording, on the snapshots of `latency_observatory --json`.
fn latency_main(args: &Args) -> ExitCode {
    if let Some(snap_path) = args.get("record") {
        let mut snap = match load_latency(snap_path) {
            Ok(s) => s,
            Err(e) => return die(&e),
        };
        if let Some(c) = args.get("commit") {
            snap.commit = Some(c.to_string());
        }
        let out = args.get("out").unwrap_or("results/trajectory.jsonl");
        if let Err(e) = append_line(out, &latency_trajectory_line(&snap)) {
            return die(&e);
        }
        eprintln!(
            "wfq-regress: recorded {} / {} / {} ({} series) to {out}",
            snap.benchmark,
            snap.workload,
            snap.schedule,
            snap.series.len()
        );
        return ExitCode::SUCCESS;
    }

    let (Some(base_path), Some(cand_path)) = (args.get("baseline"), args.get("candidate"))
    else {
        return die("need --baseline and --candidate (or --record)");
    };
    // Quantiles are noisier than means: the latency gate's default
    // threshold is 10%, vs 5% for throughput.
    let threshold = match threshold_or(args, 10.0) {
        Ok(t) => t,
        Err(e) => return die(&e),
    };
    let base = match load_latency(base_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    let cand = match load_latency(cand_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    if base.schedule != cand.schedule || base.threads != cand.threads {
        eprintln!(
            "wfq-regress: warning: comparing different configurations ({}/{} threads vs {}/{} threads)",
            base.schedule, base.threads, cand.schedule, cand.threads
        );
    }

    let cmp = compare_latency(&base, &cand, threshold);
    println!(
        "wfq-regress: {} / {} p99 — baseline {} vs candidate {} (threshold {threshold}%)",
        base.benchmark,
        base.schedule,
        base.commit.as_deref().unwrap_or("?"),
        cand.commit.as_deref().unwrap_or("?"),
    );
    print!("{}", cmp.render());
    if cmp.deltas.is_empty() {
        return die("no overlapping (queue, rate) points between the snapshots — nothing was gated");
    }
    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "PASS: no significant p99 regression past {threshold}% across {} points",
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} of {} points regressed (significant p99 inflation > {threshold}% or saturation onset)",
            regressions.len(),
            cmp.deltas.len()
        );
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = Args::parse();

    if args.flag("latency") {
        return latency_main(&args);
    }
    if args.flag("cycles") {
        return cycles_main(&args);
    }

    if let Some(snap_path) = args.get("record") {
        let mut snap = match load(snap_path) {
            Ok(s) => s,
            Err(e) => return die(&e),
        };
        if let Some(c) = args.get("commit") {
            snap.commit = Some(c.to_string());
        }
        let out = args.get("out").unwrap_or("results/trajectory.jsonl");
        if let Err(e) = append_line(out, &trajectory_line(&snap)) {
            return die(&e);
        }
        eprintln!(
            "wfq-regress: recorded {} / {} ({} series) to {out}",
            snap.benchmark,
            snap.workload,
            snap.series.len()
        );
        return ExitCode::SUCCESS;
    }

    let (Some(base_path), Some(cand_path)) = (args.get("baseline"), args.get("candidate"))
    else {
        return die("need --baseline and --candidate (or --record)");
    };
    let threshold = match threshold_or(&args, 5.0) {
        Ok(t) => t,
        Err(e) => return die(&e),
    };

    let base = match load(base_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    let cand = match load(cand_path) {
        Ok(s) => s,
        Err(e) => return die(&e),
    };
    if base.workload != cand.workload {
        eprintln!(
            "wfq-regress: warning: comparing different workloads ({} vs {})",
            base.workload, cand.workload
        );
    }

    let cmp = compare(&base, &cand, threshold);
    println!(
        "wfq-regress: {} / {} — baseline {} vs candidate {} (threshold {threshold}%)",
        base.benchmark,
        base.workload,
        base.commit.as_deref().unwrap_or("?"),
        cand.commit.as_deref().unwrap_or("?"),
    );
    print!("{}", cmp.render());
    if cmp.deltas.is_empty() {
        return die(
            "no overlapping (queue, threads) points between the snapshots — nothing was gated",
        );
    }

    let regressions = cmp.regressions();
    if regressions.is_empty() {
        println!(
            "PASS: no significant regression past {threshold}% across {} points",
            cmp.deltas.len()
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "FAIL: {} of {} points regressed (significant slowdown > {threshold}%)",
            regressions.len(),
            cmp.deltas.len()
        );
        ExitCode::FAILURE
    }
}
