//! Regenerates the paper's **Table 1** (summary of experimental platforms)
//! for the host this reproduction runs on.
//!
//! ```text
//! cargo run -p wfq-bench --release --bin table1
//! ```

use wfq_harness::topology::PlatformInfo;

fn main() {
    let p = PlatformInfo::detect();
    println!("Table 1: summary of the experimental platform (this host)\n");
    println!("| Processor Model | # of Processors | # of Cores | # of Threads | Native FAA | Native CAS2 |");
    println!("|---|---|---|---|---|---|");
    println!("{}", p.markdown_row());
    println!();
    println!(
        "note: the paper evaluated four machines (Haswell, Xeon Phi, \
         Magny-Cours, Power7); this reproduction reports the single host \
         it runs on. LCRQ requires native CAS2: {}.",
        if p.native_cas2 {
            "available here"
        } else {
            "NOT available here (LCRQ falls back to a blocking emulation)"
        }
    );
}
