//! Ablations of the design choices DESIGN.md calls out:
//!
//! - `patience` — the fast-path retry budget (paper §5: WF-10 vs WF-0;
//!   here a full sweep 0,1,2,10,100).
//! - `segment` — segment size N (paper §5.1 fixes N = 2^10; here
//!   2^6 … 2^14).
//! - `garbage` — the MAX_GARBAGE reclamation threshold: throughput vs.
//!   retained memory (paper §3.6 "to amortize the cost of memory
//!   reclamation").
//!
//! ```text
//! cargo run -p wfq-bench --release --bin ablate -- patience|segment|garbage
//!     [--threads T] [--ops N]
//! ```
//!
//! Ablations use a lighter protocol than figure2 (best-of-5 iterations) —
//! they compare configurations of one implementation, not competing
//! implementations.

use std::sync::Barrier;
use std::time::Instant;

use wfq_bench::Args;
use wfq_harness::topology;
use wfq_sync::XorShift64;
use wfqueue::{Config, RawQueue};

/// Runs a pairs workload on a fresh `RawQueue<N>`; returns Mops/s and the
/// queue's final stats.
fn run_pairs<const N: usize>(
    cfg: Config,
    threads: usize,
    total_ops: u64,
    pin: bool,
) -> (f64, wfqueue::QueueStats) {
    let q: RawQueue<N> = RawQueue::with_config(cfg);
    let per_thread_pairs = (total_ops / threads as u64 / 2).max(1);
    let barrier = Barrier::new(threads);
    let mut worst_ns = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                s.spawn(move || {
                    if pin {
                        topology::pin_to_cpu(t);
                    }
                    let mut h = q.register();
                    let mut rng = XorShift64::for_stream(7, t as u64);
                    let tag = ((t as u64 + 1) << 40) | 1;
                    barrier.wait();
                    let start = Instant::now();
                    for i in 0..per_thread_pairs {
                        h.enqueue(tag + i + 1);
                        let _ = h.dequeue();
                        // A touch of irregularity without a calibrated
                        // delay: a handful of spin hints.
                        for _ in 0..rng.next_below(8) {
                            core::hint::spin_loop();
                        }
                    }
                    start.elapsed().as_nanos() as u64
                })
            })
            .collect();
        for h in handles {
            worst_ns = worst_ns.max(h.join().unwrap());
        }
    });
    let ops = per_thread_pairs * 2 * threads as u64;
    (ops as f64 / worst_ns as f64 * 1e3, q.stats())
}

fn best_of<const N: usize>(cfg: Config, threads: usize, ops: u64, pin: bool) -> (f64, wfqueue::QueueStats) {
    let mut best = 0.0f64;
    let mut stats = wfqueue::QueueStats::default();
    for _ in 0..5 {
        let (m, s) = run_pairs::<N>(cfg, threads, ops, pin);
        if m > best {
            best = m;
            stats = s;
        }
    }
    (best, stats)
}

fn ablate_patience(threads: usize, ops: u64, pin: bool) {
    println!("Ablation A: fast-path PATIENCE (pairs workload, {threads} threads, best of 5)\n");
    println!("| patience | Mops/s | % slow enq | % slow deq |");
    println!("|---|---|---|---|");
    for p in [0u32, 1, 2, 10, 100] {
        let (mops, st) = best_of::<1024>(Config::default().with_patience(p), threads, ops, pin);
        println!(
            "| {p} | {mops:.2} | {:.3} | {:.3} |",
            st.pct_slow_enq(),
            st.pct_slow_deq()
        );
    }
}

fn ablate_segment(threads: usize, ops: u64, pin: bool) {
    println!("Ablation B: segment size N (pairs workload, {threads} threads, best of 5)\n");
    println!("| N (cells) | Mops/s | segments allocated |");
    println!("|---|---|---|");
    macro_rules! row {
        ($n:literal) => {{
            let (mops, st) = best_of::<$n>(Config::default(), threads, ops, pin);
            println!("| {} | {mops:.2} | {} |", $n, st.segs_alloc);
        }};
    }
    row!(64);
    row!(256);
    row!(1024);
    row!(4096);
    row!(16384);
}

fn ablate_garbage(threads: usize, ops: u64, pin: bool) {
    println!("Ablation C: MAX_GARBAGE reclamation threshold (pairs workload, {threads} threads, best of 5)\n");
    println!("| MAX_GARBAGE | Mops/s | cleanups | segs freed | live segs at end |");
    println!("|---|---|---|---|---|");
    for g in [1u64, 4, 16, 64, 256, u64::MAX / 2] {
        let cfg = Config::default().with_max_garbage(g);
        let (mops, st) = best_of::<256>(cfg, threads, ops, pin);
        let label = if g > 1_000_000 { "∞".to_string() } else { g.to_string() };
        println!(
            "| {label} | {mops:.2} | {} | {} | {} |",
            st.cleanups,
            st.segs_freed,
            st.live_segments()
        );
    }
}

fn main() {
    let args = Args::parse();
    let mode = std::env::args().nth(1).unwrap_or_default();
    let threads = args.num("threads", 4) as usize;
    let ops = args.num("ops", 400_000);
    let pin = !args.flag("no-pin");
    match mode.as_str() {
        "patience" => ablate_patience(threads, ops, pin),
        "segment" => ablate_segment(threads, ops, pin),
        "garbage" => ablate_garbage(threads, ops, pin),
        _ => {
            ablate_patience(threads, ops, pin);
            println!();
            ablate_segment(threads, ops, pin);
            println!();
            ablate_garbage(threads, ops, pin);
        }
    }
}
