//! The **cycle ledger**: hardware-counter attribution of the
//! fetch-and-add gap.
//!
//! ```text
//! cargo run -p wfq-bench --release --features cycles --bin cycle_ledger -- \
//!     [--backends faa,mutex,wf] [--backend scq] [--threads T] \
//!     [--pairs N] [--invocations I] [--json out.json] [--md out.md] \
//!     [--metrics-out out.prom] [--commit SHA] [--quick] [--no-pin]
//! ```
//!
//! The paper's claim is structural: the wait-free queue's fast path is one
//! F&A plus one CAS, so its cost should sit within a small constant of the
//! bare-F&A upper bound (§5.2). This binary measures that constant and then
//! *attributes* it: every backend runs the same enqueue–dequeue pair loop
//! under identical pinning while a [`wfq_obs::CounterGroup`] reads cycles,
//! instructions, cache misses, and branch misses around the measured
//! window, and builds carrying `--features cycles` additionally drain the
//! per-phase TSC ledger the `phase!` markers accumulate inside the queue
//! (F&A claim, `find_cell` walk, cell CAS, stats, slow path, hazard
//! bookkeeping, helping, segment allocation). The output is a differential
//! table splitting the WF−F&A cycle delta phase by phase, the normalized
//! `results/BENCH_cycles.json` snapshot, and the `wfq_cycles_*` Prometheus
//! exposition.
//!
//! Runs everywhere: when `perf_event_open` is denied (containers, CI,
//! `WFQ_PERF_DENY=1`) the counter layer degrades to TSC-only mode — cycle
//! numbers become TSC-tick estimates flagged `estimated`, the other
//! counters read 0, and the phase ledger (itself TSC-based) is unaffected.
//!
//! Methodology follows the harness (Georges et al.): `--invocations` fresh
//! queue+thread invocations per backend (plus one discarded warm-up
//! invocation), means with Student-t 95% CIs across invocations. Counter
//! windows cover exactly the measured loop of thread 0; the ledger delta
//! covers all threads' loops, normalized per operation.

use std::sync::Barrier;

use wfq_baselines::{BenchQueue, FaaBench, MutexQueue, QueueHandle, Scq, Wcq, Wf0};
use wfq_bench::Args;
use wfq_harness::cycles::{CyclesPoint, CyclesSeries, CyclesSnapshot, PerfMode, PhaseCost};
use wfq_harness::{
    attribute_gap, render_cycles_json, render_cycles_prometheus, stats, topology,
};
use wfq_obs::{
    ledger_totals, probe_overhead_split, CounterGroup, CounterKind, PerfStatus, ALL_COUNTERS,
    ALL_PHASES, NUM_COUNTERS, NUM_PHASES,
};
use wfqueue::RawQueue;

fn die(msg: &str) -> ! {
    eprintln!("cycle_ledger: {msg}");
    std::process::exit(2);
}

#[derive(Clone)]
struct LedgerConfig {
    threads: usize,
    /// Enqueue–dequeue pairs per thread per invocation.
    pairs: u64,
    /// Measured invocations (one extra warm-up invocation is discarded).
    invocations: usize,
    pin: bool,
}

/// One invocation's normalized readings.
struct InvocationSample {
    /// Per-op counter deltas from thread 0's window.
    per_op: [f64; NUM_COUNTERS],
    /// Whether the cycles slot is a true hardware reading.
    cycles_measured: bool,
    /// Per-op phase self-ticks across all threads (all zero for
    /// unledgered backends or hooks-off builds).
    phase_ticks: [f64; NUM_PHASES],
    /// Per-op phase entry counts.
    phase_entries: [f64; NUM_PHASES],
    /// This invocation's `(full, inner)` per-span hook price, probed on
    /// the measurement thread right before the loop (per-invocation
    /// probing tracks TSC/frequency drift a single startup probe misses).
    span_full: f64,
    span_inner: f64,
    /// Counter sourcing reported by thread 0's group.
    perf: PerfMode,
}

fn run_pairs<H: QueueHandle>(h: &mut H, pairs: u64) {
    for i in 1..=pairs {
        h.enqueue(i);
        std::hint::black_box(h.dequeue());
    }
}

fn perf_mode_of(status: &PerfStatus) -> PerfMode {
    match status {
        PerfStatus::Hardware { rdpmc } => PerfMode {
            mode: "hardware".into(),
            rdpmc: *rdpmc,
            reason: String::new(),
        },
        PerfStatus::TscOnly { reason } => PerfMode {
            mode: "tsc-only".into(),
            rdpmc: false,
            reason: reason.clone(),
        },
    }
}

fn run_invocation<Q: BenchQueue>(cfg: &LedgerConfig) -> InvocationSample {
    let q = Q::new();
    // Workers plus the coordinating main thread: the ledger-before
    // snapshot must be taken *after* thread 0's in-situ hook probe (whose
    // spans would otherwise pollute this invocation's Faa ticks) and
    // *before* any measured op.
    let barrier = Barrier::new(cfg.threads + 1);
    let (thread0, ledger_delta) = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..cfg.threads {
            let q = &q;
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                if cfg.pin {
                    topology::pin_to_cpu(t);
                }
                let mut h = q.register();
                // Everyone touches the queue once before the measured
                // window so registration/first-segment costs land outside
                // the counters (value 1: 0 and u64::MAX are reserved).
                h.enqueue(1);
                std::hint::black_box(h.dequeue());
                if t == 0 {
                    // Probe the hook price here — same thread, same pin,
                    // same moment as the measured loop — rather than once
                    // at startup: the TSC cost of a span drifts with
                    // frequency scaling, and a stale probe over- or
                    // under-subtracts systematically.
                    let probe = probe_overhead_split();
                    let group = CounterGroup::open();
                    let perf = perf_mode_of(group.status());
                    barrier.wait(); // probes done; main snapshots the ledger
                    barrier.wait(); // ledger window open
                    let s0 = group.snapshot();
                    run_pairs(&mut h, cfg.pairs);
                    let s1 = group.snapshot();
                    Some((s1.delta_since(&s0), perf, probe))
                } else {
                    barrier.wait();
                    barrier.wait();
                    run_pairs(&mut h, cfg.pairs);
                    None
                }
            }));
        }
        barrier.wait(); // all threads registered, pre-touched, probed
        let ledger_before = ledger_totals();
        barrier.wait(); // release the measured loops
        let mut t0 = None;
        for h in handles {
            if let Some(r) = h.join().expect("measurement thread panicked") {
                t0 = Some(r);
            }
        }
        let t0 = t0.expect("thread 0 reports the counter window");
        (t0, ledger_totals().delta_since(&ledger_before))
    });

    let (delta, perf, probe) = thread0;
    let ops_thread0 = (2 * cfg.pairs) as f64;
    let ops_all = ops_thread0 * cfg.threads as f64;
    let mut per_op = [0.0; NUM_COUNTERS];
    for kind in ALL_COUNTERS {
        per_op[kind as usize] = delta.count(kind) as f64 / ops_thread0;
    }
    let mut phase_ticks = [0.0; NUM_PHASES];
    let mut phase_entries = [0.0; NUM_PHASES];
    for p in ALL_PHASES {
        phase_ticks[p as usize] = ledger_delta.ticks_of(p) as f64 / ops_all;
        phase_entries[p as usize] = ledger_delta.entries_of(p) as f64 / ops_all;
    }
    InvocationSample {
        per_op,
        cycles_measured: delta.is_measured(CounterKind::Cycles),
        phase_ticks,
        phase_entries,
        span_full: probe.0 as f64,
        span_inner: probe.1 as f64,
        perf,
    }
}

/// Measures one backend: warm-up invocation discarded, then
/// `cfg.invocations` measured invocations aggregated into one
/// [`CyclesPoint`].
///
/// Every sample is de-biased with its own invocation's probed `(full,
/// inner)` per-span hook price before aggregation: each ledgered span
/// added ~`full` ticks to the measured op total and recorded ~`inner`
/// ticks of pure hook time as phase self-time, so subtracting
/// `entries × full` from the total and `entries × inner` from each phase
/// estimates the *uninstrumented* costs — the numbers a hooks-off build
/// would measure, and the ones the WF−F&A attribution is honest against.
/// The de-biased total is then clamped to the de-biased phase sum from
/// below: the Glue envelope brackets every op end to end, so an op's true
/// cost can never be less than what its own ledger accounted — a probe
/// that momentarily overestimates `full` must not push coverage past
/// 100%. Backends without ledger entries (F&A, mutex, hooks-off builds)
/// have zero entries and pass through unchanged.
fn measure_backend<Q: BenchQueue>(cfg: &LedgerConfig) -> (CyclesPoint, PerfMode) {
    eprintln!("  measuring {} ...", Q::NAME);
    let _ = run_invocation::<Q>(cfg); // warm-up (first-touch, calibration)
    let mut raw_cycles_sum = 0.0;
    let mut span_full_sum = 0.0;
    let samples: Vec<InvocationSample> = (0..cfg.invocations)
        .map(|_| {
            let mut s = run_invocation::<Q>(cfg);
            raw_cycles_sum += s.per_op[CounterKind::Cycles as usize];
            span_full_sum += s.span_full;
            // Every span (nested or not) adds ~`full` hook ticks to the
            // outer counter window, and records ~`inner` of them as its
            // own self-time.
            let entries_total: f64 = s.phase_entries.iter().sum();
            for p in ALL_PHASES {
                let i = p as usize;
                s.phase_ticks[i] =
                    (s.phase_ticks[i] - s.phase_entries[i] * s.span_inner).max(0.0);
            }
            // A nested span's remaining `full − inner` edge ticks land in
            // its *parent's* self-time. The nesting is static: every named
            // phase sits under the Glue envelope except SegAlloc, which
            // nests one deeper under FindCell.
            let edge = (s.span_full - s.span_inner).max(0.0);
            let glue = wfq_obs::Phase::Glue as usize;
            if s.phase_entries[glue] > 0.0 {
                let seg = wfq_obs::Phase::SegAlloc as usize;
                let fc = wfq_obs::Phase::FindCell as usize;
                let under_glue = entries_total - s.phase_entries[glue] - s.phase_entries[seg];
                s.phase_ticks[glue] = (s.phase_ticks[glue] - under_glue * edge).max(0.0);
                s.phase_ticks[fc] = (s.phase_ticks[fc] - s.phase_entries[seg] * edge).max(0.0);
            }
            let phase_sum: f64 = s.phase_ticks.iter().sum();
            s.per_op[CounterKind::Cycles as usize] = (s.per_op[CounterKind::Cycles as usize]
                - entries_total * s.span_full)
                .max(phase_sum);
            s
        })
        .collect();

    let cycles: Vec<f64> = samples
        .iter()
        .map(|s| s.per_op[CounterKind::Cycles as usize])
        .collect();
    let (cycles_mean, cycles_ci) = stats::confidence_interval_95(&cycles);
    let mut counters_per_op = [0.0; NUM_COUNTERS];
    for kind in ALL_COUNTERS {
        let xs: Vec<f64> = samples.iter().map(|s| s.per_op[kind as usize]).collect();
        counters_per_op[kind as usize] = stats::mean(&xs);
    }
    counters_per_op[CounterKind::Cycles as usize] = cycles_mean;

    // Phases with no entries anywhere (unledgered backend, hooks-off
    // build, or a phase this run never exercised at all) are omitted; a
    // phase that ran in any invocation is kept even when some invocations
    // saw zero entries, so its mean is over the same n as the totals.
    let mut phases = Vec::new();
    for p in ALL_PHASES {
        let ticks: Vec<f64> = samples.iter().map(|s| s.phase_ticks[p as usize]).collect();
        let entries: Vec<f64> = samples
            .iter()
            .map(|s| s.phase_entries[p as usize])
            .collect();
        if entries.iter().all(|e| *e == 0.0) {
            continue;
        }
        let (mean, ci_half) = stats::confidence_interval_95(&ticks);
        phases.push(PhaseCost {
            phase: p.name().to_string(),
            cycles_per_op: mean,
            ci_half,
            entries_per_op: stats::mean(&entries),
        });
    }
    let phase_sum: f64 = phases.iter().map(|p| p.cycles_per_op).sum();
    let raw_mean = raw_cycles_sum / cfg.invocations as f64;
    if (raw_mean - cycles_mean).abs() > 0.5 {
        eprintln!(
            "    {:.1} cycles/op as measured, {:.1} after hook de-bias \
             ({:.0} ticks/span × entries)",
            raw_mean,
            cycles_mean,
            span_full_sum / cfg.invocations as f64
        );
    }
    let point = CyclesPoint {
        threads: cfg.threads,
        counters_per_op,
        ci_half: cycles_ci,
        estimated: samples.iter().any(|s| !s.cycles_measured),
        attributed_pct: if cycles_mean > 0.0 && !phases.is_empty() {
            100.0 * phase_sum / cycles_mean
        } else {
            0.0
        },
        phases,
    };
    (point, samples[0].perf.clone())
}

fn render_markdown(snap: &CyclesSnapshot, overhead: (u64, u64)) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Cycle ledger\n");
    let _ = writeln!(
        out,
        "Counter source: **{}**{}{}. Phase hooks: {}; instrumented backends are \
         de-biased by the per-invocation probed hook price (startup probe ≈ {} \
         ticks/span, {} inside the window) to estimate uninstrumented costs, \
         with the total clamped from below to the phase sum.\n",
        snap.perf.mode,
        if snap.perf.rdpmc { " (rdpmc)" } else { "" },
        if snap.perf.reason.is_empty() {
            String::new()
        } else {
            format!(" — {}", snap.perf.reason)
        },
        if wfq_obs::CYCLES_ENABLED {
            "compiled in"
        } else {
            "compiled out"
        },
        overhead.0,
        overhead.1,
    );
    let _ = writeln!(
        out,
        "| queue | threads | cycles/op | instr/op | L1d miss/op | LLC miss/op | br miss/op | ledger coverage |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for s in &snap.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "| {} | {} | {:.1} ±{:.1}{} | {:.1} | {:.3} | {:.3} | {:.3} | {} |",
                s.name,
                p.threads,
                p.cycles_per_op(),
                p.ci_half,
                if p.estimated { " (est)" } else { "" },
                p.counter_per_op(CounterKind::Instructions),
                p.counter_per_op(CounterKind::L1dMisses),
                p.counter_per_op(CounterKind::LlcMisses),
                p.counter_per_op(CounterKind::BranchMisses),
                if p.phases.is_empty() {
                    "—".to_string()
                } else {
                    format!("{:.1}%", p.attributed_pct)
                },
            );
        }
    }
    if let Some(d) = &snap.delta {
        let _ = writeln!(
            out,
            "\n## The {} − {} gap, phase by phase\n",
            d.candidate, d.baseline
        );
        let _ = writeln!(
            out,
            "Gap: **{:+.1} cycles/op**; the ledger attributes **{:.1}%** of it.\n",
            d.cycle_delta_per_op, d.attributed_pct
        );
        let _ = writeln!(out, "| phase | cycles/op | gap contribution | share |");
        let _ = writeln!(out, "|---|---|---|---|");
        for p in &d.phases {
            let _ = writeln!(
                out,
                "| {} | {:.1} | {:.1} | {:.1}% |",
                p.phase, p.cycles_per_op, p.gap_contribution, p.share_pct
            );
        }
    }
    out
}

fn main() {
    let args = Args::parse();
    let quick = args.flag("quick");
    let cfg = LedgerConfig {
        threads: args.num("threads", 1) as usize,
        pairs: args.num("pairs", if quick { 20_000 } else { 400_000 }),
        invocations: args.num("invocations", if quick { 3 } else { 10 }) as usize,
        pin: !args.flag("no-pin"),
    };
    if cfg.threads == 0 || cfg.pairs == 0 || cfg.invocations == 0 {
        die("--threads, --pairs, and --invocations must be positive");
    }
    let backends: Vec<String> = args
        .get("backends")
        .unwrap_or("faa,mutex,wf")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .chain(args.get("backend").map(str::to_string))
        .collect();

    let hw = topology::num_cpus();
    let overhead = probe_overhead_split();
    eprintln!(
        "cycle_ledger: {} thread{} ({hw} hardware), {} pairs/invocation, {}+1 invocations, \
         phase hooks {} (probe ≈ {} ticks/span, {} inside the window)",
        cfg.threads,
        if cfg.threads == 1 { "" } else { "s" },
        cfg.pairs,
        cfg.invocations,
        if wfq_obs::CYCLES_ENABLED {
            "on"
        } else {
            "off — rebuild with --features cycles for the per-phase ledger"
        },
        overhead.0,
        overhead.1,
    );

    let mut series: Vec<CyclesSeries> = Vec::new();
    let mut perf: Option<PerfMode> = None;
    macro_rules! backend {
        ($q:ty) => {{
            let (point, mode) = measure_backend::<$q>(&cfg);
            perf.get_or_insert(mode);
            series.push(CyclesSeries {
                name: <$q as BenchQueue>::NAME.to_string(),
                points: vec![point],
            });
        }};
    }
    for b in &backends {
        match b.as_str() {
            "faa" => backend!(FaaBench),
            "mutex" => backend!(MutexQueue),
            "wf" => backend!(RawQueue),
            "wf0" => backend!(Wf0),
            "scq" => backend!(Scq),
            "wcq" => backend!(Wcq),
            other => die(&format!(
                "unknown backend {other:?} (faa, mutex, wf, wf0, scq, wcq)"
            )),
        }
    }
    let perf = perf.unwrap_or_else(|| die("no backend measured"));
    if perf.mode == "tsc-only" {
        eprintln!(
            "  note: perf counters unavailable ({}) — cycles are TSC-tick estimates, \
             cache/branch counters read 0",
            perf.reason
        );
    }

    // The headline artifact: attribute the WF−F&A delta phase by phase.
    let faa_name = <FaaBench as BenchQueue>::NAME;
    let wf_name = <RawQueue as BenchQueue>::NAME;
    let delta = {
        let find = |n: &str| {
            series
                .iter()
                .find(|s| s.name == n)
                .and_then(|s| s.points.first())
        };
        match (find(faa_name), find(wf_name)) {
            (Some(base), Some(cand)) if !cand.phases.is_empty() => {
                Some(attribute_gap(faa_name, base, wf_name, cand))
            }
            _ => None,
        }
    };

    let snap = CyclesSnapshot {
        commit: args.get("commit").map(str::to_string),
        benchmark: "cycle_ledger".into(),
        workload: "pairwise".into(),
        perf,
        series,
        delta,
    };

    print!("{}", render_markdown(&snap, overhead));
    if snap.delta.is_none() && wfq_obs::CYCLES_ENABLED {
        eprintln!(
            "  note: no gap attribution — it needs both the faa and wf backends in --backends"
        );
    }

    if let Some(path) = args.get("json") {
        std::fs::write(path, render_cycles_json(&snap)).expect("write json");
        eprintln!("json written to {path}");
    }
    if let Some(path) = args.get("md") {
        std::fs::write(path, render_markdown(&snap, overhead)).expect("write markdown");
        eprintln!("markdown written to {path}");
    }
    if let Some(path) = args.get("metrics-out") {
        std::fs::write(path, render_cycles_prometheus(&snap)).expect("write metrics");
        eprintln!("prometheus exposition written to {path}");
    }
}
