//! The **open-loop tail-latency observatory**: coordinated-omission-free
//! latency measurement across backends and offered arrival rates.
//!
//! ```text
//! cargo run -p wfq-bench --release --features op-sample --bin latency_observatory -- \
//!     [--backends wf,wf0,faa,scq,wcq] [--rates 250,1000,4000] [--ramp] \
//!     [--schedule fixed|poisson|bursty] [--threads T] [--ops N] \
//!     [--invocations I] [--seed S] [--overload] [--handicap-ns N] \
//!     [--json out.json] [--commit SHA] [--metrics-out out.prom] \
//!     [--quick] [--no-pin]
//! ```
//!
//! Unlike the closed-loop `latency` binary (which issues the next operation
//! only after the previous one returns, silently absorbing stalls — the
//! *coordinated omission* bias), every generator thread here pre-computes
//! its intended-start schedule from the offered rate and charges each
//! operation from its **intended** start, so a stall that delays 100
//! pending arrivals is billed 100 times. Quantiles carry Student-t 95% CIs
//! across invocations, and backends built with `--features op-sample`
//! additionally report per-path attribution (fast / slow / helped).
//!
//! `--rates` takes offered rates in **kops/s**; `--ramp` instead doubles
//! the rate from the first `--rates` entry (default 250) until the backend
//! saturates (generator lag exceeds 10% of the intended span) or 8 steps
//! pass — the throughput–latency frontier. `--overload` switches to the
//! 2:1 enqueue-biased `try_enqueue` mix so bounded backends report drops
//! and unbounded ones report queue growth. `--json` writes the committed
//! `results/BENCH_latency.json` schema; `--metrics-out` writes the
//! `wfq_op_latency_ns` Prometheus summary; `--handicap-ns` spins inside
//! the measured window (the regression-gate trip wire, as in `figure2`).

use wfq_baselines::{CcQueue, FaaBench, KpQueue, Lcrq, MsQueue, MutexQueue, Scq, Wcq, Wf0};
use wfq_bench::Args;
use wfq_harness::histogram::{fmt_ns, Histogram};
use wfq_harness::{
    measure_open_loop, render_latency_json, render_latency_prometheus, topology, ArrivalSchedule,
    LatencyPoint, LatencySeries, OpenLoopConfig, OpenLoopMeasurement,
};
use wfqueue::RawQueue;

fn base_config(args: &Args) -> OpenLoopConfig {
    let quick = args.flag("quick");
    let mut cfg = OpenLoopConfig {
        threads: args.num("threads", 1) as usize,
        total_ops: args.num("ops", if quick { 4_000 } else { 40_000 }),
        invocations: args.num("invocations", if quick { 2 } else { 5 }) as usize,
        seed: args.num("seed", 0xC0FFEE),
        ..OpenLoopConfig::default()
    };
    cfg.schedule = args
        .get("schedule")
        .map(|s| ArrivalSchedule::parse(s).unwrap_or_else(|| die(&format!("bad --schedule {s}"))))
        .unwrap_or(ArrivalSchedule::FixedRate);
    cfg.pin = !args.flag("no-pin");
    cfg.segment_ceiling = args.get("segment-ceiling").and_then(|s| s.parse().ok());
    cfg.handicap_ns = args.num("handicap-ns", 0);
    cfg.overload = args.flag("overload");
    if cfg.handicap_ns > 0 {
        eprintln!(
            "  handicap = {} ns/op (synthetic slowdown inside the measured latency)",
            cfg.handicap_ns
        );
    }
    cfg
}

fn die(msg: &str) -> ! {
    eprintln!("latency_observatory: {msg}");
    std::process::exit(2);
}

fn rates_kops(args: &Args) -> Vec<f64> {
    match args.get("rates") {
        Some(list) => list
            .split(',')
            .filter_map(|s| s.trim().parse::<f64>().ok())
            .filter(|r| *r > 0.0)
            .collect(),
        None => vec![250.0, 1000.0, 4000.0],
    }
}

fn to_point(m: &OpenLoopMeasurement) -> LatencyPoint {
    let (share_fast, share_slow, share_helped) = m.attribution.shares();
    LatencyPoint {
        rate_kops: m.offered_rate / 1e3,
        achieved_kops: m.achieved_rate / 1e3,
        saturated: m.saturated,
        drops: m.drops,
        max_lag_ns: m.max_lag_ns,
        backlog: m.backlog,
        p50_ns: m.p50.mean_ns,
        p50_ci: m.p50.ci_half_ns,
        p90_ns: m.p90.mean_ns,
        p90_ci: m.p90.ci_half_ns,
        p99_ns: m.p99.mean_ns,
        p99_ci: m.p99.ci_half_ns,
        p999_ns: m.p999.mean_ns,
        p999_ci: m.p999.ci_half_ns,
        max_ns: m.max.mean_ns,
        max_ci: m.max.ci_half_ns,
        share_fast,
        share_slow,
        share_helped,
        sampled: m.attribution.sampled(),
    }
}

fn print_point(name: &str, m: &OpenLoopMeasurement) {
    let sat = if m.saturated { "  SATURATED" } else { "" };
    eprintln!(
        "    {:>8.0} kops/s offered, {:>8.0} achieved: p50 {} p99 {} p99.9 {} max {}{}",
        m.offered_rate / 1e3,
        m.achieved_rate / 1e3,
        fmt_ns(m.p50.mean_ns as u64),
        fmt_ns(m.p99.mean_ns as u64),
        fmt_ns(m.p999.mean_ns as u64),
        fmt_ns(m.max.mean_ns as u64),
        sat,
    );
    if m.attribution.sampled() > 0 {
        let (f, s, h) = m.attribution.shares();
        eprintln!(
            "             paths: fast {:.1}% slow {:.1}% helped {:.2}% ({} sampled)",
            f * 100.0,
            s * 100.0,
            h * 100.0,
            m.attribution.sampled()
        );
    }
    if m.drops > 0 || m.backlog != 0 {
        eprintln!(
            "             overload: {} drops, backlog {:+}",
            m.drops, m.backlog
        );
    }
    let _ = name;
}

/// Measures one backend over the rate list (or the saturation ramp),
/// returning its frontier line and merged histogram.
fn run_backend<Q: wfq_baselines::BenchQueue>(
    args: &Args,
    cfg: &OpenLoopConfig,
    rates: &[f64],
) -> (LatencySeries, Histogram) {
    eprintln!("  measuring {} ...", Q::NAME);
    let mut points = Vec::new();
    let mut merged = Histogram::new();
    if args.flag("ramp") {
        // Frontier sweep: double the offered rate until saturation.
        let mut rate = rates.first().copied().unwrap_or(250.0) * 1e3;
        for _ in 0..8 {
            let mut c = cfg.clone();
            c.rate_ops_per_sec = rate;
            let m = measure_open_loop::<Q>(&c);
            print_point(Q::NAME, &m);
            merged.merge(&m.merged);
            let saturated = m.saturated;
            points.push(to_point(&m));
            if saturated {
                break;
            }
            rate *= 2.0;
        }
    } else {
        for &kops in rates {
            let mut c = cfg.clone();
            c.rate_ops_per_sec = kops * 1e3;
            let m = measure_open_loop::<Q>(&c);
            print_point(Q::NAME, &m);
            merged.merge(&m.merged);
            points.push(to_point(&m));
        }
    }
    (
        LatencySeries {
            name: Q::NAME.to_string(),
            points,
        },
        merged,
    )
}

fn main() {
    let args = Args::parse();
    let cfg = base_config(&args);
    let rates = rates_kops(&args);
    if rates.is_empty() {
        die("--rates needs at least one positive kops value");
    }
    let backends: Vec<String> = args
        .get("backends")
        .unwrap_or("wf,wf0,faa,scq,wcq")
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let hw = topology::num_cpus();
    eprintln!(
        "latency_observatory: schedule = {}, threads = {} ({} hardware thread{}), \
         ops/invocation = {}, invocations = {}, {} ",
        cfg.schedule.name(),
        cfg.threads,
        hw,
        if hw == 1 { "" } else { "s" },
        cfg.total_ops,
        cfg.invocations,
        if args.flag("ramp") {
            format!("ramp from {} kops/s", rates[0])
        } else {
            format!("rates = {rates:?} kops/s")
        },
    );
    if cfg.threads > hw {
        eprintln!(
            "  warning: oversubscribed — {} generator threads on {hw} hardware \
             thread{}; latencies include scheduler delay",
            cfg.threads,
            if hw == 1 { "" } else { "s" }
        );
    }
    if !wfqueue::SAMPLING_ENABLED {
        eprintln!(
            "  note: built without --features op-sample; attribution shares will be 0/0/0"
        );
    }

    let mut series: Vec<LatencySeries> = Vec::new();
    let mut histograms: Vec<(String, Histogram)> = Vec::new();
    macro_rules! backend {
        ($name:expr, $q:ty) => {{
            let (s, h) = run_backend::<$q>(&args, &cfg, &rates);
            histograms.push((s.name.clone(), h));
            series.push(s);
            $name
        }};
    }
    for b in &backends {
        let _: &str = match b.as_str() {
            "wf" => backend!("wf", RawQueue),
            "wf0" => backend!("wf0", Wf0),
            "faa" => backend!("faa", FaaBench),
            "ccqueue" => backend!("ccqueue", CcQueue),
            "msqueue" => backend!("msqueue", MsQueue),
            "lcrq" => backend!("lcrq", Lcrq),
            "kpqueue" => backend!("kpqueue", KpQueue),
            "mutex" => backend!("mutex", MutexQueue),
            "scq" => backend!("scq", Scq),
            "wcq" => backend!("wcq", Wcq),
            other => die(&format!(
                "unknown backend {other:?} (wf, wf0, faa, ccqueue, msqueue, lcrq, kpqueue, mutex, scq, wcq)"
            )),
        };
    }

    // Human-readable frontier table on stdout.
    println!(
        "| queue | rate (kops/s) | achieved | p50 | p99 | p99.9 | max | fast/slow/helped | state |"
    );
    println!("|---|---|---|---|---|---|---|---|---|");
    for s in &series {
        for p in &s.points {
            let state = if p.saturated {
                "saturated".to_string()
            } else if p.drops > 0 {
                format!("{} drops", p.drops)
            } else {
                "open".to_string()
            };
            println!(
                "| {} | {:.0} | {:.0} | {} | {} | {} | {} | {:.2}/{:.2}/{:.2} | {} |",
                s.name,
                p.rate_kops,
                p.achieved_kops,
                fmt_ns(p.p50_ns as u64),
                fmt_ns(p.p99_ns as u64),
                fmt_ns(p.p999_ns as u64),
                fmt_ns(p.max_ns as u64),
                p.share_fast,
                p.share_slow,
                p.share_helped,
                state,
            );
        }
    }

    if let Some(path) = args.get("json") {
        let doc = render_latency_json(
            cfg.schedule.name(),
            cfg.threads,
            args.get("commit"),
            &series,
        );
        std::fs::write(path, doc).expect("write json");
        eprintln!("json written to {path}");
    }
    if let Some(path) = args.get("metrics-out") {
        let pairs: Vec<(&str, &Histogram)> = histograms
            .iter()
            .map(|(n, h)| (n.as_str(), h))
            .collect();
        std::fs::write(path, render_latency_prometheus(&pairs)).expect("write metrics");
        eprintln!("prometheus summary written to {path}");
    }
}
