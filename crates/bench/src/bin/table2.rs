//! Regenerates the paper's **Table 2**: breakdown of execution paths for
//! the WF-0 configuration on the 50%-enqueues benchmark, including
//! oversubscribed thread counts (the paper's 144/288-thread columns).
//!
//! ```text
//! cargo run -p wfq-bench --release --bin table2 -- [--ops N] [--patience P]
//! ```

use wfq_bench::Args;
use wfq_harness::breakdown::{render_table2, run_breakdown};
use wfq_harness::topology;
use wfq_harness::{BenchConfig, Workload};

fn main() {
    let args = Args::parse();
    let hw = topology::num_cpus();
    let patience = args.num("patience", 0) as u32;
    // The paper uses 36 / 72 / 144 / 288 on a 72-hardware-thread machine:
    // half, full, 2× and 4× oversubscription. Reproduce those ratios.
    let mut counts: Vec<usize> = vec![(hw / 2).max(1), hw, hw * 2, hw * 4];
    counts.dedup();

    let mut rows = Vec::new();
    for &threads in &counts {
        let cfg = BenchConfig {
            threads,
            total_ops: args.num("ops", 400_000),
            workload: Workload::FiftyEnqueues,
            pin: !args.flag("no-pin"),
            ..BenchConfig::default()
        };
        eprintln!("table2: running WF-{patience} with {threads} threads ...");
        rows.push(run_breakdown(patience, &cfg));
    }

    println!(
        "Table 2: breakdown of execution paths of WF-{patience} \
         (50%-enqueues benchmark, {} hardware threads; counts beyond {} are oversubscribed)\n",
        hw, hw
    );
    println!("{}", render_table2(&rows));
    for r in &rows {
        eprintln!(
            "  {} threads: {} enq, {} deq, {} cleanups, {} segments freed",
            r.threads,
            r.stats.enqueues(),
            r.stats.dequeues(),
            r.stats.cleanups,
            r.stats.segs_freed
        );
    }
}
