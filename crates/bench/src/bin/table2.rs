//! Regenerates the paper's **Table 2**: breakdown of execution paths for
//! the WF-0 configuration on the 50%-enqueues benchmark, including
//! oversubscribed thread counts (the paper's 144/288-thread columns).
//!
//! ```text
//! cargo run -p wfq-bench --release --bin table2 -- [--ops N] [--patience P] \
//!     [--backend wf|scq|wcq] [--segment-ceiling S] [--batch K] \
//!     [--metrics-out metrics.prom] [--trace out.trace.json]
//! ```
//!
//! `--metrics-out` writes the highest-thread-count run's statistics in the
//! Prometheus text exposition format; `--trace` drains the flight recorders
//! into a Chrome trace file (build with `--features trace` for events).
//! `--batch K` swaps the workload for batched pairs of width `K` so the
//! breakdown (and the stats' `batch` line) shows how many elements the
//! one-FAA batch fast path absorbed versus straggler fallbacks.
//! `--backend scq|wcq` runs the same sweep on the bounded-ring backends
//! through the `QueueBackend` trait (their `stats()` fill the same
//! taxonomy; `--patience` only applies to the default `wf` backend — the
//! rings run at their own defaults).

use wfq_baselines::{BenchQueue, Scq, Wcq};
use wfq_bench::Args;
use wfq_harness::breakdown::{render_table2, run_breakdown, run_breakdown_on, Breakdown};
use wfq_harness::topology;
use wfq_harness::{BenchConfig, Workload};

fn main() {
    let args = Args::parse();
    let hw = topology::num_cpus();
    let patience = args.num("patience", 0) as u32;
    let backend = args.get("backend").unwrap_or("wf").to_string();
    let workload = match args.get("batch").and_then(|s| s.parse::<u32>().ok()) {
        Some(k) => Workload::BatchPairs(k.max(1)),
        None => Workload::FiftyEnqueues,
    };
    // The paper uses 36 / 72 / 144 / 288 on a 72-hardware-thread machine:
    // half, full, 2× and 4× oversubscription. Reproduce those ratios.
    let mut counts: Vec<usize> = vec![(hw / 2).max(1), hw, hw * 2, hw * 4];
    counts.dedup();

    let mut rows = Vec::new();
    for &threads in &counts {
        let cfg = BenchConfig {
            threads,
            total_ops: args.num("ops", 400_000),
            workload,
            pin: !args.flag("no-pin"),
            segment_ceiling: args.get("segment-ceiling").and_then(|s| s.parse().ok()),
            ..BenchConfig::default()
        };
        let row: Breakdown = match backend.as_str() {
            "wf" => {
                eprintln!("table2: running WF-{patience} with {threads} threads ...");
                run_breakdown(patience, &cfg)
            }
            "scq" => {
                eprintln!("table2: running {} with {threads} threads ...", Scq::NAME);
                run_breakdown_on::<Scq>(&cfg)
            }
            "wcq" => {
                eprintln!("table2: running {} with {threads} threads ...", Wcq::NAME);
                run_breakdown_on::<Wcq>(&cfg)
            }
            other => panic!("unknown --backend {other:?} (expected wf, scq or wcq)"),
        };
        rows.push(row);
    }

    let title = match backend.as_str() {
        "wf" => format!("WF-{patience}"),
        "scq" => Scq::NAME.to_string(),
        _ => Wcq::NAME.to_string(),
    };
    println!(
        "Table 2: breakdown of execution paths of {title} \
         ({} benchmark, {} hardware threads; counts beyond {} are oversubscribed)\n",
        workload.name(),
        hw,
        hw
    );
    println!("{}", render_table2(&rows));
    // The full per-run path breakdown, in QueueStats' own Table-2 layout
    // (shared with examples/telemetry.rs — no ad-hoc stat printing here).
    for r in &rows {
        eprintln!("-- {} threads --\n{}\n", r.threads, r.stats);
    }

    if let Some(path) = args.get("metrics-out") {
        let last = rows.last().expect("at least one run");
        wfq_harness::write_metrics(std::path::Path::new(path), &last.stats, None)
            .expect("write metrics");
        eprintln!(
            "metrics for the {}-thread run written to {path}",
            last.threads
        );
    }
    if let Some(path) = args.get("trace") {
        let events = wfq_harness::dump_chrome_trace(std::path::Path::new(path))
            .expect("write chrome trace");
        eprintln!(
            "chrome trace written to {path} ({events} events{})",
            if wfq_obs::ENABLED {
                ""
            } else {
                "; rebuild with --features trace to record events"
            }
        );
    }
}
