//! Extension experiment: per-operation **latency percentiles** under
//! contention — the "predictable performance" half of the paper's opening
//! sentence, which Figure 2's throughput numbers don't show.
//!
//! ```text
//! cargo run -p wfq-bench --release --bin latency -- [--threads T] [--ops N]
//! ```
//!
//! Each thread runs the pairs workload and records every operation's wall
//! time in a log-bucketed histogram; per-queue histograms are merged and
//! the p50/p99/p99.9/max row is printed. Wait-free designs bound the
//! worst case; blocking designs (CC-Queue, mutex) show unbounded tails
//! when a lock holder or combiner is descheduled — most visible at
//! oversubscribed thread counts.

use std::sync::{Barrier, Mutex};
use std::time::Instant;

use wfq_baselines::{
    BenchQueue, CcQueue, FaaBench, KpQueue, Lcrq, MsQueue, MutexQueue, QueueHandle, Wf0,
};
use wfq_bench::Args;
use wfq_harness::histogram::Histogram;
use wfq_harness::topology;
use wfqueue::RawQueue;

fn run<Q: BenchQueue>(threads: usize, total_ops: u64, pin: bool) -> Histogram {
    let q = Q::new();
    let pairs = (total_ops / threads as u64 / 2).max(1);
    let barrier = Barrier::new(threads);
    let merged = Mutex::new(Histogram::new());
    std::thread::scope(|s| {
        for t in 0..threads {
            let q = &q;
            let barrier = &barrier;
            let merged = &merged;
            s.spawn(move || {
                if pin {
                    topology::pin_to_cpu(t);
                }
                let mut h = q.register();
                let mut hist = Histogram::new();
                let tag = ((t as u64 + 1) << 40) | 1;
                barrier.wait();
                for i in 0..pairs {
                    let t0 = Instant::now();
                    h.enqueue(tag + i);
                    hist.record(t0.elapsed().as_nanos() as u64);
                    let t1 = Instant::now();
                    let _ = h.dequeue();
                    hist.record(t1.elapsed().as_nanos() as u64);
                }
                merged.lock().unwrap().merge(&hist);
            });
        }
    });
    merged.into_inner().unwrap()
}

fn main() {
    let args = Args::parse();
    let threads = args.num("threads", (topology::num_cpus() * 2).max(4) as u64) as usize;
    let ops = args.num("ops", 400_000);
    let pin = !args.flag("no-pin");
    let hw = topology::num_cpus();
    println!(
        "Per-operation latency, pairs workload, {threads} threads, {ops} ops \
         ({hw} hardware thread{})",
        if hw == 1 { "" } else { "s" }
    );
    if threads > hw {
        println!(
            "warning: oversubscribed — {threads} software threads share {hw} hardware \
             thread{}; tails below include scheduler delay, and this closed loop \
             also coordinates omission (see latency_observatory for the open-loop \
             measurement)",
            if hw == 1 { "" } else { "s" }
        );
    }
    println!();
    println!("| queue | p50 | p99 | p99.9 | max |");
    println!("|---|---|---|---|---|");
    macro_rules! row {
        ($q:ty) => {{
            let h = run::<$q>(threads, ops, pin);
            println!(
                "| {} | {} | {} | {} | {} |",
                <$q as BenchQueue>::NAME,
                wfq_harness::histogram::fmt_ns(h.quantile(0.50)),
                wfq_harness::histogram::fmt_ns(h.quantile(0.99)),
                wfq_harness::histogram::fmt_ns(h.quantile(0.999)),
                wfq_harness::histogram::fmt_ns(h.max()),
            );
        }};
    }
    row!(FaaBench);
    row!(RawQueue);
    row!(Wf0);
    row!(Lcrq);
    row!(MsQueue);
    row!(CcQueue);
    row!(KpQueue);
    row!(MutexQueue);
    println!(
        "\nnote: on a multi-hardware-thread host the blocking designs' max \
         column grows with descheduling; wait-free designs stay bounded."
    );
}
