//! Regenerates the paper's **Figure 2**: throughput of WF-10, WF-0, F&A,
//! CCQUEUE, MSQUEUE, LCRQ (plus a MUTEX reference) as a function of thread
//! count, for both workloads.
//!
//! ```text
//! cargo run -p wfq-bench --release --bin figure2 -- \
//!     [--workload pairs|fifty|both] [--threads 1,2,4,8] [--ops N] \
//!     [--segment-ceiling S] [--batch K] [--handicap-ns N] [--commit SHA] \
//!     [--full] [--quick] [--csv out.csv] [--json out.json] [--trace out.trace.json]
//! ```
//!
//! `--batch K` additionally runs the batched-pairs workload (one FAA per
//! `K` operations on WF-10/WF-0, the element loop on the baselines; see
//! DESIGN.md §10); its series is emitted under the `batch_pairs` label.
//!
//! `--full` uses the paper's exact parameters (10^7 ops, 20 iterations,
//! 10 invocations); the default is scaled down to finish in minutes on a
//! small host. `--quick` shrinks further for smoke tests.
//!
//! `--json` writes the machine-readable result document (the committed
//! `results/BENCH_pairwise.json` snapshot format); `--commit SHA` stamps
//! the snapshot with the commit it measured (what `wfq-regress` expects of
//! baselines); with `--workload both` the workload name is appended before
//! the extension. `--handicap-ns N` injects a synthetic, *non-excluded*
//! per-operation slowdown — only useful for demonstrating that the
//! regression gate trips (see `.github/workflows/ci.yml`, job `regress`).
//! `--trace` drains the
//! flight recorders into a Chrome trace file — build with `--features
//! trace` for it to contain events.

use std::fmt::Write as _;

use wfq_baselines::{CcQueue, FaaBench, KpQueue, Lcrq, MsQueue, MutexQueue, Scq, Wcq, Wf0};
use wfq_bench::{default_ops, default_thread_sweep, Args};
use wfq_harness::{
    render_csv, render_markdown, report::render_json_with_commit, run_series, BenchConfig, Series,
    Workload,
};
use wfqueue::RawQueue;

/// `path` with `.{label}` inserted before the extension (`a/b.json`,
/// `pairs` → `a/b.pairs.json`); used when one invocation emits one JSON
/// file per workload.
fn suffixed(path: &str, label: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}.{label}.{ext}"),
        None => format!("{path}.{label}"),
    }
}

fn sweep(args: &Args) -> Vec<usize> {
    match args.get("threads") {
        Some(list) => list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        None => default_thread_sweep(),
    }
}

fn config(args: &Args, workload: Workload) -> BenchConfig {
    let full = args.flag("full");
    let quick = args.flag("quick");
    let mut cfg = if full {
        BenchConfig::paper(workload)
    } else if quick {
        BenchConfig::quick(workload)
    } else {
        BenchConfig {
            workload,
            total_ops: default_ops(false),
            max_iterations: 10,
            invocations: 5,
            ..BenchConfig::default()
        }
    };
    cfg.total_ops = args.num("ops", cfg.total_ops);
    cfg.invocations = args.num("invocations", cfg.invocations as u64) as usize;
    cfg.pin = !args.flag("no-pin");
    // Bounded-memory mode: price the wait-free queue's segment ceiling
    // against the unbounded baselines (only WF-10/WF-0 honor it).
    cfg.segment_ceiling = args.get("segment-ceiling").and_then(|s| s.parse().ok());
    cfg.handicap_ns = args.num("handicap-ns", 0);
    if cfg.handicap_ns > 0 {
        eprintln!(
            "  handicap = {} ns/op (synthetic slowdown, NOT work-excluded)",
            cfg.handicap_ns
        );
    }
    cfg
}

fn run_workload(args: &Args, workload: Workload, threads: &[usize]) -> Vec<Series> {
    let cfg = config(args, workload);
    eprintln!(
        "figure2: workload = {}, threads = {threads:?}, ops/iter = {}, invocations = {}",
        workload.name(),
        cfg.total_ops,
        cfg.invocations
    );
    if let Some(c) = cfg.segment_ceiling {
        eprintln!("  segment ceiling = {c} (honored by WF-10 and WF-0 only)");
    }
    let mut all = Vec::new();
    macro_rules! series {
        ($q:ty) => {{
            eprintln!("  measuring {} ...", <$q as wfq_baselines::BenchQueue>::NAME);
            all.push(run_series::<$q>(threads, &cfg));
        }};
    }
    series!(RawQueue); // WF-10
    series!(Wf0);
    series!(FaaBench);
    series!(CcQueue);
    series!(MsQueue);
    series!(Lcrq);
    series!(KpQueue);
    series!(MutexQueue);
    // The bounded-ring family (ROADMAP item 2): SCQ's indirect ring and
    // its wait-free successor, both far below capacity on these workloads.
    series!(Scq);
    series!(Wcq);
    all
}

fn main() {
    let args = Args::parse();
    let threads = sweep(&args);
    let which = args.get("workload").unwrap_or("both").to_string();

    let mut md = String::new();
    let mut csv = String::new();
    let mut json_out: Vec<(&str, Vec<Series>)> = Vec::new();
    if which == "pairs" || which == "both" {
        let series = run_workload(&args, Workload::Pairs, &threads);
        md.push_str(&render_markdown(
            &series,
            "Figure 2 (top): enqueue-dequeue pairs",
        ));
        md.push('\n');
        let _ = write!(csv, "# workload=pairs\n{}", render_csv(&series));
        json_out.push(("pairwise", series));
    }
    if which == "fifty" || which == "both" {
        let series = run_workload(&args, Workload::FiftyEnqueues, &threads);
        md.push_str(&render_markdown(&series, "Figure 2 (bottom): 50%-enqueues"));
        md.push('\n');
        let _ = write!(csv, "# workload=fifty\n{}", render_csv(&series));
        json_out.push(("fifty_enqueues", series));
    }
    if let Some(k) = args.get("batch").and_then(|s| s.parse::<u32>().ok()) {
        let k = k.max(1);
        let series = run_workload(&args, Workload::BatchPairs(k), &threads);
        md.push_str(&render_markdown(
            &series,
            &format!("Batched enqueue-dequeue pairs (k = {k}, one FAA per batch on WF-*)"),
        ));
        md.push('\n');
        let _ = write!(csv, "# workload=batch k={k}\n{}", render_csv(&series));
        json_out.push(("batch_pairs", series));
    }

    println!("{md}");
    if let Some(path) = args.get("csv") {
        std::fs::write(path, csv).expect("write csv");
        eprintln!("csv written to {path}");
    }
    if let Some(path) = args.get("json") {
        let commit = args.get("commit");
        for (label, series) in &json_out {
            let path = if json_out.len() > 1 {
                suffixed(path, label)
            } else {
                path.to_string()
            };
            std::fs::write(&path, render_json_with_commit("figure2", label, commit, series))
                .expect("write json");
            eprintln!("json written to {path}");
        }
    }
    if let Some(path) = args.get("trace") {
        let events = wfq_harness::dump_chrome_trace(std::path::Path::new(path))
            .expect("write chrome trace");
        eprintln!(
            "chrome trace written to {path} ({events} events{})",
            if wfq_obs::ENABLED {
                ""
            } else {
                "; rebuild with --features trace to record events"
            }
        );
    }
}
