//! Regenerates the paper's **Figure 2**: throughput of WF-10, WF-0, F&A,
//! CCQUEUE, MSQUEUE, LCRQ (plus a MUTEX reference) as a function of thread
//! count, for both workloads.
//!
//! ```text
//! cargo run -p wfq-bench --release --bin figure2 -- \
//!     [--workload pairs|fifty|both] [--threads 1,2,4,8] [--ops N] \
//!     [--full] [--quick] [--csv out.csv]
//! ```
//!
//! `--full` uses the paper's exact parameters (10^7 ops, 20 iterations,
//! 10 invocations); the default is scaled down to finish in minutes on a
//! small host. `--quick` shrinks further for smoke tests.

use std::fmt::Write as _;

use wfq_baselines::{CcQueue, FaaBench, KpQueue, Lcrq, MsQueue, MutexQueue, Wf0};
use wfq_bench::{default_ops, default_thread_sweep, Args};
use wfq_harness::{render_csv, render_markdown, run_series, BenchConfig, Series, Workload};
use wfqueue::RawQueue;

fn sweep(args: &Args) -> Vec<usize> {
    match args.get("threads") {
        Some(list) => list
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        None => default_thread_sweep(),
    }
}

fn config(args: &Args, workload: Workload) -> BenchConfig {
    let full = args.flag("full");
    let quick = args.flag("quick");
    let mut cfg = if full {
        BenchConfig::paper(workload)
    } else if quick {
        BenchConfig::quick(workload)
    } else {
        BenchConfig {
            workload,
            total_ops: default_ops(false),
            max_iterations: 10,
            invocations: 5,
            ..BenchConfig::default()
        }
    };
    cfg.total_ops = args.num("ops", cfg.total_ops);
    cfg.invocations = args.num("invocations", cfg.invocations as u64) as usize;
    cfg.pin = !args.flag("no-pin");
    cfg
}

fn run_workload(args: &Args, workload: Workload, threads: &[usize]) -> Vec<Series> {
    let cfg = config(args, workload);
    eprintln!(
        "figure2: workload = {}, threads = {threads:?}, ops/iter = {}, invocations = {}",
        workload.name(),
        cfg.total_ops,
        cfg.invocations
    );
    let mut all = Vec::new();
    macro_rules! series {
        ($q:ty) => {{
            eprintln!("  measuring {} ...", <$q as wfq_baselines::BenchQueue>::NAME);
            all.push(run_series::<$q>(threads, &cfg));
        }};
    }
    series!(RawQueue); // WF-10
    series!(Wf0);
    series!(FaaBench);
    series!(CcQueue);
    series!(MsQueue);
    series!(Lcrq);
    series!(KpQueue);
    series!(MutexQueue);
    all
}

fn main() {
    let args = Args::parse();
    let threads = sweep(&args);
    let which = args.get("workload").unwrap_or("both").to_string();

    let mut md = String::new();
    let mut csv = String::new();
    if which == "pairs" || which == "both" {
        let series = run_workload(&args, Workload::Pairs, &threads);
        md.push_str(&render_markdown(
            &series,
            "Figure 2 (top): enqueue-dequeue pairs",
        ));
        md.push('\n');
        let _ = write!(csv, "# workload=pairs\n{}", render_csv(&series));
    }
    if which == "fifty" || which == "both" {
        let series = run_workload(&args, Workload::FiftyEnqueues, &threads);
        md.push_str(&render_markdown(&series, "Figure 2 (bottom): 50%-enqueues"));
        md.push('\n');
        let _ = write!(csv, "# workload=fifty\n{}", render_csv(&series));
    }

    println!("{md}");
    if let Some(path) = args.get("csv") {
        std::fs::write(path, csv).expect("write csv");
        eprintln!("csv written to {path}");
    }
}
