//! Shared plumbing for the benchmark binaries (`src/bin/`) and the
//! Criterion micro-benchmarks (`benches/`).
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1`  | Table 1 — platform summary |
//! | `figure2` | Figure 2 — throughput vs. threads, both workloads |
//! | `table2`  | Table 2 — WF-0 execution-path breakdown |
//! | `ablate`  | design-choice ablations (PATIENCE, segment size, MAX_GARBAGE) |

use wfq_harness::topology;

pub mod microbench;

/// Tiny argv parser: `--key value` and bare flags.
#[derive(Debug, Default)]
pub struct Args {
    pairs: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        Self::from_raw(&raw)
    }

    /// Parses a pre-split argv (testable).
    pub fn from_raw(raw: &[String]) -> Self {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let key = raw[i].trim_start_matches('-').to_string();
            if i + 1 < raw.len() && !raw[i + 1].starts_with('-') {
                pairs.push((key, Some(raw[i + 1].clone())));
                i += 2;
            } else {
                pairs.push((key, None));
                i += 1;
            }
        }
        Self { pairs }
    }

    /// Value of `--key`, if present with a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Whether `--key` appeared at all.
    pub fn flag(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }

    /// Parsed numeric value of `--key`, or `default`.
    pub fn num(&self, key: &str, default: u64) -> u64 {
        self.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
    }
}

/// Default thread sweep for this host: 1, then powers of two up to 4× the
/// hardware threads (the paper sweeps to the machine's full thread count
/// and Table 2 oversubscribes beyond it).
pub fn default_thread_sweep() -> Vec<usize> {
    let hw = topology::num_cpus();
    let mut v = vec![1usize];
    let mut t = 2;
    while t <= hw * 4 {
        v.push(t);
        t *= 2;
    }
    v.dedup();
    v
}

/// Scales the paper's 10^7 operations to something tractable for the host
/// unless the user asked for the full run (`--full`).
pub fn default_ops(full: bool) -> u64 {
    if full {
        10_000_000
    } else {
        500_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_key_value_and_flags() {
        let a = Args::from_raw(&argv(&["--workload", "pairs", "--full", "--ops", "1000"]));
        assert_eq!(a.get("workload"), Some("pairs"));
        assert!(a.flag("full"));
        assert_eq!(a.num("ops", 5), 1000);
        assert_eq!(a.num("missing", 5), 5);
    }

    #[test]
    fn sweep_starts_at_one_and_is_increasing() {
        let s = default_thread_sweep();
        assert_eq!(s[0], 1);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn ops_scaling() {
        assert_eq!(default_ops(true), 10_000_000);
        assert!(default_ops(false) < 10_000_000);
    }
}
