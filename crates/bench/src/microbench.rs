//! Minimal self-contained micro-benchmark runner.
//!
//! The repository must build with no external crates, so the `benches/`
//! targets use this instead of Criterion. The API is deliberately a small
//! subset of Criterion's (`group` / `bench_function` / `Bencher::iter`),
//! which kept the bench sources close to their original shape.
//!
//! Methodology: each benchmark is auto-calibrated (iteration count doubled
//! until one batch exceeds the per-sample budget), then `sample_size`
//! batches are timed and the per-iteration median, minimum, and mean are
//! reported. The median is the headline number — it is robust against
//! preemption outliers, which matters in shared CI containers.

use std::time::{Duration, Instant};

/// Top-level runner; collects groups and prints results to stdout.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Creates a runner with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> Group {
        println!("group {name}");
        Group {
            name: name.to_string(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A named group of benchmarks sharing sampling settings.
#[derive(Debug)]
pub struct Group {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

/// Per-iteration timing statistics of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Median ns/iter across samples.
    pub median_ns: f64,
    /// Fastest sample's ns/iter.
    pub min_ns: f64,
    /// Mean ns/iter across samples.
    pub mean_ns: f64,
    /// Iterations per timed batch after calibration.
    pub iters_per_sample: u64,
}

impl Group {
    /// Number of timed samples to collect (Criterion-compatible setter).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Total measurement budget, split across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its statistics.
    pub fn bench_function<F>(&mut self, label: &str, mut f: F) -> Stats
    where
        F: FnMut(&mut Bencher),
    {
        let budget = self.measurement_time.as_nanos() as u64 / self.sample_size as u64;

        // Calibrate: double the batch size until one batch fills its budget
        // (capped to keep pathological fast paths from overflowing).
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed.as_nanos() as u64 >= budget || iters >= 1 << 30 {
                break;
            }
            iters = iters.saturating_mul(2);
        }

        let mut per_iter: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let stats = Stats {
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            mean_ns: per_iter.iter().sum::<f64>() / per_iter.len() as f64,
            iters_per_sample: iters,
        };
        println!(
            "  {}/{label}: median {:.1} ns/iter (min {:.1}, mean {:.1}, {} samples x {} iters)",
            self.name, stats.median_ns, stats.min_ns, stats.mean_ns, self.sample_size, iters,
        );
        stats
    }

    /// Ends the group (parity with Criterion's API; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times one batch.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the closure time itself: receives the iteration count and
    /// returns the total elapsed time (Criterion's `iter_custom`).
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        self.elapsed = f(self.iters);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_and_stats_are_sane() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(5).measurement_time(Duration::from_millis(20));
        let s = g.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        g.finish();
        assert!(s.median_ns >= 0.0);
        assert!(s.min_ns <= s.mean_ns * 1.0001);
        assert!(s.iters_per_sample >= 1);
    }

    #[test]
    fn iter_custom_reports_what_the_closure_measured() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("selftest");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        let s = g.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(100 * iters))
        });
        g.finish();
        assert!((s.median_ns - 100.0).abs() < 1.0);
    }
}
