//! Criterion micro-version of Figure 2: per-operation cost of each queue
//! under the two paper workloads at a few contention levels.
//!
//! The `figure2` binary is the faithful reproduction (full Georges et al.
//! protocol); this bench gives quick, statistically tracked per-op numbers
//! via `cargo bench`.

use std::sync::Barrier;
use std::time::{Duration, Instant};

use wfq_baselines::{BenchQueue, CcQueue, FaaBench, Lcrq, MsQueue, MutexQueue, QueueHandle, Wf0};
use wfq_bench::microbench::Criterion;
use wfq_sync::XorShift64;
use wfqueue::RawQueue;

/// One timed burst: `ops` operations split over `threads` threads, pairs
/// workload. Returns total wall time of the slowest thread.
fn pairs_burst<Q: BenchQueue>(threads: usize, ops: u64) -> Duration {
    let q = Q::new();
    let per_pairs = (ops / threads as u64 / 2).max(1);
    let barrier = Barrier::new(threads);
    let mut worst = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut h = q.register();
                    let tag = ((t as u64 + 1) << 40) | 1;
                    barrier.wait();
                    let start = Instant::now();
                    for i in 0..per_pairs {
                        h.enqueue(tag + i);
                        let _ = h.dequeue();
                    }
                    start.elapsed()
                })
            })
            .collect();
        for h in handles {
            worst = worst.max(h.join().unwrap());
        }
    });
    worst
}

/// 50%-enqueues burst.
fn fifty_burst<Q: BenchQueue>(threads: usize, ops: u64) -> Duration {
    let q = Q::new();
    let per = (ops / threads as u64).max(1);
    let barrier = Barrier::new(threads);
    let mut worst = Duration::ZERO;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let q = &q;
                let barrier = &barrier;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut rng = XorShift64::for_stream(3, t as u64);
                    let tag = ((t as u64 + 1) << 40) | 1;
                    let mut c = 0;
                    barrier.wait();
                    let start = Instant::now();
                    for _ in 0..per {
                        if rng.coin() {
                            c += 1;
                            h.enqueue(tag + c);
                        } else {
                            let _ = h.dequeue();
                        }
                    }
                    start.elapsed()
                })
            })
            .collect();
        for h in handles {
            worst = worst.max(h.join().unwrap());
        }
    });
    worst
}

fn bench_pairs(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2_pairs");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    const OPS: u64 = 40_000;
    for threads in [1usize, 2, 4] {
        macro_rules! case {
            ($q:ty) => {
                g.bench_function(
                    &format!("{}/{}", <$q as BenchQueue>::NAME, threads),
                    |b| b.iter_custom(|iters| (0..iters).map(|_| pairs_burst::<$q>(threads, OPS)).sum()),
                );
            };
        }
        case!(RawQueue);
        case!(Wf0);
        case!(FaaBench);
        case!(CcQueue);
        case!(MsQueue);
        case!(Lcrq);
        case!(MutexQueue);
    }
    g.finish();
}

fn bench_fifty(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2_fifty");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    const OPS: u64 = 40_000;
    for threads in [1usize, 4] {
        macro_rules! case {
            ($q:ty) => {
                g.bench_function(
                    &format!("{}/{}", <$q as BenchQueue>::NAME, threads),
                    |b| b.iter_custom(|iters| (0..iters).map(|_| fifty_burst::<$q>(threads, OPS)).sum()),
                );
            };
        }
        case!(RawQueue);
        case!(Wf0);
        case!(FaaBench);
        case!(CcQueue);
        case!(MsQueue);
        case!(Lcrq);
        case!(MutexQueue);
    }
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_pairs(&mut c);
    bench_fifty(&mut c);
}
