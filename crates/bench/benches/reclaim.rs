//! Reclamation-scheme overhead (paper §3.6 "Overhead").
//!
//! The paper's claim: its custom scheme adds *no* memory fence to the x86
//! fast path (the operation's own FAA doubles as the barrier), whereas
//! hazard pointers fence per protected pointer and classic EBR fences per
//! critical section. This bench makes the claim measurable: the same
//! MS-Queue algorithm under hazard pointers vs. EBR, the wait-free queue
//! under its paper scheme, and the raw primitive costs of each protection
//! action.

use std::time::Duration;

use wfq_baselines::{BenchQueue, MsQueue, MsQueueEbr};
use wfq_bench::microbench::Criterion;
use wfq_reclaim::{ebr::EbrDomain, Domain};
use wfqueue::RawQueue;

fn bench_protection_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim_primitives");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    // Hazard pointer: publish + fence + revalidate.
    let hp_domain = Domain::new();
    let hp = hp_domain.register();
    let src = core::sync::atomic::AtomicPtr::new(Box::into_raw(Box::new(7u64)));
    g.bench_function("hazard_protect_clear", |b| {
        b.iter(|| {
            let p = hp.protect(0, &src);
            std::hint::black_box(p);
            hp.clear(0);
        })
    });

    // EBR: pin (fence) + unpin.
    let ebr_domain = EbrDomain::new();
    let ebr = ebr_domain.register();
    g.bench_function("ebr_pin_unpin", |b| {
        b.iter(|| {
            let guard = ebr.pin();
            std::hint::black_box(&guard);
        })
    });

    g.finish();
    // SAFETY: test-owned allocation, no longer referenced.
    unsafe { drop(Box::from_raw(src.load(core::sync::atomic::Ordering::Relaxed))) };
}

fn bench_queues_under_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("reclaim_queue_pair");
    g.sample_size(15).measurement_time(Duration::from_secs(1));

    macro_rules! case {
        ($q:ty, $label:expr) => {{
            let q = <$q as BenchQueue>::new();
            let mut h = q.register();
            let mut i = 0u64;
            g.bench_function($label, |b| {
                b.iter(|| {
                    i += 1;
                    h.enqueue(i);
                    std::hint::black_box(h.dequeue())
                })
            });
        }};
    }
    case!(MsQueue, "msqueue_hazard");
    case!(MsQueueEbr, "msqueue_ebr");
    case!(RawQueue, "wfqueue_paper_scheme");
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_protection_primitives(&mut c);
    bench_queues_under_schemes(&mut c);
}
