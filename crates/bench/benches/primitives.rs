//! Per-primitive and per-operation micro-costs.
//!
//! Quantifies the building blocks the paper's argument rests on: FAA
//! (always succeeds) vs CAS (can fail) vs CAS2, and the uncontended
//! single-op cost of each queue — the "single core performance" discussion
//! of §5.2.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use wfq_baselines::{BenchQueue, CcQueue, Lcrq, MsQueue, MutexQueue};
use wfq_bench::microbench::Criterion;
use wfq_sync::dwcas::AtomicU128;
use wfqueue::RawQueue;

fn bench_atomics(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    let counter = AtomicU64::new(0);
    g.bench_function("faa", |b| {
        b.iter(|| std::hint::black_box(counter.fetch_add(1, Ordering::SeqCst)))
    });

    let cas_target = AtomicU64::new(0);
    g.bench_function("cas_success", |b| {
        b.iter(|| {
            let cur = cas_target.load(Ordering::Relaxed);
            std::hint::black_box(
                cas_target
                    .compare_exchange(cur, cur + 1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok(),
            )
        })
    });

    let wide = AtomicU128::new(0, 0);
    g.bench_function("cas2_success", |b| {
        b.iter(|| {
            let cur = wide.load();
            std::hint::black_box(wide.compare_exchange(cur, (cur.0 + 1, cur.1 + 1)).is_ok())
        })
    });
    g.finish();
}

fn bench_single_op(c: &mut Criterion) {
    let mut g = c.benchmark_group("uncontended_pair");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    macro_rules! case {
        ($q:ty) => {{
            let q = <$q as BenchQueue>::new();
            let mut h = q.register();
            let mut i = 0u64;
            g.bench_function(<$q as BenchQueue>::NAME, |b| {
                b.iter(|| {
                    i += 1;
                    h.enqueue(i);
                    std::hint::black_box(h.dequeue())
                })
            });
        }};
    }
    case!(RawQueue);
    case!(MsQueue);
    case!(Lcrq);
    case!(CcQueue);
    case!(MutexQueue);
    g.finish();
}

/// Zero-overhead guard for the fault-injection layer: in the default build
/// `wfq_sync::inject!` must expand to literally nothing — no atomic loads,
/// no branches — so the fast paths measured above are unperturbed. The
/// static proof lives in `wfq-sync` (the macro expansion is a valid
/// constant expression, which no runtime atomic access is); this bench
/// makes the same claim observable: an `inject!`-laden loop must price
/// identically to the bare loop.
fn bench_inject_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("inject_overhead");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    let counter = AtomicU64::new(0);
    g.bench_function("faa_bare", |b| {
        b.iter(|| std::hint::black_box(counter.fetch_add(1, Ordering::SeqCst)))
    });
    g.bench_function("faa_with_inject_points", |b| {
        b.iter(|| {
            wfq_sync::inject!("bench::before_faa");
            let v = std::hint::black_box(counter.fetch_add(1, Ordering::SeqCst));
            wfq_sync::inject!("bench::after_faa");
            v
        })
    });
    // Same guardrail for the flight recorder (`wfq_obs::record!`): without
    // the `trace` feature the instrumented loop must be cycle-identical to
    // the bare FAA loop — the recorder's const proof made observable.
    g.bench_function("faa_with_trace_points", |b| {
        b.iter(|| {
            wfq_obs::record!(wfq_obs::EventKind::EnqFast, 0u64);
            let v = std::hint::black_box(counter.fetch_add(1, Ordering::SeqCst));
            wfq_obs::record!(wfq_obs::EventKind::DeqFast, v);
            v
        })
    });
    g.finish();
}

/// Guardrail for the `op-sample` path hooks (the latency observatory's
/// attribution layer): in the default build `wfqueue`'s internal
/// `op_sample!` expands to `()` — the const proof in `core/src/raw.rs`
/// shows the expansion is a valid constant expression, so no Cell write,
/// no branch, nothing. This bench makes the claim observable the same way
/// the inject/trace guards do: a pair loop on the hook-instrumented queue
/// must price identically whether or not the build carries the feature
/// (compare `op_sample_overhead/pair` across `--features op-sample`
/// builds), and `last_op_sample()` in the default build is a constant
/// `None`.
fn bench_op_sample_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("op_sample_overhead");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    let q = <RawQueue as BenchQueue>::new();
    let mut h = RawQueue::register(&q);
    let mut i = 0u64;
    g.bench_function("pair", |b| {
        b.iter(|| {
            i += 1;
            h.enqueue(i);
            std::hint::black_box(h.dequeue())
        })
    });
    g.bench_function("pair_reading_last_op_sample", |b| {
        b.iter(|| {
            i += 1;
            h.enqueue(i);
            let v = h.dequeue();
            std::hint::black_box((v, h.last_op_sample()))
        })
    });
    g.finish();
}

/// Guardrail for bounded-memory mode: on an *unbounded* queue,
/// `try_enqueue` is the plain enqueue plus one branch on a constant
/// (`config.segment_ceiling.is_some()`), never a pool or ceiling atomic —
/// so a pair loop driven through `try_enqueue` must price identically to
/// one driven through `enqueue`. A regression here means the admission
/// gate leaked onto the paper's fast path.
fn bench_try_enqueue_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("try_enqueue_overhead");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    let q = <RawQueue as BenchQueue>::new();
    let mut h = RawQueue::register(&q);
    let mut i = 0u64;
    g.bench_function("pair_enqueue", |b| {
        b.iter(|| {
            i += 1;
            h.enqueue(i);
            std::hint::black_box(h.dequeue())
        })
    });
    g.bench_function("pair_try_enqueue_unbounded", |b| {
        b.iter(|| {
            i += 1;
            h.try_enqueue(i).expect("unbounded queue never rejects");
            std::hint::black_box(h.dequeue())
        })
    });
    g.finish();
}

/// Guardrail for the batch fast path (DESIGN.md §10): `enqueue_batch` over
/// 8 values claims its cells with one FAA, one hazard publication, and one
/// stats/peer-help epilogue, where 8 single enqueues pay all of that per
/// element — so the batch loop must price well below the 8× single loop
/// (the issue's acceptance bar is ≤ 0.6×). Both sides drain through the
/// matching dequeue shape so the queue stays at steady state.
fn bench_batch_amortization(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_amortization");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    const K: usize = 8;
    let q = <RawQueue as BenchQueue>::new();
    let mut h = RawQueue::register(&q);
    let mut i = 0u64;
    let mut out = Vec::with_capacity(K);
    g.bench_function("eight_single_pairs", |b| {
        b.iter(|| {
            for _ in 0..K {
                i += 1;
                h.enqueue(i);
            }
            out.clear();
            for _ in 0..K {
                if let Some(v) = h.dequeue() {
                    out.push(v);
                }
            }
            std::hint::black_box(out.len())
        })
    });

    let q2 = <RawQueue as BenchQueue>::new();
    let mut h2 = RawQueue::register(&q2);
    let mut batch = [0u64; K];
    g.bench_function("enqueue_batch_8_pair", |b| {
        b.iter(|| {
            for slot in &mut batch {
                i += 1;
                *slot = i;
            }
            h2.enqueue_batch(&batch);
            out.clear();
            let n = h2.dequeue_batch(&mut out, K);
            std::hint::black_box(n)
        })
    });
    g.finish();
}

/// Guardrail for durable mode (DESIGN.md §12): in the default build the
/// internal `persist!` macro at the three commit frontiers expands to `()`
/// — the const proof in `core/src/raw.rs` shows the expansion is a valid
/// constant expression, so no `Option` load, no branch, no sink call. This
/// bench makes that observable: `persist_hooks_disabled` is the plain pair
/// loop walked straight through every persist site, and it must price
/// identically to `uncontended_pair/wf-faa` above. Rebuild with
/// `--features durable` and the group grows the priced tiers — the no-sink
/// branch (`durable_no_sink`) and a live in-memory store
/// (`durable_mem_store`) — so EXPERIMENTS.md can quote what durable mode
/// actually costs and what merely *compiling* it would cost if the proof
/// ever broke.
fn bench_persist_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("persist_overhead");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    let q = <RawQueue as BenchQueue>::new();
    let mut h = RawQueue::register(&q);
    let mut i = 0u64;
    g.bench_function("persist_hooks_disabled", |b| {
        b.iter(|| {
            i += 1;
            h.enqueue(i);
            std::hint::black_box(h.dequeue())
        })
    });

    #[cfg(feature = "durable")]
    {
        // Hooks compiled in but no sink attached: each frontier pays one
        // `Option` load and branch.
        let q2: RawQueue = RawQueue::with_config(wfqueue::Config::default());
        let mut h2 = q2.register();
        g.bench_function("durable_no_sink", |b| {
            b.iter(|| {
                i += 1;
                h2.enqueue(i);
                std::hint::black_box(h2.dequeue())
            })
        });

        // Full durable pair: deposit + index-advance + consume records into
        // an in-memory store on every operation. The store's index space is
        // finite and each pair burns two cells, so every sample gets a
        // fresh store sized to its batch (built outside the timed region).
        g.bench_function("durable_mem_store", |b| {
            b.iter_custom(|iters| {
                let store = std::sync::Arc::new(wfqueue::MemStore::new(2 * iters + 64, 4));
                let q3: RawQueue = RawQueue::with_persist(
                    wfqueue::Config::default(),
                    store as std::sync::Arc<dyn wfqueue::PersistSink>,
                );
                let mut h3 = q3.register();
                let start = std::time::Instant::now();
                for j in 1..=iters {
                    h3.enqueue(j);
                    std::hint::black_box(h3.dequeue());
                }
                start.elapsed()
            })
        });
    }
    g.finish();
}

/// Guardrail for the cycle-ledger `phase!` hooks: in the default build the
/// macro is a pure pass-through of its body — the const proof in `wfq_obs`
/// shows the expansion of a const body stays const, so no clock read, no
/// thread-local, nothing. This bench makes the claim observable: the
/// `faa_with_phase_marker` loop must price identically to `faa_bare` in
/// default builds (the CI `cycles` job compares them), and the `pair` loop
/// on the instrumented queue prices what a `--features cycles` build pays
/// for the full per-op ledger (compare across builds; `cycle_ledger`
/// de-biases with the probed per-span cost).
fn bench_phase_hooks_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("phase_hooks_overhead");
    g.sample_size(20).measurement_time(Duration::from_secs(1));

    let counter = AtomicU64::new(0);
    g.bench_function("faa_bare", |b| {
        b.iter(|| std::hint::black_box(counter.fetch_add(1, Ordering::SeqCst)))
    });
    g.bench_function("faa_with_phase_marker", |b| {
        b.iter(|| {
            wfq_obs::phase!(
                wfq_obs::Phase::Faa,
                std::hint::black_box(counter.fetch_add(1, Ordering::SeqCst))
            )
        })
    });

    let q = <RawQueue as BenchQueue>::new();
    let mut h = RawQueue::register(&q);
    let mut i = 0u64;
    g.bench_function("pair", |b| {
        b.iter(|| {
            i += 1;
            h.enqueue(i);
            std::hint::black_box(h.dequeue())
        })
    });
    g.finish();
}

fn main() {
    let mut c = Criterion::new();
    bench_atomics(&mut c);
    bench_single_op(&mut c);
    bench_inject_overhead(&mut c);
    bench_op_sample_overhead(&mut c);
    bench_try_enqueue_overhead(&mut c);
    bench_batch_amortization(&mut c);
    bench_persist_overhead(&mut c);
    bench_phase_hooks_overhead(&mut c);
}
