//! Protocol-level black-box tests of the wait-free queue's public API:
//! properties that follow from the paper's invariants and must hold for
//! any correct implementation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use wfqueue::{Config, OwnedHandle, RawQueue, WfQueue};

/// Invariant 4/8 corollary: a value enqueued before a (later, same-thread)
/// dequeue begins is never missed while earlier values remain.
#[test]
fn same_thread_enqueue_is_always_visible_to_later_dequeue() {
    let q: RawQueue<64> = RawQueue::new();
    let mut h = q.register();
    for round in 1..=1_000u64 {
        h.enqueue(round);
        assert_eq!(h.dequeue(), Some(round));
    }
}

/// The EMPTY result is not sticky: emptiness probes must never poison
/// future traffic (probes consume cells, not values).
#[test]
fn empty_probes_do_not_affect_later_values() {
    let q: RawQueue<8> = RawQueue::new();
    let mut h = q.register();
    for _ in 0..1_000 {
        assert_eq!(h.dequeue(), None);
    }
    for v in 1..=100 {
        h.enqueue(v);
    }
    for v in 1..=100 {
        assert_eq!(h.dequeue(), Some(v));
    }
}

/// Two queues never interfere, even with interleaved handles on one
/// thread (separate rings, separate indices, separate reclamation).
#[test]
fn queues_are_independent() {
    let a: RawQueue<64> = RawQueue::new();
    let b: RawQueue<64> = RawQueue::new();
    let mut ha = a.register();
    let mut hb = b.register();
    for v in 1..=100 {
        ha.enqueue(v);
        hb.enqueue(v + 1000);
    }
    for v in 1..=100 {
        assert_eq!(hb.dequeue(), Some(v + 1000));
        assert_eq!(ha.dequeue(), Some(v));
    }
}

/// Stats bookkeeping: counted operations must equal the operations
/// actually performed, across multiple handles.
#[test]
fn stats_account_for_every_operation() {
    let q: RawQueue<64> = RawQueue::new();
    let mut h1 = q.register();
    let mut h2 = q.register();
    for v in 1..=40 {
        h1.enqueue(v);
    }
    for v in 41..=60 {
        h2.enqueue(v);
    }
    let mut got = 0;
    while h1.dequeue().is_some() {
        got += 1;
    }
    while h2.dequeue().is_some() {
        got += 1;
    }
    assert_eq!(got, 60);
    let s = q.stats();
    assert_eq!(s.enqueues(), 60);
    // Dequeues include the two EMPTY probes that ended the while loops.
    assert_eq!(s.dequeues(), 60 + 2);
    assert_eq!(s.deq_empty, 2);
}

/// len_hint coherence: exact under quiescence without emptiness probes,
/// an over-approximation otherwise.
#[test]
fn len_hint_brackets_reality() {
    let q: RawQueue<64> = RawQueue::new();
    let mut h = q.register();
    assert_eq!(q.len_hint(), 0);
    for v in 1..=50 {
        h.enqueue(v);
    }
    assert_eq!(q.len_hint(), 50);
    for _ in 0..20 {
        h.dequeue();
    }
    assert_eq!(q.len_hint(), 30);
    // Emptiness probes inflate H past T: hint saturates at 0.
    for _ in 0..40 {
        h.dequeue();
    }
    assert_eq!(q.len_hint(), 0);
}

/// Typed drain returns exactly the outstanding values in FIFO order.
#[test]
fn drain_returns_outstanding_values_in_order() {
    let mut q: WfQueue<u32> = WfQueue::new();
    {
        let mut h = q.handle();
        for v in 0..100 {
            h.enqueue(v);
        }
        for _ in 0..30 {
            h.dequeue();
        }
    }
    let rest = q.drain();
    assert_eq!(rest, (30..100).collect::<Vec<_>>());
    assert!(q.is_empty());
}

/// Owned handles running free-threaded (no scope) with the queue kept
/// alive purely by the handles.
#[test]
fn owned_handles_share_a_queue_across_detached_threads() {
    let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
    let produced = Arc::new(AtomicU64::new(0));
    let consumed = Arc::new(AtomicU64::new(0));
    let mut joins = Vec::new();
    for t in 0..2u64 {
        let mut h = OwnedHandle::new(Arc::clone(&q));
        let produced = Arc::clone(&produced);
        joins.push(std::thread::spawn(move || {
            for v in 0..5_000 {
                h.enqueue(t * 5_000 + v + 1);
                produced.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }
    for _ in 0..2 {
        let mut h = OwnedHandle::new(Arc::clone(&q));
        let consumed = Arc::clone(&consumed);
        joins.push(std::thread::spawn(move || {
            while consumed.load(Ordering::Relaxed) < 10_000 {
                if h.dequeue().is_some() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(consumed.load(Ordering::Relaxed), 10_000);
}

/// Wait-freedom smoke: with every other handle parked mid-queue (dropped
/// after partial traffic), a single thread still completes unbounded
/// operations — nothing it does can block on absent peers.
#[test]
fn solo_progress_with_stale_peers() {
    let q: RawQueue<16> = RawQueue::with_config(Config::wf0());
    {
        let mut a = q.register();
        let mut b = q.register();
        for v in 1..=100 {
            a.enqueue(v);
            b.enqueue(v + 1000);
        }
        // a and b drop with values still queued and requests idle.
    }
    let mut h = q.register();
    let mut seen = 0;
    while h.dequeue().is_some() {
        seen += 1;
    }
    assert_eq!(seen, 200);
    for v in 1..=10_000u64 {
        h.enqueue(v);
        assert_eq!(h.dequeue(), Some(v));
    }
}

/// Segment-size genericity: the same protocol at several N values.
#[test]
fn works_across_segment_sizes() {
    fn run<const N: usize>() {
        let q: RawQueue<N> = RawQueue::new();
        let mut h = q.register();
        for v in 1..=(N as u64 * 3 + 7) {
            h.enqueue(v);
        }
        for v in 1..=(N as u64 * 3 + 7) {
            assert_eq!(h.dequeue(), Some(v));
        }
    }
    run::<2>();
    run::<8>();
    run::<64>();
    run::<1024>();
    run::<4096>();
}

/// Config is observable and respected.
#[test]
fn config_roundtrip() {
    let q: RawQueue<64> = RawQueue::with_config(Config::wf0().with_max_garbage(7));
    assert_eq!(q.config().patience, 0);
    assert_eq!(q.config().max_garbage, Some(7));
}

/// A queue dropped immediately after creation must not leak or crash.
#[test]
fn empty_queue_lifecycle() {
    for _ in 0..100 {
        let q: RawQueue<64> = RawQueue::new();
        drop(q);
        let q: WfQueue<Vec<u8>> = WfQueue::new();
        drop(q);
    }
}
