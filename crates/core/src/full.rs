//! The backpressure error for bounded-memory mode.

use core::fmt;

/// Error returned by the `try_enqueue` family when the queue is at its
/// segment ceiling and a same-call forced reclamation pass could not
/// recover headroom (see
/// [`Config::with_segment_ceiling`](crate::Config::with_segment_ceiling)).
///
/// The typed wrappers return the rejected value inside the error so the
/// caller keeps ownership: `Full<T>` from
/// [`LocalHandle::try_enqueue`](crate::LocalHandle::try_enqueue), plain
/// `Full` (i.e. `Full<()>`) from the raw API.
///
/// A `Full` return is a *backpressure signal*, not a permanent state: it
/// clears as soon as dequeuers drain enough cells for reclamation to
/// recycle a segment (or the stalled thread pinning the reclamation
/// boundary resumes). See docs/ROBUSTNESS.md for the degradation contract.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Full<T = ()>(pub T);

impl<T> Full<T> {
    /// Recovers the value whose enqueue was rejected.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Debug for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately not showing the payload: T: Debug is not required,
        // and the payload is the caller's data, not the error's.
        f.write_str("Full(..)")
    }
}

impl<T> fmt::Display for Full<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("queue is at its segment ceiling")
    }
}

impl<T> std::error::Error for Full<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carries_the_rejected_value() {
        let e: Full<String> = Full("hello".to_string());
        assert_eq!(e.into_inner(), "hello");
    }

    #[test]
    fn debug_and_display_do_not_require_t_debug() {
        struct Opaque;
        let e = Full(Opaque);
        assert_eq!(format!("{e:?}"), "Full(..)");
        assert_eq!(e.to_string(), "queue is at its segment ceiling");
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&Full(()));
    }

    #[test]
    fn unit_form_compares() {
        assert_eq!(Full(()), Full(()));
    }
}
