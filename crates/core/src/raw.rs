//! The wait-free queue over raw 64-bit values (paper Listings 1–4).
//!
//! This module is a line-by-line transcription of the paper's pseudocode;
//! comments cite the listing line numbers. The shared state is exactly the
//! paper's triple `(Q, H, T)` plus the reclamation word `I` (Listing 5);
//! everything else lives in per-thread [`HandleNode`]s.
//!
//! Memory-ordering note: every cross-thread protocol step (FAA, CAS, the
//! Dijkstra-protocol read pairs, the `T`/`H` emptiness reads) uses `SeqCst`,
//! which on x86_64 lowers to exactly the `lock`-prefixed instructions and
//! plain loads the paper's C implementation uses; pointer publication uses
//! acquire/release. The only fence beyond the paper's is the one after
//! hazard publication (see [`crate::handle`]), which the portable memory
//! model requires and x86 gets almost for free.

use core::sync::atomic::{fence, AtomicI64, AtomicPtr, AtomicU64, Ordering};
use std::sync::Mutex;

use wfq_sync::{inject, CachePadded};

use crate::cell::{
    is_valid_value, Cell, DEQ_BOTTOM, ENQ_BOTTOM, ENQ_TOP, VAL_BOTTOM, VAL_TOP,
};
use crate::config::Config;
use crate::full::Full;
use crate::handle::{HandleNode, Registry, NO_HAZARD};
use crate::pack::ReqState;
#[cfg(feature = "durable")]
use crate::persist::PersistSink;
use crate::persist::persist;
use crate::pool::SegmentPool;
use crate::request::DeqReq;
use crate::sample::{op_sample, OpPath, OpSample};
use crate::segment::{find_cell, SegSource, Segment};
use crate::stats::{Gauges, HandleStats, QueueStats};
use crate::DEFAULT_SEGMENT_SIZE;

// Zero-overhead guard (the mirror of `wfq_obs::_ZERO_OVERHEAD_PROOF`):
// with `op-sample` off the sampling hook must expand to a constant
// expression — no store, no argument evaluation — so the instrumented
// operation epilogues carry no trace of the sampler. The runtime twin is
// the `op_sample_overhead` group of the `primitives` bench.
#[cfg(not(feature = "op-sample"))]
const _OP_SAMPLE_ZERO_OVERHEAD_PROOF: () =
    op_sample!(no_node, OpSide::Enq, OpPath::Fast, 0u64);

// Same guard for durable mode: with `durable` off the persist hooks at the
// three commit frontiers (DESIGN.md §12) must expand to a constant
// expression — no field access, no branch, no argument evaluation. The
// runtime twin is the `persist_overhead` group of the `primitives` bench.
#[cfg(not(feature = "durable"))]
const _PERSIST_ZERO_OVERHEAD_PROOF: () = persist!(no_queue, deposit(0u64, 0u64));

// Same guard for the cycle ledger: with `cycles` off the phase markers
// bracketing the hot path must expand to exactly their body — a const body
// stays const, which no clock read or thread-local access would allow. The
// runtime twin is the `phase_hooks_overhead` group of the `primitives`
// bench.
#[cfg(not(feature = "cycles"))]
const _PHASE_ZERO_OVERHEAD_PROOF: u64 = wfq_obs::phase!(wfq_obs::Phase::Faa, 40u64 + 2);

/// Result of `help_enq` (paper Listing 3, lines 90–127): the cell either
/// yields a value, is permanently unusable (⊤), or witnesses emptiness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HelpEnq {
    /// The cell holds (or received) this enqueued value.
    Value(u64),
    /// No enqueue will ever fill this cell.
    Top,
    /// The queue was observed empty at this cell (`T <= i`).
    Empty,
}

/// Result of one fast-path dequeue attempt. Every variant carries the cell
/// index visited, which the caller needs for the slow-path request id (on
/// failure) and the hazard-mirror update (always).
enum FastDeq {
    Value(u64, u64),
    Empty(u64),
    Fail(u64),
}

/// The paper's wait-free FIFO queue over raw `u64` values.
///
/// `N` is the segment size (cells per segment); the paper evaluates with
/// `N = 2^10`, the default. Values must satisfy `v != 0 && v != u64::MAX`
/// (the reserved ⊥/⊤ patterns); [`crate::WfQueue`] provides a typed wrapper
/// free of this restriction.
///
/// All operations go through a registered [`Handle`]:
///
/// ```
/// use wfqueue::RawQueue;
/// let q: RawQueue = RawQueue::new();
/// let mut h = q.register();
/// h.enqueue(7);
/// assert_eq!(h.dequeue(), Some(7));
/// assert_eq!(h.dequeue(), None); // EMPTY
/// ```
pub struct RawQueue<const N: usize = DEFAULT_SEGMENT_SIZE> {
    /// `Q`: the oldest live segment (Listing 2 line 21, Listing 5).
    pub(crate) q: CachePadded<AtomicPtr<Segment<N>>>,
    /// `T`: tail index; enqueues FAA this.
    pub(crate) tail_index: CachePadded<AtomicU64>,
    /// `H`: head index; dequeues FAA this.
    pub(crate) head_index: CachePadded<AtomicU64>,
    /// `I`: id of the oldest segment, or −1 while a cleaner (or a
    /// registration) holds the reclamation token (Listing 5 line 206).
    pub(crate) oldest_id: CachePadded<AtomicI64>,
    /// Registration bookkeeping (ring anchor, free pool, master node list).
    pub(crate) registry: Mutex<Registry<N>>,
    /// Number of ring nodes ever created (readable without the lock).
    pub(crate) handle_count: AtomicU64,
    /// Number of *live* handles (registered minus dropped). This — not
    /// `handle_count` — feeds the automatic MAX_GARBAGE threshold: under
    /// register/drop churn the ever-registered count inflates forever and
    /// would make reclamation permanently lazier.
    pub(crate) active_count: AtomicU64,
    /// Segment recycling pool and allocation gate (inert when unbounded).
    pub(crate) pool: SegmentPool<N>,
    pub(crate) config: Config,
    /// Durable mode: the persist sink mirroring the three commit
    /// frontiers, `None` for a volatile queue (DESIGN.md §12).
    #[cfg(feature = "durable")]
    pub(crate) persist: Option<std::sync::Arc<dyn PersistSink>>,
}

// SAFETY: the queue owns its segments and handle nodes; all shared access
// is via atomics following the paper's protocol. Values are plain u64s.
unsafe impl<const N: usize> Send for RawQueue<N> {}
unsafe impl<const N: usize> Sync for RawQueue<N> {}

/// A registered per-thread handle to a [`RawQueue`].
///
/// A handle must be used by one thread at a time (the type is `Send` but
/// not `Sync`, and its methods take `&mut self`, which enforces exactly
/// that). Dropping a handle parks its slot for reuse by later
/// registrations.
pub struct Handle<'q, const N: usize = DEFAULT_SEGMENT_SIZE> {
    queue: &'q RawQueue<N>,
    node: *mut HandleNode<N>,
}

// SAFETY: a Handle is an exclusive capability on its node; moving it across
// threads is fine, concurrent use is prevented by &mut receivers.
unsafe impl<const N: usize> Send for Handle<'_, N> {}

impl<const N: usize> Default for RawQueue<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> RawQueue<N> {
    /// Creates an empty queue with the default (WF-10) configuration.
    pub fn new() -> Self {
        Self::with_config(Config::default())
    }

    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: Config) -> Self {
        assert!(N.is_power_of_two(), "segment size must be a power of two");
        let seg = Segment::<N>::alloc(0);
        Self {
            q: CachePadded::new(AtomicPtr::new(seg)),
            tail_index: CachePadded::new(AtomicU64::new(0)),
            head_index: CachePadded::new(AtomicU64::new(0)),
            oldest_id: CachePadded::new(AtomicI64::new(0)),
            registry: Mutex::new(Registry::new()),
            handle_count: AtomicU64::new(0),
            active_count: AtomicU64::new(0),
            pool: SegmentPool::new(config.segment_ceiling),
            config,
            #[cfg(feature = "durable")]
            persist: None,
        }
    }

    /// Creates an empty durable-mode queue mirroring every commit frontier
    /// into `sink`. Values and protocol are unchanged; only the persist
    /// hooks fire (DESIGN.md §12).
    #[cfg(feature = "durable")]
    pub fn with_persist(config: Config, sink: std::sync::Arc<dyn PersistSink>) -> Self {
        let mut q = Self::with_config(config);
        q.persist = Some(sink);
        q
    }

    /// Per-operation view of where list extensions draw segments from.
    #[inline]
    pub(crate) fn src<'a>(&'a self, h: &'a HandleNode<N>) -> SegSource<'a, N> {
        SegSource {
            spare: &h.spare,
            alloc_count: &h.stats.segs_alloc,
            pool: &self.pool,
        }
    }

    /// This queue's configuration.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Registers the calling context, returning a handle.
    ///
    /// Registration is the one non-wait-free operation in the crate (it
    /// takes a lock and may wait for an in-flight reclamation pass); do it
    /// once per thread, outside any latency-critical section. Handles are
    /// recycled, so repeated register/drop cycles do not grow the ring.
    pub fn register(&self) -> Handle<'_, N> {
        Handle {
            queue: self,
            node: self.acquire_node(),
        }
    }

    /// Acquires a ring node for a new handle (pool reuse or fresh splice).
    pub(crate) fn acquire_node(&self) -> *mut HandleNode<N> {
        let mut reg = self.registry.lock().unwrap();
        if let Some(node) = reg.free.pop() {
            // SAFETY: pooled nodes stay valid for the queue's lifetime.
            unsafe {
                (*node).active.store(true, Ordering::Relaxed);
                // A recycled node must not leak the previous owner's
                // execution-path sample to the new handle.
                #[cfg(feature = "op-sample")]
                (*node).last_sample.set(None);
            }
            self.active_count.fetch_add(1, Ordering::Relaxed);
            return node;
        }
        // Fresh node: its initial segment assignment and ring splice must
        // not race a reclamation pass (which cannot see the node yet), so
        // hold the reclamation token across both.
        let token = self.acquire_reclaim_token();
        let seg = self.q.load(Ordering::Acquire);
        // SAFETY: holding the token, no segment can be freed.
        let seg_id = unsafe { (*seg).id() };
        // The node's ordinal doubles as its request-record slot in the
        // durable image (one slow-path enqueue request per node).
        let slot = self.handle_count.fetch_add(1, Ordering::Relaxed);
        let node = HandleNode::boxed(seg, seg_id, slot);
        reg.splice(node);
        self.active_count.fetch_add(1, Ordering::Relaxed);
        self.release_reclaim_token(token);
        node
    }

    /// Returns a handle's ring node to the pool.
    pub(crate) fn release_node(&self, node: *mut HandleNode<N>) {
        let mut reg = self.registry.lock().unwrap();
        // SAFETY: node is live; after deactivation helpers skip its idle
        // requests and a future registration may adopt it.
        unsafe { (*node).active.store(false, Ordering::Relaxed) };
        self.active_count.fetch_sub(1, Ordering::Relaxed);
        reg.free.push(node);
    }

    /// Spins until it wins the reclamation token (`I: i ≥ 0 → −1`),
    /// returning the id it displaced.
    fn acquire_reclaim_token(&self) -> i64 {
        loop {
            let i = self.oldest_id.load(Ordering::Acquire);
            if i >= 0
                && self
                    .oldest_id
                    .compare_exchange(i, -1, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                return i;
            }
            std::thread::yield_now();
        }
    }

    fn release_reclaim_token(&self, token: i64) {
        self.oldest_id.store(token, Ordering::Release);
    }

    /// Advisory emptiness check: true if no unconsumed value was present at
    /// the instants the indices were read. Exact only while the queue is
    /// externally quiescent (e.g. single-threaded teardown).
    pub fn is_empty(&self) -> bool {
        self.head_index.load(Ordering::SeqCst) >= self.tail_index.load(Ordering::SeqCst)
    }

    /// Snapshot of `(H, T)` for diagnostics.
    pub fn indices(&self) -> (u64, u64) {
        (
            self.head_index.load(Ordering::SeqCst),
            self.tail_index.load(Ordering::SeqCst),
        )
    }

    /// Snapshot of `I`, the oldest live segment's id — or `-1` while a
    /// cleaner (or a registration) holds the reclamation token (Listing 5
    /// line 206). Diagnostics only: the value may be stale by the time the
    /// caller looks at it, but it is monotone while the token is free, so
    /// tests can assert reclamation never ran past a pinned hazard.
    pub fn oldest_segment_id(&self) -> i64 {
        self.oldest_id.load(Ordering::SeqCst)
    }

    /// Approximate number of enqueued-but-unconsumed values.
    ///
    /// `T − H` counts *attempts*, not successes — failed fast-path
    /// operations and emptiness probes inflate both counters — so this is
    /// an upper-bound-ish hint suitable for monitoring and backpressure
    /// heuristics, not an exact size (no linearizable size exists for a
    /// concurrent queue without locking it).
    pub fn len_hint(&self) -> u64 {
        let (h, t) = self.indices();
        t.saturating_sub(h)
    }

    /// Aggregated execution-path statistics across every handle ever
    /// registered (the data behind the paper's Table 2).
    pub fn stats(&self) -> QueueStats {
        let reg = self.registry.lock().unwrap();
        let mut s = QueueStats::default();
        for &n in &reg.all {
            // SAFETY: nodes live until queue drop.
            s.absorb(unsafe { &(*n).stats });
        }
        s
    }

    /// Instantaneous gauge snapshot: indices, the reclamation frontier, the
    /// laggiest published hazard, and helping-record occupancy. Each field
    /// is an independent atomic read — the snapshot is not a consistent cut
    /// across them, which is fine for the monitoring it feeds.
    pub fn gauges(&self) -> Gauges {
        let (head_index, tail_index) = self.indices();
        let oldest_segment_id = self.oldest_id.load(Ordering::SeqCst);
        let reg = self.registry.lock().unwrap();
        let mut g = Gauges {
            head_index,
            tail_index,
            oldest_segment_id,
            total_handles: reg.all.len() as u64,
            ..Gauges::default()
        };
        let (mut alloc, mut freed) = (0u64, 0u64);
        for &n in &reg.all {
            // SAFETY: nodes live until queue drop.
            let n = unsafe { &*n };
            if n.active.load(Ordering::Relaxed) {
                g.active_handles += 1;
            }
            let hzd = n.hzd_id.load(Ordering::SeqCst);
            if hzd != NO_HAZARD {
                let hzd = hzd as u64;
                g.min_hazard = Some(g.min_hazard.map_or(hzd, |m| m.min(hzd)));
            }
            if n.enq_req.state().pending {
                g.pending_enq_reqs += 1;
            }
            if n.deq_req.state().pending {
                g.pending_deq_reqs += 1;
            }
            alloc += n.stats.segs_alloc.load(Ordering::Relaxed);
            freed += n.stats.segs_freed.load(Ordering::Relaxed);
        }
        // +1: the initial segment is never counted as allocated.
        g.live_segments = (alloc + 1).saturating_sub(freed);
        if let Some(min) = g.min_hazard {
            g.hazard_lag_segments = (head_index / N as u64).saturating_sub(min);
        }
        g.pooled_segments = self.pool.pooled();
        g.segment_ceiling = self.pool.ceiling();
        g.ceiling_headroom = self
            .pool
            .ceiling()
            .map(|c| c.saturating_sub(self.pool.total()));
        g
    }

    // ------------------------------------------------------------------
    // Enqueue (Listing 3)
    // ------------------------------------------------------------------

    pub(crate) fn enqueue_internal(&self, h: &HandleNode<N>, v: u64) {
        assert!(
            is_valid_value(v),
            "RawQueue values must not be 0 or u64::MAX (reserved ⊥/⊤); got {v:#x}"
        );
        wfq_obs::phase!(
            wfq_obs::Phase::Hazard,
            h.publish_hazard(h.tail_seg_id.load(Ordering::Relaxed) as i64)
        );

        // Lines 57–59: fast path up to PATIENCE extra times, then slow path.
        let mut cell_id = 0;
        let mut done = false;
        for _ in 0..=self.config.patience {
            if self.enq_fast(h, v, &mut cell_id) {
                done = true;
                break;
            }
        }
        let last_index = if done {
            wfq_obs::phase!(
                wfq_obs::Phase::Stats,
                HandleStats::bump(&h.stats.enq_fast)
            );
            wfq_obs::record!(wfq_obs::EventKind::EnqFast, cell_id);
            op_sample!(h, crate::sample::OpSide::Enq, OpPath::Fast, cell_id);
            cell_id
        } else {
            let claimed =
                wfq_obs::phase!(wfq_obs::Phase::SlowPath, self.enq_slow(h, v, cell_id));
            wfq_obs::phase!(
                wfq_obs::Phase::Stats,
                HandleStats::bump(&h.stats.enq_slow)
            );
            claimed
        };

        // Epilogue (Listing 5 lines 208–211): refresh the hazard mirror and
        // go idle. The mirror is computed from the cell *index*, never by
        // dereferencing the segment pointer: after help-related hazard
        // overwrites a deref here would not be protected, and the mirror
        // only needs to be ≤ the true segment id (it is exactly equal:
        // h.tail ends the operation at segment last_index / N).
        wfq_obs::phase!(wfq_obs::Phase::Hazard, {
            h.tail_seg_id.store(last_index / N as u64, Ordering::Relaxed);
            h.clear_hazard();
        });
    }

    /// The fallible enqueue behind [`Handle::try_enqueue`]: an admission
    /// gate in front of the unmodified paper algorithm.
    ///
    /// The gate runs *before* any index FAA, so a rejected call leaves no
    /// trace in the protocol — that is what makes the rejection wait-free
    /// and the ceiling enforceable: only admitted operations can allocate.
    /// When headroom is gone the caller first elects itself cleaner
    /// (enqueuers never do on the plain path — today only dequeuers call
    /// `cleanup`), because the missing headroom is often recoverable
    /// garbage that dequeuers simply haven't tripped the threshold on.
    pub(crate) fn try_enqueue_internal(&self, h: &HandleNode<N>, v: u64) -> Result<(), Full> {
        if self.config.segment_ceiling.is_some() && !self.pool.has_headroom() {
            self.forced_cleanup(h);
            if !self.pool.has_headroom() {
                HandleStats::bump(&h.stats.enq_rejected);
                wfq_obs::record!(
                    wfq_obs::EventKind::EnqRejected,
                    self.config.segment_ceiling.unwrap_or(0)
                );
                return Err(Full(()));
            }
        }
        self.enqueue_internal(h, v);
        Ok(())
    }

    /// Lines 65–69: one FAA, one CAS. `cell_id` receives the attempted
    /// index whether or not the deposit succeeds (the caller needs it for
    /// the slow-path request id on failure and the mirror update on
    /// success).
    fn enq_fast(&self, h: &HandleNode<N>, v: u64, cell_id: &mut u64) -> bool {
        let i = wfq_obs::phase!(
            wfq_obs::Phase::Faa,
            self.tail_index.fetch_add(1, Ordering::SeqCst)
        );
        inject!("enq_fast::post_faa");
        persist!(self, advance_tail(i + 1));
        *cell_id = i;
        // SAFETY: h.tail is ≥ the hazard this thread published and ≤ i/N
        // (it only ever advances through cells this thread obtained by FAA).
        let c = wfq_obs::phase!(wfq_obs::Phase::FindCell, unsafe {
            &*find_cell(&h.tail, i, &self.src(h))
        });
        if wfq_obs::phase!(wfq_obs::Phase::CellCas, c.try_deposit(v)) {
            // Crash window: the value is volatile-visible but durably
            // absent until the persist below lands — a crash here is
            // recovered as "enqueue never happened" (provably rejected).
            inject!("enq_fast::deposit_unpersisted");
            persist!(self, deposit(i, v));
            true
        } else {
            false
        }
    }

    /// Lines 70–89: publish a request, keep trying cells, commit wherever
    /// the request ends up claimed.
    #[cold]
    fn enq_slow(&self, h: &HandleNode<N>, v: u64, cell_id: u64) -> u64 {
        let r = &h.enq_req;
        r.publish(v, cell_id); // line 72
        persist!(self, enq_publish(r.slot(), v));
        inject!("enq_slow::request_published");
        // Op id for the whole episode: the publish id (our failed FAA cell).
        wfq_obs::record!(wfq_obs::EventKind::EnqSlowEnter, cell_id, cell_id);

        // Line 75: traverse with a local tail pointer because the commit
        // below may need to revisit an *earlier* cell.
        let tmp_tail = AtomicPtr::new(h.tail.load(Ordering::Acquire));
        let mut path = OpPath::Slow;
        loop {
            // Line 78.
            let i = self.tail_index.fetch_add(1, Ordering::SeqCst);
            // SAFETY: tmp_tail starts at h.tail (hazard-protected) and only
            // advances toward cells obtained by FAA.
            let c = unsafe { &*find_cell(&tmp_tail, i, &self.src(h)) };
            // Lines 80–84, Dijkstra's protocol: reserve first, then check
            // that no dequeuer poisoned the cell before the reservation.
            if c.try_reserve_enq(r as *const _ as *mut _) && c.load_val() == VAL_BOTTOM {
                inject!("enq_slow::cell_reserved");
                r.try_claim(cell_id, i);
                // Invariant: request claimed (even if our claim CAS lost).
                break;
            }
            // Line 85.
            if !r.state().pending {
                path = OpPath::Helped;
                break;
            }
        }
        if matches!(path, OpPath::Helped) {
            // A helper finished the request before any reservation of
            // ours stuck — the helping scheme's raison d'être.
            HandleStats::bump(&h.stats.enq_slow_helped);
        }

        // Lines 87–88: request is claimed for some cell; find it and commit.
        let id = r.state().index;
        // Crash window: the claim is volatile but not yet durable. A crash
        // at the point below leaves only the PUBLISHED record — recovery
        // rejects the value. Once the claim persist lands, a crash before
        // the commit is the "claimed-but-uncommitted" state recovery must
        // re-complete (the deterministic negative-control scenario).
        inject!("enq_slow::claim_unpersisted");
        persist!(self, enq_claim(r.slot(), v, id));
        inject!("enq_slow::pre_commit");
        // SAFETY: id ≥ cell_id ≥ (*h.tail).id * N, all hazard-protected.
        let c = unsafe { &*find_cell(&h.tail, id, &self.src(h)) };
        self.enq_commit(c, v, id);
        wfq_obs::record!(wfq_obs::EventKind::EnqSlowExit, id, cell_id);
        op_sample!(h, crate::sample::OpSide::Enq, path, cell_id);
        id
    }

    /// Lines 62–64: make the enqueue visible no later than `T > cid`.
    pub(crate) fn enq_commit(&self, c: &Cell, v: u64, cid: u64) {
        advance_index(&self.tail_index, cid + 1);
        persist!(self, advance_tail(cid + 1));
        c.val.store(v, Ordering::SeqCst);
        persist!(self, deposit(cid, v));
    }

    // ------------------------------------------------------------------
    // help_enq (Listing 3 lines 90–127) — called by dequeuers on every
    // cell they try to take a value from.
    // ------------------------------------------------------------------

    pub(crate) fn help_enq(&self, h: &HandleNode<N>, c: &Cell, i: u64) -> HelpEnq {
        // Line 91: poison-or-read.
        if let Some(v) = c.mark_or_value() {
            return HelpEnq::Value(v);
        }
        // c.val is ⊤: try to route a pending slow-path enqueue here.
        if c.load_enq() == ENQ_BOTTOM {
            // Lines 94–100: settle on a peer whose request we may help.
            // Runs at most two iterations (the first pass zeroes enq_help_id).
            let (mut peer, mut state);
            loop {
                peer = h.enq_peer.load(Ordering::Relaxed);
                // SAFETY: ring nodes live for the queue's lifetime.
                state = unsafe { (*peer).enq_req.state() };
                let help_id = h.enq_help_id.load(Ordering::Relaxed);
                if help_id == 0 || help_id == state.index {
                    break; // still (or newly) helping this peer's request
                }
                // Peer's prior request completed: move to the next peer.
                h.enq_help_id.store(0, Ordering::Relaxed);
                // SAFETY: as above.
                h.enq_peer
                    .store(unsafe { (*peer).next_node() }, Ordering::Relaxed);
            }
            // Lines 101–108.
            // SAFETY: as above; the request lives inside the peer node.
            let r = unsafe { &(*peer).enq_req } as *const _ as *mut _;
            inject!("help_enq::pre_reserve");
            if state.pending && state.index <= i && !c.try_reserve_enq(r) {
                // Reservation failed: remember the request so we keep
                // helping this peer next time (Invariant 2).
                h.enq_help_id.store(state.index, Ordering::Relaxed);
            } else {
                if state.pending && state.index <= i {
                    HandleStats::bump(&h.stats.help_enq);
                }
                // Peer doesn't need help, can't use this cell, or we just
                // helped: advance round-robin (Invariant 3).
                // SAFETY: as above.
                h.enq_peer
                    .store(unsafe { (*peer).next_node() }, Ordering::Relaxed);
            }
            // Lines 109–111: seal the cell if no request landed.
            if c.load_enq() == ENQ_BOTTOM {
                inject!("help_enq::top_race");
                if c.try_seal_enq() {
                    HandleStats::bump(&h.stats.help_enq_seal);
                    wfq_obs::record!(wfq_obs::EventKind::CellSeal, i);
                }
            }
        }
        // Invariant: c.enq is a request or ⊤e.
        let e = c.load_enq();
        if e == ENQ_TOP {
            // Lines 114–116.
            return if self.tail_index.load(Ordering::SeqCst) <= i {
                HelpEnq::Empty
            } else {
                HelpEnq::Top
            };
        }
        // Lines 117–126: the cell names a request; complete it if we can.
        // SAFETY: request pointers reference ring nodes, live for the
        // queue's lifetime; staleness is handled by the id checks below
        // (paper §3.4 "Write the proper value in a cell").
        let r = unsafe { &*e };
        let (s, v) = r.read_consistent();
        if s.index > i {
            // Line 119–122: request unsuitable for this cell.
            if c.load_val() == VAL_TOP && self.tail_index.load(Ordering::SeqCst) <= i {
                return HelpEnq::Empty;
            }
        } else {
            let claimed_here = r.try_claim(s.index, i);
            if claimed_here
                || (s == ReqState { pending: false, index: i } && c.load_val() == VAL_TOP)
            {
                // Line 123–126: we claimed it for this cell, or someone else
                // claimed it for this cell and hasn't committed yet.
                inject!("help_enq::pre_complete");
                // The helper mirrors the claim it is about to commit: if it
                // crashes inside enq_commit, the durable claim record lets
                // recovery re-complete on the helper's behalf. Idempotent
                // with the requester's own claim persist (same record).
                persist!(self, enq_claim(r.slot(), v, i));
                self.enq_commit(c, v, i);
                HandleStats::bump(&h.stats.help_enq_commit);
                // Op id: the publish id our claim CAS consumed. When the
                // claim already landed elsewhere the id is gone from the
                // request state, so the hop is recorded without an episode.
                wfq_obs::record!(
                    wfq_obs::EventKind::HelpEnqCommit,
                    i,
                    if claimed_here { s.index } else { 0 }
                );
            }
        }
        // Line 127.
        match c.load_val() {
            VAL_TOP => HelpEnq::Top,
            v => HelpEnq::Value(v),
        }
    }

    // ------------------------------------------------------------------
    // Dequeue (Listing 4)
    // ------------------------------------------------------------------

    pub(crate) fn dequeue_internal(&self, h: &HandleNode<N>) -> Option<u64> {
        wfq_obs::phase!(
            wfq_obs::Phase::Hazard,
            h.publish_hazard(h.head_seg_id.load(Ordering::Relaxed) as i64)
        );
        inject!("deq::hazard_published");

        // Emptiness fast-out (the bounded-RSS guard of DESIGN.md §9). A
        // probe's FAA burns a cell, and every segment between the tail
        // frontier and H must stay live for enqueuers to traverse — so a
        // consumer spinning on an empty queue would otherwise push H (and
        // the chain, and RSS) ahead of T without bound, straight through
        // any segment ceiling. Once H has passed T the queue is
        // linearizably empty (every cell below T is already assigned to
        // some dequeuer), so later probes return EMPTY without consuming
        // anything. H == T still probes — one burned cell per drained
        // queue — which preserves the ⊤-seal semantics deterministic
        // tests rely on and bounds dequeue-side growth at one in-flight
        // cell per consumer.
        let (h_idx, t_idx) = wfq_obs::phase!(wfq_obs::Phase::Faa, {
            (
                self.head_index.load(Ordering::SeqCst),
                self.tail_index.load(Ordering::SeqCst),
            )
        });
        if h_idx > t_idx {
            wfq_obs::phase!(wfq_obs::Phase::Stats, {
                HandleStats::bump(&h.stats.deq_fast);
                HandleStats::bump(&h.stats.deq_empty);
            });
            wfq_obs::record!(wfq_obs::EventKind::DeqEmpty, h_idx);
            op_sample!(h, crate::sample::OpSide::Deq, OpPath::Fast, h_idx);
            wfq_obs::phase!(wfq_obs::Phase::Hazard, h.clear_hazard());
            return None;
        }

        // Lines 129–133.
        let mut cell_id = 0;
        let mut last_index = 0;
        let mut outcome: Option<Option<u64>> = None; // Some(Some) val, Some(None) empty
        for _ in 0..=self.config.patience {
            match self.deq_fast(h) {
                FastDeq::Value(v, i) => {
                    last_index = i;
                    outcome = Some(Some(v));
                    break;
                }
                FastDeq::Empty(i) => {
                    last_index = i;
                    outcome = Some(None);
                    break;
                }
                FastDeq::Fail(i) => {
                    cell_id = i;
                    last_index = i;
                }
            }
        }
        let result = match outcome {
            Some(r) => {
                wfq_obs::phase!(
                    wfq_obs::Phase::Stats,
                    HandleStats::bump(&h.stats.deq_fast)
                );
                if r.is_some() {
                    wfq_obs::record!(wfq_obs::EventKind::DeqFast, last_index);
                }
                op_sample!(h, crate::sample::OpSide::Deq, OpPath::Fast, last_index);
                r
            }
            None => {
                let (r, i) =
                    wfq_obs::phase!(wfq_obs::Phase::SlowPath, self.deq_slow(h, cell_id));
                last_index = i;
                wfq_obs::phase!(
                    wfq_obs::Phase::Stats,
                    HandleStats::bump(&h.stats.deq_slow)
                );
                r
            }
        };
        if result.is_none() {
            wfq_obs::phase!(
                wfq_obs::Phase::Stats,
                HandleStats::bump(&h.stats.deq_empty)
            );
            wfq_obs::record!(wfq_obs::EventKind::DeqEmpty, last_index);
        }

        // Lines 135–138: a successful dequeue helps its dequeue peer.
        // NOTE: help_deq may overwrite this thread's hazard with the
        // helpee's; everything after this point must not dereference
        // segments (which is why the mirror below is computed from the
        // cell index rather than through h.head).
        if result.is_some() {
            wfq_obs::phase!(wfq_obs::Phase::Helping, {
                let peer = h.deq_peer.load(Ordering::Relaxed);
                // SAFETY: ring nodes live for the queue's lifetime.
                let peer_ref = unsafe { &*peer };
                if !core::ptr::eq(peer_ref, h) {
                    HandleStats::bump(&h.stats.help_deq);
                }
                self.help_deq(h, peer_ref);
                h.deq_peer.store(peer_ref.next_node(), Ordering::Relaxed);
            });
        }

        // Epilogue (Listing 5 lines 212–217). h.head finished this
        // operation at segment last_index / N.
        wfq_obs::phase!(wfq_obs::Phase::Hazard, {
            h.head_seg_id.store(last_index / N as u64, Ordering::Relaxed);
            h.clear_hazard();
        });
        wfq_obs::phase!(wfq_obs::Phase::Helping, self.cleanup(h));
        result
    }

    /// Lines 140–148.
    fn deq_fast(&self, h: &HandleNode<N>) -> FastDeq {
        let i = wfq_obs::phase!(
            wfq_obs::Phase::Faa,
            self.head_index.fetch_add(1, Ordering::SeqCst)
        );
        inject!("deq_fast::post_faa");
        persist!(self, advance_head(i + 1));
        // SAFETY: h.head hazard-protected, ≤ i/N.
        let c = wfq_obs::phase!(wfq_obs::Phase::FindCell, unsafe {
            &*find_cell(&h.head, i, &self.src(h))
        });
        match wfq_obs::phase!(wfq_obs::Phase::CellCas, self.help_enq(h, c, i)) {
            HelpEnq::Empty => FastDeq::Empty(i),
            HelpEnq::Value(v)
                if wfq_obs::phase!(wfq_obs::Phase::CellCas, c.try_claim_deq_fast()) =>
            {
                // Crash window: the claim is volatile-only until the
                // persist below — a crash here leaves the cell durably
                // DEPOSITED and recovery redelivers the value (the
                // crashed dequeue never durably happened).
                inject!("deq_fast::consume_unpersisted");
                persist!(self, consume(i, v));
                FastDeq::Value(v, i)
            }
            _ => FastDeq::Fail(i),
        }
    }

    /// Lines 149–157.
    #[cold]
    fn deq_slow(&self, h: &HandleNode<N>, cid: u64) -> (Option<u64>, u64) {
        let r = &h.deq_req;
        r.publish(cid); // line 151
        inject!("deq_slow::request_published");
        // Op id for the whole episode: the publish id (our failed FAA cell).
        wfq_obs::record!(wfq_obs::EventKind::DeqSlowEnter, cid, cid);
        self.help_deq(h, h); // line 152
        // Lines 153–156: the request's announced cell holds the result.
        let i = r.state().index;
        // SAFETY: i ≥ cid ≥ (*h.head).id * N; hazard-protected.
        let c = unsafe { &*find_cell(&h.head, i, &self.src(h)) };
        let v = c.load_val();
        advance_index(&self.head_index, i + 1);
        persist!(self, advance_head(i + 1));
        #[cfg(feature = "durable")]
        if v != VAL_TOP {
            persist!(self, consume(i, v));
        }
        wfq_obs::record!(wfq_obs::EventKind::DeqSlowExit, i, cid);
        // Slow dequeues always report `Slow`: the requester helps itself
        // through `help_deq` and cannot locally tell whether a peer
        // finished the request first (see `crate::sample::OpPath` — the
        // span join upgrades multi-hop episodes to Helped offline).
        op_sample!(h, crate::sample::OpSide::Deq, OpPath::Slow, cid);
        if v == VAL_TOP {
            HandleStats::bump(&h.stats.deq_slow_empty);
            (None, i)
        } else {
            (Some(v), i)
        }
    }

    // ------------------------------------------------------------------
    // Batch operations — one FAA per k operations (DESIGN.md §10)
    // ------------------------------------------------------------------

    /// Enqueues every value in `vs`, claiming `vs.len()` consecutive cells
    /// with a **single FAA** on `T` and depositing into them in order with
    /// the same per-cell CAS as the one-shot fast path.
    ///
    /// A deposit can fail only if a dequeuer poisoned the pre-claimed cell
    /// (⊥ → ⊤) first. The first such *straggler* element becomes an
    /// ordinary help-ring request ([`Self::enq_slow`]), and every element
    /// after it re-enters [`Self::enqueue_internal`] with fresh FAAs; the
    /// remaining pre-claimed cells are **abandoned** — dequeuers seal them
    /// ⊤, exactly like cells burned by failed one-shot fast paths. The
    /// abandonment is what preserves within-batch FIFO: `enq_slow` may
    /// claim a cell *past* the batch window, so depositing into the
    /// remaining pre-claimed (earlier) cells afterwards would order a later
    /// element before an earlier one. Because every completed element
    /// advances `T` past its cell (the fast path's FAA, `enq_commit`'s
    /// CAS-max), each fallback element lands strictly after its
    /// predecessor, so final cell indices are monotone in element order.
    /// Wait-freedom is preserved: the fallback is at most one slow path
    /// plus `k − 1` ordinary enqueues, each individually wait-free.
    pub(crate) fn enqueue_batch_internal(&self, h: &HandleNode<N>, vs: &[u64]) {
        for &v in vs {
            assert!(
                is_valid_value(v),
                "RawQueue values must not be 0 or u64::MAX (reserved ⊥/⊤); got {v:#x}"
            );
        }
        let k = vs.len() as u64;
        if k == 0 {
            return;
        }
        if k == 1 {
            return self.enqueue_internal(h, vs[0]);
        }
        h.publish_hazard(h.tail_seg_id.load(Ordering::Relaxed) as i64);
        HandleStats::bump(&h.stats.enq_batches);
        HandleStats::add(&h.stats.enq_batched_vals, k);
        wfq_obs::record!(wfq_obs::EventKind::EnqBatch, k);

        let base = self.tail_index.fetch_add(k, Ordering::SeqCst);
        inject!("enq_batch::post_faa");
        persist!(self, advance_tail(base + k));
        let mut last_index = base + k - 1;
        let mut straggler: Option<usize> = None;
        for (j, &v) in vs.iter().enumerate() {
            let i = base + j as u64;
            // SAFETY: h.tail is ≥ the hazard this thread published and
            // ≤ i/N (it only advances through cells claimed by this FAA;
            // consecutive indices hit find_cell's same-segment fast path).
            let c = unsafe { &*find_cell(&h.tail, i, &self.src(h)) };
            if c.try_deposit(v) {
                persist!(self, deposit(i, v));
                continue;
            }
            // A dequeuer poisoned cell i before the deposit: element j
            // becomes an ordinary wait-free help-ring request.
            inject!("enq_batch::straggler");
            HandleStats::bump(&h.stats.enq_batch_stragglers);
            last_index = self.enq_slow(h, v, i);
            HandleStats::bump(&h.stats.enq_slow);
            straggler = Some(j);
            break;
        }
        let Some(j) = straggler else {
            // Whole batch deposited fast: k fast-path completions.
            HandleStats::add(&h.stats.enq_fast, k);
            h.tail_seg_id.store(last_index / N as u64, Ordering::Relaxed);
            h.clear_hazard();
            return;
        };
        // Elements 0..j deposited fast; j committed via the slow path.
        HandleStats::add(&h.stats.enq_fast, j as u64);
        let abandoned = k - 1 - j as u64;
        if abandoned > 0 {
            inject!("enq_batch::abandon");
            HandleStats::add(&h.stats.enq_batch_abandoned, abandoned);
        }
        h.tail_seg_id.store(last_index / N as u64, Ordering::Relaxed);
        h.clear_hazard();
        for &v in &vs[j + 1..] {
            self.enqueue_internal(h, v);
        }
    }

    /// The fallible batch enqueue behind [`Handle::try_enqueue_batch`]:
    /// the admission gate of [`Self::try_enqueue_internal`], made
    /// batch-aware. The gate runs *before* the claiming FAA and demands
    /// headroom for the whole batch (⌈k/N⌉ segments), so a rejected call
    /// leaves no trace in the protocol and the slice is handed back
    /// untouched — no partial publication.
    pub(crate) fn try_enqueue_batch_internal(
        &self,
        h: &HandleNode<N>,
        vs: &[u64],
    ) -> Result<(), Full> {
        if vs.is_empty() {
            return Ok(());
        }
        if self.config.segment_ceiling.is_some() {
            let need = Config::batch_segments(vs.len() as u64, N as u64);
            if !self.pool.has_headroom_for(need) {
                self.forced_cleanup(h);
                if !self.pool.has_headroom_for(need) {
                    HandleStats::bump(&h.stats.enq_rejected);
                    wfq_obs::record!(
                        wfq_obs::EventKind::EnqRejected,
                        self.config.segment_ceiling.unwrap_or(0)
                    );
                    return Err(Full(()));
                }
            }
        }
        self.enqueue_batch_internal(h, vs);
        Ok(())
    }

    /// Dequeues up to `k` values into `out`, claiming the whole cell run
    /// with a **single FAA** on `H`. Returns the number of values appended.
    ///
    /// The claim width is trimmed *before* the FAA to what an `(H, T)`
    /// snapshot says is available, so a batch against a short queue returns
    /// the partial count without burning unavailable cells: `H > T` returns
    /// 0 with no FAA at all (the queue is linearizably empty — the one-shot
    /// fast-out of DESIGN.md §9), and `H == T` claims a single probe cell,
    /// preserving the one-shot probe's ⊤-seal semantics and bounding
    /// empty-side growth at one cell per call. Each claimed cell is then
    /// resolved strictly in order with the per-cell protocol of
    /// [`Self::deq_fast`]; a cell whose value claim is lost (or that a
    /// peer's candidate scan poisoned ahead of the claim) falls back to an
    /// ordinary help-ring request ([`Self::deq_slow`]), which consumes some
    /// strictly *later* cell (candidates start past the failed index and
    /// already-claimed cells are skipped), so the appended values stay in
    /// increasing cell order and the batch linearizes as `claim`
    /// consecutive one-shot dequeues. Every claimed cell is visited —
    /// skipping one could strand a deposited value forever.
    pub(crate) fn dequeue_batch_internal(
        &self,
        h: &HandleNode<N>,
        out: &mut Vec<u64>,
        k: usize,
    ) -> usize {
        if k == 0 {
            return 0;
        }
        h.publish_hazard(h.head_seg_id.load(Ordering::Relaxed) as i64);
        inject!("deq::hazard_published");

        let h_idx = self.head_index.load(Ordering::SeqCst);
        let t_idx = self.tail_index.load(Ordering::SeqCst);
        if h_idx > t_idx {
            HandleStats::bump(&h.stats.deq_batches);
            HandleStats::bump(&h.stats.deq_fast);
            HandleStats::bump(&h.stats.deq_empty);
            wfq_obs::record!(wfq_obs::EventKind::DeqEmpty, h_idx);
            h.clear_hazard();
            return 0;
        }
        let claim = (k as u64).min(t_idx.saturating_sub(h_idx).max(1));
        if claim < k as u64 {
            inject!("deq_batch::partial_probe");
            HandleStats::bump(&h.stats.deq_batch_partial);
        }
        HandleStats::bump(&h.stats.deq_batches);
        wfq_obs::record!(wfq_obs::EventKind::DeqBatch, claim);

        let base = self.head_index.fetch_add(claim, Ordering::SeqCst);
        inject!("deq_batch::post_faa");
        persist!(self, advance_head(base + claim));
        // Traverse the claimed cells with a *local* segment pointer, like
        // enq_slow's tmp_tail: a straggler's deq_slow advances h.head to
        // its announced cell, which can lie past claimed cells this loop
        // still has to visit, and find_cell must never walk backward.
        let bh = AtomicPtr::new(h.head.load(Ordering::Acquire));
        let mut got = 0u64;
        let mut last_index = base;
        for j in 0..claim {
            let i = base + j;
            last_index = last_index.max(i);
            // SAFETY: bh starts at h.head (hazard-protected, segment
            // ≤ base/N) and only advances through cells claimed by our FAA.
            let c = unsafe { &*find_cell(&bh, i, &self.src(h)) };
            match self.help_enq(h, c, i) {
                HelpEnq::Empty => {
                    // Only the H == T probe cell can witness emptiness:
                    // every other claimed index is below the T snapshot,
                    // which `T` can never drop back under.
                    HandleStats::bump(&h.stats.deq_fast);
                    HandleStats::bump(&h.stats.deq_empty);
                    wfq_obs::record!(wfq_obs::EventKind::DeqEmpty, i);
                }
                HelpEnq::Value(v) if c.try_claim_deq_fast() => {
                    persist!(self, consume(i, v));
                    HandleStats::bump(&h.stats.deq_fast);
                    wfq_obs::record!(wfq_obs::EventKind::DeqFast, i);
                    out.push(v);
                    got += 1;
                }
                _ => {
                    // Straggler: the cell is ⊤, or its value was claimed by
                    // a peer's slow-path request.
                    inject!("deq_batch::straggler");
                    HandleStats::bump(&h.stats.deq_batch_stragglers);
                    // deq_slow's request protocol (self-help and peers alike)
                    // walks forward from h.head, so h.head must be ≤ i/N when
                    // the request publishes — the one-shot path gets that from
                    // its pre-FAA find_cell, but an earlier straggler in this
                    // batch left h.head at its announced cell, possibly past
                    // i. Rewind to the batch traversal pointer (exactly
                    // segment i/N, still covered by our entry hazard); the
                    // SeqCst publish inside deq_slow orders the store before
                    // any helper can observe the request.
                    h.head.store(bh.load(Ordering::Relaxed), Ordering::Release);
                    let (r, si) = self.deq_slow(h, i);
                    HandleStats::bump(&h.stats.deq_slow);
                    last_index = last_index.max(si);
                    match r {
                        Some(v) => {
                            out.push(v);
                            got += 1;
                        }
                        None => {
                            HandleStats::bump(&h.stats.deq_empty);
                            wfq_obs::record!(wfq_obs::EventKind::DeqEmpty, si);
                        }
                    }
                }
            }
        }
        HandleStats::add(&h.stats.deq_batched_vals, got);
        // Re-align h.head with the batch's frontier so it matches the
        // head_seg_id mirror stored below — the next operation publishes
        // that mirror as its hazard and then dereferences h.head, so the
        // two must agree. h.head's segment is ≤ last_index/N here (entry
        // position or a straggler's announced cell, both ≤ the max), and
        // our own hazard still protects the walk.
        // SAFETY: as above.
        unsafe { find_cell(&h.head, last_index, &self.src(h)) };

        // One amortized peer help per batch with ≥ 1 success — the batch
        // analogue of Listing 4 lines 135–138. NOTE: help_deq may leave
        // this thread's hazard pointing at the helpee's segment; nothing
        // below dereferences a segment.
        if got > 0 {
            let peer = h.deq_peer.load(Ordering::Relaxed);
            // SAFETY: ring nodes live for the queue's lifetime.
            let peer_ref = unsafe { &*peer };
            if !core::ptr::eq(peer_ref, h) {
                HandleStats::bump(&h.stats.help_deq);
            }
            self.help_deq(h, peer_ref);
            h.deq_peer.store(peer_ref.next_node(), Ordering::Relaxed);
        }

        h.head_seg_id.store(last_index / N as u64, Ordering::Relaxed);
        h.clear_hazard();
        self.cleanup(h);
        got as usize
    }

    // ------------------------------------------------------------------
    // help_deq (Listing 4 lines 158–205 + Listing 5 line 220)
    // ------------------------------------------------------------------

    pub(crate) fn help_deq(&self, h: &HandleNode<N>, helpee: &HandleNode<N>) {
        let r = &helpee.deq_req;
        // Line 160: state before id (writers publish id before state).
        let mut s = r.state();
        let id = r.id();
        if !s.pending || s.index < id {
            return; // line 162
        }
        // Past the cheap bail-out: this call will actually work on the
        // request, so open a helper span tagged with the helpee's op id.
        // When `deq_slow` self-helps this nests inside its own slow span.
        wfq_obs::record!(wfq_obs::EventKind::HelpDeqEnter, id, id);
        // Line 164: local pointer for announced cells.
        let ha = AtomicPtr::new(helpee.head.load(Ordering::Acquire));
        // Listing 5 line 220: adopt the helpee's published hazard — an id,
        // never a pointer, so nothing is dereferenced here. If the helpee
        // already finished (hazard cleared), the state re-read below bails
        // out before any segment is touched.
        let adopted = helpee.hzd_id.load(Ordering::SeqCst);
        h.hzd_id.store(adopted, Ordering::SeqCst);
        fence(Ordering::SeqCst);
        // The hazard "backward jump": this thread's published hazard may
        // now be *older* than where a concurrent cleaner's forward pass
        // already scanned — exactly what the reverse pass must catch.
        inject!("help_deq::hazard_adopted");
        wfq_obs::record!(wfq_obs::EventKind::HazardAdopt, adopted as u64, id);
        s = r.state(); // line 165: must re-read after hazard adoption

        let mut prior = id; // line 166
        let mut i = id;
        let mut cand = 0u64;
        let r_ptr = r as *const DeqReq as *mut DeqReq;
        loop {
            // Lines 172–180: find a candidate cell with a fresh local
            // segment pointer hc (announced cells may be *behind* hc's
            // progress, which is why ha must not advance here).
            let hc = AtomicPtr::new(ha.load(Ordering::Relaxed));
            // Deviation from the pseudocode (matching the released C code):
            // also stop when the request is no longer pending, rather than
            // scanning on until a candidate turns up.
            while cand == 0 && s.pending && s.index == prior {
                i += 1;
                inject!("help_deq::candidate_scan");
                // SAFETY: hc starts at a hazard-protected segment ≤ i/N.
                let c = unsafe { &*find_cell(&hc, i, &self.src(h)) };
                match self.help_enq(h, c, i) {
                    HelpEnq::Empty => cand = i, // line 177
                    HelpEnq::Value(_) if c.load_deq() == DEQ_BOTTOM => cand = i,
                    _ => s = r.state(), // line 179
                }
            }
            if cand != 0 {
                // Lines 181–185: try to announce our candidate. The
                // candidate is consumed by the attempt whether or not the
                // CAS wins — the paper's pseudocode keeps it when
                // `s.idx < i` (line 204), which livelocks once the kept
                // candidate is itself the announced-and-stolen cell; the
                // authors' released C code resets it here (`new = 0`), and
                // so do we (erratum documented in DESIGN.md).
                inject!("help_deq::pre_announce");
                if r.cas_state((true, prior), (true, cand)) {
                    HandleStats::bump(&h.stats.help_deq_announce);
                    wfq_obs::record!(wfq_obs::EventKind::HelpDeqAnnounce, cand, id);
                }
                s = r.state();
                cand = 0;
            }
            // Line 188: request complete or superseded.
            if !s.pending || r.id() != id {
                wfq_obs::record!(wfq_obs::EventKind::HelpDeqExit, s.index, id);
                return;
            }
            // Line 190: locate the announced candidate.
            // SAFETY: announced indices increase monotonically from id
            // (Invariant 7), so ha.id ≤ s.index/N; hazard-protected.
            let c = unsafe { &*find_cell(&ha, s.index, &self.src(h)) };
            // Lines 191–199: the candidate satisfies the request if it
            // witnesses EMPTY (val = ⊤) or its value is claimed for r.
            if c.load_val() == VAL_TOP
                || c.try_claim_deq_slow(r_ptr)
                || c.load_deq() == r_ptr
            {
                inject!("help_deq::pre_complete");
                // The helper (or self-helper) just consumed the announced
                // cell for the request; mirror the consume before the
                // completing CAS so a crash in between still records the
                // delivery. Extra load is durable-only.
                #[cfg(feature = "durable")]
                {
                    let cv = c.load_val();
                    if cv != VAL_TOP {
                        persist!(self, consume(s.index, cv));
                    }
                }
                if r.cas_state((true, s.index), (false, s.index)) {
                    // line 196
                    HandleStats::bump(&h.stats.help_deq_complete);
                    wfq_obs::record!(wfq_obs::EventKind::HelpDeqComplete, s.index, id);
                }
                wfq_obs::record!(wfq_obs::EventKind::HelpDeqExit, s.index, id);
                return;
            }
            // Lines 200–204: prepare the next round.
            prior = s.index;
            if s.index >= i {
                cand = 0;
                i = s.index;
            }
        }
    }
}

/// The paper's `advance_end_for_linearizability` (lines 53–55): CAS-max.
fn advance_index(e: &AtomicU64, cid: u64) {
    let mut cur = e.load(Ordering::SeqCst);
    while cur < cid {
        inject!("advance_index::pre_cas");
        match e.compare_exchange_weak(cur, cid, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

impl<const N: usize> Drop for RawQueue<N> {
    fn drop(&mut self) {
        let reg = self.registry.get_mut().unwrap();
        debug_assert!(
            reg.all
                .iter()
                // SAFETY: nodes are still live here.
                .all(|&n| unsafe { !(*n).active.load(Ordering::Relaxed) }),
            "RawQueue dropped while handles are still live"
        );
        for &n in &reg.all {
            // SAFETY: exclusive access (&mut self); spares are unpublished
            // segments owned by the node; nodes were Box-allocated.
            unsafe {
                let spare = (*n).spare.load(Ordering::Relaxed);
                if !spare.is_null() {
                    Segment::dealloc(spare);
                }
                drop(Box::from_raw(n));
            }
        }
        // SAFETY: exclusive access; free the whole remaining segment chain.
        let mut s = self.q.load(Ordering::Relaxed);
        while !s.is_null() {
            let next = unsafe { (*s).next.load(Ordering::Relaxed) };
            unsafe { Segment::dealloc(s) };
            s = next;
        }
    }
}

impl<const N: usize> Handle<'_, N> {
    #[inline]
    fn node(&self) -> &HandleNode<N> {
        // SAFETY: the node outlives the handle (freed only on queue drop,
        // which the 'q borrow prevents while this handle exists).
        unsafe { &*self.node }
    }

    /// Enqueues `v`. Wait-free. Panics if `v` is a reserved pattern
    /// (`0` or `u64::MAX`).
    ///
    /// In bounded mode this keeps the paper's always-succeeds semantics:
    /// it bypasses the admission gate and may push the queue past its
    /// segment ceiling (by the bounded overshoot described in
    /// [`Config::with_segment_ceiling`]). Use [`Handle::try_enqueue`] to
    /// respect the ceiling.
    #[inline]
    pub fn enqueue(&mut self, v: u64) {
        // The Glue envelope: every named phase inside nests under it, so
        // its self-time is exactly the instruction glue no named phase
        // covers — the ledger's explicit remainder.
        wfq_obs::phase!(
            wfq_obs::Phase::Glue,
            self.queue.enqueue_internal(self.node(), v)
        );
    }

    /// Enqueues `v`, failing fast with [`Full`] if the queue is at its
    /// segment ceiling and a same-call forced reclamation pass cannot
    /// recover headroom. Wait-free (the rejection path does constant work
    /// plus one bounded ring scan). Panics on the reserved patterns.
    ///
    /// Without a ceiling ([`Config::segment_ceiling`] unset) this never
    /// returns `Err` and compiles to the same fast path as
    /// [`Handle::enqueue`] plus one branch.
    #[inline]
    pub fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
        self.queue.try_enqueue_internal(self.node(), v)
    }

    /// Dequeues the oldest value, or returns `None` if the queue was
    /// observed empty (the paper's EMPTY). Wait-free.
    #[inline]
    pub fn dequeue(&mut self) -> Option<u64> {
        wfq_obs::phase!(
            wfq_obs::Phase::Glue,
            self.queue.dequeue_internal(self.node())
        )
    }

    /// Enqueues every value in `vs`, claiming `vs.len()` consecutive cells
    /// with a **single FAA** (DESIGN.md §10) — one atomic, one hazard
    /// publish, and one stats/help epilogue amortized over the whole batch.
    /// Equivalent to `vs.len()` back-to-back [`Handle::enqueue`] calls by
    /// this thread: within-batch FIFO order is preserved even when cells
    /// lose their deposit race and fall back to the help ring. Wait-free;
    /// panics if any value is a reserved pattern.
    ///
    /// Like [`Handle::enqueue`] this bypasses the bounded-mode admission
    /// gate; use [`Handle::try_enqueue_batch`] to respect the ceiling.
    #[inline]
    pub fn enqueue_batch(&mut self, vs: &[u64]) {
        self.queue.enqueue_batch_internal(self.node(), vs);
    }

    /// Enqueues every value in `vs`, or rejects the **whole batch** with
    /// [`Full`] when the segment ceiling leaves less than `⌈vs.len()/N⌉`
    /// segments of headroom and a forced reclamation pass cannot recover
    /// it. The gate runs before the claiming FAA, so on `Err` not one
    /// element entered the queue — the slice is handed back untouched, with
    /// no partial publication. Wait-free.
    #[inline]
    pub fn try_enqueue_batch(&mut self, vs: &[u64]) -> Result<(), Full> {
        self.queue.try_enqueue_batch_internal(self.node(), vs)
    }

    /// Dequeues up to `k` values into `out` with a **single FAA**,
    /// returning how many were appended. A short return means the `(H, T)`
    /// snapshot had fewer than `k` values available — it is the batch
    /// analogue of [`Handle::dequeue`] returning `None`, not a failure;
    /// unavailable cells are never claimed or burned. Wait-free.
    #[inline]
    pub fn dequeue_batch(&mut self, out: &mut Vec<u64>, k: usize) -> usize {
        self.queue.dequeue_batch_internal(self.node(), out, k)
    }

    /// The execution-path sample of this handle's most recent
    /// single-value operation ([`crate::sample`]): which protocol path it
    /// took (fast / slow / helped) and the op id the PR-5 span taxonomy
    /// keys on. `None` before the first operation, after batch operations
    /// (which do not update the sample), and always in builds without the
    /// `op-sample` feature — where this compiles to a constant.
    #[inline]
    pub fn last_op_sample(&self) -> Option<OpSample> {
        #[cfg(feature = "op-sample")]
        {
            return self.node().last_sample.get();
        }
        #[cfg(not(feature = "op-sample"))]
        {
            None
        }
    }

    /// The queue this handle is registered with.
    pub fn queue(&self) -> &RawQueue<N> {
        self.queue
    }
}

impl<const N: usize> Drop for Handle<'_, N> {
    fn drop(&mut self) {
        self.queue.release_node(self.node);
    }
}

/// Test-only access to a handle's ring node (used by sibling-module tests).
#[cfg(test)]
pub(crate) fn test_node<const N: usize>(h: &Handle<'_, N>) -> *mut HandleNode<N> {
    h.node
}

impl<const N: usize> core::fmt::Debug for RawQueue<N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (h, t) = self.indices();
        f.debug_struct("RawQueue")
            .field("segment_size", &N)
            .field("head_index", &h)
            .field("tail_index", &t)
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_on_a_single_thread() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        for v in 1..=100 {
            h.enqueue(v);
        }
        for v in 1..=100 {
            assert_eq!(h.dequeue(), Some(v));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn empty_queue_returns_none_repeatedly() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        for _ in 0..10 {
            assert_eq!(h.dequeue(), None);
        }
        // Emptiness probes consume cells but must not corrupt later ops.
        h.enqueue(5);
        assert_eq!(h.dequeue(), Some(5));
    }

    #[test]
    fn interleaved_enq_deq_single_thread() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1));
        h.enqueue(3);
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), Some(3));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn crosses_segment_boundaries() {
        let q: RawQueue<8> = RawQueue::new();
        let mut h = q.register();
        for v in 1..=1000u64 {
            h.enqueue(v);
        }
        for v in 1..=1000u64 {
            assert_eq!(h.dequeue(), Some(v));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn wf0_forces_the_slow_path_under_contention() {
        // With patience 0 and concurrent dequeuers poisoning cells, some
        // enqueues must complete via enq_slow — and remain correct.
        let q: RawQueue<16> = RawQueue::with_config(Config::wf0());
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..2000u64 {
                        h.enqueue(t * 10_000 + v + 1);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let total = &total;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut got = 0;
                    while got < 2000 {
                        if h.dequeue().is_some() {
                            got += 1;
                        }
                    }
                    total.fetch_add(got, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn values_are_conserved_across_threads() {
        let q: RawQueue<256> = RawQueue::new();
        const PER: u64 = 5_000;
        const PRODUCERS: u64 = 4;
        let sum = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..PER {
                        h.enqueue(t * PER + v + 1);
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let sum = &sum;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut local = 0u64;
                    let mut got = 0u64;
                    while got < PER {
                        if let Some(v) = h.dequeue() {
                            local += v;
                            got += 1;
                        }
                    }
                    sum.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        let expect: u64 = (1..=PRODUCERS * PER).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_value_zero_panics() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue(0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_value_max_panics() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue(u64::MAX);
    }

    #[test]
    fn handles_recycle_through_the_pool() {
        let q: RawQueue<64> = RawQueue::new();
        let n1;
        {
            let h = q.register();
            n1 = h.node;
        }
        let h2 = q.register();
        assert_eq!(h2.node, n1, "dropped handle's node must be reused");
        assert_eq!(q.handle_count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_count_fast_paths_when_uncontended() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        for v in 1..=50 {
            h.enqueue(v);
        }
        for _ in 0..50 {
            h.dequeue();
        }
        let s = q.stats();
        assert_eq!(s.enqueues(), 50);
        assert_eq!(s.dequeues(), 50);
        assert_eq!(s.enq_slow, 0, "no contention, no slow path");
        assert_eq!(s.deq_slow, 0);
        assert_eq!(s.deq_empty, 0);
    }

    #[test]
    fn stats_count_empty_dequeues() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.dequeue();
        h.dequeue();
        assert_eq!(q.stats().deq_empty, 2);
    }

    #[test]
    fn advance_index_is_a_cas_max() {
        let a = AtomicU64::new(5);
        advance_index(&a, 3);
        assert_eq!(a.load(Ordering::Relaxed), 5);
        advance_index(&a, 9);
        assert_eq!(a.load(Ordering::Relaxed), 9);
        advance_index(&a, 9);
        assert_eq!(a.load(Ordering::Relaxed), 9);
    }

    #[test]
    fn gauges_reflect_idle_and_active_state() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        for v in 1..=100 {
            h.enqueue(v);
        }
        let g = q.gauges();
        assert_eq!(g.tail_index, 100);
        assert_eq!(g.head_index, 0);
        assert_eq!(g.active_handles, 1);
        assert_eq!(g.total_handles, 1);
        assert_eq!(g.min_hazard, None, "idle handle: no hazard published");
        assert_eq!(g.hazard_lag_segments, 0);
        assert_eq!(g.pending_enq_reqs, 0);
        assert_eq!(g.pending_deq_reqs, 0);
        assert_eq!(g.oldest_segment_id, 0);
        // 100 values over 64-cell segments: at least two segments live.
        assert!(g.live_segments >= 2, "{g:?}");
        drop(h);
        assert_eq!(q.gauges().active_handles, 0);
    }

    #[test]
    fn debug_formatting_mentions_indices() {
        let q: RawQueue<64> = RawQueue::new();
        let s = format!("{q:?}");
        assert!(s.contains("head_index"));
        assert!(s.contains("tail_index"));
    }

    #[test]
    fn batch_roundtrip_preserves_fifo() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        let vals: Vec<u64> = (1..=100).collect();
        h.enqueue_batch(&vals);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 100), 100);
        assert_eq!(out, vals);
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_crosses_segment_boundaries() {
        let q: RawQueue<8> = RawQueue::new();
        let mut h = q.register();
        let vals: Vec<u64> = (1..=1000).collect();
        for chunk in vals.chunks(37) {
            h.enqueue_batch(chunk);
        }
        let mut out = Vec::new();
        while h.dequeue_batch(&mut out, 29) > 0 {}
        assert_eq!(out, vals);
    }

    #[test]
    fn batch_dequeue_trims_to_available_without_burning() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue_batch(&[1, 2, 3]);
        let mut out = Vec::new();
        // Asking for 10 with 3 available claims exactly 3 cells: the next
        // enqueue/dequeue pair must still meet (no cells burned past T).
        assert_eq!(h.dequeue_batch(&mut out, 10), 3);
        assert_eq!(out, [1, 2, 3]);
        assert_eq!(q.indices(), (3, 3), "partial probe must not overclaim");
        let s = q.stats();
        assert_eq!(s.deq_batch_partial, 1);
        assert_eq!(s.deq_batched_vals, 3);
    }

    #[test]
    fn batch_dequeue_on_empty_queue_returns_zero() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        let mut out = Vec::new();
        // First call probes H == T (burns one cell, like single dequeue);
        // once H > T later calls are FAA-free fast-outs.
        assert_eq!(h.dequeue_batch(&mut out, 8), 0);
        assert_eq!(h.dequeue_batch(&mut out, 8), 0);
        assert!(out.is_empty());
        h.enqueue(5);
        assert_eq!(h.dequeue_batch(&mut out, 8), 1);
        assert_eq!(out, [5]);
    }

    #[test]
    fn batch_mixed_with_singles_stays_fifo() {
        let q: RawQueue<16> = RawQueue::new();
        let mut h = q.register();
        h.enqueue(1);
        h.enqueue_batch(&[2, 3, 4]);
        h.enqueue(5);
        h.enqueue_batch(&[6, 7]);
        let mut out = Vec::new();
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.dequeue_batch(&mut out, 4), 4);
        assert_eq!(out, [2, 3, 4, 5]);
        assert_eq!(h.dequeue(), Some(6));
        assert_eq!(h.dequeue(), Some(7));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn batch_edge_widths_zero_and_one() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue_batch(&[]);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 0), 0);
        assert_eq!(q.indices(), (0, 0), "width 0: no FAA at all");
        // Width 1 delegates to the one-shot path: no batch counters.
        h.enqueue_batch(&[9]);
        assert_eq!(h.dequeue(), Some(9));
        let s = q.stats();
        assert_eq!(s.enq_batches, 0);
        assert_eq!(s.enq_fast, 1);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn batch_rejects_reserved_values_before_any_claim() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue_batch(&[1, 2, 0]);
    }

    #[test]
    fn batch_stats_count_every_element() {
        let q: RawQueue<64> = RawQueue::new();
        let mut h = q.register();
        h.enqueue_batch(&[1, 2, 3, 4]);
        h.enqueue(5);
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 5), 5);
        let s = q.stats();
        assert_eq!(s.enqueues(), 5, "batched elements count as enqueues");
        assert_eq!(s.dequeues(), 5);
        assert_eq!(s.enq_batches, 1);
        assert_eq!(s.enq_batched_vals, 4);
        assert_eq!(s.deq_batches, 1);
        assert_eq!(s.deq_batched_vals, 5);
        assert!((s.avg_enq_batch_width() - 4.0).abs() < 1e-9);
        assert_eq!(s.enq_batch_stragglers, 0);
        assert_eq!(s.enq_batch_abandoned, 0);
    }

    #[test]
    fn concurrent_batches_conserve_values() {
        let q: RawQueue<32> = RawQueue::new();
        const PER: u64 = 4_000;
        const PRODUCERS: u64 = 3;
        let sum = std::sync::atomic::AtomicU64::new(0);
        let taken = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..PRODUCERS {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    let vals: Vec<u64> = (0..PER).map(|v| t * PER + v + 1).collect();
                    for chunk in vals.chunks(8) {
                        h.enqueue_batch(chunk);
                    }
                });
            }
            // Consumers exit on a *shared* taken-count: a batch can deliver
            // past a per-consumer quota, which would strand a sibling.
            let taken = &taken;
            for _ in 0..3 {
                let q = &q;
                let sum = &sum;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut local = 0u64;
                    let mut out = Vec::new();
                    while taken.load(Ordering::Relaxed) < PRODUCERS * PER {
                        out.clear();
                        let n = h.dequeue_batch(&mut out, 8) as u64;
                        if n > 0 {
                            local += out.iter().sum::<u64>();
                            taken.fetch_add(n, Ordering::Relaxed);
                        }
                    }
                    sum.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), PRODUCERS * PER);
        let expect: u64 = (1..=PRODUCERS * PER).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn wf0_concurrent_batches_survive_the_slow_path() {
        // Patience 0 + contending batch dequeuers force straggler cells
        // through the help ring; values must still be conserved in order.
        let q: RawQueue<16> = RawQueue::with_config(Config::wf0());
        let taken = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    let vals: Vec<u64> = (0..2000).map(|v| t * 10_000 + v + 1).collect();
                    for chunk in vals.chunks(5) {
                        h.enqueue_batch(chunk);
                    }
                });
            }
            // Shared exit condition — a batch can overshoot a per-consumer
            // quota and strand the sibling below its own.
            let taken = &taken;
            for _ in 0..2 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut prev_per_producer = [0u64; 2];
                    let mut out = Vec::new();
                    while taken.load(Ordering::Relaxed) < 4000 {
                        out.clear();
                        let n = h.dequeue_batch(&mut out, 7) as u64;
                        if n > 0 {
                            taken.fetch_add(n, Ordering::Relaxed);
                        }
                        for &v in &out {
                            // Per-producer order must survive the help ring.
                            let p = (v / 10_000) as usize;
                            assert!(v > prev_per_producer[p], "FIFO violated: {v}");
                            prev_per_producer[p] = v;
                        }
                    }
                });
            }
        });
        assert_eq!(taken.load(Ordering::Relaxed), 4000);
    }
}
