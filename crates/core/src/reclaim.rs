//! Segment reclamation (paper Listing 5, §3.6).
//!
//! The only garbage the queue produces is segments that both indices have
//! moved past. Reclamation is a hybrid of epoch- and hazard-based schemes:
//!
//! 1. `I` (here `oldest_id`) holds the id of the oldest live segment; a
//!    dequeuer that sees enough garbage elects itself *cleaner* by CASing
//!    `I` to −1, which also excludes concurrent cleaners (mutual exclusion
//!    instead of cross-cleaner synchronization).
//! 2. The cleaner walks the handle ring **forward**, clamping its
//!    reclamation boundary below every published hazard and *pushing* each
//!    thread's lagging head/tail pointers up to the boundary so idle
//!    threads cannot pin garbage (Dijkstra's protocol between cleaner and
//!    owner: CAS, then re-verify the hazard).
//! 3. A **backward** pass re-checks every hazard in reverse order, catching
//!    the one legal "backward jump": a dequeue helper adopting its helpee's
//!    older hazard (Listing 5 line 220) while the forward pass was already
//!    past it.
//! 4. Whatever the boundary settled on is final: segments `[I, boundary)`
//!    are unlinked by moving `Q`, `I` is restored to the boundary id, and
//!    the chain is freed.
//!
//! Deviation note (documented in DESIGN.md): the paper's pseudocode returns
//! from the nothing-to-reclaim case restoring `q->Q` but leaving `I = −1`,
//! which would disable reclamation forever; like the authors' released C
//! code we restore `I` on that path.
//!
//! Hazards are **segment ids**, not pointers, exactly as in the authors' C
//! code (`hzd_node_id`): a cleaner never dereferences another thread's
//! hazard slot, so a stale hazard can only make reclamation more
//! conservative, never unsound.

use core::sync::atomic::{fence, AtomicPtr, Ordering};

use wfq_sync::inject;

use crate::handle::{HandleNode, NO_HAZARD};
use crate::raw::RawQueue;
use crate::segment::Segment;
use crate::stats::HandleStats;

impl<const N: usize> RawQueue<N> {
    /// Attempts a reclamation pass (paper `cleanup`, lines 222–238).
    /// Called at the end of every dequeue; the hot path is the two loads
    /// and a compare below — everything else is outlined as cold.
    #[inline]
    pub(crate) fn cleanup(&self, h: &HandleNode<N>) {
        // Lines 223–225.
        let oid = self.oldest_id.load(Ordering::Acquire);
        if oid < 0 {
            return; // a cleaner is already at work
        }
        // The handle's head-segment mirror, maintained by index arithmetic
        // at each dequeue epilogue. Never dereference h.head here: cleanup
        // runs after the hazard is cleared, so no segment access is
        // protected. The mirror is ≤ the true id, which only makes the
        // threshold and boundary conservative.
        let my_head_id = h.head_seg_id.load(Ordering::Relaxed);
        // Threshold from the *live* handle count, not the ever-registered
        // total: under register/drop churn the latter only grows, inflating
        // the threshold until reclamation effectively never runs.
        let threshold = self
            .config
            .garbage_threshold(self.active_count.load(Ordering::Relaxed));
        if my_head_id.saturating_sub(oid as u64) < threshold {
            return;
        }
        self.cleanup_cold(h, oid, my_head_id);
    }

    /// Bounded-mode escalation: an enqueuer that finds no ceiling headroom
    /// elects itself cleaner instead of waiting for a dequeuer to trip the
    /// garbage threshold. Runs at most one full pass (no retry): if the
    /// boundary is pinned by a stalled thread's hazard, the caller degrades
    /// to rejecting the enqueue — bounded RSS instead of unbounded growth —
    /// and the pinning hazard stays visible in [`Gauges::min_hazard`]
    /// (crate::Gauges::min_hazard) for the watchdog to report.
    #[cold]
    pub(crate) fn forced_cleanup(&self, h: &HandleNode<N>) {
        inject!("reclaim::forced");
        HandleStats::bump(&h.stats.forced_cleanups);
        let oid = self.oldest_id.load(Ordering::Acquire);
        if oid < 0 {
            // A cleaner is mid-pass; its retirements may create headroom.
            // Yield once rather than spin: the caller rechecks and rejects.
            std::thread::yield_now();
            return;
        }
        // The dequeue frontier is the natural reclamation candidate for a
        // cleaner that is not itself a dequeuer: everything below the last
        // claimed head cell's segment is consumed. `(H − 1) / N` — not
        // `H / N`, which names a segment the chain may not have grown yet
        // (H is the *next* index; dequeuers use their claimed cell's id).
        // cleanup_cold clamps it below the enqueue frontier, every
        // published hazard, and every handle pointer, exactly as for a
        // dequeuer-elected pass.
        let head = self.head_index.load(Ordering::SeqCst);
        if head == 0 {
            return; // nothing consumed yet, nothing to reclaim
        }
        let head_frontier = (head - 1) / N as u64;
        wfq_obs::record!(wfq_obs::EventKind::ForcedCleanup, head_frontier);
        self.cleanup_cold(h, oid, head_frontier);
    }

    /// The election, ring scan, and reclamation (cold: runs once per
    /// MAX_GARBAGE segments at most).
    #[cold]
    fn cleanup_cold(&self, h: &HandleNode<N>, oid: i64, my_head_id: u64) {
        // Defensive clamp (not in the paper's pseudocode): the boundary —
        // and with it the pointer-push targets below — must never pass the
        // *enqueue* frontier `T / N`. Empty-probing dequeues can drive `H`
        // (and thus head segment ids) far past `T`; pushing an idle
        // enqueuer's tail pointer beyond `T / N` would break find_cell's
        // starting invariant (`segment id ≤ target id`) for its next
        // operation and free segments that future `FAA(T)` indices still
        // address. `T` is monotone, so a one-shot read is conservative.
        let tail_frontier = self.tail_index.load(Ordering::SeqCst) / N as u64;
        if my_head_id.min(tail_frontier) <= oid as u64 {
            return; // nothing reclaimable below both frontiers
        }

        // Line 226: election.
        if self
            .oldest_id
            .compare_exchange(oid, -1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            return;
        }
        let oid = oid as u64;
        inject!("reclaim::elected");
        HandleStats::bump(&h.stats.cleanups);
        wfq_obs::record!(wfq_obs::EventKind::CleanerElected, oid);

        // Line 227: `start` is the current front (id == oid); nothing can
        // be freed while we hold the token, so the chain from `start` on is
        // stable and safe to traverse.
        let start = self.q.load(Ordering::Acquire);
        debug_assert_eq!(unsafe { (*start).id() }, oid);

        // The candidate boundary: everything before it is reclaimable.
        let mut boundary = my_head_id.min(tail_frontier);

        // Lines 228–233: forward pass over the ring — *including* the
        // cleaner's own node. The paper's pseudocode starts at `h->next`
        // and stops at `h`, skipping the cleaner; but the cleaner is a
        // dequeuer whose own *tail* pointer may lag at the very front of
        // the queue, and skipping it frees the segment its own tail still
        // references (erratum #3 in DESIGN.md — the authors' released C
        // code iterates with a do-while that visits `th` first).
        let mut visited: Vec<*mut HandleNode<N>> = Vec::new();
        let self_ptr = h as *const HandleNode<N> as *mut HandleNode<N>;
        let mut p = self_ptr;
        loop {
            inject!("reclaim::forward_scan");
            // SAFETY: ring nodes live for the queue's lifetime.
            let pn = unsafe { &*p };
            verify(&mut boundary, pn.hzd_id.load(Ordering::SeqCst)); // line 229
            self.update_pointer(&pn.head, &mut boundary, pn, start, oid, &h.stats); // line 230
            if boundary <= oid {
                break;
            }
            self.update_pointer(&pn.tail, &mut boundary, pn, start, oid, &h.stats); // line 231
            if boundary <= oid {
                break;
            }
            visited.push(p);
            p = pn.next_node();
            if p == self_ptr {
                break;
            }
        }

        // Line 235: backward pass catches hazard "backward jumps" that
        // happened behind the forward pass.
        for &p in visited.iter().rev() {
            if boundary <= oid {
                break;
            }
            inject!("reclaim::reverse_scan");
            let before = boundary;
            // SAFETY: as above.
            verify(&mut boundary, unsafe { (*p).hzd_id.load(Ordering::SeqCst) });
            if boundary < before {
                // The reverse pass caught a backward-jumped hazard the
                // forward pass missed — the window this pass exists for.
                HandleStats::bump(&h.stats.reclaim_backward_clamp);
                wfq_obs::record!(wfq_obs::EventKind::HazardClamp, boundary);
            }
        }

        // Line 236 (fixed per the released C code): nothing reclaimable —
        // put the token back unchanged.
        if boundary <= oid {
            HandleStats::bump(&h.stats.reclaim_noop);
            self.oldest_id.store(oid as i64, Ordering::Release);
            return;
        }

        // Lines 237–238: publish the new front, release the token at the
        // new id, retire the prefix (freed outright when unbounded,
        // scrubbed into the recycling pool in bounded mode).
        inject!("reclaim::pre_free");
        let new_front = resolve(start, boundary);
        self.q.store(new_front, Ordering::Release);
        self.oldest_id.store(boundary as i64, Ordering::Release);
        // SAFETY: every hazard and every head/tail pointer is ≥ boundary;
        // the prefix [start, new_front) is unreachable.
        let (retired, recycled) = unsafe { self.pool.retire_list(start, new_front) };
        // Advisory durable-mode note: every cell below the boundary is
        // volatile-unreachable, so the store may compact their records at
        // the next generation turn (DESIGN.md §12).
        crate::persist::persist!(self, retire_below(boundary * N as u64));
        HandleStats::add(&h.stats.segs_freed, retired);
        wfq_obs::record!(wfq_obs::EventKind::SegFree, retired);
        if recycled > 0 {
            HandleStats::add(&h.stats.segs_recycled, recycled);
            wfq_obs::record!(wfq_obs::EventKind::SegRecycle, recycled);
        }
    }

    /// The paper's `update` (lines 239–247): push a lagging head/tail
    /// pointer of thread `p` forward to the boundary, or concede the
    /// boundary down to wherever that thread actually is.
    fn update_pointer(
        &self,
        from: &AtomicPtr<Segment<N>>,
        boundary: &mut u64,
        p: &HandleNode<N>,
        start: *mut Segment<N>,
        oid: u64,
        cleaner: &crate::stats::HandleStats,
    ) {
        let n = from.load(Ordering::Acquire);
        // SAFETY: thread pointers always reference live (≥ oid) segments.
        let n_id = unsafe { (*n).id() };
        if n_id < *boundary {
            let to = resolve(start, *boundary);
            inject!("reclaim::pre_update_cas");
            if let Err(cur) = from.compare_exchange(n, to, Ordering::SeqCst, Ordering::SeqCst) {
                // Line 242–245: the owner moved it concurrently; if the new
                // position is still behind the boundary, the boundary must
                // come down to it.
                // SAFETY: as above.
                let cur_id = unsafe { (*cur).id() };
                if cur_id < *boundary {
                    *boundary = cur_id;
                    HandleStats::bump(&cleaner.reclaim_conceded);
                    wfq_obs::record!(wfq_obs::EventKind::HazardClamp, cur_id);
                }
            }
            // Line 246: Dijkstra protocol — after the CAS, re-verify the
            // owner's hazard; it may have been published concurrently.
            fence(Ordering::SeqCst);
            verify(boundary, p.hzd_id.load(Ordering::SeqCst));
        }
        let _ = oid;
    }
}

/// The paper's `verify` (lines 248–249), in id form: clamp the boundary to
/// a published hazard.
fn verify(boundary: &mut u64, hzd: i64) {
    if hzd != NO_HAZARD && (hzd as u64) < *boundary {
        *boundary = hzd as u64;
    }
}

/// Finds the live segment with the given id by walking forward from
/// `start`. Callers guarantee `start.id <= id` and that the chain is stable
/// (they hold the reclamation token).
fn resolve<const N: usize>(start: *mut Segment<N>, id: u64) -> *mut Segment<N> {
    let mut s = start;
    // SAFETY: the chain [start, id] is live and intact under the token.
    unsafe {
        while (*s).id() < id {
            let next = (*s).next.load(Ordering::Acquire);
            debug_assert!(!next.is_null(), "resolve ran past the chain end");
            s = next;
        }
        debug_assert_eq!((*s).id(), id);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::raw::RawQueue;

    #[test]
    fn verify_clamps_only_downward() {
        let mut b = 10;
        verify(&mut b, 12);
        assert_eq!(b, 10);
        verify(&mut b, 7);
        assert_eq!(b, 7);
        verify(&mut b, NO_HAZARD);
        assert_eq!(b, 7);
        verify(&mut b, 0);
        assert_eq!(b, 0);
    }

    #[test]
    fn single_thread_traffic_reclaims_segments() {
        // Small segments + tiny threshold: a drain must free the prefix.
        let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(2));
        let mut h = q.register();
        for round in 0..50u64 {
            for v in 0..64 {
                h.enqueue(round * 64 + v + 1);
            }
            for _ in 0..64 {
                assert!(h.dequeue().is_some());
            }
        }
        let s = q.stats();
        assert!(
            s.segs_freed > 0,
            "expected reclamation to run; stats: {s:?}"
        );
        assert!(s.cleanups > 0);
        // The live window must stay small: everything but a bounded tail
        // of segments was freed.
        assert!(
            s.live_segments() < 20,
            "segments leaked: {} live",
            s.live_segments()
        );
    }

    #[test]
    fn front_id_tracks_oldest_id_after_reclaim() {
        let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(1));
        let mut h = q.register();
        for v in 1..=400u64 {
            h.enqueue(v);
        }
        for _ in 0..400 {
            h.dequeue();
        }
        let i = q.oldest_id.load(Ordering::Acquire);
        assert!(i > 0, "oldest id should have advanced, got {i}");
        let front = q.q.load(Ordering::Acquire);
        assert_eq!(unsafe { (*front).id() }, i as u64);
    }

    #[test]
    fn no_reclaim_below_threshold() {
        let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(1_000_000));
        let mut h = q.register();
        for v in 1..=200u64 {
            h.enqueue(v);
        }
        for _ in 0..200 {
            h.dequeue();
        }
        assert_eq!(q.stats().segs_freed, 0);
    }

    #[test]
    fn idle_peer_does_not_block_reclamation_forever() {
        // A registered-but-idle handle lags at segment 0; the cleaner must
        // push its pointers forward rather than abort every pass.
        let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(2));
        let _idle = q.register();
        let mut h = q.register();
        for v in 1..=800u64 {
            h.enqueue(v);
        }
        for _ in 0..800 {
            h.dequeue();
        }
        assert!(
            q.stats().segs_freed > 0,
            "idle handle must not pin all garbage"
        );
    }

    #[test]
    fn churned_handles_do_not_inflate_the_auto_threshold() {
        // Regression: the auto MAX_GARBAGE threshold used the
        // ever-registered handle count, so 64 dead registrations made it
        // 2 × 65 = 130 segments and this workload (50 segments of garbage)
        // would never reclaim. With the live count it is max(2 × 1, 4) = 4.
        let q: RawQueue<8> = RawQueue::new();
        let parked: Vec<_> = (0..64).map(|_| q.register()).collect();
        drop(parked);
        assert_eq!(q.handle_count.load(Ordering::Relaxed), 64);
        assert_eq!(q.active_count.load(Ordering::Relaxed), 0);
        let mut h = q.register();
        for v in 1..=400u64 {
            h.enqueue(v);
        }
        for _ in 0..400 {
            h.dequeue();
        }
        assert!(
            q.stats().segs_freed > 0,
            "dead registrations must not raise the reclamation threshold"
        );
    }

    #[test]
    fn bounded_mode_recycles_instead_of_freeing() {
        let q: RawQueue<8> = RawQueue::with_config(
            Config::default().with_max_garbage(2).with_segment_ceiling(64),
        );
        let mut h = q.register();
        for round in 0..50u64 {
            for v in 0..64 {
                h.enqueue(round * 64 + v + 1);
            }
            for _ in 0..64 {
                assert!(h.dequeue().is_some());
            }
        }
        let s = q.stats();
        assert!(s.segs_freed > 0, "reclamation must still run: {s:?}");
        assert_eq!(
            s.segs_recycled, s.segs_freed,
            "bounded mode must recycle every retired segment"
        );
        let g = q.gauges();
        assert!(g.pooled_segments > 0, "{g:?}");
        assert_eq!(g.segment_ceiling, Some(64));
        // Drop the queue: pooled segments must be freed (leak-checked
        // under the sanitizer CI job).
    }

    #[test]
    fn forced_cleanup_reclaims_without_a_dequeuer_threshold() {
        // A pure producer-side pass: fill, drain, fill again, then invoke
        // the forced path directly — it must reclaim the consumed prefix.
        let q: RawQueue<8> =
            RawQueue::with_config(Config::default().with_max_garbage(1_000_000));
        let mut h = q.register();
        for v in 1..=400u64 {
            h.enqueue(v);
        }
        for _ in 0..400 {
            h.dequeue();
        }
        assert_eq!(q.stats().segs_freed, 0, "threshold too high to trip");
        // SAFETY: node pointer valid while the handle lives.
        let node = unsafe { &*crate::raw::test_node(&h) };
        q.forced_cleanup(node);
        assert!(
            q.stats().segs_freed > 0,
            "forced pass must reclaim the consumed prefix"
        );
    }

    #[test]
    fn concurrent_traffic_with_reclamation_stays_bounded() {
        let q: RawQueue<8> = RawQueue::with_config(Config::default().with_max_garbage(2));
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..5_000u64 {
                        h.enqueue(t * 100_000 + v + 1);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut got = 0;
                    while got < 5_000 {
                        if h.dequeue().is_some() {
                            got += 1;
                        }
                    }
                });
            }
        });
        let s = q.stats();
        assert!(s.segs_freed > 0, "reclamation never ran: {s:?}");
        assert!(
            s.live_segments() < 10_000 / 8,
            "live segments not bounded: {s:?}"
        );
    }
}
