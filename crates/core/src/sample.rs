//! Per-operation execution-path sampling for the latency observatory.
//!
//! The paper's wait-freedom argument is a *latency* argument: the helping
//! scheme bounds how long any operation can run, so tails should stay
//! bounded even when individual threads stall. To test that claim the
//! open-loop harness needs to know, per sampled operation, **which path
//! the protocol actually took** — the common one-FAA fast path, the
//! help-ring slow path, or a slow path whose request was finished by a
//! *helper* before the requester's own reservation stuck. Table 2's
//! aggregate counters can't provide this: they count paths per run, not
//! per op, so they cannot be joined with that op's measured latency.
//!
//! This module adds the minimal per-op channel: each [`crate::Handle`]
//! remembers an [`OpSample`] describing its most recent single-value
//! operation, written by the owner thread at operation epilogue (one plain
//! store into owner-local memory — no atomics, no sharing). The harness
//! reads it back through [`crate::Handle::last_op_sample`] immediately
//! after timing the operation and buckets the latency by [`OpPath`].
//!
//! Everything is gated behind the `op-sample` feature through the
//! [`op_sample!`] macro, which follows the repo's zero-overhead idiom
//! (`wfq_sync::fault::inject!`, `wfq_obs::record!`): with the feature off
//! the macro discards its tokens and expands to `()`, proven const in
//! `raw.rs` (`_OP_SAMPLE_ZERO_OVERHEAD_PROOF`) and priced by the
//! `op_sample_overhead` group of the `primitives` bench.

/// Which side of the queue a sampled operation ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpSide {
    /// An enqueue.
    Enq,
    /// A dequeue (including EMPTY results).
    Deq,
}

/// The execution path a sampled operation took through the protocol.
///
/// The taxonomy matches the paper's Table 2 and the PR-5 span
/// reconstruction: `Fast` is the one-FAA path (for dequeues this includes
/// the `H > T` emptiness fast-out), `Slow` is a help-ring episode the
/// requester finished itself, and `Helped` is a slow enqueue whose request
/// a peer completed first (the `enq_slow_helped` branch — the only point
/// where the requester itself can observe cross-thread help). Slow
/// *dequeues* always report `Slow` here because `deq_slow` cannot locally
/// distinguish self-help from peer help; the span join in
/// `wfq_harness::attribution` upgrades those to `Helped` when the op's
/// reconstructed help chain is multi-hop.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpPath {
    /// One-FAA fast path (or the dequeue emptiness fast-out).
    Fast,
    /// Help-ring slow path, finished by the requester.
    Slow,
    /// Help-ring slow path, finished by a helper.
    Helped,
}

/// What [`crate::Handle::last_op_sample`] reports about the handle's most
/// recent single-value operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpSample {
    /// Operation side.
    pub side: OpSide,
    /// Execution path taken.
    pub path: OpPath,
    /// The op id the PR-5 span taxonomy keys on: for slow-path episodes
    /// the request's publish id (the requester's first failed FAA index,
    /// unique per side), for fast-path operations the cell index the op
    /// completed at. Joining with `wfq_harness::spans` is only meaningful
    /// for `Slow`/`Helped` samples.
    pub op: u64,
}

/// Whether this build compiled the sampling hooks in.
pub const SAMPLING_ENABLED: bool = cfg!(feature = "op-sample");

/// Records an [`OpSample`] on a handle node at operation epilogue.
///
/// `op_sample!(node, side, path, op)` — with feature `op-sample` this is
/// one plain store into the owner-local `last_sample` cell; without it the
/// tokens are discarded and the expansion is the unit constant (args are
/// **not** evaluated, same contract as `wfq_obs::record!`).
#[cfg(feature = "op-sample")]
macro_rules! op_sample {
    ($node:expr, $side:expr, $path:expr, $op:expr) => {
        $node.last_sample.set(Some($crate::sample::OpSample {
            side: $side,
            path: $path,
            op: $op,
        }))
    };
}

/// Records an [`OpSample`] on a handle node at operation epilogue.
///
/// This build has `op-sample` off: the macro discards its tokens.
#[cfg(not(feature = "op-sample"))]
macro_rules! op_sample {
    ($node:expr, $side:expr, $path:expr, $op:expr) => {
        ()
    };
}

pub(crate) use op_sample;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_enabled_reflects_the_feature() {
        assert_eq!(SAMPLING_ENABLED, cfg!(feature = "op-sample"));
    }

    #[cfg(not(feature = "op-sample"))]
    #[test]
    fn default_build_macro_is_a_unit_expression() {
        // Usable as a plain expression, and must not evaluate its args
        // (the diverging expression below would run otherwise).
        struct NoNode;
        let _: () = op_sample!(NoNode, OpSide::Enq, OpPath::Fast, {
            #[allow(unreachable_code)]
            {
                if true {
                    panic!("op_sample! must not evaluate args in default builds")
                }
                0u64
            }
        });
    }
}
