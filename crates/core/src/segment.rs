//! Segments: the linked-list emulation of the paper's infinite array
//! (Listing 2, `struct Segment` and `find_cell`).
//!
//! Cell `Q[i]` lives in `segment[i / N].cells[i mod N]`. Segments are
//! append-only: a traversal that runs off the end allocates a successor and
//! publishes it with a CAS on the last segment's `next` pointer; the loser
//! of a publication race frees its speculative segment (paper lines 33–52).
//! Segments are only ever removed from the *front* of the list, by the
//! reclamation protocol in [`crate::reclaim`].

use core::alloc::Layout;
use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error};

use crate::cell::Cell;
use crate::pool::SegmentPool;

/// One array segment of `N` cells.
///
/// `id` is written once, before the segment is published (via a release CAS
/// on the predecessor's `next` or at queue construction), and read-only
/// thereafter — so it needs no atomicity, but we keep it atomic-typed to
/// make the cross-thread reads unambiguously defined.
#[repr(C)]
pub(crate) struct Segment<const N: usize> {
    id: AtomicU64,
    pub next: AtomicPtr<Segment<N>>,
    pub cells: [Cell; N],
}

impl<const N: usize> Segment<N> {
    /// Allocates a zeroed segment with the given id.
    ///
    /// The all-zero bit pattern is exactly `(⊥, ⊥e, ⊥d)` for every cell and
    /// a null `next`, so no per-cell initialization loop is needed — an
    /// observable win at N = 1024 where the loop would touch 24 KiB.
    pub fn alloc(id: u64) -> *mut Segment<N> {
        let ptr = Self::try_alloc(id);
        if ptr.is_null() {
            handle_alloc_error(Layout::new::<Segment<N>>());
        }
        ptr
    }

    /// Fallible variant of [`Segment::alloc`]: returns null instead of
    /// aborting when the allocator refuses. Bounded mode retries through
    /// [`crate::pool::SegmentPool::acquire`]'s backoff loop rather than
    /// taking the process down.
    pub fn try_alloc(id: u64) -> *mut Segment<N> {
        let layout = Layout::new::<Segment<N>>();
        // SAFETY: layout is non-zero-sized; the zero pattern is a valid
        // Segment (atomics of 0 / null, id 0) which we then fix up.
        let ptr = unsafe { alloc_zeroed(layout) } as *mut Segment<N>;
        if !ptr.is_null() {
            // SAFETY: freshly allocated, exclusively owned until published.
            unsafe { (*ptr).id.store(id, Ordering::Relaxed) };
        }
        ptr
    }

    /// Frees a segment previously produced by [`Segment::alloc`].
    ///
    /// # Safety
    /// `ptr` must be a live segment no thread can reach any more (either
    /// never published, or retired by the reclamation protocol).
    pub unsafe fn dealloc(ptr: *mut Segment<N>) {
        // SAFETY: contract forwarded to the caller; Cells and atomics have
        // no Drop, so freeing the raw memory is sufficient.
        unsafe { dealloc(ptr as *mut u8, Layout::new::<Segment<N>>()) };
    }

    #[inline]
    pub fn id(&self) -> u64 {
        self.id.load(Ordering::Relaxed)
    }

    /// Re-stamps an unpublished segment with a new id (spare reuse).
    ///
    /// # Safety
    /// `ptr` must be exclusively owned and never have been published; its
    /// cells must still be in their initial all-⊥ state.
    pub unsafe fn restamp(ptr: *mut Segment<N>, id: u64) {
        // SAFETY: exclusive ownership per the contract.
        unsafe {
            (*ptr).id.store(id, Ordering::Relaxed);
            debug_assert!((*ptr).next.load(Ordering::Relaxed).is_null());
        }
    }

    /// Resets a retired segment to the state a fresh `alloc_zeroed` would
    /// produce — every cell back to `(⊥, ⊥e, ⊥d)`, `next` null — so it
    /// satisfies [`Segment::restamp`]'s never-published contract and can be
    /// recycled through the bounded-mode pool.
    ///
    /// # Safety
    /// `ptr` must be exclusively owned and unreachable by any other thread
    /// (retired by the reclamation protocol, or never published).
    pub unsafe fn scrub(ptr: *mut Segment<N>) {
        // SAFETY: exclusive ownership per the contract; Cell is repr(C)
        // atomics whose all-zero pattern is the valid initial state.
        unsafe {
            core::ptr::write_bytes(&raw mut (*ptr).cells, 0, 1);
            (*ptr).next.store(core::ptr::null_mut(), Ordering::Relaxed);
        }
    }

    /// Frees the half-open chain `[from, to)` following `next` pointers
    /// (paper's `free_list`, line 238). Returns how many segments were
    /// freed.
    ///
    /// # Safety
    /// The chain from `from` to `to` must be intact and unreachable by any
    /// other thread.
    pub unsafe fn free_list(from: *mut Segment<N>, to: *mut Segment<N>) -> u64 {
        let mut cur = from;
        let mut freed = 0;
        while cur != to {
            debug_assert!(!cur.is_null(), "free_list ran off the chain");
            // SAFETY: `cur` is in the retired chain, unreachable by others.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            // SAFETY: as above.
            unsafe { Segment::dealloc(cur) };
            cur = next;
            freed += 1;
        }
        freed
    }
}

/// Where `find_cell` gets segments for list extensions: the owner-local
/// spare slot, then the queue's [`SegmentPool`] (which is the allocator
/// itself in unbounded mode, and the recycling pool + ceiling gate in
/// bounded mode). Built per call by `RawQueue::src`.
pub(crate) struct SegSource<'a, const N: usize> {
    /// Owner-local slot holding one pre-allocated, never-published segment:
    /// extensions draw from it before the pool, and the loser of a
    /// publication race parks its segment here instead of freeing it (the
    /// authors' C `th->spare` optimization).
    pub spare: &'a AtomicPtr<Segment<N>>,
    /// Bumped once per segment allocated *and published* through this
    /// source (the owner's `segs_alloc` counter).
    pub alloc_count: &'a AtomicU64,
    /// The queue's segment pool / allocation gate.
    pub pool: &'a SegmentPool<N>,
}

/// Locates cell `cell_id`, starting the traversal at the segment `*sp`
/// points to, extending the list as needed (paper `find_cell`, lines 33–52).
///
/// On return `sp` has been advanced to the segment containing the cell (the
/// documented side effect of line 51). Extension segments come from `src`
/// (spare slot first, then the pool — see [`SegSource`]).
///
/// # Safety
/// `*sp` must point to a live segment with `id <= cell_id / N` that is
/// protected from reclamation for the duration of the call (by the caller's
/// hazard publication, per the protocol in [`crate::reclaim`]). `src.spare`
/// must be owner-local (no concurrent access).
pub(crate) unsafe fn find_cell<const N: usize>(
    sp: &AtomicPtr<Segment<N>>,
    cell_id: u64,
    src: &SegSource<'_, N>,
) -> *mut Cell {
    let mut s = sp.load(Ordering::Acquire);
    debug_assert!(!s.is_null());
    let target = cell_id / N as u64;
    // SAFETY: `s` is live per the function contract.
    let mut id = unsafe { (*s).id() };
    // This invariant held through every stress run after the reclamation
    // errata fixes (see crate::reclaim); its violation means a segment was
    // freed under a live pointer, so keep it armed in debug builds.
    debug_assert!(
        id <= target && id < 1 << 40,
        "find_cell invariant violated: at segment {id}, want {target}"
    );
    while id < target {
        // SAFETY: `s` live; successors are reachable only forward and are
        // protected by the same hazard that protects `s`.
        let mut next = unsafe { (*s).next.load(Ordering::Acquire) };
        if next.is_null() {
            // List extension is a *nested* ledger phase: its self-time is
            // carved out of the enclosing find_cell walk.
            next = wfq_obs::phase!(wfq_obs::Phase::SegAlloc, {
                // The list needs another segment: take the spare or draw
                // from the pool (= the allocator in unbounded mode; in
                // bounded mode this may wait for a recycled segment, see
                // crate::pool).
                let tmp = {
                    let cached = src.spare.load(Ordering::Relaxed);
                    if cached.is_null() {
                        src.pool.acquire(id + 1)
                    } else {
                        src.spare.store(core::ptr::null_mut(), Ordering::Relaxed);
                        // SAFETY: the spare is owner-local and never
                        // published; we own it exclusively and may restamp
                        // its id.
                        unsafe { Segment::restamp(cached, id + 1) };
                        cached
                    }
                };
                // SAFETY: `s` live; release on success publishes tmp's
                // contents.
                match unsafe {
                    (*s).next.compare_exchange(
                        core::ptr::null_mut(),
                        tmp,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                } {
                    Ok(_) => {
                        crate::stats::HandleStats::bump(src.alloc_count);
                        wfq_obs::record!(wfq_obs::EventKind::SegAlloc, id + 1);
                        tmp
                    }
                    Err(winner) => {
                        // Another thread extended the list first; park ours
                        // in the spare slot for next time (it was never
                        // published).
                        src.spare.store(tmp, Ordering::Relaxed);
                        winner
                    }
                }
            });
        }
        s = next;
        // SAFETY: `s` live (just published or already reachable).
        id = unsafe { (*s).id() };
    }
    sp.store(s, Ordering::Release);
    // SAFETY: `s` is the target segment; in-bounds index.
    unsafe { &raw mut (*s).cells[(cell_id % N as u64) as usize] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::ptr;

    type Seg = Segment<64>;

    /// Frees an entire chain starting at `head` (test helper).
    unsafe fn free_chain(head: *mut Seg) {
        let mut cur = head;
        while !cur.is_null() {
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { Seg::dealloc(cur) };
            cur = next;
        }
    }

    #[test]
    fn alloc_initializes_id_and_empty_cells() {
        let s = Seg::alloc(7);
        unsafe {
            assert_eq!((*s).id(), 7);
            assert!((*s).next.load(Ordering::Relaxed).is_null());
            for c in &(*s).cells {
                assert_eq!(c.load_val(), crate::cell::VAL_BOTTOM);
                assert!(c.load_enq().is_null());
                assert!(c.load_deq().is_null());
            }
            Seg::dealloc(s);
        }
    }

    /// Owned backing for a [`SegSource`] (unbounded pool, fresh counters).
    struct TestSource {
        spare: AtomicPtr<Seg>,
        alloc: AtomicU64,
        pool: SegmentPool<64>,
    }

    impl TestSource {
        fn new() -> Self {
            Self {
                spare: AtomicPtr::new(core::ptr::null_mut()),
                alloc: AtomicU64::new(0),
                pool: SegmentPool::new(None),
            }
        }

        fn src(&self) -> SegSource<'_, 64> {
            SegSource {
                spare: &self.spare,
                alloc_count: &self.alloc,
                pool: &self.pool,
            }
        }
    }

    #[test]
    fn find_cell_within_first_segment() {
        let s = Seg::alloc(0);
        let sp = AtomicPtr::new(s);
        let ts = TestSource::new();
        unsafe {
            let c = find_cell(&sp, 5, &ts.src());
            assert_eq!(c, &raw mut (*s).cells[5]);
            assert_eq!(sp.load(Ordering::Relaxed), s, "pointer unmoved");
            assert_eq!(ts.alloc.load(Ordering::Relaxed), 0);
            free_chain(s);
        }
    }

    #[test]
    fn find_cell_extends_the_list() {
        let s = Seg::alloc(0);
        let sp = AtomicPtr::new(s);
        let ts = TestSource::new();
        unsafe {
            // Cell 64*3 + 2 lives in segment 3: three extensions needed.
            let c = find_cell(&sp, 64 * 3 + 2, &ts.src());
            let s3 = sp.load(Ordering::Relaxed);
            assert_eq!((*s3).id(), 3);
            assert_eq!(c, &raw mut (*s3).cells[2]);
            assert_eq!(ts.alloc.load(Ordering::Relaxed), 3);
            free_chain(s);
        }
    }

    #[test]
    fn find_cell_updates_the_segment_pointer_side_effect() {
        let s = Seg::alloc(0);
        let sp = AtomicPtr::new(s);
        let ts = TestSource::new();
        unsafe {
            find_cell(&sp, 64 * 2, &ts.src());
            assert_eq!((*sp.load(Ordering::Relaxed)).id(), 2);
            // A later find_cell for a further cell resumes from segment 2.
            find_cell(&sp, 64 * 2 + 63, &ts.src());
            assert_eq!((*sp.load(Ordering::Relaxed)).id(), 2);
            assert_eq!(ts.alloc.load(Ordering::Relaxed), 2, "no extra allocs");
            free_chain(s);
        }
    }

    #[test]
    fn find_cell_draws_from_a_bounded_pool() {
        // With a ceiling and a recycled segment parked in the pool, an
        // extension must reuse it rather than allocate.
        let s = Seg::alloc(0);
        let sp = AtomicPtr::new(s);
        let spare = AtomicPtr::new(core::ptr::null_mut());
        let alloc = AtomicU64::new(0);
        let pool = SegmentPool::<64>::new(Some(4));
        let recycled = pool.acquire(99);
        unsafe { pool.push(recycled) };
        let src = SegSource {
            spare: &spare,
            alloc_count: &alloc,
            pool: &pool,
        };
        unsafe {
            find_cell(&sp, 64, &src);
            let s1 = sp.load(Ordering::Relaxed);
            assert_eq!(s1, recycled, "extension must pop the pooled segment");
            assert_eq!((*s1).id(), 1, "restamped to the chain position");
            free_chain(s);
        }
    }

    #[test]
    fn concurrent_extension_publishes_exactly_one_chain() {
        use std::sync::atomic::AtomicU64;
        let s = Seg::alloc(0);
        let alloc = AtomicU64::new(0);
        let pool = SegmentPool::<64>::new(None);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let sp = AtomicPtr::new(s);
                let alloc = &alloc;
                let pool = &pool;
                scope.spawn(move || unsafe {
                    let spare = AtomicPtr::new(core::ptr::null_mut());
                    let src = SegSource {
                        spare: &spare,
                        alloc_count: alloc,
                        pool,
                    };
                    for i in 0..32 {
                        find_cell(&sp, i * 64, &src);
                    }
                    // Free any parked race-loser segment.
                    let parked = spare.load(Ordering::Relaxed);
                    if !parked.is_null() {
                        Seg::dealloc(parked);
                    }
                });
            }
        });
        unsafe {
            // Chain must be exactly segments 0..=31 with strictly
            // incrementing ids and 31 total publications.
            let mut cur = s;
            let mut expect = 0;
            while !cur.is_null() {
                assert_eq!((*cur).id(), expect);
                expect += 1;
                cur = (*cur).next.load(Ordering::Relaxed);
            }
            assert_eq!(expect, 32);
            assert_eq!(alloc.load(Ordering::Relaxed), 31);
            free_chain(s);
        }
    }

    #[test]
    fn free_list_frees_the_half_open_range() {
        let s0 = Seg::alloc(0);
        let sp = AtomicPtr::new(s0);
        let ts = TestSource::new();
        unsafe {
            find_cell(&sp, 64 * 4, &ts.src()); // build segments 0..=4
            let s4 = sp.load(Ordering::Relaxed);
            let freed = Seg::free_list(s0, s4);
            assert_eq!(freed, 4);
            // s4 survives and still terminates the chain.
            assert_eq!((*s4).id(), 4);
            free_chain(s4);
        }
    }

    #[test]
    fn free_list_with_equal_endpoints_is_a_noop() {
        let s = Seg::alloc(0);
        unsafe {
            assert_eq!(Seg::free_list(s, s), 0);
            free_chain(s);
        }
    }

    #[test]
    fn try_alloc_initializes_like_alloc() {
        let s = Seg::try_alloc(11);
        assert!(!s.is_null(), "small allocation must succeed");
        unsafe {
            assert_eq!((*s).id(), 11);
            assert!((*s).next.load(Ordering::Relaxed).is_null());
            Seg::dealloc(s);
        }
    }

    #[test]
    fn scrub_resets_a_dirty_segment_for_restamp() {
        let s = Seg::alloc(3);
        let tail = Seg::alloc(4);
        unsafe {
            // Dirty it the way real traffic would: values, seals, a link.
            (*s).cells[7].val.store(9, Ordering::Relaxed);
            (*s).cells[0].try_seal_enq();
            (*s).cells[1].try_claim_deq_fast();
            (*s).next.store(tail, Ordering::Relaxed);
            Seg::scrub(s);
            assert!((*s).next.load(Ordering::Relaxed).is_null());
            for c in &(*s).cells {
                assert_eq!(c.load_val(), crate::cell::VAL_BOTTOM);
                assert!(c.load_enq().is_null());
                assert!(c.load_deq().is_null());
            }
            // Now indistinguishable from fresh: restamp must be legal.
            Seg::restamp(s, 10);
            assert_eq!((*s).id(), 10);
            Seg::dealloc(s);
            Seg::dealloc(tail);
        }
    }

    #[test]
    fn segment_layout_is_id_next_cells() {
        // The reclamation protocol reasons about segments by id; make sure
        // the id is where a zeroed allocation puts it (offset 0).
        assert_eq!(core::mem::offset_of!(Seg, id), 0);
        assert!(core::mem::size_of::<Seg>() >= 64 * core::mem::size_of::<Cell>());
        let _ = ptr::null::<Seg>();
    }
}
