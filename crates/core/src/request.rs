//! Enqueue and dequeue help requests (paper Listing 2, lines 10–15).
//!
//! Each per-thread handle embeds exactly one [`EnqReq`] and one [`DeqReq`].
//! A thread reuses its request object for every slow-path operation; the
//! 63-bit id embedded in the state word distinguishes successive requests
//! from the same thread (paper §3.3). Requests are **two independent 64-bit
//! words**, not a single atomic unit — §3.4 "Write the proper value in a
//! cell" explains the reverse-order read discipline that keeps helpers from
//! pairing a stale value with a fresh state, and [`EnqReq::read_consistent`]
//! encodes it.

use core::sync::atomic::{AtomicU64, Ordering};

use crate::pack::{self, ReqState};

/// An enqueue help request: logically `(val, pending: 1, id: 63)`.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct EnqReq {
    /// The value to enqueue (written *before* the state publishes it).
    pub val: AtomicU64,
    /// Packed `(pending, id)`; `id` is the cell index the requester obtained
    /// from its last failed fast-path FAA.
    pub state: AtomicU64,
    /// The owning handle node's ordinal — the request-record slot in the
    /// durable image (set once at node construction, read by the persist
    /// hooks; kept unconditionally so `new` stays `const` and the layout
    /// is feature-independent).
    pub slot: AtomicU64,
}

impl EnqReq {
    pub(crate) const fn new() -> Self {
        Self {
            val: AtomicU64::new(0),
            state: AtomicU64::new(0),
            slot: AtomicU64::new(0),
        }
    }

    /// The durable request-record slot (the owning node's ordinal).
    #[cfg_attr(not(feature = "durable"), allow(dead_code))]
    pub(crate) fn slot(&self) -> u64 {
        self.slot.load(Ordering::Relaxed)
    }

    /// Publishes a new request: value first, then state with release, so any
    /// helper that observes `pending = 1` also observes the value (paper
    /// line 72; the write order the reverse-order read relies on).
    pub(crate) fn publish(&self, val: u64, id: u64) {
        self.val.store(val, Ordering::Relaxed);
        self.state.store(pack::pack(true, id), Ordering::SeqCst);
    }

    /// Reads `(state, val)` in the reverse of the write order (paper line
    /// 118): the value returned is the one for state `s.id` *or a later
    /// request*, which the claiming CAS then disambiguates.
    pub(crate) fn read_consistent(&self) -> (ReqState, u64) {
        let s = pack::unpack(self.state.load(Ordering::SeqCst));
        let v = self.val.load(Ordering::SeqCst);
        (s, v)
    }

    /// The paper's `try_to_claim_req` (lines 60–61): transitions the state
    /// from `(pending = 1, id)` to `(pending = 0, cell_id)`, claiming the
    /// request for cell `cell_id`. At most one claimer can win.
    pub(crate) fn try_claim(&self, id: u64, cell_id: u64) -> bool {
        self.state
            .compare_exchange(
                pack::pack(true, id),
                pack::pack(false, cell_id),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }

    pub(crate) fn state(&self) -> ReqState {
        pack::unpack(self.state.load(Ordering::SeqCst))
    }
}

/// A dequeue help request: logically `(id, pending: 1, idx: 63)`.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct DeqReq {
    /// The cell index the requester last visited on the fast path; doubles
    /// as the identity of this request instance.
    pub id: AtomicU64,
    /// Packed `(pending, idx)` where `idx` is the most recently announced
    /// candidate cell.
    pub state: AtomicU64,
}

impl DeqReq {
    pub(crate) const fn new() -> Self {
        Self {
            id: AtomicU64::new(0),
            state: AtomicU64::new(0),
        }
    }

    /// Publishes a new request with `id = idx = cid` (paper line 151). The
    /// id is written first; helpers read state before id, so a helper that
    /// sees the fresh pending state also sees the fresh id.
    pub(crate) fn publish(&self, cid: u64) {
        self.id.store(cid, Ordering::Relaxed);
        self.state.store(pack::pack(true, cid), Ordering::SeqCst);
    }

    pub(crate) fn state(&self) -> ReqState {
        pack::unpack(self.state.load(Ordering::SeqCst))
    }

    pub(crate) fn id(&self) -> u64 {
        self.id.load(Ordering::SeqCst)
    }

    /// CAS on the packed state; used both to announce candidates
    /// `(1, prior) → (1, cand)` and to close requests `(1, idx) → (0, idx)`.
    pub(crate) fn cas_state(&self, from: (bool, u64), to: (bool, u64)) -> bool {
        self.state
            .compare_exchange(
                pack::pack(from.0, from.1),
                pack::pack(to.0, to.1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enq_publish_then_claim() {
        let r = EnqReq::new();
        r.publish(99, 7);
        let (s, v) = r.read_consistent();
        assert!(s.pending);
        assert_eq!(s.index, 7);
        assert_eq!(v, 99);

        assert!(r.try_claim(7, 12), "first claim wins");
        assert!(!r.try_claim(7, 13), "second claim loses");
        let s = r.state();
        assert!(!s.pending);
        assert_eq!(s.index, 12, "state now names the claimed cell");
    }

    #[test]
    fn enq_claim_requires_matching_id() {
        let r = EnqReq::new();
        r.publish(1, 5);
        assert!(!r.try_claim(4, 9), "stale id must not claim");
        assert!(r.state().pending);
    }

    #[test]
    fn deq_publish_announce_close() {
        let r = DeqReq::new();
        r.publish(3);
        assert_eq!(r.id(), 3);
        assert!(r.state().pending);
        assert_eq!(r.state().index, 3);

        // Announce candidate 8 (from prior 3).
        assert!(r.cas_state((true, 3), (true, 8)));
        // Competing announcement from the same prior fails.
        assert!(!r.cas_state((true, 3), (true, 9)));
        // Close.
        assert!(r.cas_state((true, 8), (false, 8)));
        assert!(!r.state().pending);
    }

    #[test]
    fn fresh_requests_are_idle() {
        assert!(!EnqReq::new().state().pending);
        assert!(!DeqReq::new().state().pending);
    }
}
