//! Execution-path statistics.
//!
//! The paper's Table 2 breaks operations down by the path that completed
//! them (fast vs. slow, and dequeues that returned EMPTY). Each handle
//! maintains relaxed per-owner counters; [`QueueStats`] is the aggregate
//! snapshot over every handle ever registered. The counters are plain
//! relaxed increments on memory the owning thread already has exclusive
//! cache access to, so they do not perturb the contention behaviour being
//! measured.

use core::fmt;
use core::sync::atomic::{AtomicU64, Ordering};

/// Per-handle relaxed counters (owner-written, snapshot-read).
#[derive(Debug, Default)]
pub(crate) struct HandleStats {
    pub enq_fast: AtomicU64,
    pub enq_slow: AtomicU64,
    pub deq_fast: AtomicU64,
    pub deq_slow: AtomicU64,
    pub deq_empty: AtomicU64,
    pub help_enq: AtomicU64,
    pub help_deq: AtomicU64,
    pub cleanups: AtomicU64,
    pub segs_alloc: AtomicU64,
    pub segs_freed: AtomicU64,
    // Protocol-branch coverage (rare windows; see QueueStats field docs).
    pub enq_slow_helped: AtomicU64,
    pub help_enq_commit: AtomicU64,
    pub help_enq_seal: AtomicU64,
    pub deq_slow_empty: AtomicU64,
    pub help_deq_announce: AtomicU64,
    pub help_deq_complete: AtomicU64,
    pub reclaim_conceded: AtomicU64,
    pub reclaim_backward_clamp: AtomicU64,
    pub reclaim_noop: AtomicU64,
    // Bounded-memory mode (segment ceiling; see crate::pool).
    pub enq_rejected: AtomicU64,
    pub forced_cleanups: AtomicU64,
    pub segs_recycled: AtomicU64,
    // Batch operations (DESIGN.md §10). Per-element path counters above
    // still count every batched element; these add per-call width data.
    pub enq_batches: AtomicU64,
    pub enq_batched_vals: AtomicU64,
    pub enq_batch_stragglers: AtomicU64,
    pub enq_batch_abandoned: AtomicU64,
    pub deq_batches: AtomicU64,
    pub deq_batched_vals: AtomicU64,
    pub deq_batch_partial: AtomicU64,
    pub deq_batch_stragglers: AtomicU64,
}

impl HandleStats {
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        Self::add(counter, 1);
    }

    /// Owner-only relaxed increment: a plain load + store pair instead of a
    /// `lock`-prefixed RMW. Sound because every `HandleStats` counter has
    /// exactly one writer — the thread that owns the handle (helpers and
    /// the elected cleaner bump their *own* handle's counters, never a
    /// peer's), and handle ownership transfers only through registration,
    /// which synchronizes. Snapshot readers race only with the relaxed
    /// store, which is fine for monotone counters. On x86 this turns the
    /// fast path's stats update from a serializing `lock inc` (~20 cycles)
    /// into two ordinary cache-hit accesses.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        let cur = counter.load(Ordering::Relaxed);
        counter.store(cur.wrapping_add(n), Ordering::Relaxed);
    }
}

/// Aggregated queue statistics — the data behind the paper's Table 2.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Enqueues completed on the fast path.
    pub enq_fast: u64,
    /// Enqueues that fell back to the wait-free slow path.
    pub enq_slow: u64,
    /// Dequeues completed on the fast path (value or EMPTY on first tries).
    pub deq_fast: u64,
    /// Dequeues that fell back to the wait-free slow path.
    pub deq_slow: u64,
    /// Dequeues that returned EMPTY.
    pub deq_empty: u64,
    /// Calls that helped a peer's enqueue request toward completion.
    pub help_enq: u64,
    /// Calls that helped a peer's dequeue request toward completion.
    pub help_deq: u64,
    /// Reclamation passes executed (elected cleaner only).
    pub cleanups: u64,
    /// Segments allocated and successfully published.
    pub segs_alloc: u64,
    /// Segments reclaimed by cleanup.
    pub segs_freed: u64,
    /// Slow-path enqueues completed *by a helper* (the request left the
    /// pending state without this thread's own claim landing) — the
    /// Kogan–Petrank helping scheme actually finishing someone's work.
    pub enq_slow_helped: u64,
    /// `help_enq` calls that committed a peer's value into a cell
    /// (Listing 3 lines 123–126, the lost-reservation completion race).
    pub help_enq_commit: u64,
    /// Cells sealed with ⊤e because no enqueue request could use them
    /// (Listing 3 lines 109–111).
    pub help_enq_seal: u64,
    /// Slow-path dequeues that returned EMPTY (the announced cell
    /// witnessed `T ≤ i` — Listing 4's rarest exit).
    pub deq_slow_empty: u64,
    /// Candidate cells announced into a dequeue request by `help_deq`
    /// (Listing 4 lines 181–185 CAS won).
    pub help_deq_announce: u64,
    /// Dequeue requests completed by `help_deq`'s final state transition
    /// (Listing 4 line 196 CAS won).
    pub help_deq_complete: u64,
    /// Reclamation boundary concessions: `update` lost its pointer CAS to
    /// the owner and lowered the boundary (Listing 5 lines 242–245).
    pub reclaim_conceded: u64,
    /// Backward-pass hazard clamps: the reverse re-verification scan
    /// caught a hazard "backward jump" behind the forward pass and
    /// lowered the boundary (Listing 5 line 235 — the subtlest window in
    /// the reclaimer).
    pub reclaim_backward_clamp: u64,
    /// Elected cleanups that found nothing reclaimable after scanning and
    /// restored `I` unchanged (the paper's erratum path, line 236).
    pub reclaim_noop: u64,
    /// `try_enqueue` calls rejected with `Full` (bounded mode only): the
    /// segment ceiling was reached and a forced reclamation pass could not
    /// recover headroom. The backpressure signal of DESIGN.md §9.
    pub enq_rejected: u64,
    /// Reclamation passes forced by enqueuers out of ceiling headroom
    /// (bounded mode's escalation; plain-path cleanups are in `cleanups`).
    pub forced_cleanups: u64,
    /// Retired segments recycled through the bounded-mode pool instead of
    /// freed (a subset of `segs_freed`).
    pub segs_recycled: u64,
    /// Batch enqueue calls (`enqueue_batch` with ≥ 2 elements). Their
    /// elements are already counted in `enq_fast`/`enq_slow`, so
    /// [`enqueues`](Self::enqueues) needs no batch term.
    pub enq_batches: u64,
    /// Elements submitted through batch enqueues (the batch-width mass;
    /// `enq_batched_vals / enq_batches` is the mean claimed width).
    pub enq_batched_vals: u64,
    /// Batch enqueue elements whose pre-claimed cell was poisoned by a
    /// dequeuer before the deposit landed (each fell back to one help-ring
    /// request; DESIGN.md §10).
    pub enq_batch_stragglers: u64,
    /// Pre-claimed batch cells abandoned after a straggler (sealed ⊤ by
    /// dequeuers, exactly like cells burned by failed one-shot fast paths).
    pub enq_batch_abandoned: u64,
    /// Batch dequeue calls (`dequeue_batch` with `k ≥ 1`).
    pub deq_batches: u64,
    /// Values delivered by batch dequeues (`deq_batched_vals / deq_batches`
    /// is the mean delivered width).
    pub deq_batched_vals: u64,
    /// Batch dequeues whose `(H, T)` probe trimmed the claim below the
    /// requested `k` (the partial-count fast-out: unavailable cells are
    /// never claimed, hence never burned).
    pub deq_batch_partial: u64,
    /// Batch dequeue cells that lost their per-cell race and fell back to a
    /// help-ring request.
    pub deq_batch_stragglers: u64,
}

impl QueueStats {
    pub(crate) fn absorb(&mut self, h: &HandleStats) {
        self.enq_fast += h.enq_fast.load(Ordering::Relaxed);
        self.enq_slow += h.enq_slow.load(Ordering::Relaxed);
        self.deq_fast += h.deq_fast.load(Ordering::Relaxed);
        self.deq_slow += h.deq_slow.load(Ordering::Relaxed);
        self.deq_empty += h.deq_empty.load(Ordering::Relaxed);
        self.help_enq += h.help_enq.load(Ordering::Relaxed);
        self.help_deq += h.help_deq.load(Ordering::Relaxed);
        self.cleanups += h.cleanups.load(Ordering::Relaxed);
        self.segs_alloc += h.segs_alloc.load(Ordering::Relaxed);
        self.segs_freed += h.segs_freed.load(Ordering::Relaxed);
        self.enq_slow_helped += h.enq_slow_helped.load(Ordering::Relaxed);
        self.help_enq_commit += h.help_enq_commit.load(Ordering::Relaxed);
        self.help_enq_seal += h.help_enq_seal.load(Ordering::Relaxed);
        self.deq_slow_empty += h.deq_slow_empty.load(Ordering::Relaxed);
        self.help_deq_announce += h.help_deq_announce.load(Ordering::Relaxed);
        self.help_deq_complete += h.help_deq_complete.load(Ordering::Relaxed);
        self.reclaim_conceded += h.reclaim_conceded.load(Ordering::Relaxed);
        self.reclaim_backward_clamp += h.reclaim_backward_clamp.load(Ordering::Relaxed);
        self.reclaim_noop += h.reclaim_noop.load(Ordering::Relaxed);
        self.enq_rejected += h.enq_rejected.load(Ordering::Relaxed);
        self.forced_cleanups += h.forced_cleanups.load(Ordering::Relaxed);
        self.segs_recycled += h.segs_recycled.load(Ordering::Relaxed);
        self.enq_batches += h.enq_batches.load(Ordering::Relaxed);
        self.enq_batched_vals += h.enq_batched_vals.load(Ordering::Relaxed);
        self.enq_batch_stragglers += h.enq_batch_stragglers.load(Ordering::Relaxed);
        self.enq_batch_abandoned += h.enq_batch_abandoned.load(Ordering::Relaxed);
        self.deq_batches += h.deq_batches.load(Ordering::Relaxed);
        self.deq_batched_vals += h.deq_batched_vals.load(Ordering::Relaxed);
        self.deq_batch_partial += h.deq_batch_partial.load(Ordering::Relaxed);
        self.deq_batch_stragglers += h.deq_batch_stragglers.load(Ordering::Relaxed);
    }

    /// Visits every counter as a `(field_name, value)` pair, in declaration
    /// order. The single canonical enumeration: the Prometheus exposition
    /// in `wfq-harness` derives its metric list from this, so a counter
    /// added here (and to [`absorb`](Self::absorb)) can never be missing
    /// from the exposition again.
    pub fn for_each_counter(&self, mut f: impl FnMut(&'static str, u64)) {
        f("enq_fast", self.enq_fast);
        f("enq_slow", self.enq_slow);
        f("deq_fast", self.deq_fast);
        f("deq_slow", self.deq_slow);
        f("deq_empty", self.deq_empty);
        f("help_enq", self.help_enq);
        f("help_deq", self.help_deq);
        f("cleanups", self.cleanups);
        f("segs_alloc", self.segs_alloc);
        f("segs_freed", self.segs_freed);
        f("enq_slow_helped", self.enq_slow_helped);
        f("help_enq_commit", self.help_enq_commit);
        f("help_enq_seal", self.help_enq_seal);
        f("deq_slow_empty", self.deq_slow_empty);
        f("help_deq_announce", self.help_deq_announce);
        f("help_deq_complete", self.help_deq_complete);
        f("reclaim_conceded", self.reclaim_conceded);
        f("reclaim_backward_clamp", self.reclaim_backward_clamp);
        f("reclaim_noop", self.reclaim_noop);
        f("enq_rejected", self.enq_rejected);
        f("forced_cleanups", self.forced_cleanups);
        f("segs_recycled", self.segs_recycled);
        f("enq_batches", self.enq_batches);
        f("enq_batched_vals", self.enq_batched_vals);
        f("enq_batch_stragglers", self.enq_batch_stragglers);
        f("enq_batch_abandoned", self.enq_batch_abandoned);
        f("deq_batches", self.deq_batches);
        f("deq_batched_vals", self.deq_batched_vals);
        f("deq_batch_partial", self.deq_batch_partial);
        f("deq_batch_stragglers", self.deq_batch_stragglers);
    }

    /// Total completed enqueues.
    pub fn enqueues(&self) -> u64 {
        self.enq_fast + self.enq_slow
    }

    /// Total completed dequeues (including EMPTY returns).
    pub fn dequeues(&self) -> u64 {
        self.deq_fast + self.deq_slow
    }

    /// Percentage of enqueues that used the slow path (Table 2, row 1).
    pub fn pct_slow_enq(&self) -> f64 {
        pct(self.enq_slow, self.enqueues())
    }

    /// Percentage of dequeues that used the slow path (Table 2, row 2).
    pub fn pct_slow_deq(&self) -> f64 {
        pct(self.deq_slow, self.dequeues())
    }

    /// Percentage of dequeues that returned EMPTY (Table 2, row 3).
    pub fn pct_empty_deq(&self) -> f64 {
        pct(self.deq_empty, self.dequeues())
    }

    /// Segments currently un-reclaimed (allocated minus freed; the initial
    /// segment is not counted as allocated).
    pub fn live_segments(&self) -> i64 {
        self.segs_alloc as i64 - self.segs_freed as i64
    }

    /// Mean width of batch enqueue claims (elements per `enqueue_batch`
    /// call; 0 when no batches ran). The single-gauge stand-in for a
    /// batch-width histogram.
    pub fn avg_enq_batch_width(&self) -> f64 {
        avg(self.enq_batched_vals, self.enq_batches)
    }

    /// Mean number of values delivered per `dequeue_batch` call (0 when no
    /// batches ran). Lower than the requested `k` under partial probes.
    pub fn avg_deq_batch_width(&self) -> f64 {
        avg(self.deq_batched_vals, self.deq_batches)
    }
}

/// Renders the stats in the paper's Table 2 layout: one aligned row per
/// operation kind with the fast/slow split and the percentages the paper
/// reports, followed by the helping and reclamation breakdowns.
impl fmt::Display for QueueStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>12} {:>8}",
            "op", "total", "fast", "slow", "% slow"
        )?;
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>12} {:>7.3}%",
            "enqueue",
            self.enqueues(),
            self.enq_fast,
            self.enq_slow,
            self.pct_slow_enq()
        )?;
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>12} {:>7.3}%",
            "dequeue",
            self.dequeues(),
            self.deq_fast,
            self.deq_slow,
            self.pct_slow_deq()
        )?;
        writeln!(
            f,
            "{:<10} {:>12} (empty: {:.3}% of dequeues; {} via slow path)",
            "empty", self.deq_empty, self.pct_empty_deq(), self.deq_slow_empty
        )?;
        writeln!(
            f,
            "{:<10} enq {} (commit {}, seal {}, peer-finished {})",
            "helping",
            self.help_enq,
            self.help_enq_commit,
            self.help_enq_seal,
            self.enq_slow_helped
        )?;
        writeln!(
            f,
            "{:<10} deq {} (announce {}, complete {})",
            "", self.help_deq, self.help_deq_announce, self.help_deq_complete
        )?;
        writeln!(
            f,
            "{:<10} cleanups {} (noop {}, conceded {}, backward-clamp {})",
            "reclaim",
            self.cleanups,
            self.reclaim_noop,
            self.reclaim_conceded,
            self.reclaim_backward_clamp
        )?;
        write!(
            f,
            "{:<10} alloc {} freed {} (live {})",
            "segments", self.segs_alloc, self.segs_freed, self.live_segments()
        )?;
        // Bounded-mode line only when the mode left a trace, so unbounded
        // runs keep the exact Table-2 layout.
        if self.enq_rejected + self.forced_cleanups + self.segs_recycled > 0 {
            write!(
                f,
                "\n{:<10} rejected {} forced-cleanups {} recycled {}",
                "bounded", self.enq_rejected, self.forced_cleanups, self.segs_recycled
            )?;
        }
        // Batch line only when batch operations ran, for the same reason.
        if self.enq_batches + self.deq_batches > 0 {
            write!(
                f,
                "\n{:<10} enq {}×{:.1} (stragglers {}, abandoned {}) deq {}×{:.1} (partial {}, stragglers {})",
                "batch",
                self.enq_batches,
                self.avg_enq_batch_width(),
                self.enq_batch_stragglers,
                self.enq_batch_abandoned,
                self.deq_batches,
                self.avg_deq_batch_width(),
                self.deq_batch_partial,
                self.deq_batch_stragglers
            )?;
        }
        Ok(())
    }
}

/// Instantaneous queue gauges — point-in-time readings, as opposed to the
/// monotone counters in [`QueueStats`]. Snapshot via
/// [`RawQueue::gauges`](crate::RawQueue::gauges); exposed by the harness as
/// Prometheus gauge metrics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Gauges {
    /// Head index `H` (dequeue FAA counter).
    pub head_index: u64,
    /// Tail index `T` (enqueue FAA counter).
    pub tail_index: u64,
    /// Oldest live segment id `I`, or −1 while a cleaner holds the token.
    pub oldest_segment_id: i64,
    /// Segments currently in the list (computed from the counters; includes
    /// the initial segment).
    pub live_segments: u64,
    /// Smallest published hazard id across all handles, if any operation is
    /// in flight.
    pub min_hazard: Option<u64>,
    /// How many segments the laggiest published hazard pins behind the
    /// dequeue frontier: `H/N − min_hazard` (0 when idle). A persistently
    /// large value means reclamation is being held back.
    pub hazard_lag_segments: u64,
    /// Handles currently owned by live [`Handle`](crate::Handle)s.
    pub active_handles: u64,
    /// Registered handle ring slots (active or parked).
    pub total_handles: u64,
    /// Enqueue helping records currently pending (slow-path enqueues in
    /// flight — the occupancy of the helping-request "ring slots").
    pub pending_enq_reqs: u64,
    /// Dequeue helping records currently pending.
    pub pending_deq_reqs: u64,
    /// Segments parked in the bounded-mode recycling pool (0 when
    /// unbounded).
    pub pooled_segments: u64,
    /// The configured segment ceiling, if bounded-memory mode is on.
    pub segment_ceiling: Option<u64>,
    /// Ceiling minus segments currently owned (chain + pool + spares);
    /// `Some(0)` means the next extension must recycle or overshoot.
    /// `None` when unbounded.
    pub ceiling_headroom: Option<u64>,
}

impl Gauges {
    /// Helping-record occupancy as a fraction of registered handles
    /// (each handle owns one enqueue and one dequeue request slot).
    pub fn help_ring_occupancy(&self) -> f64 {
        if self.total_handles == 0 {
            0.0
        } else {
            (self.pending_enq_reqs + self.pending_deq_reqs) as f64
                / (2 * self.total_handles) as f64
        }
    }
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn avg(mass: u64, count: u64) -> f64 {
    if count == 0 {
        0.0
    } else {
        mass as f64 / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_accumulates() {
        let h = HandleStats::default();
        h.enq_fast.store(10, Ordering::Relaxed);
        h.enq_slow.store(2, Ordering::Relaxed);
        h.deq_fast.store(8, Ordering::Relaxed);
        h.deq_slow.store(4, Ordering::Relaxed);
        h.deq_empty.store(1, Ordering::Relaxed);
        let mut s = QueueStats::default();
        s.absorb(&h);
        s.absorb(&h);
        assert_eq!(s.enqueues(), 24);
        assert_eq!(s.dequeues(), 24);
        assert_eq!(s.deq_empty, 2);
    }

    #[test]
    fn percentages_match_table2_semantics() {
        let s = QueueStats {
            enq_fast: 98,
            enq_slow: 2,
            deq_fast: 75,
            deq_slow: 25,
            deq_empty: 10,
            ..Default::default()
        };
        assert!((s.pct_slow_enq() - 2.0).abs() < 1e-9);
        assert!((s.pct_slow_deq() - 25.0).abs() < 1e-9);
        assert!((s.pct_empty_deq() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_report_zero_percentages() {
        let s = QueueStats::default();
        assert_eq!(s.pct_slow_enq(), 0.0);
        assert_eq!(s.pct_slow_deq(), 0.0);
        assert_eq!(s.pct_empty_deq(), 0.0);
        assert_eq!(s.live_segments(), 0);
    }

    #[test]
    fn display_renders_the_table2_layout() {
        let s = QueueStats {
            enq_fast: 98,
            enq_slow: 2,
            deq_fast: 75,
            deq_slow: 25,
            deq_empty: 10,
            help_enq: 3,
            cleanups: 1,
            segs_alloc: 5,
            segs_freed: 4,
            ..Default::default()
        };
        let out = s.to_string();
        assert!(out.contains("enqueue"), "{out}");
        assert!(out.contains("2.000%"), "pct_slow_enq missing: {out}");
        assert!(out.contains("25.000%"), "pct_slow_deq missing: {out}");
        assert!(out.contains("cleanups 1"), "{out}");
        assert!(out.contains("alloc 5 freed 4 (live 1)"), "{out}");
        // Aligned columns: header and the two op rows are the same width.
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].contains("total") && lines[0].contains("% slow"));
        assert_eq!(lines[0].len(), lines[1].len(), "{out}");
        assert_eq!(lines[1].len(), lines[2].len(), "{out}");
    }

    #[test]
    fn display_adds_a_bounded_line_only_when_traced() {
        let mut s = QueueStats {
            enq_fast: 10,
            ..Default::default()
        };
        assert!(
            !s.to_string().contains("bounded"),
            "unbounded runs keep the exact Table-2 layout"
        );
        s.enq_rejected = 3;
        s.forced_cleanups = 1;
        s.segs_recycled = 2;
        let out = s.to_string();
        assert!(
            out.contains("bounded    rejected 3 forced-cleanups 1 recycled 2"),
            "{out}"
        );
    }

    #[test]
    fn batch_widths_average_over_calls() {
        let s = QueueStats {
            enq_batches: 4,
            enq_batched_vals: 32,
            deq_batches: 5,
            deq_batched_vals: 20,
            ..Default::default()
        };
        assert!((s.avg_enq_batch_width() - 8.0).abs() < 1e-9);
        assert!((s.avg_deq_batch_width() - 4.0).abs() < 1e-9);
        assert_eq!(QueueStats::default().avg_enq_batch_width(), 0.0);
        assert_eq!(QueueStats::default().avg_deq_batch_width(), 0.0);
    }

    #[test]
    fn display_adds_a_batch_line_only_when_batches_ran() {
        let mut s = QueueStats {
            enq_fast: 10,
            ..Default::default()
        };
        assert!(
            !s.to_string().contains("batch"),
            "batch-free runs keep the exact Table-2 layout"
        );
        s.enq_batches = 2;
        s.enq_batched_vals = 16;
        s.deq_batches = 4;
        s.deq_batched_vals = 16;
        s.deq_batch_partial = 1;
        let out = s.to_string();
        assert!(
            out.contains("batch      enq 2×8.0 (stragglers 0, abandoned 0) deq 4×4.0 (partial 1, stragglers 0)"),
            "{out}"
        );
    }

    #[test]
    fn batch_counters_absorb_like_the_rest() {
        let h = HandleStats::default();
        h.enq_batches.store(3, Ordering::Relaxed);
        h.enq_batched_vals.store(24, Ordering::Relaxed);
        h.deq_batches.store(2, Ordering::Relaxed);
        h.deq_batched_vals.store(9, Ordering::Relaxed);
        h.deq_batch_stragglers.store(1, Ordering::Relaxed);
        let mut s = QueueStats::default();
        s.absorb(&h);
        s.absorb(&h);
        assert_eq!(s.enq_batches, 6);
        assert_eq!(s.enq_batched_vals, 48);
        assert_eq!(s.deq_batches, 4);
        assert_eq!(s.deq_batched_vals, 18);
        assert_eq!(s.deq_batch_stragglers, 2);
    }

    #[test]
    fn for_each_counter_visits_every_field_exactly_once() {
        // Exhaustive struct literal, deliberately without `..Default`: a
        // new counter field fails this test at *compile* time until it is
        // added both here and to `for_each_counter`.
        let s = QueueStats {
            enq_fast: 101,
            enq_slow: 102,
            deq_fast: 103,
            deq_slow: 104,
            deq_empty: 105,
            help_enq: 106,
            help_deq: 107,
            cleanups: 108,
            segs_alloc: 109,
            segs_freed: 110,
            enq_slow_helped: 111,
            help_enq_commit: 112,
            help_enq_seal: 113,
            deq_slow_empty: 114,
            help_deq_announce: 115,
            help_deq_complete: 116,
            reclaim_conceded: 117,
            reclaim_backward_clamp: 118,
            reclaim_noop: 119,
            enq_rejected: 120,
            forced_cleanups: 121,
            segs_recycled: 122,
            enq_batches: 123,
            enq_batched_vals: 124,
            enq_batch_stragglers: 125,
            enq_batch_abandoned: 126,
            deq_batches: 127,
            deq_batched_vals: 128,
            deq_batch_partial: 129,
            deq_batch_stragglers: 130,
        };
        let mut names = std::collections::BTreeSet::new();
        let mut values = Vec::new();
        s.for_each_counter(|name, v| {
            assert!(names.insert(name), "counter {name} visited twice");
            values.push(v);
        });
        assert_eq!(names.len(), 30);
        values.sort_unstable();
        assert_eq!(values, (101..=130).collect::<Vec<u64>>());
    }

    #[test]
    fn gauges_occupancy_is_a_fraction_of_request_slots() {
        let g = Gauges {
            total_handles: 4,
            pending_enq_reqs: 1,
            pending_deq_reqs: 1,
            ..Default::default()
        };
        assert!((g.help_ring_occupancy() - 0.25).abs() < 1e-9);
        assert_eq!(Gauges::default().help_ring_occupancy(), 0.0);
    }
}
