//! Queue cells and their reserved sentinel values (paper Listing 2, §3.3).
//!
//! A cell is the triple `(val, enq, deq)`:
//!
//! - `val` holds ⊥ (never written), ⊤ (marked unusable by a dequeuer), or an
//!   enqueued value;
//! - `enq` holds ⊥e (unreserved), ⊤e (no enqueue will ever fill this cell),
//!   or a pointer to the [`EnqReq`] that reserved it;
//! - `deq` holds ⊥d (value unclaimed), ⊤d (claimed by a fast-path dequeue),
//!   or a pointer to the [`DeqReq`] that claimed it.
//!
//! Every cell starts as `(⊥, ⊥e, ⊥d)`. We choose the encodings so that the
//! all-zero bit pattern *is* that initial state, letting segments come out
//! of `alloc_zeroed` ready to use.

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::request::{DeqReq, EnqReq};

/// ⊥ — the "never written" value sentinel.
pub(crate) const VAL_BOTTOM: u64 = 0;
/// ⊤ — the "unusable, no enqueue may deposit here" value sentinel.
pub(crate) const VAL_TOP: u64 = u64::MAX;

/// ⊥e — no enqueue request has reserved this cell.
pub(crate) const ENQ_BOTTOM: *mut EnqReq = core::ptr::null_mut();
/// ⊤e — helpers agreed no enqueue request will ever fill this cell.
pub(crate) const ENQ_TOP: *mut EnqReq = 1usize as *mut EnqReq;

/// ⊥d — the value in this cell is unclaimed by dequeuers.
pub(crate) const DEQ_BOTTOM: *mut DeqReq = core::ptr::null_mut();
/// ⊤d — the value was claimed by a fast-path dequeue.
pub(crate) const DEQ_TOP: *mut DeqReq = 1usize as *mut DeqReq;

/// Checks that a user value avoids the reserved patterns.
#[inline]
pub(crate) const fn is_valid_value(v: u64) -> bool {
    v != VAL_BOTTOM && v != VAL_TOP
}

/// One cell of the emulated infinite array.
#[derive(Debug)]
#[repr(C)]
pub(crate) struct Cell {
    pub val: AtomicU64,
    pub enq: AtomicPtr<EnqReq>,
    pub deq: AtomicPtr<DeqReq>,
}

impl Cell {
    /// Fast-path enqueue deposit: `(val: ⊥ → v)` (paper line 68).
    #[inline]
    pub fn try_deposit(&self, v: u64) -> bool {
        self.val
            .compare_exchange(VAL_BOTTOM, v, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// The help_enq opening move (paper line 91): attempt `(val: ⊥ → ⊤)`.
    /// Returns the value if the cell already held a real one.
    #[inline]
    pub fn mark_or_value(&self) -> Option<u64> {
        match self
            .val
            .compare_exchange(VAL_BOTTOM, VAL_TOP, Ordering::SeqCst, Ordering::SeqCst)
        {
            Ok(_) => None,
            Err(cur) if cur != VAL_TOP => Some(cur),
            Err(_) => None,
        }
    }

    #[inline]
    pub fn load_val(&self) -> u64 {
        self.val.load(Ordering::SeqCst)
    }

    #[inline]
    pub fn load_enq(&self) -> *mut EnqReq {
        self.enq.load(Ordering::SeqCst)
    }

    /// `(enq: ⊥e → r)` — reserve this cell for request `r` (Dijkstra
    /// protocol, paper lines 80 and 103).
    #[inline]
    pub fn try_reserve_enq(&self, r: *mut EnqReq) -> bool {
        self.enq
            .compare_exchange(ENQ_BOTTOM, r, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// `(enq: ⊥e → ⊤e)` — seal the cell against future enqueue helpers
    /// (paper line 111). True if this call performed the seal.
    #[inline]
    pub fn try_seal_enq(&self) -> bool {
        self.enq
            .compare_exchange(ENQ_BOTTOM, ENQ_TOP, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    #[inline]
    pub fn load_deq(&self) -> *mut DeqReq {
        self.deq.load(Ordering::SeqCst)
    }

    /// `(deq: ⊥d → ⊤d)` — fast-path dequeue claims the value (paper line 146).
    #[inline]
    pub fn try_claim_deq_fast(&self) -> bool {
        self.deq
            .compare_exchange(DEQ_BOTTOM, DEQ_TOP, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// `(deq: ⊥d → r)` — claim the value for slow-path request `r`
    /// (paper line 194).
    #[inline]
    pub fn try_claim_deq_slow(&self, r: *mut DeqReq) -> bool {
        self.deq
            .compare_exchange(DEQ_BOTTOM, r, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Cell {
        // SAFETY-free equivalent of the zeroed allocation used for segments.
        Cell {
            val: AtomicU64::new(VAL_BOTTOM),
            enq: AtomicPtr::new(ENQ_BOTTOM),
            deq: AtomicPtr::new(DEQ_BOTTOM),
        }
    }

    #[test]
    fn zeroed_bit_pattern_is_the_initial_state() {
        // alloc_zeroed gives all-zero cells; check the sentinels agree.
        assert_eq!(VAL_BOTTOM, 0);
        assert!(ENQ_BOTTOM.is_null());
        assert!(DEQ_BOTTOM.is_null());
    }

    #[test]
    fn deposit_succeeds_once() {
        let c = fresh();
        assert!(c.try_deposit(42));
        assert!(!c.try_deposit(43));
        assert_eq!(c.load_val(), 42);
    }

    #[test]
    fn mark_or_value_on_fresh_cell_marks_top() {
        let c = fresh();
        assert_eq!(c.mark_or_value(), None);
        assert_eq!(c.load_val(), VAL_TOP);
        // A subsequent enqueue deposit must now fail (unusable cell).
        assert!(!c.try_deposit(1));
    }

    #[test]
    fn mark_or_value_returns_existing_value() {
        let c = fresh();
        assert!(c.try_deposit(7));
        assert_eq!(c.mark_or_value(), Some(7));
        assert_eq!(c.load_val(), 7, "value must be preserved");
    }

    #[test]
    fn mark_or_value_on_top_cell_is_none() {
        let c = fresh();
        assert_eq!(c.mark_or_value(), None);
        assert_eq!(c.mark_or_value(), None, "already ⊤: not a value");
    }

    #[test]
    fn enq_reservation_and_sealing_are_exclusive() {
        let c = fresh();
        let mut req = EnqReq::new();
        assert!(c.try_reserve_enq(&mut req));
        c.try_seal_enq(); // must be a no-op now
        assert_eq!(c.load_enq(), &mut req as *mut _);

        let c2 = fresh();
        c2.try_seal_enq();
        let mut req2 = EnqReq::new();
        assert!(!c2.try_reserve_enq(&mut req2));
        assert_eq!(c2.load_enq(), ENQ_TOP);
    }

    #[test]
    fn deq_claims_are_exclusive() {
        let c = fresh();
        assert!(c.try_claim_deq_fast());
        assert!(!c.try_claim_deq_fast());
        let mut r = DeqReq::new();
        assert!(!c.try_claim_deq_slow(&mut r));

        let c2 = fresh();
        let mut r2 = DeqReq::new();
        assert!(c2.try_claim_deq_slow(&mut r2));
        assert!(!c2.try_claim_deq_fast());
        assert_eq!(c2.load_deq(), &mut r2 as *mut _);
    }

    #[test]
    fn valid_value_range_excludes_sentinels() {
        assert!(!is_valid_value(VAL_BOTTOM));
        assert!(!is_valid_value(VAL_TOP));
        assert!(is_valid_value(1));
        assert!(is_valid_value(u64::MAX - 1));
    }
}
