//! Bounded-memory segment pool — the robustness layer over Listing 5.
//!
//! The paper's queue returns reclaimed segments to the allocator and grows
//! the chain without bound whenever a stalled thread pins the reclamation
//! boundary; `Segment::alloc` aborts on OOM. Bounded mode
//! ([`Config::with_segment_ceiling`](crate::Config::with_segment_ceiling))
//! interposes this pool between the chain and the allocator:
//!
//! - reclaimed segments are **scrubbed** back to their all-⊥ state and
//!   pushed onto a lock-free Treiber free list instead of being freed;
//! - a list extension draws from the pool first, and a **fresh** allocation
//!   is admitted only while `total` (every segment this queue currently
//!   owns: chain + pool + per-handle spares) is below the ceiling;
//! - an extension that finds the pool empty at the ceiling spins with
//!   [`wfq_sync::Backoff`] — a concurrent cleaner may recycle segments at
//!   any moment — and once the backoff saturates it *overshoots* the
//!   ceiling rather than blocking an in-flight operation forever.
//!
//! The overshoot is why the ceiling is **advisory, not exact**: an
//! operation that has already FAA'd an index must be able to reach its
//! cell, or wait-freedom (and with it the helping protocol) collapses.
//! Aksenov, Brown, Fedorov & Kokorin ("Memory Bounds of Concurrent Bounded
//! Queues") show that exact bounds require dequeuers to block enqueuers —
//! precisely what this queue's FAA-based design refuses to do. The
//! [`try_enqueue`](crate::Handle::try_enqueue) admission gate keeps the
//! overshoot bounded by the number of threads mid-operation: new work is
//! rejected with `Full` *before* it FAAs, so only already-admitted
//! operations can exceed the ceiling, each by at most one segment.
//!
//! ## ABA and the tagged head
//!
//! The Treiber head is a `(pointer, version)` pair updated with one
//! 128-bit CAS ([`wfq_sync::dwcas::AtomicU128`]); every successful pop or
//! push bumps the version, so a head recycled through pop→publish→retire→
//! push cannot be confused with its earlier incarnation. The 128-bit load
//! reads the halves separately and may *tear*; that is sound here for the
//! same reason it is in LCRQ: a torn pair never matches memory at CAS time,
//! and the only dereference before revalidation (`(*head).next`) touches
//! memory that stays mapped for the queue's whole life — pooled segments
//! are deallocated only when the pool itself drops, and popped segments are
//! republished into the chain, never freed while the queue lives.

use core::ptr;
use core::sync::atomic::{AtomicU64, Ordering};

use wfq_sync::dwcas::AtomicU128;
use wfq_sync::{inject, Backoff};

use crate::segment::Segment;

/// Lock-free free list of scrubbed segments plus the allocation gate for
/// bounded mode. With `ceiling == None` the pool is inert: `acquire`
/// forwards to [`Segment::alloc`] (abort-on-OOM, exactly the paper's
/// behavior) and `retire_list` frees, so the unbounded path is unchanged.
pub(crate) struct SegmentPool<const N: usize> {
    /// Treiber head: `(segment pointer, version)`.
    head: AtomicU128,
    /// Segments currently parked in the free list.
    pooled: AtomicU64,
    /// Segments this queue currently owns: chain + pool + spares. Only
    /// maintained in bounded mode (the unbounded path never reads it).
    total: AtomicU64,
    ceiling: Option<u64>,
}

// SAFETY: all shared state is behind atomics; segments handed out are
// exclusively owned by the receiver until published.
unsafe impl<const N: usize> Send for SegmentPool<N> {}
unsafe impl<const N: usize> Sync for SegmentPool<N> {}

impl<const N: usize> SegmentPool<N> {
    /// Creates a pool. `total` starts at 1 for the queue's initial segment.
    pub fn new(ceiling: Option<u64>) -> Self {
        Self {
            head: AtomicU128::new(0, 0),
            pooled: AtomicU64::new(0),
            total: AtomicU64::new(1),
            ceiling,
        }
    }

    /// The configured ceiling, if bounded.
    pub fn ceiling(&self) -> Option<u64> {
        self.ceiling
    }

    /// Segments currently parked in the free list.
    pub fn pooled(&self) -> u64 {
        self.pooled.load(Ordering::Relaxed)
    }

    /// Segments this queue currently owns (bounded mode only; the counter
    /// is not maintained on the unbounded path).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Whether a list extension could proceed right now without waiting:
    /// either a recycled segment is parked in the pool, or a fresh
    /// allocation is still under the ceiling. Always true when unbounded.
    /// Advisory — the answer can change before the caller acts on it.
    pub fn has_headroom(&self) -> bool {
        self.has_headroom_for(1)
    }

    /// Batch-aware headroom probe: whether `segs` list extensions could all
    /// proceed right now without waiting — pooled segments plus the room
    /// left under the ceiling cover the demand. `has_headroom()` is exactly
    /// `has_headroom_for(1)`. The `try_enqueue_batch` admission gate asks
    /// this for the whole claim (⌈k/N⌉ segments) before the batch FAA, so a
    /// rejected batch never burns an index. Advisory, like `has_headroom`.
    pub fn has_headroom_for(&self, segs: u64) -> bool {
        match self.ceiling {
            None => true,
            Some(c) => {
                let pooled = self.pooled.load(Ordering::Relaxed);
                let allocatable = c.saturating_sub(self.total.load(Ordering::Relaxed));
                pooled + allocatable >= segs
            }
        }
    }

    /// Produces a segment stamped `id` for a list extension. Never returns
    /// null; in bounded mode it may wait (bounded backoff) for a cleaner to
    /// recycle, then overshoots the ceiling (see module docs).
    pub fn acquire(&self, id: u64) -> *mut Segment<N> {
        let Some(ceiling) = self.ceiling else {
            // Unbounded: the paper's behavior, aborting on OOM.
            return Segment::alloc(id);
        };
        let backoff = Backoff::new();
        loop {
            if let Some(seg) = self.try_pop() {
                // SAFETY: pushed segments were scrubbed to the all-⊥,
                // null-next state and we now own `seg` exclusively.
                unsafe { Segment::restamp(seg, id) };
                return seg;
            }
            if self.try_reserve_total(ceiling) {
                let seg = Segment::try_alloc(id);
                if !seg.is_null() {
                    return seg;
                }
                // Allocator refused: put the reservation back and retry —
                // memory (or a recycled segment) may appear.
                self.total.fetch_sub(1, Ordering::Relaxed);
            }
            if backoff.is_completed() {
                // Saturated with no headroom: an in-flight operation must
                // still complete (the FAA already happened), so overshoot
                // the ceiling rather than block. try_enqueue's admission
                // gate keeps this path rare and per-thread bounded.
                self.total.fetch_add(1, Ordering::Relaxed);
                let alloc_backoff = Backoff::new();
                loop {
                    let seg = Segment::try_alloc(id);
                    if !seg.is_null() {
                        return seg;
                    }
                    alloc_backoff.snooze();
                }
            }
            inject!("pool::stall");
            backoff.snooze();
        }
    }

    /// Retires the reclaimed chain `[from, to)`: recycled into the pool in
    /// bounded mode, freed otherwise. Returns `(retired, recycled)`.
    ///
    /// # Safety
    /// The chain must be intact and unreachable by any other thread (the
    /// caller holds the reclamation token and has moved `Q` past it).
    pub unsafe fn retire_list(
        &self,
        from: *mut Segment<N>,
        to: *mut Segment<N>,
    ) -> (u64, u64) {
        if self.ceiling.is_none() {
            // SAFETY: contract forwarded.
            return (unsafe { Segment::free_list(from, to) }, 0);
        }
        let mut cur = from;
        let mut n = 0;
        while cur != to {
            debug_assert!(!cur.is_null(), "retire_list ran off the chain");
            // The link must be read before push repurposes `next` as the
            // free-list pointer.
            // SAFETY: `cur` is in the retired chain, unreachable by others.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            // SAFETY: as above — exclusive ownership of `cur`.
            unsafe { self.push(cur) };
            cur = next;
            n += 1;
        }
        (n, n)
    }

    /// Scrubs `seg` and pushes it onto the free list.
    ///
    /// # Safety
    /// `seg` must be exclusively owned by the caller and unreachable
    /// through the chain.
    pub unsafe fn push(&self, seg: *mut Segment<N>) {
        // SAFETY: exclusive ownership per the contract.
        unsafe { Segment::scrub(seg) };
        loop {
            let (head_bits, ver) = self.head.load();
            // SAFETY: we still own `seg` exclusively until the CAS wins.
            unsafe {
                (*seg)
                    .next
                    .store(head_bits as *mut Segment<N>, Ordering::Relaxed)
            };
            inject!("pool::push");
            if self
                .head
                .compare_exchange((head_bits, ver), (seg as u64, ver.wrapping_add(1)))
                .is_ok()
            {
                self.pooled.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }

    /// Pops a scrubbed segment, if any. Lock-free.
    fn try_pop(&self) -> Option<*mut Segment<N>> {
        loop {
            let (head_bits, ver) = self.head.load();
            let head = head_bits as *mut Segment<N>;
            if head.is_null() {
                return None;
            }
            // SAFETY: even if (head, ver) tore, `head` was recently the
            // list head and its memory stays mapped for the queue's life
            // (module docs); a stale read is rejected by the CAS below.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            inject!("pool::pop");
            if self
                .head
                .compare_exchange((head_bits, ver), (next as u64, ver.wrapping_add(1)))
                .is_ok()
            {
                self.pooled.fetch_sub(1, Ordering::Relaxed);
                // SAFETY: the pop made `head` exclusively ours.
                unsafe { (*head).next.store(ptr::null_mut(), Ordering::Relaxed) };
                return Some(head);
            }
        }
    }

    /// CAS-reserves one unit of `total` while it is below the ceiling.
    fn try_reserve_total(&self, ceiling: u64) -> bool {
        let mut cur = self.total.load(Ordering::Relaxed);
        while cur < ceiling {
            match self.total.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
        false
    }
}

impl<const N: usize> Drop for SegmentPool<N> {
    fn drop(&mut self) {
        // &mut self: no concurrent access; drain and free the list.
        let (head_bits, _) = self.head.load();
        let mut cur = head_bits as *mut Segment<N>;
        while !cur.is_null() {
            // SAFETY: pooled segments are owned by the pool alone.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            // SAFETY: as above.
            unsafe { Segment::dealloc(cur) };
            cur = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::VAL_BOTTOM;

    type Pool = SegmentPool<64>;

    #[test]
    fn unbounded_pool_forwards_to_the_allocator() {
        let p = Pool::new(None);
        assert!(p.has_headroom());
        let s = p.acquire(3);
        unsafe {
            assert_eq!((*s).id(), 3);
            Segment::dealloc(s);
        }
        // retire_list frees instead of pooling.
        let a = Segment::<64>::alloc(0);
        let b = Segment::<64>::alloc(1);
        unsafe { (*a).next.store(b, Ordering::Relaxed) };
        let (retired, recycled) = unsafe { p.retire_list(a, b) };
        assert_eq!((retired, recycled), (1, 0));
        assert_eq!(p.pooled(), 0);
        unsafe { Segment::dealloc(b) };
    }

    #[test]
    fn bounded_pop_restamps_and_returns_clean_segments() {
        let p = Pool::new(Some(8));
        let s = Segment::<64>::alloc(5);
        // Dirty a cell, then retire through the pool.
        unsafe { (*s).cells[0].val.store(42, Ordering::Relaxed) };
        unsafe { p.push(s) };
        assert_eq!(p.pooled(), 1);
        let back = p.acquire(9);
        assert_eq!(back, s, "pool must recycle, not allocate");
        assert_eq!(p.pooled(), 0);
        unsafe {
            assert_eq!((*back).id(), 9);
            assert!((*back).next.load(Ordering::Relaxed).is_null());
            for c in &(*back).cells {
                assert_eq!(c.load_val(), VAL_BOTTOM, "scrub must reset cells");
            }
            Segment::dealloc(back);
        }
    }

    #[test]
    fn bounded_fresh_allocation_stops_at_the_ceiling() {
        let p = Pool::new(Some(3)); // initial segment counts: 2 more allowed
        let a = p.acquire(1);
        let b = p.acquire(2);
        assert_eq!(p.total(), 3);
        assert!(!p.has_headroom());
        assert!(!p.try_reserve_total(3));
        unsafe {
            Segment::dealloc(a);
            Segment::dealloc(b);
        }
    }

    #[test]
    fn headroom_reappears_when_segments_are_recycled() {
        let p = Pool::new(Some(2));
        let a = p.acquire(1);
        assert!(!p.has_headroom());
        unsafe { p.push(a) };
        assert!(p.has_headroom());
        assert_eq!(p.total(), 2, "recycling must not change total");
        // The pooled segment satisfies the next acquire without allocating.
        let back = p.acquire(7);
        assert_eq!(back, a);
        unsafe { Segment::dealloc(back) };
    }

    #[test]
    fn batch_headroom_counts_pool_plus_ceiling_room() {
        let p = Pool::new(Some(4)); // initial segment counts: 3 allocatable
        assert!(p.has_headroom_for(3));
        assert!(!p.has_headroom_for(4));
        let a = p.acquire(1);
        assert!(p.has_headroom_for(2));
        assert!(!p.has_headroom_for(3));
        // A pooled segment adds to the batch budget without changing total.
        unsafe { p.push(a) };
        assert!(p.has_headroom_for(3));
        assert!(!p.has_headroom_for(4));
        // has_headroom() must stay exactly has_headroom_for(1).
        assert_eq!(p.has_headroom(), p.has_headroom_for(1));
        assert!(Pool::new(None).has_headroom_for(u64::MAX), "unbounded: always");
        let back = p.acquire(2);
        unsafe { Segment::dealloc(back) };
    }

    #[test]
    fn lifo_order_and_version_bumps() {
        let p = Pool::new(Some(16));
        let a = p.acquire(1);
        let b = p.acquire(2);
        unsafe {
            p.push(a);
            p.push(b);
        }
        assert_eq!(p.pooled(), 2);
        assert_eq!(p.acquire(10), b, "Treiber stack: LIFO");
        assert_eq!(p.acquire(11), a);
        unsafe {
            Segment::dealloc(a);
            Segment::dealloc(b);
        }
    }

    #[test]
    fn drop_frees_whatever_is_parked() {
        // Run under ASan/Miri-style leak checking in CI: dropping a pool
        // with parked segments must not leak.
        let p = Pool::new(Some(8));
        let segs: Vec<_> = (1..=4).map(|id| p.acquire(id)).collect();
        for s in segs {
            unsafe { p.push(s) };
        }
        assert_eq!(p.pooled(), 4);
        drop(p);
    }

    #[test]
    fn concurrent_push_pop_conserves_segments() {
        let p = Pool::new(Some(64));
        let segs: Vec<_> = (1..=16).map(|i| p.acquire(i)).collect();
        for &s in &segs {
            unsafe { p.push(s) };
        }
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let p = &p;
                scope.spawn(move || {
                    for round in 0..200u64 {
                        if let Some(s) = p.try_pop() {
                            // SAFETY: popped: exclusively ours.
                            unsafe { Segment::restamp(s, 100 + round) };
                            unsafe { p.push(s) };
                        }
                    }
                });
            }
        });
        assert_eq!(p.pooled(), 16, "every segment must return to the pool");
        let mut drained = 0;
        while p.try_pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 16);
        for &s in &segs {
            unsafe { Segment::dealloc(s) };
        }
    }
}
