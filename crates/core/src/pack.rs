//! Packed request-state words.
//!
//! The paper represents the mutable half of an enqueue request as the pair
//! `(pending: 1 bit, id: 63 bits)` and of a dequeue request as
//! `(pending: 1 bit, idx: 63 bits)`, each packed into one 64-bit word so a
//! single CAS can claim or close a request atomically (Listing 2, lines
//! 10–15). This module owns the bit layout.

/// Bit carrying the `pending` flag (the paper's 1-bit field).
const PENDING_BIT: u64 = 1 << 63;
/// Mask of the 63-bit `id`/`idx` payload.
const INDEX_MASK: u64 = PENDING_BIT - 1;

/// A decoded request state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ReqState {
    /// Whether the request still needs help.
    pub pending: bool,
    /// The request id (enqueue) or candidate cell index (dequeue).
    pub index: u64,
}

/// Packs `(pending, index)` into one word. `index` must fit in 63 bits —
/// guaranteed in practice since indices come from a counter that would need
/// centuries of FAAs to overflow.
#[inline]
pub(crate) const fn pack(pending: bool, index: u64) -> u64 {
    debug_assert!(index <= INDEX_MASK);
    (index & INDEX_MASK) | if pending { PENDING_BIT } else { 0 }
}

/// Decodes a packed state word.
#[inline]
pub(crate) const fn unpack(word: u64) -> ReqState {
    ReqState {
        pending: word & PENDING_BIT != 0,
        index: word & INDEX_MASK,
    }
}

/// Convenience accessor: the `pending` bit of a packed word.
#[inline]
#[allow(dead_code)]
pub(crate) const fn is_pending(word: u64) -> bool {
    word & PENDING_BIT != 0
}

/// Convenience accessor: the 63-bit index of a packed word.
#[inline]
#[allow(dead_code)]
pub(crate) const fn index_of(word: u64) -> u64 {
    word & INDEX_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for &(p, i) in &[
            (false, 0),
            (true, 0),
            (false, 1),
            (true, 42),
            (true, INDEX_MASK),
            (false, INDEX_MASK),
        ] {
            let w = pack(p, i);
            assert_eq!(unpack(w), ReqState { pending: p, index: i });
            assert_eq!(is_pending(w), p);
            assert_eq!(index_of(w), i);
        }
    }

    #[test]
    fn pending_bit_is_the_top_bit() {
        assert_eq!(pack(true, 0), 1 << 63);
        assert_eq!(pack(false, 5), 5);
    }

    #[test]
    fn initial_states_match_the_paper() {
        // An enqueue request is initially (⊥, 0, 0): state word = 0.
        // A dequeue request is initially (0, 0, 0): state word = 0.
        let init = unpack(0);
        assert!(!init.pending);
        assert_eq!(init.index, 0);
    }

    #[test]
    fn distinct_states_produce_distinct_words() {
        // try_to_claim_req relies on (1, id) != (0, i) for any id, i.
        assert_ne!(pack(true, 7), pack(false, 7));
        assert_ne!(pack(true, 7), pack(true, 8));
    }
}
