//! Double-apply tests for the help-machinery transitions (ISSUE 8).
//!
//! The recovery path leans on the paper's idempotence claim: a
//! half-finished operation can be completed by anyone, *including twice* —
//! re-running a commit that already happened must leave no second visible
//! effect. The fuzzer exercises this indirectly (racing helper and
//! requester); these tests apply each transition twice **deterministically**
//! and assert the exactly-once postconditions the recovery replay assumes:
//!
//! - `enq_commit` twice → one deposited value, `T` advanced once;
//! - `help_enq` twice on a cell routing a pending request → the request is
//!   claimed and committed once, the second call short-circuits on the
//!   already-present value;
//! - `help_deq` twice on a completed request → the second call bails on
//!   `!pending` without touching any further cell.

use core::sync::atomic::Ordering;

use crate::cell::DEQ_BOTTOM;
use crate::config::Config;
use crate::raw::{test_node, HelpEnq, RawQueue};
use crate::segment::find_cell;

const SEG: usize = 16;

#[test]
fn enq_commit_twice_has_one_visible_effect() {
    let q: RawQueue<SEG> = RawQueue::with_config(Config::default());
    let h = q.register();
    // SAFETY: the node outlives the handle; single-threaded test.
    let node = unsafe { &*test_node(&h) };
    let cid = 0u64;
    // SAFETY: node.tail is the initial segment (id 0 ≤ cid/SEG).
    let c = unsafe { &*find_cell(&node.tail, cid, &q.src(node)) };

    q.enq_commit(c, 42, cid);
    let tail_after_first = q.tail_index.load(Ordering::SeqCst);
    // The double application — a helper re-running a commit the requester
    // (or another helper) already performed.
    q.enq_commit(c, 42, cid);

    assert_eq!(c.load_val(), 42, "value deposited exactly once");
    assert_eq!(q.tail_index.load(Ordering::SeqCst), tail_after_first);
    assert_eq!(tail_after_first, cid + 1, "CAS-max advanced T once");
    drop(h);
    // The committed value is delivered exactly once through the front door.
    let mut h = q.register();
    assert_eq!(h.dequeue(), Some(42));
    assert_eq!(h.dequeue(), None);
}

#[test]
fn help_enq_twice_completes_a_pending_request_once() {
    let q: RawQueue<SEG> = RawQueue::with_config(Config::default());
    let requester = q.register(); // anchor
    let helper = q.register(); // ring successor → peers point at anchor
    // SAFETY: nodes outlive the handles; single-threaded test.
    let r_node = unsafe { &*test_node(&requester) };
    let h_node = unsafe { &*test_node(&helper) };
    assert_eq!(
        h_node.enq_peer.load(Ordering::Relaxed),
        r_node as *const _ as *mut _,
        "staging requires the helper's peer scan to start at the requester"
    );

    // Stage the requester parked mid-slow-path: request published for
    // publish id 0, no cell reserved yet.
    r_node.enq_req.publish(77, 0);
    let i = 0u64;
    // SAFETY: h_node.head is the initial segment (id 0 ≤ i/SEG).
    let c = unsafe { &*find_cell(&h_node.head, i, &q.src(h_node)) };

    // First help: marks the cell, reserves it for the peer's request,
    // claims, and commits.
    assert_eq!(q.help_enq(h_node, c, i), HelpEnq::Value(77));
    let s = r_node.enq_req.state();
    assert!(!s.pending, "request completed by the helper");
    assert_eq!(s.index, i, "claimed for the helped cell");
    assert_eq!(c.load_val(), 77);
    let tail = q.tail_index.load(Ordering::SeqCst);

    // Second help of the same cell — e.g. a racing dequeuer replaying the
    // window after a crash: must short-circuit on the present value.
    assert_eq!(q.help_enq(h_node, c, i), HelpEnq::Value(77));
    assert_eq!(c.load_val(), 77, "no second deposit");
    assert_eq!(q.tail_index.load(Ordering::SeqCst), tail, "T unchanged");
    assert_eq!(r_node.enq_req.state(), s, "request state unchanged");
}

#[test]
fn help_deq_twice_consumes_one_cell_and_then_bails() {
    let q: RawQueue<SEG> = RawQueue::with_config(Config::default());
    let requester = q.register();
    let helper = q.register();
    // SAFETY: nodes outlive the handles; single-threaded test.
    let r_node = unsafe { &*test_node(&requester) };
    let h_node = unsafe { &*test_node(&helper) };

    // Two values so the candidate scan (which starts at id + 1) finds one.
    {
        let mut hh = q.register();
        hh.enqueue(11); // cell 0
        hh.enqueue(22); // cell 1
    }
    // Stage the requester parked mid-deq_slow with publish id 0.
    r_node.deq_req.publish(0);

    q.help_deq(h_node, r_node);
    let s = r_node.deq_req.state();
    assert!(!s.pending, "request completed by the helper");
    assert_eq!(s.index, 1, "candidate scan consumed cell 1 for the request");
    // SAFETY: segment 0 is live (no reclamation ran).
    let c1 = unsafe { &*find_cell(&h_node.head, 1, &q.src(h_node)) };
    let r_ptr = &r_node.deq_req as *const _ as *mut _;
    assert_eq!(c1.load_deq(), r_ptr, "cell 1 claimed for the request");

    // Second application — the crash-replay double help: bails on !pending
    // without claiming anything else.
    q.help_deq(h_node, r_node);
    assert_eq!(r_node.deq_req.state(), s, "state unchanged");
    // SAFETY: as above.
    let c2 = unsafe { &*find_cell(&h_node.head, 2, &q.src(h_node)) };
    assert_eq!(c2.load_deq(), DEQ_BOTTOM, "no further cell touched");

    // The untouched value (cell 0) is still delivered exactly once.
    let mut hh = q.register();
    assert_eq!(hh.dequeue(), Some(11));
    assert_eq!(hh.dequeue(), None, "cell 1's value went to the request, not twice");
}
