//! Typed, owning wrapper over the raw queue.
//!
//! The paper's queue transfers `void*` payloads; [`WfQueue<T>`] recovers a
//! safe Rust API by boxing each value and shipping the pointer through the
//! raw queue (a box pointer is never `0` or `u64::MAX`, the two reserved
//! patterns). Leftover values are drained and dropped when the queue drops.

use core::marker::PhantomData;

use crate::config::Config;
use crate::full::Full;
use crate::raw::{Handle, RawQueue};
use crate::stats::{Gauges, QueueStats};
use crate::DEFAULT_SEGMENT_SIZE;

/// A wait-free MPMC FIFO queue of `T`.
///
/// Operations go through per-thread [`LocalHandle`]s obtained with
/// [`WfQueue::handle`]:
///
/// ```
/// use wfqueue::WfQueue;
/// let q: WfQueue<String> = WfQueue::new();
/// let mut h = q.handle();
/// h.enqueue("hello".to_string());
/// assert_eq!(h.dequeue().as_deref(), Some("hello"));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct WfQueue<T, const N: usize = DEFAULT_SEGMENT_SIZE> {
    raw: RawQueue<N>,
    _values: PhantomData<T>,
}

// SAFETY: values cross threads through the queue, hence `T: Send`; the
// queue adds no shared mutable access to any individual `T`.
unsafe impl<T: Send, const N: usize> Send for WfQueue<T, N> {}
unsafe impl<T: Send, const N: usize> Sync for WfQueue<T, N> {}

/// A registered per-thread handle to a [`WfQueue`].
pub struct LocalHandle<'q, T, const N: usize = DEFAULT_SEGMENT_SIZE> {
    raw: Handle<'q, N>,
    _values: PhantomData<&'q WfQueue<T, N>>,
}

impl<T: Send> WfQueue<T> {
    /// Creates an empty queue with the default configuration (the paper's
    /// WF-10: segment size 2^10, patience 10).
    pub fn new() -> Self {
        Self::with_config(Config::default())
    }
}

impl<T: Send> Default for WfQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send, const N: usize> WfQueue<T, N> {
    /// Creates an empty queue with an explicit configuration.
    pub fn with_config(config: Config) -> Self {
        Self {
            raw: RawQueue::with_config(config),
            _values: PhantomData,
        }
    }

    /// Registers the calling context. One handle per thread; see
    /// [`RawQueue::register`] for the (non-wait-free) registration caveat.
    pub fn handle(&self) -> LocalHandle<'_, T, N> {
        LocalHandle {
            raw: self.raw.register(),
            _values: PhantomData,
        }
    }

    /// Advisory emptiness check (exact only under external quiescence).
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Aggregated execution-path statistics (paper Table 2).
    pub fn stats(&self) -> QueueStats {
        self.raw.stats()
    }

    /// Instantaneous gauge snapshot (see [`RawQueue::gauges`]); includes
    /// the bounded-mode pool occupancy and ceiling headroom.
    pub fn gauges(&self) -> Gauges {
        self.raw.gauges()
    }

    /// This queue's configuration.
    pub fn config(&self) -> Config {
        self.raw.config()
    }

    /// Approximate number of enqueued-but-unconsumed values (see
    /// [`RawQueue::len_hint`] for the precise meaning).
    pub fn len_hint(&self) -> u64 {
        self.raw.len_hint()
    }

    /// Access to the underlying raw queue (used by the owned-handle API).
    pub(crate) fn raw(&self) -> &RawQueue<N> {
        &self.raw
    }

    /// Drains every value currently in the queue (exclusive access, so
    /// the drain is exact and terminates).
    pub fn drain(&mut self) -> Vec<T> {
        let mut out = Vec::new();
        let mut h = self.raw.register();
        while let Some(bits) = h.dequeue() {
            // SAFETY: unique ownership — see LocalHandle::dequeue.
            out.push(unsafe { *Box::from_raw(bits as *mut T) });
        }
        out
    }
}

impl<T: Send, const N: usize> LocalHandle<'_, T, N> {
    /// Enqueues `value` at the tail. Wait-free (one allocation for the box,
    /// then the paper's bounded-step algorithm).
    pub fn enqueue(&mut self, value: T) {
        let ptr = Box::into_raw(Box::new(value));
        // A Box pointer is non-null and, being a valid address, never
        // u64::MAX — so it avoids both reserved patterns.
        self.raw.enqueue(ptr as u64);
    }

    /// Enqueues `value`, failing fast with [`Full`] — which returns the
    /// value to the caller — when the queue's segment ceiling is reached
    /// and no headroom can be recovered (see
    /// [`Config::with_segment_ceiling`]). Never fails on an unbounded
    /// queue.
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let ptr = Box::into_raw(Box::new(value));
        self.raw.try_enqueue(ptr as u64).map_err(|Full(())| {
            // SAFETY: the rejected value never entered the queue; the box
            // we just leaked is still exclusively ours.
            Full(unsafe { *Box::from_raw(ptr as *mut T) })
        })
    }

    /// Dequeues the value at the head, or `None` if the queue was observed
    /// empty. Wait-free.
    pub fn dequeue(&mut self) -> Option<T> {
        self.raw.dequeue().map(|bits| {
            // SAFETY: every non-sentinel value in the raw queue was created
            // by Box::into_raw in enqueue above, and the raw queue delivers
            // each value exactly once (linearizability), so this is the
            // unique owner.
            unsafe { *Box::from_raw(bits as *mut T) }
        })
    }

    /// Enqueues every value in `values`, in order, claiming all the cells
    /// with **one FAA** (see [`Handle::enqueue_batch`] and DESIGN.md §10).
    /// The batch is contiguous in the FIFO order unless a concurrent
    /// dequeuer poisons a pre-claimed cell, in which case the affected
    /// suffix falls back to element-wise enqueues (still FIFO within the
    /// batch). Wait-free.
    pub fn enqueue_batch(&mut self, values: Vec<T>) {
        let ptrs: Vec<u64> = values
            .into_iter()
            .map(|v| Box::into_raw(Box::new(v)) as u64)
            .collect();
        self.raw.enqueue_batch(&ptrs);
    }

    /// Like [`enqueue_batch`](Self::enqueue_batch), but fails fast with
    /// [`Full`] — handing the whole batch back, in order, with no element
    /// published — when the queue's segment ceiling leaves less than
    /// `⌈values.len() / N⌉` segments of headroom. Never fails on an
    /// unbounded queue.
    pub fn try_enqueue_batch(&mut self, values: Vec<T>) -> Result<(), Full<Vec<T>>> {
        let ptrs: Vec<u64> = values
            .into_iter()
            .map(|v| Box::into_raw(Box::new(v)) as u64)
            .collect();
        self.raw.try_enqueue_batch(&ptrs).map_err(|Full(())| {
            // SAFETY: rejection is all-or-nothing and happens before any
            // cell claim; every box is still exclusively ours.
            Full(
                ptrs.iter()
                    .map(|&p| unsafe { *Box::from_raw(p as *mut T) })
                    .collect(),
            )
        })
    }

    /// Dequeues up to `max` values into `out` with **one FAA**, returning
    /// how many were appended (see [`Handle::dequeue_batch`]). Returns 0
    /// only when the queue was observed empty. Wait-free.
    pub fn dequeue_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut bits = Vec::with_capacity(max);
        let n = self.raw.dequeue_batch(&mut bits, max);
        out.extend(bits.into_iter().map(|b| {
            // SAFETY: same unique-ownership argument as `dequeue`.
            unsafe { *Box::from_raw(b as *mut T) }
        }));
        n
    }
}

impl<T, const N: usize> Drop for WfQueue<T, N> {
    fn drop(&mut self) {
        // Drain and drop leftover values. &mut self: no concurrent access,
        // so dequeue-until-EMPTY terminates and misses nothing.
        let mut h = self.raw.register();
        while let Some(bits) = h.dequeue() {
            // SAFETY: same ownership argument as LocalHandle::dequeue.
            unsafe { drop(Box::from_raw(bits as *mut T)) };
        }
        drop(h);
        // RawQueue::drop frees segments and handle nodes.
    }
}

impl<T: Send, const N: usize> core::fmt::Debug for WfQueue<T, N> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("WfQueue")
            .field("raw", &self.raw)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn typed_fifo_roundtrip() {
        let q: WfQueue<u32> = WfQueue::new();
        let mut h = q.handle();
        for i in 0..100 {
            h.enqueue(i);
        }
        for i in 0..100 {
            assert_eq!(h.dequeue(), Some(i));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn owns_heap_values() {
        let q: WfQueue<Vec<String>> = WfQueue::new();
        let mut h = q.handle();
        h.enqueue(vec!["a".into(), "b".into()]);
        assert_eq!(h.dequeue(), Some(vec!["a".to_string(), "b".to_string()]));
    }

    #[test]
    fn zero_and_max_like_values_are_fine_when_typed() {
        // The raw sentinels must not leak into the typed API.
        let q: WfQueue<u64> = WfQueue::new();
        let mut h = q.handle();
        h.enqueue(0);
        h.enqueue(u64::MAX);
        assert_eq!(h.dequeue(), Some(0));
        assert_eq!(h.dequeue(), Some(u64::MAX));
    }

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn leftover_values_drop_with_the_queue() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q: WfQueue<DropCounter> = WfQueue::new();
            let mut h = q.handle();
            for _ in 0..10 {
                h.enqueue(DropCounter(Arc::clone(&drops)));
            }
            let taken = h.dequeue();
            assert!(taken.is_some());
            drop(taken);
            assert_eq!(drops.load(Ordering::Relaxed), 1);
            drop(h);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 10, "queue drop must drain");
    }

    #[test]
    fn dequeued_values_drop_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let q: WfQueue<DropCounter> = WfQueue::new();
        std::thread::scope(|s| {
            let producers = 2;
            let per = 500;
            for _ in 0..producers {
                let q = &q;
                let drops = &drops;
                s.spawn(move || {
                    let mut h = q.handle();
                    for _ in 0..per {
                        h.enqueue(DropCounter(Arc::clone(drops)));
                    }
                });
            }
            let consumed = AtomicUsize::new(0);
            let consumed = &consumed;
            std::thread::scope(|s2| {
                for _ in 0..2 {
                    let q = &q;
                    s2.spawn(move || {
                        let mut h = q.handle();
                        while consumed.load(Ordering::Relaxed) < producers * per {
                            if h.dequeue().is_some() {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    });
                }
            });
        });
        assert_eq!(drops.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn typed_batches_roundtrip_heap_values() {
        let q: WfQueue<String> = WfQueue::new();
        let mut h = q.handle();
        h.enqueue_batch((0..20).map(|i| format!("v{i}")).collect());
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 8), 8);
        assert_eq!(h.dequeue_batch(&mut out, 64), 12);
        let expect: Vec<String> = (0..20).map(|i| format!("v{i}")).collect();
        assert_eq!(out, expect);
        assert_eq!(h.dequeue_batch(&mut out, 4), 0);
    }

    #[test]
    fn typed_try_enqueue_batch_returns_whole_batch_on_full() {
        // Ceiling of 1 segment on a 4-cell queue: a 9-value batch needs
        // ⌈9/4⌉ = 3 segments of headroom and must bounce untouched.
        let q: WfQueue<String, 4> =
            WfQueue::with_config(Config::default().with_segment_ceiling(1));
        let mut h = q.handle();
        let batch: Vec<String> = (0..9).map(|i| format!("b{i}")).collect();
        let Err(Full(back)) = h.try_enqueue_batch(batch.clone()) else {
            panic!("expected Full");
        };
        assert_eq!(back, batch, "rejected batch must come back in order");
        assert!(q.is_empty(), "no element may have been published");
    }

    #[test]
    fn typed_batch_values_drop_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let q: WfQueue<DropCounter> = WfQueue::new();
            let mut h = q.handle();
            h.enqueue_batch((0..6).map(|_| DropCounter(Arc::clone(&drops))).collect());
            let mut out = Vec::new();
            assert_eq!(h.dequeue_batch(&mut out, 2), 2);
            drop(out);
            assert_eq!(drops.load(Ordering::Relaxed), 2);
            drop(h);
        }
        assert_eq!(drops.load(Ordering::Relaxed), 6, "queue drop drains the rest");
    }

    #[test]
    fn mpmc_string_traffic() {
        let q: WfQueue<String> = WfQueue::new();
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for t in 0..3 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.handle();
                    for i in 0..300 {
                        h.enqueue(format!("{t}-{i}"));
                    }
                });
            }
            for _ in 0..3 {
                let q = &q;
                let total = &total;
                s.spawn(move || {
                    let mut h = q.handle();
                    let mut got = 0;
                    while got < 300 {
                        if let Some(v) = h.dequeue() {
                            assert!(v.contains('-'));
                            got += 1;
                        }
                    }
                    total.fetch_add(got, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 900);
        assert!(q.is_empty());
    }
}
