//! Owned (Arc-backed) handles.
//!
//! [`crate::Handle`] and [`crate::LocalHandle`] borrow the queue, which is
//! perfect with scoped threads but awkward for detached workers. The owned
//! variants bundle an `Arc` of the queue with the registered ring node, so
//! a handle can be moved into a `std::thread::spawn` closure and the queue
//! lives exactly as long as its last user.
//!
//! ```
//! use std::sync::Arc;
//! use wfqueue::WfQueue;
//!
//! let q = Arc::new(WfQueue::new());
//! let mut producer = wfqueue::OwnedLocalHandle::new(Arc::clone(&q));
//! let worker = std::thread::spawn(move || {
//!     producer.enqueue(7u32);
//! });
//! worker.join().unwrap();
//! let mut h = q.handle();
//! assert_eq!(h.dequeue(), Some(7));
//! ```

use std::sync::Arc;

use crate::full::Full;
use crate::handle::HandleNode;
use crate::raw::RawQueue;
use crate::typed::WfQueue;
use crate::DEFAULT_SEGMENT_SIZE;

/// An owning per-thread handle to an `Arc<RawQueue>`.
pub struct OwnedHandle<const N: usize = DEFAULT_SEGMENT_SIZE> {
    queue: Arc<RawQueue<N>>,
    node: *mut HandleNode<N>,
}

// SAFETY: exclusive capability over the node; &mut receivers prevent
// concurrent use; the Arc keeps the queue (and thus the node) alive.
unsafe impl<const N: usize> Send for OwnedHandle<N> {}

impl<const N: usize> OwnedHandle<N> {
    /// Registers a new owned handle on `queue`.
    pub fn new(queue: Arc<RawQueue<N>>) -> Self {
        let node = queue.acquire_node();
        Self { queue, node }
    }

    /// Enqueues `v`. Wait-free. Panics on the reserved patterns
    /// (`0`, `u64::MAX`).
    #[inline]
    pub fn enqueue(&mut self, v: u64) {
        // SAFETY: node is live while the Arc'd queue lives.
        self.queue.enqueue_internal(unsafe { &*self.node }, v);
    }

    /// Enqueues `v`, failing fast with [`Full`] at the segment ceiling
    /// (see [`Handle::try_enqueue`](crate::Handle::try_enqueue)).
    #[inline]
    pub fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
        // SAFETY: node is live while the Arc'd queue lives.
        self.queue.try_enqueue_internal(unsafe { &*self.node }, v)
    }

    /// Dequeues the oldest value, or `None` if observed empty. Wait-free.
    #[inline]
    pub fn dequeue(&mut self) -> Option<u64> {
        // SAFETY: as above.
        self.queue.dequeue_internal(unsafe { &*self.node })
    }

    /// Enqueues every value in `vs` with one FAA (see
    /// [`Handle::enqueue_batch`](crate::Handle::enqueue_batch)).
    #[inline]
    pub fn enqueue_batch(&mut self, vs: &[u64]) {
        // SAFETY: node is live while the Arc'd queue lives.
        self.queue.enqueue_batch_internal(unsafe { &*self.node }, vs);
    }

    /// Batch analogue of [`try_enqueue`](Self::try_enqueue): all-or-nothing
    /// admission against the segment ceiling, before any cell is claimed.
    #[inline]
    pub fn try_enqueue_batch(&mut self, vs: &[u64]) -> Result<(), Full> {
        // SAFETY: as above.
        self.queue
            .try_enqueue_batch_internal(unsafe { &*self.node }, vs)
    }

    /// Dequeues up to `max` values into `out` with one FAA, returning how
    /// many were appended (see
    /// [`Handle::dequeue_batch`](crate::Handle::dequeue_batch)).
    #[inline]
    pub fn dequeue_batch(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
        // SAFETY: as above.
        self.queue
            .dequeue_batch_internal(unsafe { &*self.node }, out, max)
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &Arc<RawQueue<N>> {
        &self.queue
    }
}

impl<const N: usize> Drop for OwnedHandle<N> {
    fn drop(&mut self) {
        self.queue.release_node(self.node);
    }
}

/// An owning per-thread handle to an `Arc<WfQueue<T>>`.
pub struct OwnedLocalHandle<T: Send, const N: usize = DEFAULT_SEGMENT_SIZE> {
    queue: Arc<WfQueue<T, N>>,
    node: *mut HandleNode<N>,
}

// SAFETY: as for OwnedHandle; values are boxed and uniquely owned in
// transit.
unsafe impl<T: Send, const N: usize> Send for OwnedLocalHandle<T, N> {}

impl<T: Send, const N: usize> OwnedLocalHandle<T, N> {
    /// Registers a new owned handle on `queue`.
    pub fn new(queue: Arc<WfQueue<T, N>>) -> Self {
        let node = queue.raw().acquire_node();
        Self { queue, node }
    }

    /// Enqueues `value` at the tail. Wait-free after the box allocation.
    pub fn enqueue(&mut self, value: T) {
        let ptr = Box::into_raw(Box::new(value));
        // SAFETY: node live while the Arc'd queue lives; box pointers
        // avoid both reserved bit patterns.
        self.queue
            .raw()
            .enqueue_internal(unsafe { &*self.node }, ptr as u64);
    }

    /// Enqueues `value`, failing fast with [`Full`] — which hands the
    /// value back — at the segment ceiling (see
    /// [`LocalHandle::try_enqueue`](crate::LocalHandle::try_enqueue)).
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let ptr = Box::into_raw(Box::new(value));
        // SAFETY: node live while the Arc'd queue lives.
        self.queue
            .raw()
            .try_enqueue_internal(unsafe { &*self.node }, ptr as u64)
            .map_err(|Full(())| {
                // SAFETY: the rejected value never entered the queue; the
                // box is still exclusively ours.
                Full(unsafe { *Box::from_raw(ptr as *mut T) })
            })
    }

    /// Dequeues the oldest value, or `None` if observed empty. Wait-free.
    pub fn dequeue(&mut self) -> Option<T> {
        // SAFETY: node live as above.
        self.queue
            .raw()
            .dequeue_internal(unsafe { &*self.node })
            .map(|bits| {
                // SAFETY: unique ownership — see LocalHandle::dequeue.
                unsafe { *Box::from_raw(bits as *mut T) }
            })
    }

    /// Enqueues every value in `values` with one FAA (see
    /// [`LocalHandle::enqueue_batch`](crate::LocalHandle::enqueue_batch)).
    pub fn enqueue_batch(&mut self, values: Vec<T>) {
        let ptrs: Vec<u64> = values
            .into_iter()
            .map(|v| Box::into_raw(Box::new(v)) as u64)
            .collect();
        // SAFETY: node live while the Arc'd queue lives.
        self.queue
            .raw()
            .enqueue_batch_internal(unsafe { &*self.node }, &ptrs);
    }

    /// Batch analogue of [`try_enqueue`](Self::try_enqueue): on [`Full`]
    /// the whole batch comes back, in order, with no element published.
    pub fn try_enqueue_batch(&mut self, values: Vec<T>) -> Result<(), Full<Vec<T>>> {
        let ptrs: Vec<u64> = values
            .into_iter()
            .map(|v| Box::into_raw(Box::new(v)) as u64)
            .collect();
        // SAFETY: node live while the Arc'd queue lives.
        self.queue
            .raw()
            .try_enqueue_batch_internal(unsafe { &*self.node }, &ptrs)
            .map_err(|Full(())| {
                // SAFETY: rejection happens before any cell claim; every
                // box is still exclusively ours.
                Full(
                    ptrs.iter()
                        .map(|&p| unsafe { *Box::from_raw(p as *mut T) })
                        .collect(),
                )
            })
    }

    /// Dequeues up to `max` values into `out` with one FAA, returning how
    /// many were appended (see
    /// [`LocalHandle::dequeue_batch`](crate::LocalHandle::dequeue_batch)).
    pub fn dequeue_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut bits = Vec::with_capacity(max);
        // SAFETY: node live as above.
        let n = self
            .queue
            .raw()
            .dequeue_batch_internal(unsafe { &*self.node }, &mut bits, max);
        out.extend(bits.into_iter().map(|b| {
            // SAFETY: unique ownership — see LocalHandle::dequeue.
            unsafe { *Box::from_raw(b as *mut T) }
        }));
        n
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &Arc<WfQueue<T, N>> {
        &self.queue
    }
}

impl<T: Send, const N: usize> Drop for OwnedLocalHandle<T, N> {
    fn drop(&mut self) {
        self.queue.raw().release_node(self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_raw_handle_moves_into_spawned_threads() {
        let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
        let mut producer = OwnedHandle::new(Arc::clone(&q));
        let mut consumer = OwnedHandle::new(Arc::clone(&q));
        let p = std::thread::spawn(move || {
            for v in 1..=1000 {
                producer.enqueue(v);
            }
        });
        let c = std::thread::spawn(move || {
            let mut got = 0u64;
            let mut sum = 0u64;
            while got < 1000 {
                if let Some(v) = consumer.dequeue() {
                    sum += v;
                    got += 1;
                }
            }
            sum
        });
        p.join().unwrap();
        assert_eq!(c.join().unwrap(), (1..=1000u64).sum::<u64>());
    }

    #[test]
    fn owned_typed_handle_roundtrip() {
        let q: Arc<WfQueue<String>> = Arc::new(WfQueue::new());
        let mut h = OwnedLocalHandle::new(Arc::clone(&q));
        h.enqueue("x".to_string());
        assert_eq!(h.dequeue().as_deref(), Some("x"));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn owned_handles_batch_across_spawned_threads() {
        let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
        let mut producer = OwnedHandle::new(Arc::clone(&q));
        let mut consumer = OwnedHandle::new(Arc::clone(&q));
        let p = std::thread::spawn(move || {
            let vals: Vec<u64> = (1..=1000).collect();
            for chunk in vals.chunks(16) {
                producer.enqueue_batch(chunk);
            }
        });
        let c = std::thread::spawn(move || {
            let mut sum = 0u64;
            let mut got = 0usize;
            let mut out = Vec::new();
            while got < 1000 {
                out.clear();
                got += consumer.dequeue_batch(&mut out, 16);
                sum += out.iter().sum::<u64>();
            }
            sum
        });
        p.join().unwrap();
        assert_eq!(c.join().unwrap(), (1..=1000u64).sum::<u64>());
    }

    #[test]
    fn owned_typed_batch_roundtrip_and_bounce() {
        let q: Arc<WfQueue<String, 4>> = Arc::new(WfQueue::with_config(
            crate::Config::default().with_segment_ceiling(1),
        ));
        let mut h = OwnedLocalHandle::new(Arc::clone(&q));
        let batch: Vec<String> = (0..9).map(|i| format!("o{i}")).collect();
        let Err(Full(back)) = h.try_enqueue_batch(batch.clone()) else {
            panic!("expected Full");
        };
        assert_eq!(back, batch);
        h.enqueue_batch(batch.clone()); // plain batch ignores the gate
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 16), 9);
        assert_eq!(out, batch);
    }

    #[test]
    fn queue_outlives_via_arc_even_after_local_drop() {
        let mut h = {
            let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
            OwnedHandle::new(q) // the only Arc moves in
        };
        h.enqueue(5);
        assert_eq!(h.dequeue(), Some(5));
    }

    #[test]
    fn owned_handles_recycle_nodes() {
        let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
        let n1 = {
            let h = OwnedHandle::new(Arc::clone(&q));
            h.node
        };
        let h2 = OwnedHandle::new(Arc::clone(&q));
        assert_eq!(h2.node, n1);
    }
}
