//! Owned (Arc-backed) handles.
//!
//! [`crate::Handle`] and [`crate::LocalHandle`] borrow the queue, which is
//! perfect with scoped threads but awkward for detached workers. The owned
//! variants bundle an `Arc` of the queue with the registered ring node, so
//! a handle can be moved into a `std::thread::spawn` closure and the queue
//! lives exactly as long as its last user.
//!
//! ```
//! use std::sync::Arc;
//! use wfqueue::WfQueue;
//!
//! let q = Arc::new(WfQueue::new());
//! let mut producer = wfqueue::OwnedLocalHandle::new(Arc::clone(&q));
//! let worker = std::thread::spawn(move || {
//!     producer.enqueue(7u32);
//! });
//! worker.join().unwrap();
//! let mut h = q.handle();
//! assert_eq!(h.dequeue(), Some(7));
//! ```

use std::sync::Arc;

use crate::full::Full;
use crate::handle::HandleNode;
use crate::raw::RawQueue;
use crate::typed::WfQueue;
use crate::DEFAULT_SEGMENT_SIZE;

/// An owning per-thread handle to an `Arc<RawQueue>`.
pub struct OwnedHandle<const N: usize = DEFAULT_SEGMENT_SIZE> {
    queue: Arc<RawQueue<N>>,
    node: *mut HandleNode<N>,
}

// SAFETY: exclusive capability over the node; &mut receivers prevent
// concurrent use; the Arc keeps the queue (and thus the node) alive.
unsafe impl<const N: usize> Send for OwnedHandle<N> {}

impl<const N: usize> OwnedHandle<N> {
    /// Registers a new owned handle on `queue`.
    pub fn new(queue: Arc<RawQueue<N>>) -> Self {
        let node = queue.acquire_node();
        Self { queue, node }
    }

    /// Enqueues `v`. Wait-free. Panics on the reserved patterns
    /// (`0`, `u64::MAX`).
    #[inline]
    pub fn enqueue(&mut self, v: u64) {
        // SAFETY: node is live while the Arc'd queue lives.
        self.queue.enqueue_internal(unsafe { &*self.node }, v);
    }

    /// Enqueues `v`, failing fast with [`Full`] at the segment ceiling
    /// (see [`Handle::try_enqueue`](crate::Handle::try_enqueue)).
    #[inline]
    pub fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
        // SAFETY: node is live while the Arc'd queue lives.
        self.queue.try_enqueue_internal(unsafe { &*self.node }, v)
    }

    /// Dequeues the oldest value, or `None` if observed empty. Wait-free.
    #[inline]
    pub fn dequeue(&mut self) -> Option<u64> {
        // SAFETY: as above.
        self.queue.dequeue_internal(unsafe { &*self.node })
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &Arc<RawQueue<N>> {
        &self.queue
    }
}

impl<const N: usize> Drop for OwnedHandle<N> {
    fn drop(&mut self) {
        self.queue.release_node(self.node);
    }
}

/// An owning per-thread handle to an `Arc<WfQueue<T>>`.
pub struct OwnedLocalHandle<T: Send, const N: usize = DEFAULT_SEGMENT_SIZE> {
    queue: Arc<WfQueue<T, N>>,
    node: *mut HandleNode<N>,
}

// SAFETY: as for OwnedHandle; values are boxed and uniquely owned in
// transit.
unsafe impl<T: Send, const N: usize> Send for OwnedLocalHandle<T, N> {}

impl<T: Send, const N: usize> OwnedLocalHandle<T, N> {
    /// Registers a new owned handle on `queue`.
    pub fn new(queue: Arc<WfQueue<T, N>>) -> Self {
        let node = queue.raw().acquire_node();
        Self { queue, node }
    }

    /// Enqueues `value` at the tail. Wait-free after the box allocation.
    pub fn enqueue(&mut self, value: T) {
        let ptr = Box::into_raw(Box::new(value));
        // SAFETY: node live while the Arc'd queue lives; box pointers
        // avoid both reserved bit patterns.
        self.queue
            .raw()
            .enqueue_internal(unsafe { &*self.node }, ptr as u64);
    }

    /// Enqueues `value`, failing fast with [`Full`] — which hands the
    /// value back — at the segment ceiling (see
    /// [`LocalHandle::try_enqueue`](crate::LocalHandle::try_enqueue)).
    pub fn try_enqueue(&mut self, value: T) -> Result<(), Full<T>> {
        let ptr = Box::into_raw(Box::new(value));
        // SAFETY: node live while the Arc'd queue lives.
        self.queue
            .raw()
            .try_enqueue_internal(unsafe { &*self.node }, ptr as u64)
            .map_err(|Full(())| {
                // SAFETY: the rejected value never entered the queue; the
                // box is still exclusively ours.
                Full(unsafe { *Box::from_raw(ptr as *mut T) })
            })
    }

    /// Dequeues the oldest value, or `None` if observed empty. Wait-free.
    pub fn dequeue(&mut self) -> Option<T> {
        // SAFETY: node live as above.
        self.queue
            .raw()
            .dequeue_internal(unsafe { &*self.node })
            .map(|bits| {
                // SAFETY: unique ownership — see LocalHandle::dequeue.
                unsafe { *Box::from_raw(bits as *mut T) }
            })
    }

    /// The queue this handle operates on.
    pub fn queue(&self) -> &Arc<WfQueue<T, N>> {
        &self.queue
    }
}

impl<T: Send, const N: usize> Drop for OwnedLocalHandle<T, N> {
    fn drop(&mut self) {
        self.queue.raw().release_node(self.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_raw_handle_moves_into_spawned_threads() {
        let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
        let mut producer = OwnedHandle::new(Arc::clone(&q));
        let mut consumer = OwnedHandle::new(Arc::clone(&q));
        let p = std::thread::spawn(move || {
            for v in 1..=1000 {
                producer.enqueue(v);
            }
        });
        let c = std::thread::spawn(move || {
            let mut got = 0u64;
            let mut sum = 0u64;
            while got < 1000 {
                if let Some(v) = consumer.dequeue() {
                    sum += v;
                    got += 1;
                }
            }
            sum
        });
        p.join().unwrap();
        assert_eq!(c.join().unwrap(), (1..=1000u64).sum::<u64>());
    }

    #[test]
    fn owned_typed_handle_roundtrip() {
        let q: Arc<WfQueue<String>> = Arc::new(WfQueue::new());
        let mut h = OwnedLocalHandle::new(Arc::clone(&q));
        h.enqueue("x".to_string());
        assert_eq!(h.dequeue().as_deref(), Some("x"));
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn queue_outlives_via_arc_even_after_local_drop() {
        let mut h = {
            let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
            OwnedHandle::new(q) // the only Arc moves in
        };
        h.enqueue(5);
        assert_eq!(h.dequeue(), Some(5));
    }

    #[test]
    fn owned_handles_recycle_nodes() {
        let q: Arc<RawQueue<64>> = Arc::new(RawQueue::new());
        let n1 = {
            let h = OwnedHandle::new(Arc::clone(&q));
            h.node
        };
        let h2 = OwnedHandle::new(Arc::clone(&q));
        assert_eq!(h2.node, n1);
    }
}
