//! The multi-backend queue interface.
//!
//! [`QueueBackend`] is the production API every queue in this repository —
//! the paper's wait-free queue and all of its rivals — is operated
//! through. It grew out of the benchmark harness's `BenchQueue` trait
//! (which `wfq-baselines` still re-exports under that name): the harness
//! needed a uniform way to drive very different queues, and once bounded
//! mode, batching and telemetry existed on the wait-free queue the uniform
//! surface became the natural *primary* API rather than a bench shim.
//!
//! The trait ships defaults for everything beyond `enqueue`/`dequeue`, so
//! a minimal backend is four items (`Handle`, `NAME`, `new`, `register`)
//! and richer backends override exactly the capabilities they have:
//!
//! | Capability | Default | Overridden by |
//! |---|---|---|
//! | `try_enqueue` (backpressure) | always accepts | WF bounded mode, SCQ/wCQ rings |
//! | batch ops | element loop | WF one-FAA batches |
//! | `stats()` | all-zero | WF, SCQ, wCQ |
//! | `gauges()` | `None` | WF |
//! | `reclaim_hint()` | no-op | WF (hazard-bounded reclamation) |
//!
//! Handles are `&mut self` because every implementation keeps per-thread
//! state (peer cursors, hazard mirrors, stat counters) that must not be
//! shared; the queue itself is the `Sync` object.

use crate::{Full, Gauges, OpSample, QueueStats};

/// A per-thread handle through which a queue backend is operated.
pub trait BackendHandle: Send {
    /// Enqueues `v` (must avoid the implementation's reserved patterns:
    /// use `1 ..= u64::MAX - 2`). On a bounded backend at capacity this
    /// may block until space frees; use [`Self::try_enqueue`] for
    /// backpressure instead.
    fn enqueue(&mut self, v: u64);

    /// Dequeues the oldest value, or `None` if the queue appeared empty.
    fn dequeue(&mut self) -> Option<u64>;

    /// Fallible enqueue: `Err(Full)` hands the value back to the caller
    /// when the backend is at capacity (a bounded ring's fixed capacity,
    /// or the wait-free queue's segment ceiling). The default accepts
    /// unconditionally — correct for every unbounded backend.
    fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
        self.enqueue(v);
        Ok(())
    }

    /// Enqueues every value in `vs` in order. The default is an element
    /// loop; queues with a native batch fast path (one FAA per batch)
    /// override it, so the harness's `--batch` workload compares each
    /// queue's best effort at the same shape.
    fn enqueue_batch(&mut self, vs: &[u64]) {
        for &v in vs {
            self.enqueue(v);
        }
    }

    /// Fallible batch enqueue: all-or-nothing on backends with native
    /// admission (the wait-free queue prices the whole batch up front);
    /// the default loops `try_enqueue` and reports `Full` at the first
    /// rejection, having enqueued the prefix — callers that need strict
    /// all-or-nothing must use a backend that overrides this.
    fn try_enqueue_batch(&mut self, vs: &[u64]) -> Result<(), Full> {
        for &v in vs {
            self.try_enqueue(v)?;
        }
        Ok(())
    }

    /// Dequeues up to `max` values into `out`, returning how many were
    /// appended. The default loops `dequeue` and stops at the first
    /// `None`; native implementations claim the whole run with one FAA.
    fn dequeue_batch(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
        let mut got = 0;
        while got < max {
            match self.dequeue() {
                Some(v) => {
                    out.push(v);
                    got += 1;
                }
                None => break,
            }
        }
        got
    }

    /// Execution-path sample of this handle's most recent single-value
    /// operation, for latency attribution (`wfq_harness::attribution`).
    /// The default reports `None` — correct for every backend without
    /// per-op path instrumentation; the wait-free queue overrides it when
    /// built with the `op-sample` feature.
    fn last_op_sample(&self) -> Option<OpSample> {
        None
    }
}

/// Uniform interface every queue backend implements.
///
/// Implemented by the wait-free queue ([`RawQueue`](crate::RawQueue)),
/// every baseline in `wfq-baselines`, and the SCQ/wCQ bounded rings; the
/// benchmark harness, the differential shadow tests and the examples all
/// drive queues exclusively through this trait.
pub trait QueueBackend: Send + Sync + Sized {
    /// The per-thread handle type.
    type Handle<'q>: BackendHandle
    where
        Self: 'q;

    /// Display name used in reports (matches the paper's legend).
    const NAME: &'static str;

    /// Whether [`with_ceiling`](Self::with_ceiling) actually bounds memory
    /// for this implementation.
    const HONORS_CEILING: bool = false;

    /// Whether the backend has a *fixed* capacity (a bounded ring) rather
    /// than growing on demand. Fixed-capacity backends reject via
    /// [`BackendHandle::try_enqueue`] when full and their plain `enqueue`
    /// may block until space frees.
    const FIXED_CAPACITY: bool = false;

    /// Creates an empty queue.
    fn new() -> Self;

    /// Creates an empty queue bounded to at most `ceiling` live segments,
    /// where the implementation supports it (the wait-free queue's
    /// bounded-memory mode). Backends without a segment ceiling ignore it
    /// — the harness prints which queues honored it.
    fn with_ceiling(ceiling: Option<u64>) -> Self {
        let _ = ceiling;
        Self::new()
    }

    /// Registers the calling thread.
    fn register(&self) -> Self::Handle<'_>;

    /// Aggregate execution-path statistics (the paper's Table 2 taxonomy).
    /// Backends that do not instrument themselves report all-zero; the
    /// SCQ/wCQ rings map their protocol events onto the shared taxonomy
    /// (fast/slow/EMPTY/helped/rejected) so `table2 --backend` renders
    /// every backend through one layout.
    fn stats(&self) -> QueueStats {
        QueueStats::default()
    }

    /// Live operational gauges, where the backend exposes them (`None`
    /// otherwise). Only the wait-free queue currently has the full gauge
    /// set (segments, hazards, help-ring occupancy).
    fn gauges(&self) -> Option<Gauges> {
        None
    }

    /// Reclamation hook: invites the backend to run a garbage/recycling
    /// pass now (the wait-free queue's hazard-bounded segment
    /// reclamation). Purely advisory — a no-op on backends that reclaim
    /// inline (rings reuse slots in place) or not at all. Returns whether
    /// the backend has a reclamation concept wired to this hook.
    fn reclaim_hint(&self) -> bool {
        false
    }
}

mod wf_impl {
    use super::{BackendHandle, QueueBackend};
    use crate::{Config, Full, Gauges, Handle, OpSample, QueueStats, RawQueue};

    impl<const N: usize> BackendHandle for Handle<'_, N> {
        #[inline]
        fn enqueue(&mut self, v: u64) {
            Handle::enqueue(self, v);
        }
        #[inline]
        fn last_op_sample(&self) -> Option<OpSample> {
            Handle::last_op_sample(self)
        }
        #[inline]
        fn dequeue(&mut self) -> Option<u64> {
            Handle::dequeue(self)
        }
        #[inline]
        fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
            Handle::try_enqueue(self, v)
        }
        #[inline]
        fn enqueue_batch(&mut self, vs: &[u64]) {
            Handle::enqueue_batch(self, vs);
        }
        #[inline]
        fn try_enqueue_batch(&mut self, vs: &[u64]) -> Result<(), Full> {
            Handle::try_enqueue_batch(self, vs)
        }
        #[inline]
        fn dequeue_batch(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
            Handle::dequeue_batch(self, out, max)
        }
    }

    impl<const N: usize> QueueBackend for RawQueue<N> {
        type Handle<'q> = Handle<'q, N>;
        const NAME: &'static str = "WF-10";
        const HONORS_CEILING: bool = true;
        fn new() -> Self {
            RawQueue::with_config(Config::wf10())
        }
        fn with_ceiling(ceiling: Option<u64>) -> Self {
            let mut config = Config::wf10();
            if let Some(c) = ceiling {
                config = config.with_segment_ceiling(c);
            }
            RawQueue::with_config(config)
        }
        fn register(&self) -> Self::Handle<'_> {
            RawQueue::register(self)
        }
        fn stats(&self) -> QueueStats {
            RawQueue::stats(self)
        }
        fn gauges(&self) -> Option<Gauges> {
            Some(RawQueue::gauges(self))
        }
        fn reclaim_hint(&self) -> bool {
            // Reclamation is driven by the queue's own boundary-crossing
            // elections (and, in bounded mode, enqueuer-forced passes);
            // the hook reports the capability without forcing a pass.
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RawQueue;

    /// A minimal backend: only the four required items, everything else
    /// from trait defaults. Pins the compile contract the refactor
    /// promises ("every existing baseline keeps compiling").
    struct Minimal(std::sync::Mutex<std::collections::VecDeque<u64>>);
    struct MinimalHandle<'q>(&'q Minimal);

    impl BackendHandle for MinimalHandle<'_> {
        fn enqueue(&mut self, v: u64) {
            self.0 .0.lock().unwrap().push_back(v);
        }
        fn dequeue(&mut self) -> Option<u64> {
            self.0 .0.lock().unwrap().pop_front()
        }
    }

    impl QueueBackend for Minimal {
        type Handle<'q> = MinimalHandle<'q>;
        const NAME: &'static str = "MINIMAL";
        fn new() -> Self {
            Minimal(std::sync::Mutex::new(std::collections::VecDeque::new()))
        }
        fn register(&self) -> Self::Handle<'_> {
            MinimalHandle(self)
        }
    }

    #[test]
    fn defaults_give_a_full_api_from_enqueue_and_dequeue() {
        let q = Minimal::new();
        let mut h = q.register();
        h.try_enqueue(1).unwrap();
        h.enqueue_batch(&[2, 3]);
        h.try_enqueue_batch(&[4, 5]).unwrap();
        let mut out = Vec::new();
        assert_eq!(h.dequeue_batch(&mut out, 8), 5);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert_eq!(q.stats(), QueueStats::default());
        assert!(q.gauges().is_none());
        assert!(!q.reclaim_hint());
        assert!(!Minimal::HONORS_CEILING);
        assert!(!Minimal::FIXED_CAPACITY);
    }

    #[test]
    fn wf_backend_exposes_stats_and_gauges_through_the_trait() {
        let q = <RawQueue as QueueBackend>::new();
        let mut h = q.register();
        BackendHandle::enqueue(&mut h, 7);
        assert_eq!(BackendHandle::dequeue(&mut h), Some(7));
        drop(h);
        let s = QueueBackend::stats(&q);
        assert_eq!(s.enq_fast + s.enq_slow, 1);
        let g = QueueBackend::gauges(&q).expect("WF exposes gauges");
        assert_eq!(g.tail_index, 1);
        assert!(q.reclaim_hint());
    }

    #[test]
    fn wf_with_ceiling_bounds_through_the_trait() {
        let q = <RawQueue<16> as QueueBackend>::with_ceiling(Some(2));
        let mut h = q.register();
        let mut rejected = false;
        for v in 1..=16 * 4_u64 {
            if h.try_enqueue(v).is_err() {
                rejected = true;
                break;
            }
        }
        assert!(rejected, "segment ceiling ignored through the trait");
    }
}
