//! Tunable parameters of the queue.

/// Configuration for a [`crate::RawQueue`] / [`crate::WfQueue`].
///
/// The defaults are the paper's evaluation configuration: `PATIENCE = 10`
/// ("WF-10") and an automatic `MAX_GARBAGE` of twice the number of
/// registered handles (the authors' released C code uses `2 * nprocs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Config {
    /// Number of *extra* fast-path attempts before an operation falls back
    /// to the wait-free slow path. `0` reproduces the paper's "WF-0"
    /// variant: one fast-path attempt, then the slow path.
    pub patience: u32,
    /// Number of retired segments allowed to accumulate before a dequeuer
    /// attempts reclamation. `None` selects `max(2 × live handles, 4)`
    /// at each cleanup, matching the author's C implementation.
    pub max_garbage: Option<u64>,
    /// Bounded-memory mode: the advisory cap on the number of segments the
    /// queue may own at once (chain + recycling pool + per-handle spares).
    /// `None` (the default) is the paper's unbounded behavior. See
    /// [`Config::with_segment_ceiling`].
    pub segment_ceiling: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            patience: crate::DEFAULT_PATIENCE,
            max_garbage: None,
            segment_ceiling: None,
        }
    }
}

impl Config {
    /// The paper's WF-10 configuration (default).
    pub fn wf10() -> Self {
        Self::default()
    }

    /// The paper's WF-0 configuration: every operation tries the fast path
    /// once, then immediately enlists helpers. Used to stress the slow path
    /// and to lower-bound throughput (§5).
    pub fn wf0() -> Self {
        Self {
            patience: 0,
            ..Self::default()
        }
    }

    /// Sets the fast-path patience.
    pub fn with_patience(mut self, patience: u32) -> Self {
        self.patience = patience;
        self
    }

    /// Sets a fixed reclamation threshold (in segments).
    pub fn with_max_garbage(mut self, segments: u64) -> Self {
        self.max_garbage = Some(segments.max(1));
        self
    }

    /// Enables bounded-memory mode with an advisory ceiling of `segments`
    /// segments (each `N × size_of::<Cell>()` bytes, 24 KiB at the default
    /// N = 1024).
    ///
    /// Reclaimed segments are recycled through a lock-free pool instead of
    /// freed, fresh allocation stops at the ceiling, and the `try_enqueue`
    /// family reports [`Full`](crate::Full) when no headroom can be
    /// recovered. The ceiling is **advisory per thread**: operations
    /// already past their index FAA may overshoot it by one segment each
    /// rather than block (exactness would require dequeuers to block
    /// enqueuers — Aksenov et al.'s lower bound; see DESIGN.md §9). Plain
    /// `enqueue` ignores the admission gate entirely and keeps the paper's
    /// semantics, growing past the ceiling only through the same bounded
    /// overshoot path.
    ///
    /// The queue always admits at least `(segments − 1) × N` undequeued
    /// values before reporting `Full`; clamped to a minimum of 1 segment.
    pub fn with_segment_ceiling(mut self, segments: u64) -> Self {
        self.segment_ceiling = Some(segments.max(1));
        self
    }

    /// Resolves the reclamation threshold given the current handle count.
    pub(crate) fn garbage_threshold(&self, handles: u64) -> u64 {
        self.max_garbage.unwrap_or_else(|| (2 * handles).max(4))
    }

    /// Segment demand of a `k`-cell batch claim against `segment_size`-cell
    /// segments: ⌈k / segment_size⌉. This is what the batch admission gate
    /// (`try_enqueue_batch`) demands as headroom before the claiming FAA —
    /// the worst case is one more when the claim straddles a segment
    /// boundary, which the gate deliberately ignores: the ceiling is
    /// advisory and that overshoot is already bounded per thread (see
    /// [`Config::with_segment_ceiling`]).
    pub(crate) fn batch_segments(k: u64, segment_size: u64) -> u64 {
        debug_assert!(segment_size > 0);
        k.div_ceil(segment_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_wf10() {
        assert_eq!(Config::default().patience, 10);
        assert_eq!(Config::default(), Config::wf10());
    }

    #[test]
    fn wf0_has_zero_patience() {
        assert_eq!(Config::wf0().patience, 0);
    }

    #[test]
    fn auto_garbage_scales_with_handles() {
        let c = Config::default();
        assert_eq!(c.garbage_threshold(8), 16);
        assert_eq!(c.garbage_threshold(1), 4, "floor of 4");
        assert_eq!(c.garbage_threshold(0), 4);
    }

    #[test]
    fn fixed_garbage_overrides_and_clamps() {
        assert_eq!(Config::default().with_max_garbage(7).garbage_threshold(100), 7);
        assert_eq!(Config::default().with_max_garbage(0).garbage_threshold(100), 1);
    }

    #[test]
    fn builder_chains() {
        let c = Config::wf0()
            .with_patience(3)
            .with_max_garbage(9)
            .with_segment_ceiling(12);
        assert_eq!(c.patience, 3);
        assert_eq!(c.max_garbage, Some(9));
        assert_eq!(c.segment_ceiling, Some(12));
    }

    #[test]
    fn batch_segment_demand_is_a_ceiling_division() {
        assert_eq!(Config::batch_segments(1, 1024), 1);
        assert_eq!(Config::batch_segments(1024, 1024), 1);
        assert_eq!(Config::batch_segments(1025, 1024), 2);
        assert_eq!(Config::batch_segments(8, 4), 2);
        assert_eq!(Config::batch_segments(0, 1024), 0, "empty batch: no demand");
    }

    #[test]
    fn default_is_unbounded() {
        assert_eq!(Config::default().segment_ceiling, None);
    }

    #[test]
    fn segment_ceiling_clamps_to_one() {
        assert_eq!(
            Config::default().with_segment_ceiling(0).segment_ceiling,
            Some(1)
        );
    }
}
