//! Per-thread handles and the handle ring (paper Listing 2, `struct Handle`).
//!
//! Every thread operating on the queue owns a *handle node* carrying:
//!
//! - `head` / `tail`: segment pointers used to find cells without touching
//!   shared queue state (contention avoidance, §3.3). A reclamation pass may
//!   CAS a lagging thread's pointers forward so an idle thread cannot pin
//!   garbage ("Update head and tail pointers", §3.6).
//! - one [`EnqReq`] and one [`DeqReq`], reused across the thread's slow-path
//!   operations;
//! - `enq_peer` / `deq_peer`: the round-robin position in the helping scheme
//!   (Invariants 3 and 13);
//! - `hzd_id`: the published hazard, expressed as a **segment id** rather
//!   than a pointer. The authors' released C code does the same
//!   (`hzd_node_id`): a cleaner must never dereference another thread's
//!   hazard, because the hazard may be stale; comparing ids is always safe.
//!   `head_seg_id` / `tail_seg_id` are the owner-maintained mirrors the
//!   hazard is published *from* — they may lag the true pointers (a cleaner
//!   may have advanced them), which only makes the published hazard more
//!   conservative.
//!
//! All nodes ever registered are linked into a **ring** via `next`, which
//! helpers traverse round-robin. Nodes are never unlinked: a dropped
//! [`crate::Handle`] parks its node in a free pool for reuse by a future
//! registration (its requests are idle, so helpers skip it), and all nodes
//! are freed when the queue itself drops. This preserves the property the
//! helping scheme relies on: a peer pointer, once read, is valid forever.

use core::sync::atomic::{AtomicBool, AtomicI64, AtomicPtr, AtomicU64, Ordering};

use crate::request::{DeqReq, EnqReq};
use crate::segment::Segment;
use crate::stats::HandleStats;

/// Published hazard value meaning "no operation in flight".
pub(crate) const NO_HAZARD: i64 = -1;

/// A node in the handle ring. Shared: fields are atomics even where only
/// the owner writes, so cleaners and helpers can read them race-free.
pub(crate) struct HandleNode<const N: usize> {
    /// Segment pointer used for enqueues (paper `Handle.tail`).
    pub tail: AtomicPtr<Segment<N>>,
    /// Segment pointer used for dequeues (paper `Handle.head`).
    pub head: AtomicPtr<Segment<N>>,
    /// Next handle in the ring.
    pub next: AtomicPtr<HandleNode<N>>,
    /// Hazard: id of the oldest segment this thread may dereference, or
    /// [`NO_HAZARD`] when idle (paper `Handle.hzdp`, id form).
    pub hzd_id: AtomicI64,
    /// Owner mirror of `(*tail).id`, maintained at operation epilogue.
    pub tail_seg_id: AtomicU64,
    /// Owner mirror of `(*head).id`.
    pub head_seg_id: AtomicU64,
    /// This thread's enqueue help request.
    pub enq_req: EnqReq,
    /// This thread's dequeue help request.
    pub deq_req: DeqReq,
    /// Enqueue peer (owner-local; paper `Handle.enq.peer`).
    pub enq_peer: AtomicPtr<HandleNode<N>>,
    /// Pending peer-request id being helped (owner-local, 0 = none; paper
    /// `Handle.enq.id`).
    pub enq_help_id: AtomicU64,
    /// Dequeue peer (owner-local; paper `Handle.deq.peer`).
    pub deq_peer: AtomicPtr<HandleNode<N>>,
    /// Whether a live [`crate::Handle`] currently owns this node.
    pub active: AtomicBool,
    /// A spare, never-published segment kept for the next list extension
    /// (the authors' C code keeps `th->spare` for the same reason: the
    /// loser of a `find_cell` publication race recycles its segment
    /// instead of freeing it, and the winner's next extension skips the
    /// allocator entirely). Owner-local.
    pub spare: AtomicPtr<Segment<N>>,
    /// Path counters (Table 2).
    pub stats: HandleStats,
    /// Execution-path sample of the owner's most recent single-value
    /// operation (feature `op-sample`; see `crate::sample`). A plain
    /// `Cell` is sound here even though nodes are shared: only the owning
    /// thread ever touches this field, and nothing else is derived from it.
    #[cfg(feature = "op-sample")]
    pub last_sample: core::cell::Cell<Option<crate::sample::OpSample>>,
}

impl<const N: usize> HandleNode<N> {
    /// Creates a detached node whose pointers all target `seg` and whose
    /// ring/peer pointers point at itself (patched during registration).
    /// `slot` is the node's ordinal, stored on the enqueue request as its
    /// durable request-record slot.
    pub fn boxed(seg: *mut Segment<N>, seg_id: u64, slot: u64) -> *mut HandleNode<N> {
        let node = Box::into_raw(Box::new(HandleNode {
            tail: AtomicPtr::new(seg),
            head: AtomicPtr::new(seg),
            next: AtomicPtr::new(core::ptr::null_mut()),
            hzd_id: AtomicI64::new(NO_HAZARD),
            tail_seg_id: AtomicU64::new(seg_id),
            head_seg_id: AtomicU64::new(seg_id),
            enq_req: EnqReq::new(),
            deq_req: DeqReq::new(),
            enq_peer: AtomicPtr::new(core::ptr::null_mut()),
            enq_help_id: AtomicU64::new(0),
            deq_peer: AtomicPtr::new(core::ptr::null_mut()),
            active: AtomicBool::new(true),
            spare: AtomicPtr::new(core::ptr::null_mut()),
            stats: HandleStats::default(),
            #[cfg(feature = "op-sample")]
            last_sample: core::cell::Cell::new(None),
        }));
        // Self-loops until spliced into the ring.
        // SAFETY: `node` was just allocated and is exclusively owned.
        unsafe {
            (*node).enq_req.slot.store(slot, Ordering::Relaxed);
            (*node).next.store(node, Ordering::Relaxed);
            (*node).enq_peer.store(node, Ordering::Relaxed);
            (*node).deq_peer.store(node, Ordering::Relaxed);
        }
        node
    }

    /// The ring successor. Never null after registration.
    #[inline]
    pub fn next_node(&self) -> *mut HandleNode<N> {
        self.next.load(Ordering::Acquire)
    }

    /// Publishes this thread's hazard and issues the store-load fence the
    /// reclamation protocol requires (§3.6 "Overhead"; we always emit the
    /// fence rather than relying on x86's FAA side effect, which keeps the
    /// implementation sound under the portable memory model).
    #[inline]
    pub fn publish_hazard(&self, seg_id: i64) {
        self.hzd_id.store(seg_id, Ordering::SeqCst);
        core::sync::atomic::fence(Ordering::SeqCst);
    }

    /// Clears the hazard at operation epilogue.
    #[inline]
    pub fn clear_hazard(&self) {
        self.hzd_id.store(NO_HAZARD, Ordering::Release);
    }
}

/// Registry of all nodes ever created for a queue: the ring anchor, the
/// free pool for handle recycling, and the master list used on queue drop.
pub(crate) struct Registry<const N: usize> {
    /// Every node ever allocated (owned; freed on queue drop).
    pub all: Vec<*mut HandleNode<N>>,
    /// Inactive nodes available for reuse.
    pub free: Vec<*mut HandleNode<N>>,
}

impl<const N: usize> Registry<N> {
    pub fn new() -> Self {
        Self {
            all: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Splices `node` into the ring after the anchor (the first node).
    ///
    /// Caller must hold the registry lock *and* the reclamation token (see
    /// `RawQueue::register`), which together exclude concurrent splices and
    /// concurrent cleanup traversals.
    pub fn splice(&mut self, node: *mut HandleNode<N>) {
        if let Some(&anchor) = self.all.first() {
            // SAFETY: anchor and node are live (owned by `all` / just made);
            // order matters: node.next must be set before node is published
            // via anchor.next so ring readers always see a closed ring.
            unsafe {
                let succ = (*anchor).next.load(Ordering::Acquire);
                (*node).next.store(succ, Ordering::Relaxed);
                (*node).enq_peer.store(succ, Ordering::Relaxed);
                (*node).deq_peer.store(succ, Ordering::Relaxed);
                (*anchor).next.store(node, Ordering::Release);
            }
        }
        self.all.push(node);
    }
}

// SAFETY: the raw node pointers are owned by the queue and only mutated
// under the registry lock + reclamation token discipline.
unsafe impl<const N: usize> Send for Registry<N> {}

#[cfg(test)]
mod tests {
    use super::*;

    type Node = HandleNode<64>;

    fn free_nodes(reg: Registry<64>) {
        for &n in &reg.all {
            // SAFETY: test-owned nodes, no other references remain.
            unsafe { drop(Box::from_raw(n)) };
        }
    }

    #[test]
    fn fresh_node_self_loops() {
        let seg = Segment::<64>::alloc(0);
        let n = Node::boxed(seg, 0, 0);
        unsafe {
            assert_eq!((*n).next_node(), n);
            assert_eq!((*n).enq_peer.load(Ordering::Relaxed), n);
            assert_eq!((*n).hzd_id.load(Ordering::Relaxed), NO_HAZARD);
            drop(Box::from_raw(n));
            Segment::<64>::dealloc(seg);
        }
    }

    #[test]
    fn splice_builds_a_closed_ring() {
        let seg = Segment::<64>::alloc(0);
        let mut reg = Registry::<64>::new();
        let nodes: Vec<_> = (0..4).map(|_| Node::boxed(seg, 0, 0)).collect();
        for &n in &nodes {
            reg.splice(n);
        }
        // Walk the ring from each node: must visit all 4 and return.
        for &start in &nodes {
            let mut seen = 0;
            let mut cur = start;
            loop {
                seen += 1;
                // SAFETY: nodes are live.
                cur = unsafe { (*cur).next_node() };
                if cur == start {
                    break;
                }
                assert!(seen <= 4, "ring is not closed");
            }
            assert_eq!(seen, 4);
        }
        free_nodes(reg);
        unsafe { Segment::<64>::dealloc(seg) };
    }

    #[test]
    fn hazard_publish_and_clear() {
        let seg = Segment::<64>::alloc(0);
        let n = Node::boxed(seg, 0, 0);
        unsafe {
            (*n).publish_hazard(5);
            assert_eq!((*n).hzd_id.load(Ordering::SeqCst), 5);
            (*n).clear_hazard();
            assert_eq!((*n).hzd_id.load(Ordering::SeqCst), NO_HAZARD);
            drop(Box::from_raw(n));
            Segment::<64>::dealloc(seg);
        }
    }

    #[test]
    fn peers_initialized_to_ring_successor() {
        let seg = Segment::<64>::alloc(0);
        let mut reg = Registry::<64>::new();
        let a = Node::boxed(seg, 0, 0);
        let b = Node::boxed(seg, 0, 0);
        reg.splice(a);
        reg.splice(b);
        unsafe {
            // b was spliced after anchor a, so b's successor is a.
            assert_eq!((*b).next_node(), a);
            assert_eq!((*b).enq_peer.load(Ordering::Relaxed), a);
            assert_eq!((*b).deq_peer.load(Ordering::Relaxed), a);
        }
        free_nodes(reg);
        unsafe { Segment::<64>::dealloc(seg) };
    }
}
