//! The durable image: persist stores, crash snapshots, and recovery
//! (DESIGN.md §12, feature `durable`).
//!
//! The persistent image is a flat array of 64-bit words — a header, one
//! record per slow-path request slot, and one record per cell:
//!
//! ```text
//! [0] magic  [1] version  [2] cells  [3] slots  [4] generation
//! [5] tail high-water  [6] head high-water  [7] retired-below
//! then `slots` request records:  (state, value, index)
//! then `cells` cell records:     (state, value)
//! ```
//!
//! Cell states form a monotone lattice `EMPTY < DEPOSITED < CONSUMED <
//! SEALED` advanced with `fetch_max`, so racing persists (a helper and a
//! requester mirroring the same commit, a consume landing before its
//! deposit's persist) are idempotent and can never move a cell backward.
//! Within a record the *state* word is written last with release ordering
//! and read first with acquire ordering, so a snapshot that observes a
//! state also observes the value/index written before it — a mid-crash
//! snapshot can contain *missing* records, never *torn* ones.
//!
//! Recovery ([`RawQueue::recover`]) is the detectable-recovery argument of
//! the memento/wCQ line of work specialized to this queue: the image alone
//! decides each pre-crash enqueue's fate. A persisted `CONSUMED` record is
//! a delivery that already happened; a persisted `DEPOSITED` record is an
//! undelivered value that must survive; a `CLAIMED` request record whose
//! cell is still `EMPTY` is the claimed-but-uncommitted window of the help
//! protocol and is re-completed from the request record (the paper's
//! idempotent help machinery is what makes the re-completion safe to run
//! against a half-finished image); anything else — a published-but-
//! unclaimed request, a value whose deposit never persisted — is provably
//! rejected: no durable trace, no delivery.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::config::Config;
use crate::persist::PersistSink;
use crate::raw::RawQueue;

/// `b"WFQDURA1"` as a little-endian word.
const MAGIC: u64 = u64::from_le_bytes(*b"WFQDURA1");
/// Image format version; bump on any layout change.
const VERSION: u64 = 1;

const HDR_WORDS: u64 = 8;
const W_MAGIC: u64 = 0;
const W_VERSION: u64 = 1;
const W_CELLS: u64 = 2;
const W_SLOTS: u64 = 3;
const W_GENERATION: u64 = 4;
const W_TAIL_HWM: u64 = 5;
const W_HEAD_HWM: u64 = 6;
const W_RETIRED: u64 = 7;

const REQ_WORDS: u64 = 3;
const CELL_WORDS: u64 = 2;

/// Request-record states.
const REQ_IDLE: u64 = 0;
const REQ_PUBLISHED: u64 = 1;
const REQ_CLAIMED: u64 = 2;

/// Durable state of one cell in the image's monotone lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u64)]
pub enum CellState {
    /// No durable trace: never deposited, or the deposit persist was cut.
    Empty = 0,
    /// A value is durably present and undelivered.
    Deposited = 1,
    /// The value was durably delivered to a dequeuer.
    Consumed = 2,
    /// Recovery sealed this cell: it was torn (below the tail high-water
    /// mark with no durable deposit) and can never deliver a value.
    Sealed = 3,
}

impl CellState {
    fn from_word(w: u64) -> CellState {
        match w {
            1 => CellState::Deposited,
            2 => CellState::Consumed,
            3 => CellState::Sealed,
            _ => CellState::Empty,
        }
    }
}

fn image_words(cells: u64, slots: u64) -> u64 {
    HDR_WORDS + slots * REQ_WORDS + cells * CELL_WORDS
}

/// The shared record logic over any word array (mmap'd or heap).
struct Records<'a> {
    words: &'a [AtomicU64],
    cells: u64,
    slots: u64,
}

impl Records<'_> {
    #[inline]
    fn word(&self, i: u64) -> &AtomicU64 {
        &self.words[i as usize]
    }

    #[inline]
    fn req(&self, slot: u64) -> (&AtomicU64, &AtomicU64, &AtomicU64) {
        assert!(
            slot < self.slots,
            "persist store: request slot {slot} exceeds capacity {} \
             (create the store with at least as many slots as handles ever registered)",
            self.slots
        );
        let base = HDR_WORDS + slot * REQ_WORDS;
        (self.word(base), self.word(base + 1), self.word(base + 2))
    }

    #[inline]
    fn cell(&self, cell: u64) -> (&AtomicU64, &AtomicU64) {
        assert!(
            cell < self.cells,
            "persist store: cell index {cell} exceeds capacity {} \
             (create the store with headroom for burned cells, not just values)",
            self.cells
        );
        let base = HDR_WORDS + self.slots * REQ_WORDS + cell * CELL_WORDS;
        (self.word(base), self.word(base + 1))
    }

    fn init_header(&self, cells: u64, slots: u64) {
        self.word(W_CELLS).store(cells, Ordering::Relaxed);
        self.word(W_SLOTS).store(slots, Ordering::Relaxed);
        self.word(W_VERSION).store(VERSION, Ordering::Relaxed);
        // Magic last, release: an opener that sees it sees the geometry.
        self.word(W_MAGIC).store(MAGIC, Ordering::Release);
    }

    fn deposit(&self, cell: u64, value: u64) {
        let (state, val) = self.cell(cell);
        val.store(value, Ordering::Relaxed);
        // Release on the state advance: a snapshot reading the state with
        // acquire is guaranteed the value store above. fetch_max keeps a
        // racing consume (CONSUMED = 2) from being demoted.
        state.fetch_max(CellState::Deposited as u64, Ordering::AcqRel);
    }

    fn consume(&self, cell: u64, value: u64) {
        let (state, val) = self.cell(cell);
        val.store(value, Ordering::Relaxed);
        state.fetch_max(CellState::Consumed as u64, Ordering::AcqRel);
    }

    fn advance_tail(&self, to: u64) {
        self.word(W_TAIL_HWM).fetch_max(to, Ordering::AcqRel);
    }

    fn advance_head(&self, to: u64) {
        self.word(W_HEAD_HWM).fetch_max(to, Ordering::AcqRel);
    }

    fn enq_publish(&self, slot: u64, value: u64) {
        let (state, val, index) = self.req(slot);
        index.store(0, Ordering::Relaxed);
        val.store(value, Ordering::Relaxed);
        state.store(REQ_PUBLISHED, Ordering::Release);
    }

    fn enq_claim(&self, slot: u64, value: u64, cell: u64) {
        let (state, val, index) = self.req(slot);
        index.store(cell, Ordering::Relaxed);
        val.store(value, Ordering::Relaxed);
        state.store(REQ_CLAIMED, Ordering::Release);
    }

    fn retire_below(&self, cell: u64) {
        self.word(W_RETIRED).fetch_max(cell, Ordering::AcqRel);
    }

    /// Copies the live words into an owned [`StoreImage`] — the crash
    /// snapshot. Runs on the crashing thread inside the crash observer;
    /// concurrent writers may race the copy, which yields missing (never
    /// torn) records: each record's state word is read *first* with
    /// acquire, so an observed state implies its value/index.
    fn snapshot(&self) -> StoreImage {
        let n = self.words.len();
        let mut words = vec![0u64; n];
        for (hdr, w) in words.iter_mut().enumerate().take(HDR_WORDS as usize) {
            *w = self.word(hdr as u64).load(Ordering::Acquire);
        }
        for slot in 0..self.slots {
            let (state, val, index) = self.req(slot);
            let base = (HDR_WORDS + slot * REQ_WORDS) as usize;
            words[base] = state.load(Ordering::Acquire);
            words[base + 1] = val.load(Ordering::Relaxed);
            words[base + 2] = index.load(Ordering::Relaxed);
        }
        for cell in 0..self.cells {
            let (state, val) = self.cell(cell);
            let base = (HDR_WORDS + self.slots * REQ_WORDS + cell * CELL_WORDS) as usize;
            words[base] = state.load(Ordering::Acquire);
            words[base + 1] = val.load(Ordering::Relaxed);
        }
        StoreImage { words }
    }

    /// Zeroes every record and high-water mark and bumps the generation.
    /// Single-threaded by contract: runs between a crash (or clean stop)
    /// and the replay of survivors, never under concurrent traffic.
    fn begin_generation(&self) -> u64 {
        let gen = self.word(W_GENERATION).fetch_add(1, Ordering::AcqRel) + 1;
        self.word(W_TAIL_HWM).store(0, Ordering::Relaxed);
        self.word(W_HEAD_HWM).store(0, Ordering::Relaxed);
        self.word(W_RETIRED).store(0, Ordering::Relaxed);
        for w in &self.words[HDR_WORDS as usize..] {
            w.store(0, Ordering::Relaxed);
        }
        gen
    }
}

// ---------------------------------------------------------------------
// MemStore: the record layout over anonymous memory (tests, snapshots).
// ---------------------------------------------------------------------

/// A [`PersistSink`] over anonymous memory: the exact record layout of
/// [`HeapFileStore`] without a backing file. The crash-matrix tests use it
/// because a simulated crash only needs the *image semantics* — the words
/// survive in-process — while the heap-file store is for demonstrating
/// recovery across a real process kill.
pub struct MemStore {
    words: Box<[AtomicU64]>,
    cells: u64,
    slots: u64,
}

impl MemStore {
    /// Creates a zeroed store with capacity for `cells` cell records and
    /// `slots` request records. `cells` bounds the *index space* (burned
    /// and probed cells included), not the number of live values.
    pub fn new(cells: u64, slots: u64) -> MemStore {
        let n = image_words(cells, slots) as usize;
        let words: Box<[AtomicU64]> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let s = MemStore {
            words,
            cells,
            slots,
        };
        s.records().init_header(cells, slots);
        s
    }

    fn records(&self) -> Records<'_> {
        Records {
            words: &self.words,
            cells: self.cells,
            slots: self.slots,
        }
    }

    /// An owned copy of the image at this instant (the crash snapshot).
    pub fn snapshot(&self) -> StoreImage {
        self.records().snapshot()
    }

    /// Clears every record for a new generation (post-recovery replay).
    pub fn begin_generation(&self) -> u64 {
        self.records().begin_generation()
    }
}

impl PersistSink for MemStore {
    fn deposit(&self, cell: u64, value: u64) {
        self.records().deposit(cell, value);
    }
    fn consume(&self, cell: u64, value: u64) {
        self.records().consume(cell, value);
    }
    fn advance_tail(&self, to: u64) {
        self.records().advance_tail(to);
    }
    fn advance_head(&self, to: u64) {
        self.records().advance_head(to);
    }
    fn enq_publish(&self, slot: u64, value: u64) {
        self.records().enq_publish(slot, value);
    }
    fn enq_claim(&self, slot: u64, value: u64, cell: u64) {
        self.records().enq_claim(slot, value, cell);
    }
    fn retire_below(&self, cell: u64) {
        self.records().retire_below(cell);
    }
    fn flush(&self) {}
}

// ---------------------------------------------------------------------
// HeapFileStore: the same layout over an mmap'd file (PM emulation).
// ---------------------------------------------------------------------

#[cfg(unix)]
mod mm {
    //! Minimal mmap FFI (the workspace links no external crates; these are
    //! the three libc symbols the store needs, declared directly).
    #![allow(non_camel_case_types)]

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_SHARED: i32 = 0x01;
    pub const MS_SYNC: i32 = 4;

    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
        pub fn msync(addr: *mut u8, len: usize, flags: i32) -> i32;
    }
}

/// A [`PersistSink`] backed by an mmap'd heap file — persistent-memory
/// emulation on DRAM + disk, as ROADMAP item 5 calls for. The record
/// layout is the module's flat word image, accessed through `&AtomicU64`
/// views of the mapping, so the same `fetch_max` idempotence discipline
/// applies; [`PersistSink::flush`] issues `msync(MS_SYNC)`.
///
/// The file outlives the process: [`HeapFileStore::open`] on the same
/// path after a kill recovers the image (see `examples/crash_recovery.rs`
/// for the kill-and-recover demonstration).
#[cfg(unix)]
pub struct HeapFileStore {
    ptr: *mut AtomicU64,
    len_bytes: usize,
    cells: u64,
    slots: u64,
    _file: std::fs::File,
}

// SAFETY: the mapping is plain shared memory accessed exclusively through
// atomics; the raw pointer is never aliased mutably.
#[cfg(unix)]
unsafe impl Send for HeapFileStore {}
#[cfg(unix)]
unsafe impl Sync for HeapFileStore {}

#[cfg(unix)]
impl HeapFileStore {
    /// Creates (or truncates) the heap file at `path` sized for `cells`
    /// cell records and `slots` request records, and maps it shared.
    pub fn create(path: &std::path::Path, cells: u64, slots: u64) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let len_bytes = (image_words(cells, slots) as usize) * 8;
        file.set_len(len_bytes as u64)?;
        let s = Self::map(file, len_bytes, cells, slots)?;
        s.records().init_header(cells, slots);
        s.flush();
        Ok(s)
    }

    /// Maps an existing heap file, validating its magic, version, and
    /// size. This is the recovery entry point after a crash or kill.
    pub fn open(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
        let len_bytes = file.metadata()?.len() as usize;
        if len_bytes < (HDR_WORDS as usize) * 8 || len_bytes % 8 != 0 {
            return Err(bad_image(format!("heap file too short: {len_bytes} bytes")));
        }
        // Map first, then read the header through the mapping.
        let probe = Self::map(file, len_bytes, 0, 0)?;
        let magic = probe.word_at(W_MAGIC);
        if magic != MAGIC {
            return Err(bad_image(format!("bad magic {magic:#x}")));
        }
        let version = probe.word_at(W_VERSION);
        if version != VERSION {
            return Err(bad_image(format!("unsupported image version {version}")));
        }
        let cells = probe.word_at(W_CELLS);
        let slots = probe.word_at(W_SLOTS);
        if image_words(cells, slots) as usize * 8 != len_bytes {
            return Err(bad_image(format!(
                "geometry mismatch: header says {cells} cells / {slots} slots, file is {len_bytes} bytes"
            )));
        }
        let mut s = probe;
        s.cells = cells;
        s.slots = slots;
        Ok(s)
    }

    fn map(file: std::fs::File, len_bytes: usize, cells: u64, slots: u64) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh shared file mapping of a file we hold open; the
        // kernel keeps the mapping valid for the store's lifetime.
        let ptr = unsafe {
            mm::mmap(
                core::ptr::null_mut(),
                len_bytes,
                mm::PROT_READ | mm::PROT_WRITE,
                mm::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(HeapFileStore {
            ptr: ptr.cast::<AtomicU64>(),
            len_bytes,
            cells,
            slots,
            _file: file,
        })
    }

    #[inline]
    fn word_at(&self, i: u64) -> u64 {
        self.words()[i as usize].load(Ordering::Acquire)
    }

    fn words(&self) -> &[AtomicU64] {
        // SAFETY: the mapping is len_bytes of zero-initialized (or
        // previously written) page-aligned memory, valid for the store's
        // lifetime; AtomicU64 has no invalid bit patterns.
        unsafe { core::slice::from_raw_parts(self.ptr, self.len_bytes / 8) }
    }

    fn records(&self) -> Records<'_> {
        Records {
            words: self.words(),
            cells: self.cells,
            slots: self.slots,
        }
    }

    /// An owned copy of the image at this instant.
    pub fn snapshot(&self) -> StoreImage {
        self.records().snapshot()
    }

    /// Clears every record for a new generation (post-recovery replay).
    pub fn begin_generation(&self) -> u64 {
        let gen = self.records().begin_generation();
        self.flush();
        gen
    }
}

#[cfg(unix)]
impl PersistSink for HeapFileStore {
    fn deposit(&self, cell: u64, value: u64) {
        self.records().deposit(cell, value);
    }
    fn consume(&self, cell: u64, value: u64) {
        self.records().consume(cell, value);
    }
    fn advance_tail(&self, to: u64) {
        self.records().advance_tail(to);
    }
    fn advance_head(&self, to: u64) {
        self.records().advance_head(to);
    }
    fn enq_publish(&self, slot: u64, value: u64) {
        self.records().enq_publish(slot, value);
    }
    fn enq_claim(&self, slot: u64, value: u64, cell: u64) {
        self.records().enq_claim(slot, value, cell);
    }
    fn retire_below(&self, cell: u64) {
        self.records().retire_below(cell);
    }
    fn flush(&self) {
        // SAFETY: flushing the exact mapping created in `map`.
        let rc = unsafe { mm::msync(self.ptr.cast::<u8>(), self.len_bytes, mm::MS_SYNC) };
        debug_assert_eq!(rc, 0, "msync failed: {}", std::io::Error::last_os_error());
    }
}

#[cfg(unix)]
impl Drop for HeapFileStore {
    fn drop(&mut self) {
        // SAFETY: unmapping the exact mapping created in `map`.
        unsafe { mm::munmap(self.ptr.cast::<u8>(), self.len_bytes) };
    }
}

fn bad_image(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

// ---------------------------------------------------------------------
// StoreImage: an owned snapshot, and what recovery reads from it.
// ---------------------------------------------------------------------

/// An owned copy of a persist store's word image — what a crash snapshot
/// captures and what recovery replays. Obtained from
/// [`MemStore::snapshot`] / [`HeapFileStore::snapshot`].
#[derive(Debug, Clone)]
pub struct StoreImage {
    words: Vec<u64>,
}

/// One claimed-but-possibly-uncommitted request record from an image scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClaimRecord {
    /// The request slot (one per handle node).
    pub slot: u64,
    /// The value the request was enqueueing.
    pub value: u64,
    /// The cell the claim named.
    pub cell: u64,
}

/// Everything recovery (and the recovery checker) reads from an image.
#[derive(Debug, Clone, Default)]
pub struct DurableScan {
    /// Persisted tail high-water mark (`T` reached at least this).
    pub tail_hwm: u64,
    /// Persisted head high-water mark.
    pub head_hwm: u64,
    /// Image generation (0 for a store never recovered).
    pub generation: u64,
    /// `(cell, value)` with a durable deposit and no durable consume —
    /// undelivered survivors, in cell order.
    pub deposited: Vec<(u64, u64)>,
    /// `(cell, value)` durably consumed — deliveries that already
    /// happened, in cell order.
    pub consumed: Vec<(u64, u64)>,
    /// Claimed request records, in slot order.
    pub claimed: Vec<ClaimRecord>,
    /// `(slot, value)` of published-but-unclaimed request records.
    pub published: Vec<(u64, u64)>,
    /// Cells recovery marked torn (scan of a *recovered* image only).
    pub sealed: Vec<u64>,
}

/// Image validation failure (recovery refuses to guess).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoverError(pub String);

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unrecoverable durable image: {}", self.0)
    }
}

impl std::error::Error for RecoverError {}

impl StoreImage {
    fn word(&self, i: u64) -> u64 {
        self.words[i as usize]
    }

    /// Validates magic/version/geometry.
    pub fn validate(&self) -> Result<(), RecoverError> {
        if self.words.len() < HDR_WORDS as usize {
            return Err(RecoverError(format!(
                "image truncated: {} words",
                self.words.len()
            )));
        }
        if self.word(W_MAGIC) != MAGIC {
            return Err(RecoverError(format!("bad magic {:#x}", self.word(W_MAGIC))));
        }
        if self.word(W_VERSION) != VERSION {
            return Err(RecoverError(format!(
                "unsupported version {}",
                self.word(W_VERSION)
            )));
        }
        let (cells, slots) = (self.word(W_CELLS), self.word(W_SLOTS));
        if image_words(cells, slots) as usize != self.words.len() {
            return Err(RecoverError(format!(
                "geometry mismatch: {cells} cells / {slots} slots vs {} words",
                self.words.len()
            )));
        }
        Ok(())
    }

    /// Scans every record into a [`DurableScan`].
    pub fn scan(&self) -> Result<DurableScan, RecoverError> {
        self.validate()?;
        let (cells, slots) = (self.word(W_CELLS), self.word(W_SLOTS));
        let mut scan = DurableScan {
            tail_hwm: self.word(W_TAIL_HWM),
            head_hwm: self.word(W_HEAD_HWM),
            generation: self.word(W_GENERATION),
            ..DurableScan::default()
        };
        for slot in 0..slots {
            let base = HDR_WORDS + slot * REQ_WORDS;
            let (state, value, index) =
                (self.word(base), self.word(base + 1), self.word(base + 2));
            match state {
                REQ_PUBLISHED => scan.published.push((slot, value)),
                REQ_CLAIMED => scan.claimed.push(ClaimRecord {
                    slot,
                    value,
                    cell: index,
                }),
                _ => {}
            }
        }
        for cell in 0..cells {
            let base = HDR_WORDS + slots * REQ_WORDS + cell * CELL_WORDS;
            let (state, value) = (self.word(base), self.word(base + 1));
            match CellState::from_word(state) {
                CellState::Deposited => scan.deposited.push((cell, value)),
                CellState::Consumed => scan.consumed.push((cell, value)),
                CellState::Sealed => scan.sealed.push(cell),
                CellState::Empty => {}
            }
        }
        let _ = REQ_IDLE;
        Ok(scan)
    }

    /// Durable state of one cell (recovery-checker convenience).
    pub fn cell_state(&self, cell: u64) -> CellState {
        let slots = self.word(W_SLOTS);
        let base = HDR_WORDS + slots * REQ_WORDS + cell * CELL_WORDS;
        CellState::from_word(self.word(base))
    }

    fn seal_cell(&mut self, cell: u64) {
        let slots = self.word(W_SLOTS);
        let base = HDR_WORDS + slots * REQ_WORDS + cell * CELL_WORDS;
        self.words[base as usize] = CellState::Sealed as u64;
    }
}

// ---------------------------------------------------------------------
// Recovery.
// ---------------------------------------------------------------------

/// Knobs for [`RawQueue::recover`]. The default replays everything; the
/// crash-matrix tests flip `replay_claimed_requests` off as a *negative
/// control* — a recovery that skips the help-replay loses exactly the
/// claimed-but-uncommitted values, and the recovery checker must convict
/// it.
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Re-complete claimed-but-uncommitted enqueue requests from their
    /// request records (the help machinery's crash window). `false` is a
    /// deliberately broken recovery for negative-control testing.
    pub replay_claimed_requests: bool,
}

impl Default for RecoveryOptions {
    fn default() -> Self {
        RecoveryOptions {
            replay_claimed_requests: true,
        }
    }
}

/// What recovery did, and what the image proved about pre-crash history.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Values re-enqueued into the recovered queue, in original cell
    /// order — every durably-undelivered value, exactly once.
    pub survivors: Vec<u64>,
    /// How many survivors came from claimed-but-uncommitted request
    /// records (the help-replay path) rather than deposited cells.
    pub recompleted: u64,
    /// Values the image proves were delivered before the crash (durable
    /// consume records). A dequeuer that crashed between its volatile
    /// return and the caller using the value can re-read it here — the
    /// detectable-recovery return-value channel.
    pub delivered_pre_crash: Vec<u64>,
    /// Values of published-but-unclaimed requests: provably rejected (the
    /// enqueue has no durable commit and is deemed never to have
    /// happened).
    pub rejected_published: Vec<u64>,
    /// Torn cells sealed during recovery: below the tail high-water mark
    /// with no durable deposit and no claim replaying into them.
    pub sealed_cells: u64,
    /// Image generation the recovered queue writes (input generation + 1
    /// when recovering a live store).
    pub generation: u64,
}

/// Pure image → recovery decision, shared by [`RawQueue::recover`] and the
/// crash-matrix tests (which recover from a mid-crash snapshot rather
/// than a live store). Returns the report plus the sealed image.
pub fn recover_image(
    image: &StoreImage,
    opts: &RecoveryOptions,
) -> Result<(RecoveryReport, StoreImage), RecoverError> {
    let scan = image.scan()?;
    let mut sealed_image = image.clone();
    let mut report = RecoveryReport {
        generation: scan.generation,
        ..RecoveryReport::default()
    };

    // Survivors keyed by original cell index: FIFO order of the recovered
    // queue is the pre-crash cell order.
    let mut survivors = std::collections::BTreeMap::<u64, u64>::new();
    for &(cell, value) in &scan.deposited {
        survivors.insert(cell, value);
    }
    let mut replay_targets = std::collections::BTreeSet::<u64>::new();
    if opts.replay_claimed_requests {
        for claim in &scan.claimed {
            // Dedup rule: a claimed request is already committed iff its
            // cell has a durable deposit (or consume). Only an EMPTY cell
            // means the commit was cut mid-help — re-complete it.
            if image.cell_state(claim.cell) == CellState::Empty {
                survivors.insert(claim.cell, claim.value);
                replay_targets.insert(claim.cell);
                report.recompleted += 1;
            }
        }
    }
    // Seal torn cells: claimed by some FAA (below the tail high-water
    // mark) but with no durable trace and no claim replaying into them.
    // Nothing can ever deliver from them; sealing records that verdict.
    for cell in 0..scan.tail_hwm {
        if image.cell_state(cell) == CellState::Empty && !replay_targets.contains(&cell) {
            sealed_image.seal_cell(cell);
            report.sealed_cells += 1;
        }
    }
    report.delivered_pre_crash = scan.consumed.iter().map(|&(_, v)| v).collect();
    report.rejected_published = scan
        .published
        .iter()
        .map(|&(_, v)| v)
        .filter(|&v| !survivors.values().any(|&s| s == v))
        .collect();
    report.survivors = survivors.into_values().collect();
    Ok((report, sealed_image))
}

impl<const N: usize> RawQueue<N> {
    /// Rebuilds a queue from a crash snapshot: replays every durably
    /// undelivered value — deposited cells *and* (unless the negative
    /// control disables it) claimed-but-uncommitted requests — into a
    /// fresh queue wired to `sink`, in original FIFO order. Torn cells
    /// are sealed in the returned report's accounting.
    ///
    /// The replay runs through the ordinary enqueue path, so the new
    /// generation's image is written by the same three-frontier hooks as
    /// live traffic — recovery is itself crash-recoverable.
    pub fn recover_from_image(
        image: &StoreImage,
        config: Config,
        sink: Option<Arc<dyn PersistSink>>,
        opts: &RecoveryOptions,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let (report, _sealed) = recover_image(image, opts)?;
        let q = match sink {
            Some(s) => Self::with_persist(config, s),
            None => Self::with_config(config),
        };
        {
            let mut h = q.register();
            for &v in &report.survivors {
                h.enqueue(v);
            }
        }
        wfq_obs::record!(
            wfq_obs::EventKind::RecoverReplay,
            report.survivors.len() as u64
        );
        if report.sealed_cells > 0 {
            wfq_obs::record!(wfq_obs::EventKind::RecoverSeal, report.sealed_cells);
        }
        Ok((q, report))
    }

    /// Crash-recovers from a live heap-file store: snapshots the image,
    /// turns the store's generation (clearing the records), and replays
    /// the survivors into a fresh queue persisting to the same store.
    /// This is the normal restart path after a process kill:
    ///
    /// ```no_run
    /// # use wfqueue::{Config, HeapFileStore, RawQueue, RecoveryOptions};
    /// # use std::sync::Arc;
    /// let store = Arc::new(HeapFileStore::open("queue.image".as_ref()).unwrap());
    /// let (q, report) = RawQueue::<1024>::recover(
    ///     Config::default(),
    ///     &store,
    ///     &RecoveryOptions::default(),
    /// ).unwrap();
    /// println!("recovered {} values", report.survivors.len());
    /// ```
    #[cfg(unix)]
    pub fn recover(
        config: Config,
        store: &Arc<HeapFileStore>,
        opts: &RecoveryOptions,
    ) -> Result<(Self, RecoveryReport), RecoverError> {
        let image = store.snapshot();
        // Validate before wiping anything.
        image.validate()?;
        let gen = store.begin_generation();
        let (q, mut report) = Self::recover_from_image(
            &image,
            config,
            Some(Arc::clone(store) as Arc<dyn PersistSink>),
            opts,
        )?;
        store.flush();
        report.generation = gen;
        Ok((q, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEG: usize = 64;

    fn mem_queue(cells: u64, slots: u64) -> (Arc<MemStore>, RawQueue<SEG>) {
        let store = Arc::new(MemStore::new(cells, slots));
        let q = RawQueue::<SEG>::with_persist(
            Config::default(),
            Arc::clone(&store) as Arc<dyn PersistSink>,
        );
        (store, q)
    }

    #[test]
    fn clean_traffic_round_trips_through_the_image() {
        let (store, q) = mem_queue(1024, 4);
        {
            let mut h = q.register();
            for v in 1..=50u64 {
                h.enqueue(v);
            }
            for _ in 0..20 {
                h.dequeue();
            }
        }
        let scan = store.snapshot().scan().unwrap();
        assert_eq!(scan.consumed.len(), 20);
        assert_eq!(scan.deposited.len(), 30);
        assert!(scan.tail_hwm >= 50);
        assert!(scan.head_hwm >= 20);
        // Recover: the 30 undelivered values come back in FIFO order.
        let (rq, report) = RawQueue::<SEG>::recover_from_image(
            &store.snapshot(),
            Config::default(),
            None,
            &RecoveryOptions::default(),
        )
        .unwrap();
        assert_eq!(report.survivors, (21..=50).collect::<Vec<u64>>());
        assert_eq!(report.delivered_pre_crash.len(), 20);
        assert_eq!(report.recompleted, 0);
        let mut h = rq.register();
        for v in 21..=50u64 {
            assert_eq!(h.dequeue(), Some(v));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn cell_state_lattice_is_monotone() {
        let store = MemStore::new(8, 1);
        store.deposit(3, 42);
        store.consume(3, 42);
        // A late (re-ordered) deposit persist must not demote CONSUMED.
        store.deposit(3, 42);
        let scan = store.snapshot().scan().unwrap();
        assert_eq!(scan.consumed, vec![(3, 42)]);
        assert!(scan.deposited.is_empty());
    }

    #[test]
    fn claimed_but_uncommitted_requests_are_recompleted() {
        let store = MemStore::new(64, 2);
        // Simulate the crash window: tail advanced past cell 5, the claim
        // persisted, the deposit did not.
        store.advance_tail(6);
        store.enq_publish(1, 77);
        store.enq_claim(1, 77, 5);
        let (report, sealed) =
            recover_image(&store.snapshot(), &RecoveryOptions::default()).unwrap();
        assert_eq!(report.survivors, vec![77]);
        assert_eq!(report.recompleted, 1);
        // Cells 0..5 are torn (claimed by FAAs, no durable trace): sealed.
        assert_eq!(report.sealed_cells, 5);
        for c in 0..5 {
            assert_eq!(sealed.cell_state(c), CellState::Sealed);
        }
        // The replay target is not sealed.
        assert_eq!(sealed.cell_state(5), CellState::Empty);
    }

    #[test]
    fn committed_claims_are_not_replayed_twice() {
        let store = MemStore::new(64, 2);
        store.advance_tail(3);
        store.enq_claim(0, 9, 2);
        store.deposit(2, 9); // commit persisted after the claim
        let (report, _) =
            recover_image(&store.snapshot(), &RecoveryOptions::default()).unwrap();
        assert_eq!(report.survivors, vec![9], "exactly once, not twice");
        assert_eq!(report.recompleted, 0);
    }

    #[test]
    fn negative_control_skipping_replay_loses_the_claim() {
        let store = MemStore::new(64, 2);
        store.advance_tail(1);
        store.enq_claim(0, 55, 0);
        let opts = RecoveryOptions {
            replay_claimed_requests: false,
        };
        let (report, _) = recover_image(&store.snapshot(), &opts).unwrap();
        assert!(
            report.survivors.is_empty(),
            "the broken recovery must visibly lose the value"
        );
    }

    #[test]
    fn published_unclaimed_requests_are_rejected() {
        let store = MemStore::new(64, 2);
        store.enq_publish(0, 31);
        let (report, _) =
            recover_image(&store.snapshot(), &RecoveryOptions::default()).unwrap();
        assert!(report.survivors.is_empty());
        assert_eq!(report.rejected_published, vec![31]);
    }

    #[test]
    fn garbage_image_is_refused() {
        let image = StoreImage {
            words: vec![0xDEAD; 32],
        };
        assert!(recover_image(&image, &RecoveryOptions::default()).is_err());
    }

    #[test]
    fn begin_generation_clears_records_and_bumps_gen() {
        let store = MemStore::new(16, 1);
        store.deposit(0, 5);
        store.advance_tail(1);
        assert_eq!(store.begin_generation(), 1);
        let scan = store.snapshot().scan().unwrap();
        assert_eq!(scan.generation, 1);
        assert_eq!(scan.tail_hwm, 0);
        assert!(scan.deposited.is_empty());
    }

    #[cfg(unix)]
    #[test]
    fn heap_file_store_survives_reopen() {
        let path = std::env::temp_dir().join(format!(
            "wfq-durable-test-{}-{:?}.image",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let store = Arc::new(HeapFileStore::create(&path, 512, 4).unwrap());
            let q = RawQueue::<SEG>::with_persist(
                Config::default(),
                Arc::clone(&store) as Arc<dyn PersistSink>,
            );
            let mut h = q.register();
            for v in 1..=10u64 {
                h.enqueue(v);
            }
            assert_eq!(h.dequeue(), Some(1));
            store.flush();
            // Queue and store dropped here: simulates losing all volatile
            // state while the file survives.
        }
        let store = Arc::new(HeapFileStore::open(&path).unwrap());
        let (q, report) =
            RawQueue::<SEG>::recover(Config::default(), &store, &RecoveryOptions::default())
                .unwrap();
        assert_eq!(report.survivors, (2..=10).collect::<Vec<u64>>());
        assert_eq!(report.delivered_pre_crash, vec![1]);
        assert_eq!(report.generation, 1);
        let mut h = q.register();
        for v in 2..=10u64 {
            assert_eq!(h.dequeue(), Some(v));
        }
        drop(h);
        drop(q);
        drop(store);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn heap_file_open_rejects_garbage() {
        let path = std::env::temp_dir().join(format!(
            "wfq-durable-garbage-{}.image",
            std::process::id()
        ));
        std::fs::write(&path, vec![0xAB; 256]).unwrap();
        assert!(HeapFileStore::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
