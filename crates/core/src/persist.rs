//! Durable-mode persist hooks (DESIGN.md §12).
//!
//! A crash-recoverable queue must mirror every *commit frontier* of the
//! volatile protocol into persistent storage before the operation's effect
//! can be considered durable. For this queue there are exactly three such
//! frontiers (§12 argues why they suffice):
//!
//! 1. **Cell deposit** — the CAS/store that makes a value visible in a
//!    cell (`enq_fast`'s `try_deposit`, `enq_commit`'s `val` store) and
//!    its dequeue-side dual, the claim that consumes it
//!    (`try_claim_deq_fast`, `help_deq`'s completing claim).
//! 2. **Index advance** — the FAA/CAS-max on `T` and `H`. Persisted as
//!    high-water marks; recovery uses the tail mark to tell a torn
//!    (crash-abandoned) cell from one that was never claimed.
//! 3. **Help commit** — the request-record transitions of the slow path:
//!    publish (`EnqReq::publish`) and claim (`EnqReq::try_claim`). A
//!    persisted *claim* whose cell never received its deposit is exactly
//!    the "claimed-but-uncommitted" state recovery must re-complete.
//!
//! The hooks follow the `inject!`/`record!`/`op_sample!` discipline: in a
//! build without the `durable` feature [`persist!`] expands to a constant
//! expression — provably zero-overhead (see the `const` guard in `raw.rs`)
//! — and the queue carries no sink field at all. With the feature on, each
//! hook is one `Option` branch plus a virtual call into the configured
//! [`PersistSink`].

/// Receiver of durable-mode persist events, one method per commit
/// frontier. Implementations must be cheap, idempotent, and safe under
/// concurrent callers: helpers and requesters may persist the *same*
/// transition (same cell, same value) at overlapping times, and a cell's
/// durable state must only move forward (the provided stores use
/// `fetch_max` state machines for exactly this reason).
///
/// Provided implementations: [`crate::HeapFileStore`] (an mmap'd
/// heap-file image — DRAM-backed persistent-memory emulation) and
/// [`crate::MemStore`] (the same record layout in anonymous memory, for
/// tests).
#[cfg(feature = "durable")]
pub trait PersistSink: Send + Sync {
    /// A value became visible in a cell (enqueue-side frontier 1).
    fn deposit(&self, cell: u64, value: u64);
    /// A cell's value was claimed by a dequeuer (dequeue-side frontier 1).
    /// Carries the value so a consume persisted before its racing deposit
    /// persist still records what was taken (the record is the detectable
    /// return value of a dequeue whose caller crashed before using it).
    fn consume(&self, cell: u64, value: u64);
    /// The tail index advanced to at least `to` (frontier 2).
    fn advance_tail(&self, to: u64);
    /// The head index advanced to at least `to` (frontier 2).
    fn advance_head(&self, to: u64);
    /// A slow-path enqueue published its request (frontier 3).
    fn enq_publish(&self, slot: u64, value: u64);
    /// A slow-path enqueue request was claimed for `cell` (frontier 3).
    /// Carries the value: a helper may persist the claim before the
    /// requester's own publish persist lands.
    fn enq_claim(&self, slot: u64, value: u64, cell: u64);
    /// Every cell below `cell` was reclaimed volatile-side; the store may
    /// compact their records at the next generation turn. Advisory.
    fn retire_below(&self, cell: u64);
    /// Flush buffered writes to the backing medium (`msync` for the
    /// heap-file store). The stores write through atomics, so this is a
    /// durability *fence*, not a visibility one.
    fn flush(&self);
}

/// Mirrors a protocol step into the queue's persist sink.
///
/// `persist!(self, method(args...))` — `self` must be the `RawQueue`,
/// whose `persist` field holds an `Option<Arc<dyn PersistSink>>`.
#[cfg(feature = "durable")]
macro_rules! persist {
    ($q:expr, $m:ident ( $($a:expr),* $(,)? )) => {
        if let Some(__sink) = $q.persist.as_deref() {
            __sink.$m($($a),*);
        }
    };
}

/// Mirrors a protocol step into the queue's persist sink.
///
/// This build has `durable` off: the expansion is a constant expression
/// (nothing is evaluated, nothing is called — see the `const` proof in
/// `raw.rs`).
#[cfg(not(feature = "durable"))]
macro_rules! persist {
    ($q:expr, $m:ident ( $($a:expr),* $(,)? )) => {
        ()
    };
}

pub(crate) use persist;
