//! # wfqueue — a wait-free FIFO queue as fast as fetch-and-add
//!
//! A faithful Rust implementation of the wait-free MPMC FIFO queue of
//! **Chaoran Yang and John Mellor-Crummey, "A Wait-free Queue as Fast as
//! Fetch-and-Add", PPoPP 2016**.
//!
//! ## The algorithm in one paragraph
//!
//! The queue is conceptually an *infinite array* `Q` with unbounded head and
//! tail indices `H` and `T` (paper Listing 1). An enqueue claims a cell with
//! one `fetch_add` on `T` and deposits its value with one CAS; a dequeue
//! claims a cell with one `fetch_add` on `H` and either takes the value found
//! there or marks the cell unusable. Because FAA always succeeds, there is no
//! CAS-retry storm on the hot indices — the property that lets LCRQ beat
//! MS-Queue, but here extended with *wait-freedom*: when a thread's fast-path
//! "patience" runs out it publishes a request in a ring of per-thread
//! handles, and every contending dequeuer doubles as a helper until the
//! request completes (Kogan–Petrank fast-path-slow-path, specialized to FAA).
//! The infinite array is emulated by a linked list of fixed-size segments
//! reclaimed by a custom epoch/hazard scheme (paper Listing 5) that adds no
//! fence to the x86 fast path.
//!
//! ## Two API levels
//!
//! - [`WfQueue<T>`] — a typed, owning queue for arbitrary `T: Send`. Values
//!   are boxed; the queue drains and drops leftovers on `Drop`.
//! - [`RawQueue`] — the paper's algorithm verbatim over 64-bit machine words
//!   (values must avoid the two reserved patterns `0` and `u64::MAX`). This
//!   is what the benchmarks drive, mirroring the authors' C benchmark which
//!   enqueues small integers cast to `void*`.
//!
//! Both are operated through per-thread **handles** ([`Handle`],
//! [`LocalHandle`]): the paper keeps head/tail segment pointers, help
//! requests and peer pointers in thread-local state to keep the shared queue
//! free of contention beyond the two FAA'd indices.
//!
//! ```
//! use wfqueue::WfQueue;
//!
//! let q = WfQueue::new();
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut h = q.handle();
//!         for i in 0..100 { h.enqueue(i); }
//!     });
//!     s.spawn(|| {
//!         let mut h = q.handle();
//!         let mut got = 0;
//!         while got < 100 {
//!             if h.dequeue().is_some() { got += 1; }
//!         }
//!     });
//! });
//! assert!(q.is_empty());
//! ```
//!
//! ## Progress guarantee
//!
//! Every `enqueue` and `dequeue` completes in a bounded number of steps
//! regardless of scheduling (paper Theorem 4.6), given the x86-class atomic
//! primitives (`fetch_add`, `compare_exchange`) that Rust lowers to single
//! instructions on x86_64 (on targets that emulate FAA with LL/SC retry
//! loops the bound degrades exactly as the paper describes for Power7).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod backend;
mod cell;
mod config;
#[cfg(feature = "durable")]
mod durable;
mod full;
mod handle;
#[cfg(test)]
mod idempotence;
mod owned;
mod pack;
mod persist;
mod pool;
mod raw;
mod reclaim;
mod request;
mod sample;
mod segment;
mod stats;
mod typed;

pub use backend::{BackendHandle, QueueBackend};
pub use config::Config;
#[cfg(feature = "durable")]
pub use durable::{
    recover_image, CellState, ClaimRecord, DurableScan, MemStore, RecoverError,
    RecoveryOptions, RecoveryReport, StoreImage,
};
#[cfg(all(feature = "durable", unix))]
pub use durable::HeapFileStore;
pub use full::Full;
pub use owned::{OwnedHandle, OwnedLocalHandle};
#[cfg(feature = "durable")]
pub use persist::PersistSink;
pub use raw::{Handle, RawQueue};
pub use sample::{OpPath, OpSample, OpSide, SAMPLING_ENABLED};
pub use stats::{Gauges, QueueStats};
pub use typed::{LocalHandle, WfQueue};

/// Default number of cells per segment (the paper's N = 2^10).
pub const DEFAULT_SEGMENT_SIZE: usize = 1024;

/// Default fast-path patience (the paper's WF-10 configuration).
pub const DEFAULT_PATIENCE: u32 = 10;

/// Every named fault-injection point compiled into this crate
/// (`wfq_sync::inject!` sites). The schedule fuzzer asserts its sweep
/// drives each of these at least once; keep this list in sync with the
/// `inject!("...")` calls in `raw.rs`, `reclaim.rs`, and `pool.rs`.
///
/// Points are named `<protocol>::<window>` after the race window they sit
/// in, not the function they appear in (see DESIGN.md).
pub const FAULT_POINTS: &[&str] = &[
    // raw.rs — enqueue (Listings 2–3).
    "enq_fast::post_faa",
    "enq_slow::request_published",
    "enq_slow::cell_reserved",
    "enq_slow::pre_commit",
    "help_enq::pre_reserve",
    "help_enq::top_race",
    "help_enq::pre_complete",
    // raw.rs — dequeue (Listing 4).
    "deq::hazard_published",
    "deq_fast::post_faa",
    "deq_slow::request_published",
    "help_deq::hazard_adopted",
    "help_deq::candidate_scan",
    "help_deq::pre_announce",
    "help_deq::pre_complete",
    "advance_index::pre_cas",
    // reclaim.rs — segment reclamation (Listing 5).
    "reclaim::elected",
    "reclaim::forward_scan",
    "reclaim::pre_update_cas",
    "reclaim::reverse_scan",
    "reclaim::pre_free",
    // reclaim.rs / pool.rs — bounded-memory mode (DESIGN.md §9).
    "reclaim::forced",
    "pool::push",
    "pool::pop",
    "pool::stall",
    // raw.rs — batch operations (DESIGN.md §10). Batch dequeues also pass
    // through "deq::hazard_published" above, so the parked-hazard fuzzing
    // machinery covers batch claimants without a dedicated point.
    "enq_batch::post_faa",
    "enq_batch::straggler",
    "enq_batch::abandon",
    "deq_batch::post_faa",
    "deq_batch::partial_probe",
    "deq_batch::straggler",
    // raw.rs — durable-mode crash windows (DESIGN.md §12): the instant a
    // protocol effect is volatile-visible but its persist has not landed.
    // The points exist in every build (they are plain inject! sites); only
    // the crash matrix arms them with FaultAction::Crash.
    "enq_fast::deposit_unpersisted",
    "enq_slow::claim_unpersisted",
    "deq_fast::consume_unpersisted",
];
