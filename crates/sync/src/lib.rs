//! Low-level synchronization substrate shared by the `wfqueue` reproduction.
//!
//! This crate collects the small, orthogonal primitives that the paper's
//! algorithms assume of the platform:
//!
//! - [`CachePadded`]: false-sharing avoidance for hot shared words
//!   (head/tail indices, per-thread handles).
//! - [`Backoff`]: bounded exponential backoff for retry loops in the
//!   *baseline* algorithms (the wait-free queue itself never needs it).
//! - [`cas2`](dwcas::AtomicU128): double-width compare-and-swap, the CAS2
//!   primitive LCRQ requires (`lock cmpxchg16b` on x86_64).
//! - [`XorShift64`]: a tiny deterministic PRNG for per-thread workload
//!   decisions (50%-enqueues coin flips, random "work" amounts) that stays
//!   off the allocator and out of the measured path.
//! - [`SpinDelay`](delay::SpinDelay): a calibrated busy-wait used to
//!   reproduce the paper's 50–100 ns inter-operation "work".
//! - [`fault`]: the deterministic fault-injection layer behind the
//!   [`inject!`] macro — a compiled-out no-op by default, a seeded
//!   schedule perturbator under `--features fault-injection`.

#![warn(missing_docs)]

pub mod backoff;
pub mod delay;
pub mod dwcas;
pub mod fault;
pub mod pad;
pub mod rng;

pub use backoff::Backoff;
pub use pad::CachePadded;
pub use rng::XorShift64;
