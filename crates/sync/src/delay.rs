//! Calibrated busy-wait delays.
//!
//! The paper inserts a *random amount of "work" (between 50 and 100 ns)*
//! between queue operations to break up unrealistically long runs where one
//! thread hammers the queue straight out of its own L1 ("artificial long run
//! scenarios", §5.1). The delay must be a pure CPU spin — sleeping would
//! deschedule the thread and destroy the contention the benchmark is trying
//! to create.
//!
//! [`SpinDelay`] calibrates a `pause`-based spin loop against the monotonic
//! clock once, then converts requested nanoseconds into loop iterations.

use std::time::{Duration, Instant};

/// Number of spin-loop hint iterations per calibration probe.
const PROBE_ITERS: u64 = 200_000;

/// A calibrated nanosecond-resolution busy-wait.
#[derive(Debug, Clone, Copy)]
pub struct SpinDelay {
    /// Spin iterations per nanosecond, in 16.16 fixed point.
    iters_per_ns_fp: u64,
}

#[inline(never)]
fn spin_iters(n: u64) {
    for _ in 0..n {
        core::hint::spin_loop();
    }
}

impl SpinDelay {
    /// Calibrates the spin loop against `Instant::now`.
    ///
    /// Takes a few milliseconds; do it once per process, outside any timed
    /// region. The **maximum** rate across several probes is used: any
    /// preemption during a probe inflates its elapsed time and deflates
    /// its rate, so the max is the least-biased estimate of the true spin
    /// speed. (A too-low rate would make `wait_ns` spin for *less* than
    /// requested, which in the benchmark harness over-subtracts injected
    /// work and inflates throughput.)
    pub fn calibrate() -> Self {
        let mut best = 0u64;
        for _ in 0..7 {
            let start = Instant::now();
            spin_iters(PROBE_ITERS);
            let elapsed = start.elapsed().as_nanos().max(1) as u64;
            // iters/ns in 16.16 fixed point
            best = best.max((PROBE_ITERS << 16) / elapsed);
        }
        Self {
            iters_per_ns_fp: best.max(1),
        }
    }

    /// Builds a delay with a known iterations-per-nanosecond rate (testing).
    pub const fn with_rate_fp(iters_per_ns_fp: u64) -> Self {
        Self { iters_per_ns_fp }
    }

    /// Busy-waits for approximately `ns` nanoseconds.
    #[inline]
    pub fn wait_ns(&self, ns: u64) {
        let iters = (ns.saturating_mul(self.iters_per_ns_fp)) >> 16;
        spin_iters(iters.max(1));
    }

    /// Converts nanoseconds to spin iterations (exposed so hot loops can
    /// pre-compute per-operation budgets).
    #[inline]
    pub fn iters_for_ns(&self, ns: u64) -> u64 {
        ((ns.saturating_mul(self.iters_per_ns_fp)) >> 16).max(1)
    }

    /// Runs exactly `iters` spin iterations.
    #[inline]
    pub fn wait_iters(&self, iters: u64) {
        spin_iters(iters);
    }

    /// Rough wall-clock estimate of `iters` spin iterations.
    pub fn estimate(&self, iters: u64) -> Duration {
        Duration::from_nanos((iters << 16) / self.iters_per_ns_fp.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_positive_rate() {
        let d = SpinDelay::calibrate();
        assert!(d.iters_per_ns_fp > 0);
    }

    #[test]
    fn wait_ns_is_monotone_in_duration() {
        let d = SpinDelay::calibrate();
        let t0 = Instant::now();
        for _ in 0..1000 {
            d.wait_ns(50);
        }
        let short = t0.elapsed();
        let t1 = Instant::now();
        for _ in 0..1000 {
            d.wait_ns(2000);
        }
        let long = t1.elapsed();
        assert!(
            long > short,
            "2000ns waits ({long:?}) should exceed 50ns waits ({short:?})"
        );
    }

    #[test]
    fn iters_for_ns_scales_linearly() {
        let d = SpinDelay::with_rate_fp(2 << 16); // 2 iters per ns
        assert_eq!(d.iters_for_ns(100), 200);
        assert_eq!(d.iters_for_ns(50), 100);
    }

    #[test]
    fn estimate_inverts_iters_for_ns() {
        let d = SpinDelay::with_rate_fp(4 << 16);
        let iters = d.iters_for_ns(1000);
        let est = d.estimate(iters);
        assert_eq!(est, Duration::from_nanos(1000));
    }
}
