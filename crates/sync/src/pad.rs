//! Cache-line padding to prevent false sharing.
//!
//! The paper's queue keeps its two hot words — the head index `H` and the
//! tail index `T` — on separate cache lines so that enqueuers and dequeuers
//! do not invalidate each other's lines beyond what the algorithm requires.
//! Per-thread handles are likewise padded so that one thread's bookkeeping
//! writes never evict a neighbour's.

use core::fmt;
use core::ops::{Deref, DerefMut};

/// Size in bytes to which [`CachePadded`] aligns and pads its contents.
///
/// 128 bytes covers both the 64-byte line size of every x86_64 part in the
/// paper's Table 1 and the 128-byte aligned prefetch pairs used by modern
/// Intel parts (adjacent-line prefetcher), matching what crossbeam does.
pub const CACHE_LINE: usize = 128;

/// Pads and aligns a value to [`CACHE_LINE`] bytes.
///
/// ```
/// use wfq_sync::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// struct Indices {
///     head: CachePadded<AtomicU64>,
///     tail: CachePadded<AtomicU64>,
/// }
/// let ix = Indices {
///     head: CachePadded::new(AtomicU64::new(0)),
///     tail: CachePadded::new(AtomicU64::new(0)),
/// };
/// assert_eq!(&*ix.head as *const _ as usize % 128, 0);
/// let _ = ix.tail;
/// ```
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

// SAFETY: padding adds no shared state; `CachePadded<T>` is exactly as
// thread-safe as `T` itself.
unsafe impl<T: Send> Send for CachePadded<T> {}
unsafe impl<T: Sync> Sync for CachePadded<T> {}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-sized, cache-line-aligned box.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::mem::{align_of, size_of};

    #[test]
    fn padded_u64_is_line_sized_and_aligned() {
        assert_eq!(size_of::<CachePadded<u64>>(), CACHE_LINE);
        assert_eq!(align_of::<CachePadded<u64>>(), CACHE_LINE);
    }

    #[test]
    fn large_contents_round_up_to_multiple_of_line() {
        assert_eq!(size_of::<CachePadded<[u8; 129]>>(), 2 * CACHE_LINE);
    }

    #[test]
    fn deref_round_trips() {
        let mut p = CachePadded::new(41u32);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }

    #[test]
    fn adjacent_fields_land_on_distinct_lines() {
        struct Two {
            a: CachePadded<u64>,
            b: CachePadded<u64>,
        }
        let t = Two {
            a: CachePadded::new(0),
            b: CachePadded::new(0),
        };
        let pa = &*t.a as *const u64 as usize;
        let pb = &*t.b as *const u64 as usize;
        assert!(pa.abs_diff(pb) >= CACHE_LINE);
    }

    #[test]
    fn debug_and_from() {
        let p: CachePadded<u8> = 7u8.into();
        assert_eq!(format!("{p:?}"), "CachePadded(7)");
    }
}
