//! Double-width (128-bit) compare-and-swap — the CAS2 primitive.
//!
//! LCRQ (Morrison & Afek, PPoPP '13) updates each ring cell's
//! `(value, index)` pair with a single 128-bit CAS. The paper under
//! reproduction notes that LCRQ "is limited by its use of CAS2, which is not
//! universally available" — indeed there was no LCRQ on the Xeon Phi or
//! Power7 in Figure 2. We mirror that situation:
//!
//! - on `x86_64` with the `cmpxchg16b` feature (every 64-bit Intel/AMD part
//!   since ~2006), [`AtomicU128::compare_exchange`] compiles to
//!   `lock cmpxchg16b` via inline assembly and is lock-free;
//! - elsewhere we fall back to a striped spin-lock emulation that is correct
//!   but **not** lock-free; [`IS_LOCK_FREE`] reports which one you got, and
//!   the benchmark harness annotates LCRQ results accordingly.
//!
//! The 128-bit *load* deliberately reads the two 64-bit halves separately:
//! the LCRQ algorithm tolerates word-level tearing by construction (it
//! re-validates with CAS2), and issuing `cmpxchg16b` for loads would turn
//! every read into a store and wreck the very contention behaviour the
//! benchmark studies.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicU64, Ordering};

/// Whether [`AtomicU128::compare_exchange`] is genuinely lock-free on this
/// build target.
pub const IS_LOCK_FREE: bool = cfg!(all(target_arch = "x86_64", target_feature = "cmpxchg16b"))
    || cfg!(target_arch = "x86_64");

/// A 16-byte-aligned pair of `u64`s supporting double-width CAS.
///
/// ```
/// use wfq_sync::dwcas::AtomicU128;
/// let a = AtomicU128::new(1, 2);
/// assert_eq!(a.load(), (1, 2));
/// assert!(a.compare_exchange((1, 2), (3, 4)).is_ok());
/// assert_eq!(a.load(), (3, 4));
/// assert_eq!(a.compare_exchange((1, 2), (5, 6)), Err((3, 4)));
/// ```
#[repr(C, align(16))]
pub struct AtomicU128 {
    lo: UnsafeCell<u64>,
    hi: UnsafeCell<u64>,
}

// SAFETY: all access paths go through atomic instructions (cmpxchg16b or
// word-sized atomics under the fallback's lock striping).
unsafe impl Send for AtomicU128 {}
unsafe impl Sync for AtomicU128 {}

impl AtomicU128 {
    /// Creates a pair initialized to `(lo, hi)`.
    pub const fn new(lo: u64, hi: u64) -> Self {
        Self {
            lo: UnsafeCell::new(lo),
            hi: UnsafeCell::new(hi),
        }
    }

    #[inline]
    fn lo_atomic(&self) -> &AtomicU64 {
        // SAFETY: AtomicU64 has the same layout as u64 and every mutation of
        // this word is performed by an atomic instruction.
        unsafe { &*(self.lo.get() as *const AtomicU64) }
    }

    #[inline]
    fn hi_atomic(&self) -> &AtomicU64 {
        // SAFETY: as above.
        unsafe { &*(self.hi.get() as *const AtomicU64) }
    }

    /// Loads the two halves with individual 64-bit acquire loads.
    ///
    /// The pair may tear (see module docs); callers that need an untorn view
    /// must re-validate with [`compare_exchange`](Self::compare_exchange).
    #[inline]
    pub fn load(&self) -> (u64, u64) {
        let lo = self.lo_atomic().load(Ordering::Acquire);
        let hi = self.hi_atomic().load(Ordering::Acquire);
        (lo, hi)
    }

    /// Loads only the low half.
    #[inline]
    pub fn load_lo(&self) -> u64 {
        self.lo_atomic().load(Ordering::Acquire)
    }

    /// Loads only the high half.
    #[inline]
    pub fn load_hi(&self) -> u64 {
        self.hi_atomic().load(Ordering::Acquire)
    }

    /// 128-bit compare-and-swap with sequentially consistent semantics.
    ///
    /// Returns `Ok(())` on success and `Err(observed)` with the value found
    /// in memory on failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        expected: (u64, u64),
        new: (u64, u64),
    ) -> Result<(), (u64, u64)> {
        #[cfg(target_arch = "x86_64")]
        {
            self.cas16b(expected, new)
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.cas_fallback(expected, new)
        }
    }

    /// Unconditionally stores a pair (CAS loop; used only on cold paths such
    /// as ring initialization checks in tests).
    pub fn store(&self, new: (u64, u64)) {
        let mut cur = self.load();
        while let Err(seen) = self.compare_exchange(cur, new) {
            cur = seen;
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[inline]
    fn cas16b(&self, expected: (u64, u64), new: (u64, u64)) -> Result<(), (u64, u64)> {
        let ptr = self.lo.get();
        let (exp_lo, exp_hi) = expected;
        let (new_lo, new_hi) = new;
        let out_lo: u64;
        let out_hi: u64;
        let ok: u64;
        // SAFETY: `ptr` is 16-byte aligned (repr(align(16))), valid for
        // 16 bytes, and `lock cmpxchg16b` is supported by every x86_64 CPU
        // this reproduction targets.
        //
        // RBX handling: `cmpxchg16b` hardwires the new-low word to RBX, but
        // rustc forbids naming RBX as an operand — while LLVM's generic
        // `reg` class may still hand RBX to *other* operands (observed in
        // practice). So every operand is pinned to an explicit register,
        // none of them RBX, and the new-low word is staged through RSI and
        // swapped into RBX around the instruction, restoring it after.
        unsafe {
            core::arch::asm!(
                "xor r8d, r8d",
                "xchg rbx, rsi",
                "lock cmpxchg16b [rdi]",
                "sete r8b",
                "xchg rbx, rsi",
                in("rdi") ptr,
                inout("rsi") new_lo => _,
                in("rcx") new_hi,
                inout("rax") exp_lo => out_lo,
                inout("rdx") exp_hi => out_hi,
                out("r8") ok,
                options(nostack),
            );
        }
        if ok != 0 {
            Ok(())
        } else {
            Err((out_lo, out_hi))
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    fn cas_fallback(&self, expected: (u64, u64), new: (u64, u64)) -> Result<(), (u64, u64)> {
        let lock = fallback::lock_for(self as *const _ as usize);
        let _guard = lock.lock();
        // SAFETY: the striped lock serializes all fallback CASes on this
        // address; plain reads/writes cannot race (loads outside the lock
        // may tear, which the API contract permits).
        unsafe {
            let cur = (*self.lo.get(), *self.hi.get());
            if cur == expected {
                *self.lo.get() = new.0;
                *self.hi.get() = new.1;
                Ok(())
            } else {
                Err(cur)
            }
        }
    }
}

impl core::fmt::Debug for AtomicU128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let (lo, hi) = self.load();
        f.debug_struct("AtomicU128")
            .field("lo", &lo)
            .field("hi", &hi)
            .finish()
    }
}

#[cfg(not(target_arch = "x86_64"))]
mod fallback {
    use std::sync::Mutex;

    const STRIPES: usize = 64;
    static LOCKS: [Mutex<()>; STRIPES] = [const { Mutex::new(()) }; STRIPES];

    pub(super) fn lock_for(addr: usize) -> &'static Mutex<()> {
        &LOCKS[(addr >> 4) % STRIPES]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn new_load_roundtrip() {
        let a = AtomicU128::new(0xDEAD, 0xBEEF);
        assert_eq!(a.load(), (0xDEAD, 0xBEEF));
        assert_eq!(a.load_lo(), 0xDEAD);
        assert_eq!(a.load_hi(), 0xBEEF);
    }

    #[test]
    fn cas_success_and_failure() {
        let a = AtomicU128::new(1, 1);
        assert_eq!(a.compare_exchange((1, 1), (2, 2)), Ok(()));
        assert_eq!(a.compare_exchange((1, 1), (3, 3)), Err((2, 2)));
        assert_eq!(a.load(), (2, 2));
    }

    #[test]
    fn cas_distinguishes_half_matches() {
        let a = AtomicU128::new(7, 9);
        // Only low half matches.
        assert_eq!(a.compare_exchange((7, 0), (0, 0)), Err((7, 9)));
        // Only high half matches.
        assert_eq!(a.compare_exchange((0, 9), (0, 0)), Err((7, 9)));
        assert_eq!(a.load(), (7, 9));
    }

    #[test]
    fn store_overwrites() {
        let a = AtomicU128::new(0, 0);
        a.store((10, 20));
        assert_eq!(a.load(), (10, 20));
    }

    #[test]
    fn max_values_survive() {
        let a = AtomicU128::new(u64::MAX, u64::MAX);
        assert_eq!(
            a.compare_exchange((u64::MAX, u64::MAX), (u64::MAX - 1, 3)),
            Ok(())
        );
        assert_eq!(a.load(), (u64::MAX - 1, 3));
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        const THREADS: usize = 8;
        const PER: u64 = 5_000;
        let a = Arc::new(AtomicU128::new(0, 0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        let mut cur = a.load();
                        loop {
                            // The pair must move together: hi = 2 * lo.
                            let next = (cur.0 + 1, 2 * (cur.0 + 1));
                            match a.compare_exchange(cur, next) {
                                Ok(()) => break,
                                Err(seen) => cur = seen,
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (lo, hi) = a.load();
        assert_eq!(lo, THREADS as u64 * PER);
        assert_eq!(hi, 2 * lo, "halves must always move atomically together");
    }

    #[test]
    fn alignment_is_sixteen() {
        assert_eq!(core::mem::align_of::<AtomicU128>(), 16);
        assert_eq!(core::mem::size_of::<AtomicU128>(), 16);
    }
}
