//! Tiny deterministic PRNG for benchmark-path randomness.
//!
//! The paper's 50%-enqueues workload flips a uniform coin per operation and
//! the inter-operation "work" is a uniform 50–100 ns delay. Those decisions
//! must not allocate, lock, or dominate the measured path, so we use a
//! xorshift64* generator: one multiply and three shifts per draw, with full
//! 64-bit period for any non-zero seed.

/// Xorshift64* generator (Vigna 2016 parameters).
///
/// ```
/// use wfq_sync::XorShift64;
/// let mut a = XorShift64::new(42);
/// let mut b = XorShift64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic per seed
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from `seed`; a zero seed is remapped to a fixed
    /// non-zero constant (xorshift has a fixed point at 0).
    pub const fn new(seed: u64) -> Self {
        let state = if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed };
        Self { state }
    }

    /// Derives a stream-`i` generator from a base seed, for one-per-thread
    /// seeding (SplitMix64 scramble so nearby ids decorrelate).
    pub const fn for_stream(base: u64, i: u64) -> Self {
        let mut z = base
            .wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(i.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self::new(z)
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw in `[0, bound)` (Lemire's multiply-shift reduction;
    /// slight modulo bias is irrelevant at benchmark bounds ≪ 2^64).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Fair coin flip.
    #[inline]
    pub fn coin(&mut self) -> bool {
        // Use the high bit: xorshift64* low bits are weaker.
        self.next_u64() >> 63 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn streams_differ() {
        let mut a = XorShift64::for_stream(7, 0);
        let mut b = XorShift64::for_stream(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = XorShift64::new(123);
        for _ in 0..10_000 {
            let v = r.next_in(50, 100);
            assert!((50..=100).contains(&v));
        }
    }

    #[test]
    fn coin_is_roughly_fair() {
        let mut r = XorShift64::new(99);
        let heads = (0..100_000).filter(|_| r.coin()).count();
        assert!((40_000..=60_000).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn next_below_covers_small_bounds() {
        let mut r = XorShift64::new(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
