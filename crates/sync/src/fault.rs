//! Deterministic fault injection for schedule testing.
//!
//! The queue's correctness argument lives almost entirely in code that a
//! normal run never exercises: the Kogan–Petrank helping slow paths and
//! the reclaimer's Dijkstra re-verification windows only run when a race
//! is *lost*, and losing a specific race on a real machine is rare and
//! non-reproducible. This module turns those windows into test targets:
//!
//! - Protocol code marks its interesting interleaving points with
//!   [`inject!`]`("area::point")`. In the default build the macro expands
//!   to **literally nothing** — provably so: the expansion is a valid
//!   constant expression, which no atomic load or branch is (see the
//!   `const` guard at the bottom of this file).
//! - Under `--features fault-injection`, each hit bumps a global coverage
//!   counter (so tests can *assert* a window was reached) and consults the
//!   calling thread's installed [`FaultPlan`], which may spin, yield,
//!   sleep, or run an arbitrary test hook at that point.
//!
//! Plans are deterministic: a [`FaultPlan::fuzz`] decision depends only on
//! the plan seed, the point name, and the per-thread hit index — never on
//! wall-clock or global state — so a failing seed printed by a test
//! reproduces the same perturbation sequence on every rerun (modulo OS
//! scheduling, which the perturbations themselves are there to out-shout).
//!
//! Point-naming convention: `"module::window"`, e.g.
//! `"enq_slow::request_published"` — the instrumented crates each export a
//! `FAULT_POINTS` list so sweeps can assert complete coverage.

/// Whether this build has the fault-injection layer compiled in.
pub const ENABLED: bool = cfg!(feature = "fault-injection");

/// Marks a protocol interleaving point.
///
/// Expands to `()` in the default build; with the `fault-injection`
/// feature it calls [`hit`] with the given point name (which must be a
/// `&'static str` literal by convention: `"area::window"`).
#[macro_export]
#[cfg(not(feature = "fault-injection"))]
macro_rules! inject {
    ($point:expr) => {
        ()
    };
}

/// Marks a protocol interleaving point.
///
/// This build has `fault-injection` enabled: every expansion bumps the
/// point's coverage counter and consults the thread's [`FaultPlan`].
#[macro_export]
#[cfg(feature = "fault-injection")]
macro_rules! inject {
    ($point:expr) => {
        $crate::fault::hit($point)
    };
}

// In the default build the whole runtime below is absent; `inject!` cannot
// cost anything because there is nothing for it to call.
#[cfg(feature = "fault-injection")]
mod imp {
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Duration;

    use crate::XorShift64;

    /// What to do when a plan matches an injection point.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum FaultAction {
        /// Do nothing (useful to mask a window out of a fuzz plan).
        None,
        /// `std::thread::yield_now()` — invite the scheduler to interleave.
        Yield,
        /// Busy-spin this many `spin_loop` hints — stretch the window
        /// without a syscall.
        Spin(u32),
        /// Sleep this many microseconds — force other threads through the
        /// window wholesale.
        Sleep(u32),
        /// Kill the operation *inside* the window: notify the registered
        /// crash observer (which typically snapshots a persistent image),
        /// then unwind with a [`CrashPoint`] payload. The crash-injection
        /// harness turns every inject point into a crash point with this;
        /// tests catch the unwind with `std::panic::catch_unwind` and
        /// classify it via [`crash_point`].
        Crash,
    }

    impl FaultAction {
        fn perform(self, point: &'static str) {
            match self {
                FaultAction::None => {}
                FaultAction::Yield => std::thread::yield_now(),
                FaultAction::Spin(n) => {
                    for _ in 0..n {
                        core::hint::spin_loop();
                    }
                }
                FaultAction::Sleep(us) => {
                    std::thread::sleep(Duration::from_micros(u64::from(us)))
                }
                FaultAction::Crash => {
                    if let Some(obs) = crash_observer().lock().unwrap().clone() {
                        obs(point);
                    }
                    std::panic::panic_any(CrashPoint { point });
                }
            }
        }
    }

    /// Unwind payload of a [`FaultAction::Crash`]: which injection point
    /// the simulated crash fired at.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct CrashPoint {
        /// The injection point name (`"area::window"`).
        pub point: &'static str,
    }

    /// Classifies a caught unwind payload: `Some(point)` if it is a
    /// [`CrashPoint`] from a [`FaultAction::Crash`], `None` for any other
    /// panic (a real assertion failure must not be mistaken for a
    /// simulated crash).
    pub fn crash_point(payload: &(dyn std::any::Any + Send)) -> Option<&'static str> {
        payload.downcast_ref::<CrashPoint>().map(|c| c.point)
    }

    fn crash_observer() -> &'static Mutex<Option<Hook>> {
        static OBS: OnceLock<Mutex<Option<Hook>>> = OnceLock::new();
        OBS.get_or_init(|| Mutex::new(None))
    }

    /// Registers a process-global observer run *before* the unwind of every
    /// [`FaultAction::Crash`], on the crashing thread, still inside the
    /// protocol window. This is the crash-snapshot hook: a durable-mode
    /// test captures the persistent image here, at the exact instant of
    /// the simulated power cut. Replaces any previous observer.
    pub fn set_crash_observer(obs: Hook) {
        *crash_observer().lock().unwrap() = Some(obs);
    }

    /// Removes the crash observer.
    pub fn clear_crash_observer() {
        *crash_observer().lock().unwrap() = None;
    }

    /// A test callback run when its point is hit (barriers, flags, …).
    pub type Hook = Arc<dyn Fn(&'static str) + Send + Sync>;

    #[derive(Clone)]
    struct Rule {
        point: &'static str,
        /// Fire from this per-thread hit index (0-based) …
        from_hit: u64,
        /// … for this many hits (`u64::MAX` = forever).
        count: u64,
        action: FaultAction,
        hook: Option<Hook>,
    }

    /// Seeded random perturbation applied to *every* point.
    #[derive(Debug, Clone, Copy)]
    struct Fuzz {
        seed: u64,
        /// Probability of perturbing a given hit, in percent.
        intensity: u32,
    }

    /// A per-thread schedule-perturbation plan.
    ///
    /// Install with [`install`] / [`with_plan`]; consulted on every
    /// [`hit`] by the owning thread. Plans combine a seeded fuzzer (every
    /// point, probabilistic) with targeted rules (exact point, exact hit
    /// range, chosen action or hook). Rules run in addition to — after —
    /// the fuzz decision.
    #[derive(Clone, Default)]
    pub struct FaultPlan {
        fuzz: Option<Fuzz>,
        rules: Vec<Rule>,
    }

    impl std::fmt::Debug for FaultPlan {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("FaultPlan")
                .field("fuzz_seed", &self.fuzz.map(|z| z.seed))
                .field("rules", &self.rules.len())
                .finish()
        }
    }

    impl FaultPlan {
        /// An empty plan (coverage counting only).
        pub fn new() -> Self {
            Self::default()
        }

        /// A seeded fuzz plan: each hit is perturbed with probability
        /// `intensity`% by an action chosen deterministically from
        /// `(seed, point, per-thread hit index)`.
        pub fn fuzz(seed: u64, intensity: u32) -> Self {
            Self {
                fuzz: Some(Fuzz {
                    seed,
                    intensity: intensity.min(100),
                }),
                rules: Vec::new(),
            }
        }

        /// Adds a rule: perform `action` on every hit of `point`.
        pub fn at(self, point: &'static str, action: FaultAction) -> Self {
            self.at_hits(point, 0, u64::MAX, action)
        }

        /// Adds a rule limited to hits `[from_hit, from_hit + count)` of
        /// `point` (per-thread 0-based hit index).
        pub fn at_hits(
            mut self,
            point: &'static str,
            from_hit: u64,
            count: u64,
            action: FaultAction,
        ) -> Self {
            self.rules.push(Rule {
                point,
                from_hit,
                count,
                action,
                hook: None,
            });
            self
        }

        /// Adds a test hook called on every hit of `point` (after any
        /// action rules). Hooks may block — that is their purpose: park a
        /// thread inside a protocol window while the test drives the rest
        /// of the system — but must not themselves call queue operations
        /// (re-entrant hits would consult the same plan).
        pub fn hook(mut self, point: &'static str, hook: Hook) -> Self {
            self.rules.push(Rule {
                point,
                from_hit: 0,
                count: u64::MAX,
                action: FaultAction::None,
                hook: Some(hook),
            });
            self
        }

        /// Like [`Self::hook`], for one specific hit only.
        pub fn hook_at(
            mut self,
            point: &'static str,
            hit: u64,
            hook: Hook,
        ) -> Self {
            self.rules.push(Rule {
                point,
                from_hit: hit,
                count: 1,
                action: FaultAction::None,
                hook: Some(hook),
            });
            self
        }
    }

    struct Installed {
        plan: FaultPlan,
        /// Per-point hit counts of *this thread* under the current plan.
        hits: BTreeMap<&'static str, u64>,
    }

    thread_local! {
        static PLAN: RefCell<Option<Installed>> = const { RefCell::new(None) };
    }

    /// Installs `plan` for the calling thread (replacing any previous one).
    pub fn install(plan: FaultPlan) {
        PLAN.with(|p| {
            *p.borrow_mut() = Some(Installed {
                plan,
                hits: BTreeMap::new(),
            });
        });
    }

    /// Removes the calling thread's plan. Coverage counting continues.
    pub fn clear() {
        PLAN.with(|p| *p.borrow_mut() = None);
    }

    /// Runs `f` with `plan` installed, clearing it afterwards (also on
    /// panic, so a failing assertion cannot leak a plan into later tests
    /// on a reused test-harness thread).
    pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
        struct Guard;
        impl Drop for Guard {
            fn drop(&mut self) {
                clear();
            }
        }
        install(plan);
        let _g = Guard;
        f()
    }

    /// FNV-1a, for mixing point names into fuzz decisions.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        h
    }

    fn fuzz_action(z: Fuzz, point: &'static str, hit_idx: u64) -> FaultAction {
        let mut rng = XorShift64::new(z.seed ^ fnv1a(point) ^ hit_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if rng.next_below(100) >= u64::from(z.intensity) {
            return FaultAction::None;
        }
        match rng.next_below(10) {
            0..=4 => FaultAction::Yield,
            5..=8 => FaultAction::Spin(rng.next_in(16, 2_048) as u32),
            _ => FaultAction::Sleep(rng.next_in(1, 50) as u32),
        }
    }

    /// Exposes the pure fuzz decision function (tests assert determinism).
    #[doc(hidden)]
    pub fn fuzz_decision(
        seed: u64,
        intensity: u32,
        point: &'static str,
        hit_idx: u64,
    ) -> FaultAction {
        fuzz_action(
            Fuzz {
                seed,
                intensity: intensity.min(100),
            },
            point,
            hit_idx,
        )
    }

    fn coverage_map() -> &'static Mutex<BTreeMap<&'static str, u64>> {
        static MAP: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();
        MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// Records a hit of `point`: bumps its global coverage counter, then
    /// lets the calling thread's plan (if any) perturb the schedule.
    /// Called by [`inject!`](crate::inject); not meant to be called
    /// directly.
    pub fn hit(point: &'static str) {
        *coverage_map().lock().unwrap().entry(point).or_insert(0) += 1;

        // Take the plan's decision out of the borrow before acting: a hook
        // may block for a long time and must not hold the RefCell (the
        // action itself cannot re-enter, but keeping borrows short is
        // cheap insurance).
        let mut actions: Vec<FaultAction> = Vec::new();
        let mut hooks: Vec<Hook> = Vec::new();
        PLAN.with(|p| {
            let mut p = p.borrow_mut();
            let Some(installed) = p.as_mut() else { return };
            let idx = installed.hits.entry(point).or_insert(0);
            let hit_idx = *idx;
            *idx += 1;
            if let Some(z) = installed.plan.fuzz {
                actions.push(fuzz_action(z, point, hit_idx));
            }
            for rule in &installed.plan.rules {
                if rule.point == point
                    && hit_idx >= rule.from_hit
                    && hit_idx - rule.from_hit < rule.count
                {
                    actions.push(rule.action);
                    if let Some(h) = &rule.hook {
                        hooks.push(Arc::clone(h));
                    }
                }
            }
        });
        for a in actions {
            a.perform(point);
        }
        for h in hooks {
            h(point);
        }
    }

    /// Snapshot of every point hit so far (process-global).
    pub fn coverage() -> BTreeMap<&'static str, u64> {
        coverage_map().lock().unwrap().clone()
    }

    /// Global hit count of one point.
    pub fn coverage_count(point: &str) -> u64 {
        coverage_map()
            .lock()
            .unwrap()
            .get(point)
            .copied()
            .unwrap_or(0)
    }

    /// Resets all coverage counters (between sweep phases).
    pub fn reset_coverage() {
        coverage_map().lock().unwrap().clear();
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::*;

// Zero-overhead guard, statically checked: with the feature off, the
// macro's expansion must be a constant expression. Atomic loads, branches
// on globals, and function calls are not permitted in constants, so this
// item compiling *proves* the default-build fast path carries no trace of
// the injection layer. (The runtime twin of this guard lives in the
// `primitives` bench: an `inject!`-laden loop prices identically to a bare
// one.)
#[cfg(not(feature = "fault-injection"))]
const _ZERO_OVERHEAD_PROOF: () = {
    inject!("fault::zero_overhead_proof");
};

#[cfg(test)]
mod tests {
    #[test]
    fn enabled_reflects_the_feature() {
        assert_eq!(super::ENABLED, cfg!(feature = "fault-injection"));
    }

    #[cfg(not(feature = "fault-injection"))]
    #[test]
    fn default_build_macro_is_a_unit_expression() {
        // The macro must be usable as a plain expression...
        let unit: () = inject!("fault::test_point");
        // ...and in const position (re-asserting the static guard above
        // from a test, so a regression fails loudly in `cargo test`).
        const IN_CONST: () = inject!("fault::test_point_const");
        assert_eq!(unit, IN_CONST);
    }

    #[cfg(feature = "fault-injection")]
    mod enabled {
        use super::super::*;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        #[test]
        fn hits_are_counted_globally() {
            let before = coverage_count("fault::self_test");
            inject!("fault::self_test");
            inject!("fault::self_test");
            assert_eq!(coverage_count("fault::self_test"), before + 2);
        }

        #[test]
        fn rules_fire_on_their_hit_window_only() {
            let fired = Arc::new(AtomicU64::new(0));
            let f = Arc::clone(&fired);
            let plan = FaultPlan::new().hook_at(
                "fault::windowed",
                2,
                Arc::new(move |_| {
                    f.fetch_add(1, Ordering::Relaxed);
                }),
            );
            with_plan(plan, || {
                for _ in 0..5 {
                    inject!("fault::windowed");
                }
            });
            assert_eq!(fired.load(Ordering::Relaxed), 1, "hit #2 only");
        }

        #[test]
        fn fuzz_decisions_are_deterministic_per_seed() {
            // Same (seed, point, hit) → same action; different seed →
            // (almost surely) a different action sequence.
            let seq = |seed: u64| -> Vec<FaultAction> {
                (0..64)
                    .map(|i| fuzz_decision(seed, 100, "fault::det", i))
                    .collect()
            };
            assert_eq!(seq(7), seq(7));
            assert_ne!(seq(7), seq(8));
            // Zero intensity never perturbs.
            for i in 0..64 {
                assert_eq!(fuzz_decision(7, 0, "fault::det", i), FaultAction::None);
            }
        }

        #[test]
        fn crash_action_unwinds_with_a_classifiable_payload() {
            let plan = FaultPlan::new().at_hits("fault::crash_here", 1, 1, FaultAction::Crash);
            let err = with_plan(plan, || {
                std::panic::catch_unwind(|| {
                    inject!("fault::crash_here"); // hit 0: survives
                    inject!("fault::crash_here"); // hit 1: crashes
                    unreachable!("crash rule must fire on hit 1");
                })
                .unwrap_err()
            });
            assert_eq!(crash_point(&*err), Some("fault::crash_here"));
            // An ordinary panic is not classified as a crash.
            let other = std::panic::catch_unwind(|| panic!("plain")).unwrap_err();
            assert_eq!(crash_point(&*other), None);
        }

        #[test]
        fn crash_observer_runs_before_the_unwind() {
            let seen = Arc::new(std::sync::Mutex::new(Vec::<&'static str>::new()));
            let s = Arc::clone(&seen);
            set_crash_observer(Arc::new(move |p| s.lock().unwrap().push(p)));
            let plan = FaultPlan::new().at("fault::crash_observed", FaultAction::Crash);
            let err = with_plan(plan, || {
                std::panic::catch_unwind(|| inject!("fault::crash_observed")).unwrap_err()
            });
            clear_crash_observer();
            assert_eq!(crash_point(&*err), Some("fault::crash_observed"));
            assert_eq!(*seen.lock().unwrap(), vec!["fault::crash_observed"]);
            // Cleared observer: a later crash no longer notifies.
            let plan = FaultPlan::new().at("fault::crash_observed", FaultAction::Crash);
            with_plan(plan, || {
                let _ = std::panic::catch_unwind(|| inject!("fault::crash_observed"));
            });
            assert_eq!(seen.lock().unwrap().len(), 1);
        }

        #[test]
        fn with_plan_clears_on_exit() {
            let fired = Arc::new(AtomicU64::new(0));
            let f = Arc::clone(&fired);
            with_plan(
                FaultPlan::new().hook(
                    "fault::scoped",
                    Arc::new(move |_| {
                        f.fetch_add(1, Ordering::Relaxed);
                    }),
                ),
                || inject!("fault::scoped"),
            );
            inject!("fault::scoped"); // outside the scope: no hook
            assert_eq!(fired.load(Ordering::Relaxed), 1);
        }
    }
}
