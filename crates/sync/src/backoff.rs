//! Bounded exponential backoff for CAS retry loops.
//!
//! The baselines in the paper (MS-Queue in particular) suffer from the *CAS
//! retry problem*: under contention most CASes fail and the failed work is
//! thrown away. Production implementations soften this with exponential
//! backoff; we provide the standard bounded scheme so that the baseline
//! numbers reflect a competently tuned implementation rather than a straw
//! man. The wait-free queue itself never calls this on its fast path — its
//! FAA always succeeds.

use core::hint;
use core::sync::atomic::{fence, Ordering};

/// Exponent limit for the spin phase (2^6 = 64 `pause` hints per step).
const SPIN_LIMIT: u32 = 6;
/// Exponent limit after which [`Backoff::is_completed`] reports saturation.
const YIELD_LIMIT: u32 = 10;

/// Bounded exponential backoff.
///
/// ```
/// use wfq_sync::Backoff;
/// let mut tries = 0;
/// let backoff = Backoff::new();
/// loop {
///     tries += 1;
///     if tries == 3 { break; }
///     backoff.snooze();
/// }
/// assert_eq!(tries, 3);
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: core::cell::Cell<u32>,
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

impl Backoff {
    /// Creates a fresh backoff in its fastest state.
    pub const fn new() -> Self {
        Self {
            step: core::cell::Cell::new(0),
        }
    }

    /// Resets to the fastest state (call after a successful CAS).
    pub fn reset(&self) {
        self.step.set(0);
    }

    /// Spins for `2^step` pause hints without yielding the CPU.
    ///
    /// Use when the conflicting thread is likely running on another core.
    pub fn spin(&self) {
        let step = self.step.get().min(SPIN_LIMIT);
        for _ in 0..1u32 << step {
            hint::spin_loop();
        }
        if self.step.get() <= SPIN_LIMIT {
            self.step.set(self.step.get() + 1);
        }
    }

    /// Spins while cheap, then starts yielding the OS scheduler.
    ///
    /// Use when the conflicting thread may be descheduled — the relevant
    /// regime for oversubscribed runs (cf. the 144/288-thread rows of the
    /// paper's Table 2).
    pub fn snooze(&self) {
        if self.step.get() <= SPIN_LIMIT {
            self.spin();
        } else {
            std::thread::yield_now();
            if self.step.get() <= YIELD_LIMIT {
                self.step.set(self.step.get() + 1);
            }
        }
    }

    /// True once the backoff has saturated; callers may switch strategies
    /// (e.g. park, or fall to a slow path) at this point.
    pub fn is_completed(&self) -> bool {
        self.step.get() > YIELD_LIMIT
    }
}

/// Issues a sequentially consistent fence.
///
/// On x86 this compiles to `mfence`; it is the fence the paper inserts after
/// hazard-pointer publication in `help_deq` (the only place the algorithm
/// needs one on x86, since FAA/CAS are already full barriers).
#[inline]
pub fn full_fence() {
    fence(Ordering::SeqCst);
}

/// Compiler-only fence preventing reordering without emitting an instruction.
#[inline]
pub fn compiler_fence() {
    core::sync::atomic::compiler_fence(Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fast_and_saturates() {
        let b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..64 {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_never_marks_completed() {
        let b = Backoff::new();
        for _ in 0..1000 {
            b.spin();
        }
        // spin() saturates the *spin* exponent but never crosses into the
        // yield regime, so is_completed stays false.
        assert!(!b.is_completed());
    }

    #[test]
    fn fences_execute() {
        full_fence();
        compiler_fence();
    }
}
