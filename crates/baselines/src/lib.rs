//! Baseline concurrent queues from the paper's evaluation (§2, §5).
//!
//! The paper compares its wait-free queue against the strongest
//! representatives of each design school, all implemented here from their
//! original papers:
//!
//! | Module | Algorithm | Progress | Hot-spot primitive |
//! |---|---|---|---|
//! | [`msqueue`] | Michael & Scott 1996 (hazard pointers) | lock-free | CAS (retry loops) |
//! | [`msqueue_ebr`] | Michael & Scott 1996 (epoch reclamation) | lock-free | CAS (retry loops) |
//! | [`kpqueue`] | Kogan & Petrank 2011 | wait-free | CAS + phase-ordered helping |
//! | [`lcrq`] | Morrison & Afek 2013 (CRQ ring + list) | lock-free | FAA + CAS2 |
//! | [`ccqueue`] | Fatourou & Kallimanis 2012 (CC-Synch) | blocking | SWAP + combining |
//! | [`faa`] | FAA-only microbenchmark | wait-free* | FAA |
//! | [`mutex_queue`] | `Mutex<VecDeque>` reference | blocking | lock |
//! | [`scq`] | Nikolaev 2019 (SCQ indirect ring) | lock-free | FAA + CAS |
//! | [`wcq`] | Nikolaev & Ravindran 2022 (wCQ) | wait-free† | FAA + CAS2 |
//!
//! (†wait-free completion via helping records; see the [`wcq`] module for
//! the exact progress contract of this implementation.)
//!
//! (*the FAA microbenchmark is not a queue — it upper-bounds every
//! FAA-based queue's throughput; §5 "simulates enqueue and dequeue
//! operations with FAA primitives on two shared variables".)
//!
//! MS-Queue and LCRQ are retrofitted with hazard-pointer reclamation
//! exactly as the paper does ("To LCRQ and MS-Queue, we added
//! implementations of the hazard pointer scheme to reclaim memory").
//!
//! All queues implement [`BenchQueue`], the uniform harness interface, and
//! carry the same value restriction as the raw wait-free queue: values in
//! `1 ..= u64::MAX - 2` (sentinel patterns reserved).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod ccqueue;
pub mod crq;
pub mod faa;
pub mod kpqueue;
pub mod lcrq;
pub mod msqueue;
pub mod msqueue_ebr;
pub mod mutex_queue;
pub mod scq;
pub mod wcq;

pub use ccqueue::CcQueue;
pub use faa::FaaBench;
pub use kpqueue::KpQueue;
pub use lcrq::Lcrq;
pub use msqueue::MsQueue;
pub use msqueue_ebr::MsQueueEbr;
pub use mutex_queue::MutexQueue;
pub use scq::Scq;
pub use wcq::Wcq;

// The uniform queue interface graduated to `wfqueue` as the production
// `QueueBackend` API (so the wait-free queue's own impl can live next to
// the queue, and non-bench consumers don't pull this crate in). The
// historical `BenchQueue`/`QueueHandle` names stay as aliases: every
// existing impl and import keeps working.
pub use wfqueue::{BackendHandle, QueueBackend};
pub use wfqueue::{BackendHandle as QueueHandle, QueueBackend as BenchQueue};

mod wf_impl {
    use super::{BenchQueue, QueueHandle};
    use wfqueue::{Config, Full, Gauges, Handle, OpSample, QueueStats, RawQueue};

    /// Newtype selecting the paper's WF-0 configuration (patience 0).
    pub struct Wf0(pub RawQueue);

    /// Handle for [`Wf0`].
    pub struct Wf0Handle<'q>(Handle<'q>);

    impl QueueHandle for Wf0Handle<'_> {
        #[inline]
        fn enqueue(&mut self, v: u64) {
            self.0.enqueue(v);
        }
        #[inline]
        fn dequeue(&mut self) -> Option<u64> {
            self.0.dequeue()
        }
        #[inline]
        fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
            self.0.try_enqueue(v)
        }
        #[inline]
        fn enqueue_batch(&mut self, vs: &[u64]) {
            self.0.enqueue_batch(vs);
        }
        #[inline]
        fn try_enqueue_batch(&mut self, vs: &[u64]) -> Result<(), Full> {
            self.0.try_enqueue_batch(vs)
        }
        #[inline]
        fn dequeue_batch(&mut self, out: &mut Vec<u64>, max: usize) -> usize {
            self.0.dequeue_batch(out, max)
        }
        #[inline]
        fn last_op_sample(&self) -> Option<OpSample> {
            Handle::last_op_sample(&self.0)
        }
    }

    impl BenchQueue for Wf0 {
        type Handle<'q> = Wf0Handle<'q>;
        const NAME: &'static str = "WF-0";
        const HONORS_CEILING: bool = true;
        fn new() -> Self {
            Wf0(RawQueue::with_config(Config::wf0()))
        }
        fn with_ceiling(ceiling: Option<u64>) -> Self {
            let mut config = Config::wf0();
            if let Some(c) = ceiling {
                config = config.with_segment_ceiling(c);
            }
            Wf0(RawQueue::with_config(config))
        }
        fn register(&self) -> Self::Handle<'_> {
            Wf0Handle(self.0.register())
        }
        fn stats(&self) -> QueueStats {
            self.0.stats()
        }
        fn gauges(&self) -> Option<Gauges> {
            Some(self.0.gauges())
        }
        fn reclaim_hint(&self) -> bool {
            true
        }
    }
}

pub use wf_impl::{Wf0, Wf0Handle};

#[cfg(test)]
mod wf_conformance {
    use super::*;

    #[test]
    fn wf10_batch_roundtrip_native() {
        conformance::batch_roundtrip::<wfqueue::RawQueue>();
    }

    #[test]
    fn wf0_batch_roundtrip_native() {
        conformance::batch_roundtrip::<Wf0>();
    }
}

/// Named fault-injection points compiled into the baselines (see
/// [`wfqueue::FAULT_POINTS`] for the naming convention). These cover the
/// hazard-pointer unlink/retire windows of the reference queues so the
/// schedule fuzzer can stress the baselines with the same machinery.
pub const FAULT_POINTS: &[&str] = &[
    "lcrq::enq::tail_protected",
    "lcrq::enq::ring_closed",
    "lcrq::deq::pre_unlink",
    "msq::enq::tail_protected",
    "msq::deq::next_protected",
    "msq::deq::pre_unlink",
    "scq::enq::pre_cas",
    "scq::enq::threshold_reset",
    "scq::deq::pre_consume",
    "scq::deq::slot_advance",
    "scq::deq::threshold_decrement",
    "scq::deq::catchup",
    "wcq::enq_slow::published",
    "wcq::enq_slow::install",
    "wcq::enq_slow::finalize",
    "wcq::deq_slow::published",
    "wcq::deq_slow::consume_mark",
    "wcq::deq_slow::finalize",
    "wcq::help::takeover",
];

/// Shared conformance tests: every [`BenchQueue`] must pass these.
#[cfg(test)]
pub(crate) mod conformance {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    pub fn fifo_single_thread<Q: BenchQueue>() {
        let q = Q::new();
        let mut h = q.register();
        for v in 1..=500 {
            h.enqueue(v);
        }
        for v in 1..=500 {
            assert_eq!(h.dequeue(), Some(v), "{} broke FIFO", Q::NAME);
        }
        assert_eq!(h.dequeue(), None, "{} not empty at end", Q::NAME);
    }

    pub fn interleaved_single_thread<Q: BenchQueue>() {
        let q = Q::new();
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(h.dequeue(), Some(1));
        h.enqueue(3);
        assert_eq!(h.dequeue(), Some(2));
        assert_eq!(h.dequeue(), Some(3));
        assert_eq!(h.dequeue(), None);
    }

    pub fn batch_roundtrip<Q: BenchQueue>() {
        // Exercises the batch entry points every handle exposes (native
        // one-FAA batches on the wait-free queue, the loop fallback
        // elsewhere): FIFO across mixed widths, and a trimmed final batch.
        let q = Q::new();
        let mut h = q.register();
        let vals: Vec<u64> = (1..=100).collect();
        for chunk in vals.chunks(7) {
            h.enqueue_batch(chunk);
        }
        let mut out = Vec::new();
        let mut got = 0;
        while got < 100 {
            let n = h.dequeue_batch(&mut out, 9);
            assert!(n > 0, "{} went empty early at {got}", Q::NAME);
            got += n;
        }
        assert_eq!(out, vals, "{} broke batch FIFO", Q::NAME);
        assert_eq!(h.dequeue_batch(&mut out, 4), 0, "{} not empty", Q::NAME);
    }

    pub fn mpmc_conservation<Q: BenchQueue>(producers: u64, consumers: u64, per: u64) {
        let q = Q::new();
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        let total = producers * per;
        std::thread::scope(|s| {
            for t in 0..producers {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..per {
                        h.enqueue(t * per + v + 1);
                    }
                });
            }
            for _ in 0..consumers {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register();
                    loop {
                        if count.load(Ordering::Relaxed) >= total {
                            break;
                        }
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), total, "{} lost values", Q::NAME);
        let expect: u64 = (1..=total).sum();
        assert_eq!(sum.load(Ordering::Relaxed), expect, "{} corrupted values", Q::NAME);
    }
}
