//! The Kogan–Petrank wait-free queue (PPoPP 2011) — the *previous*
//! state-of-the-art wait-free queue the paper positions itself against.
//!
//! §2: *"The first practical implementation of a wait-free queue was
//! proposed by Kogan and Petrank. Their queue is based on MS-Queue. To
//! achieve wait-freedom, it employs a priority-based helping scheme in
//! which faster threads help slower threads complete their pending
//! operations. In most cases, this queue does not perform as well as the
//! MS-Queue due to the overhead of its helping mechanism."*
//!
//! Every operation takes a *phase* number; each thread publishes an
//! operation descriptor in a shared state array, then helps every thread
//! with an equal-or-smaller phase before completing — that global helping
//! is what makes it wait-free, and also what makes it slow (one descriptor
//! allocation per operation, O(n) descriptor scans, CAS retry storms on
//! head/tail inherited from MS-Queue).
//!
//! ## Memory management
//!
//! The original is a Java algorithm that leans on garbage collection;
//! descriptors and dequeued nodes are reachable from the shared state
//! array in ways hazard pointers do not cleanly cover. Like the prior
//! work the paper criticizes for "assuming that a 3rd party garbage
//! collector would handle the matter", this baseline *defers* reclamation:
//! every allocation is logged and freed when the queue drops (an
//! arena-with-queue-lifetime). Memory therefore grows during a run —
//! which is itself a faithful reproduction of the baseline's practical
//! limitation, and is called out in EXPERIMENTS.md where it appears.

use core::sync::atomic::{AtomicI64, AtomicPtr, Ordering};

use std::sync::Mutex;
use wfq_sync::CachePadded;

use crate::{BenchQueue, QueueHandle};

/// Maximum number of registered threads (the state array is fixed-size,
/// as in the original algorithm).
pub const MAX_THREADS: usize = 64;

const NO_TID: i64 = -1;

struct Node {
    value: u64,
    enq_tid: i64,
    deq_tid: AtomicI64,
    next: AtomicPtr<Node>,
}

impl Node {
    fn alloc(value: u64, enq_tid: i64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            value,
            enq_tid,
            deq_tid: AtomicI64::new(NO_TID),
            next: AtomicPtr::new(core::ptr::null_mut()),
        }))
    }
}

/// Immutable operation descriptor; a new one is published per transition
/// (the original's `OpDesc`).
struct OpDesc {
    phase: u64,
    pending: bool,
    enqueue: bool,
    node: *mut Node,
}

impl OpDesc {
    fn alloc(phase: u64, pending: bool, enqueue: bool, node: *mut Node) -> *mut OpDesc {
        Box::into_raw(Box::new(OpDesc {
            phase,
            pending,
            enqueue,
            node,
        }))
    }
}

/// The Kogan–Petrank wait-free queue.
pub struct KpQueue {
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    /// Per-thread operation descriptors (the `state` array).
    state: Box<[AtomicPtr<OpDesc>]>,
    /// Registration bitmap-ish: next free tid and recycled tids.
    tids: Mutex<TidPool>,
    /// Deferred-reclamation logs (descriptors and nodes), freed on drop.
    garbage: Mutex<Garbage>,
}

struct TidPool {
    next: usize,
    free: Vec<usize>,
}

#[derive(Default)]
struct Garbage {
    nodes: Vec<*mut Node>,
    descs: Vec<*mut OpDesc>,
}

// SAFETY: all shared mutation is via atomics; deferred frees happen with
// exclusive access at drop.
unsafe impl Send for KpQueue {}
unsafe impl Sync for KpQueue {}

/// Per-thread handle for [`KpQueue`].
pub struct KpHandle<'q> {
    q: &'q KpQueue,
    tid: usize,
    /// Allocation log, merged into the queue's garbage on drop.
    nodes: Vec<*mut Node>,
    descs: Vec<*mut OpDesc>,
}

// SAFETY: handle-local logs are exclusively owned.
unsafe impl Send for KpHandle<'_> {}

impl KpQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let sentinel = Node::alloc(0, NO_TID);
        let state: Box<[AtomicPtr<OpDesc>]> = (0..MAX_THREADS)
            .map(|_| {
                // Initial descriptor: phase 0, not pending.
                AtomicPtr::new(OpDesc::alloc(0, false, true, core::ptr::null_mut()))
            })
            .collect();
        let mut garbage = Garbage::default();
        garbage.nodes.push(sentinel);
        for s in state.iter() {
            garbage.descs.push(s.load(Ordering::Relaxed));
        }
        Self {
            head: CachePadded::new(AtomicPtr::new(sentinel)),
            tail: CachePadded::new(AtomicPtr::new(sentinel)),
            state,
            tids: Mutex::new(TidPool {
                next: 0,
                free: Vec::new(),
            }),
            garbage: Mutex::new(garbage),
        }
    }

    /// Registers the calling thread. Panics if more than [`MAX_THREADS`]
    /// handles are live simultaneously.
    pub fn register(&self) -> KpHandle<'_> {
        let mut pool = self.tids.lock().unwrap();
        let tid = pool.free.pop().unwrap_or_else(|| {
            let t = pool.next;
            assert!(t < MAX_THREADS, "KpQueue supports at most {MAX_THREADS} threads");
            pool.next += 1;
            t
        });
        KpHandle {
            q: self,
            tid,
            nodes: Vec::new(),
            descs: Vec::new(),
        }
    }

    #[inline]
    fn desc(&self, tid: usize) -> &OpDesc {
        // SAFETY: descriptors are never freed while the queue lives.
        unsafe { &*self.state[tid].load(Ordering::SeqCst) }
    }

    /// Phase assignment: one greater than any announced phase.
    fn max_phase(&self) -> u64 {
        let mut max = 0;
        for s in self.state.iter() {
            // SAFETY: as above.
            let d = unsafe { &*s.load(Ordering::SeqCst) };
            max = max.max(d.phase);
        }
        max
    }

    fn is_still_pending(&self, tid: usize, phase: u64) -> bool {
        let d = self.desc(tid);
        d.pending && d.phase <= phase
    }

    /// Helps every thread whose announced phase is ≤ `phase` (the global
    /// helping loop that buys wait-freedom).
    fn help(&self, h: &mut KpHandle<'_>, phase: u64) {
        for tid in 0..self.state.len() {
            let d = self.desc(tid);
            if d.pending && d.phase <= phase {
                if d.enqueue {
                    self.help_enq(h, tid, phase);
                } else {
                    self.help_deq(h, tid, phase);
                }
            }
        }
    }

    fn help_enq(&self, _h: &mut KpHandle<'_>, tid: usize, phase: u64) {
        while self.is_still_pending(tid, phase) {
            let last = self.tail.load(Ordering::SeqCst);
            // SAFETY: nodes are never freed while the queue lives.
            let next = unsafe { (*last).next.load(Ordering::SeqCst) };
            if last != self.tail.load(Ordering::SeqCst) {
                continue;
            }
            if next.is_null() {
                if self.is_still_pending(tid, phase) {
                    let node = self.desc(tid).node;
                    // SAFETY: as above.
                    if unsafe {
                        (*last)
                            .next
                            .compare_exchange(
                                core::ptr::null_mut(),
                                node,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                            .is_ok()
                    } {
                        self.help_finish_enq(_h);
                        return;
                    }
                }
            } else {
                self.help_finish_enq(_h);
            }
        }
    }

    fn help_finish_enq(&self, h: &mut KpHandle<'_>) {
        let last = self.tail.load(Ordering::SeqCst);
        // SAFETY: nodes live for the queue's lifetime.
        let next = unsafe { (*last).next.load(Ordering::SeqCst) };
        if next.is_null() {
            return;
        }
        // SAFETY: as above.
        let enq_tid = unsafe { (*next).enq_tid };
        if enq_tid != NO_TID {
            let tid = enq_tid as usize;
            let cur_ptr = self.state[tid].load(Ordering::SeqCst);
            // SAFETY: descriptors live for the queue's lifetime.
            let cur = unsafe { &*cur_ptr };
            if last == self.tail.load(Ordering::SeqCst) && cur.node == next {
                let newd = OpDesc::alloc(cur.phase, false, true, next);
                h.descs.push(newd);
                let _ = self.state[tid].compare_exchange(
                    cur_ptr,
                    newd,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                let _ =
                    self.tail
                        .compare_exchange(last, next, Ordering::SeqCst, Ordering::SeqCst);
            }
        } else {
            // Sentinel-enqueued node (not produced by this algorithm's
            // enqueue): just swing the tail.
            let _ = self
                .tail
                .compare_exchange(last, next, Ordering::SeqCst, Ordering::SeqCst);
        }
    }

    fn help_deq(&self, h: &mut KpHandle<'_>, tid: usize, phase: u64) {
        while self.is_still_pending(tid, phase) {
            let first = self.head.load(Ordering::SeqCst);
            let last = self.tail.load(Ordering::SeqCst);
            // SAFETY: nodes live for the queue's lifetime.
            let next = unsafe { (*first).next.load(Ordering::SeqCst) };
            if first != self.head.load(Ordering::SeqCst) {
                continue;
            }
            if first == last {
                if next.is_null() {
                    // Queue empty: complete with a null node (EMPTY).
                    let cur_ptr = self.state[tid].load(Ordering::SeqCst);
                    // SAFETY: as above.
                    let cur = unsafe { &*cur_ptr };
                    if last == self.tail.load(Ordering::SeqCst)
                        && self.is_still_pending(tid, phase)
                    {
                        let newd = OpDesc::alloc(cur.phase, false, false, core::ptr::null_mut());
                        h.descs.push(newd);
                        let _ = self.state[tid].compare_exchange(
                            cur_ptr,
                            newd,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                    }
                } else {
                    // Tail lagging: help the enqueue along first.
                    self.help_finish_enq(h);
                }
            } else {
                let cur_ptr = self.state[tid].load(Ordering::SeqCst);
                // SAFETY: as above.
                let cur = unsafe { &*cur_ptr };
                if !self.is_still_pending(tid, phase) {
                    break;
                }
                if first == self.head.load(Ordering::SeqCst) && cur.node != first {
                    // Record the candidate head in the descriptor first.
                    let newd = OpDesc::alloc(cur.phase, true, false, first);
                    h.descs.push(newd);
                    if self
                        .state[tid]
                        .compare_exchange(cur_ptr, newd, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        continue;
                    }
                }
                // SAFETY: as above.
                let _ = unsafe {
                    (*first).deq_tid.compare_exchange(
                        NO_TID,
                        tid as i64,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                };
                self.help_finish_deq(h);
            }
        }
    }

    fn help_finish_deq(&self, h: &mut KpHandle<'_>) {
        let first = self.head.load(Ordering::SeqCst);
        // SAFETY: nodes live for the queue's lifetime.
        let next = unsafe { (*first).next.load(Ordering::SeqCst) };
        let tid = unsafe { (*first).deq_tid.load(Ordering::SeqCst) };
        if tid != NO_TID {
            let tid = tid as usize;
            let cur_ptr = self.state[tid].load(Ordering::SeqCst);
            // SAFETY: descriptors live for the queue's lifetime.
            let cur = unsafe { &*cur_ptr };
            if first == self.head.load(Ordering::SeqCst) && !next.is_null() {
                let newd = OpDesc::alloc(cur.phase, false, false, cur.node);
                h.descs.push(newd);
                let _ = self.state[tid].compare_exchange(
                    cur_ptr,
                    newd,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                let _ =
                    self.head
                        .compare_exchange(first, next, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
    }
}

impl Default for KpQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for KpQueue {
    fn drop(&mut self) {
        let g = self.garbage.get_mut().unwrap();
        for &d in &g.descs {
            // SAFETY: exclusive access at drop; every descriptor was logged
            // exactly once.
            unsafe { drop(Box::from_raw(d)) };
        }
        for &n in &g.nodes {
            // SAFETY: as above; nodes are logged exactly once (list links
            // are not followed, so no double free).
            unsafe { drop(Box::from_raw(n)) };
        }
    }
}

impl KpHandle<'_> {
    /// Enqueues `v` (wait-free via phase-ordered helping).
    pub fn enqueue(&mut self, v: u64) {
        let q = self.q;
        let phase = q.max_phase() + 1;
        let node = Node::alloc(v, self.tid as i64);
        self.nodes.push(node);
        let desc = OpDesc::alloc(phase, true, true, node);
        self.descs.push(desc);
        q.state[self.tid].store(desc, Ordering::SeqCst);
        q.help(
            // Reborrow dance: help mutates only the allocation logs.
            unsafe { &mut *(self as *mut Self) },
            phase,
        );
        q.help_finish_enq(unsafe { &mut *(self as *mut Self) });
    }

    /// Dequeues the oldest value (wait-free), or `None` if empty.
    pub fn dequeue(&mut self) -> Option<u64> {
        let q = self.q;
        let phase = q.max_phase() + 1;
        let desc = OpDesc::alloc(phase, true, false, core::ptr::null_mut());
        self.descs.push(desc);
        q.state[self.tid].store(desc, Ordering::SeqCst);
        q.help(unsafe { &mut *(self as *mut Self) }, phase);
        q.help_finish_deq(unsafe { &mut *(self as *mut Self) });
        let node = q.desc(self.tid).node;
        if node.is_null() {
            return None; // EMPTY
        }
        // The descriptor records the *old* head; the dequeued value lives
        // in its successor (which becomes the new sentinel).
        // SAFETY: nodes live for the queue's lifetime.
        let next = unsafe { (*node).next.load(Ordering::SeqCst) };
        debug_assert!(!next.is_null());
        Some(unsafe { (*next).value })
    }
}

impl Drop for KpHandle<'_> {
    fn drop(&mut self) {
        let mut g = self.q.garbage.lock().unwrap();
        g.nodes.append(&mut self.nodes);
        g.descs.append(&mut self.descs);
        self.q.tids.lock().unwrap().free.push(self.tid);
    }
}

impl QueueHandle for KpHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        KpHandle::enqueue(self, v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        KpHandle::dequeue(self)
    }
}

impl BenchQueue for KpQueue {
    type Handle<'q> = KpHandle<'q>;
    const NAME: &'static str = "KPQUEUE";
    fn new() -> Self {
        KpQueue::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        KpQueue::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<KpQueue>();
    }

    #[test]
    fn interleaved() {
        conformance::interleaved_single_thread::<KpQueue>();
    }

    #[test]
    fn batch_roundtrip() {
        conformance::batch_roundtrip::<KpQueue>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<KpQueue>(2, 2, 1_500);
    }

    #[test]
    fn tid_recycling() {
        let q = KpQueue::new();
        let t0 = {
            let h = q.register();
            h.tid
        };
        let h2 = q.register();
        assert_eq!(h2.tid, t0, "dropped tid must be recycled");
    }

    #[test]
    fn drop_frees_all_logged_allocations() {
        // Mostly a sanitizer target: heavy traffic then drop.
        let q = KpQueue::new();
        {
            let mut h = q.register();
            for v in 1..=2_000 {
                h.enqueue(v);
            }
            for _ in 0..1_000 {
                h.dequeue();
            }
        }
        drop(q);
    }

    #[test]
    fn empty_dequeue_is_none() {
        let q = KpQueue::new();
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        h.enqueue(3);
        assert_eq!(h.dequeue(), Some(3));
        assert_eq!(h.dequeue(), None);
    }
}
