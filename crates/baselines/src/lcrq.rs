//! LCRQ — the List of Concurrent Ring Queues (Morrison & Afek, PPoPP 2013),
//! with hazard-pointer reclamation.
//!
//! LCRQ is the paper's strongest baseline: like MS-Queue it is a linked
//! list with head/tail pointers, but each node is a whole [`Crq`] ring, so
//! the hot-path synchronization is one FAA (index claim) plus one CAS2
//! (cell settle) instead of a contended CAS retry loop. The paper's queue
//! matches LCRQ's throughput while adding wait-freedom and shedding the
//! CAS2 requirement (Figure 2 has no LCRQ line on Xeon Phi or Power7 for
//! exactly that reason).
//!
//! The list management mirrors MS-Queue: a closed, drained CRQ at the head
//! is unlinked and retired through the hazard-pointer domain; enqueues that
//! find the tail CRQ closed append a fresh CRQ seeded with their value.

use core::sync::atomic::{AtomicPtr, Ordering};

use wfq_reclaim::{Domain, HazardThread};
use wfq_sync::{inject, CachePadded};

use crate::crq::{Crq, CrqPush, DEFAULT_RING_ORDER};
use crate::{BenchQueue, QueueHandle};

fn crq_alloc(order: u32) -> *mut Crq {
    Box::into_raw(Box::new(Crq::new(order)))
}

unsafe fn crq_deleter(p: *mut u8) {
    // SAFETY: only invoked on pointers produced by crq_alloc.
    unsafe { drop(Box::from_raw(p as *mut Crq)) };
}

/// The LCRQ queue: a list of ring queues.
///
/// ```
/// use wfq_baselines::{BenchQueue, QueueHandle, Lcrq};
/// let q = Lcrq::new();
/// let mut h = q.register();
/// h.enqueue(5);
/// assert_eq!(h.dequeue(), Some(5));
/// ```
pub struct Lcrq {
    head: CachePadded<AtomicPtr<Crq>>,
    tail: CachePadded<AtomicPtr<Crq>>,
    domain: Domain,
    ring_order: u32,
}

// SAFETY: CRQs are shared via atomics under hazard protection.
unsafe impl Send for Lcrq {}
unsafe impl Sync for Lcrq {}

/// Per-thread handle for [`Lcrq`].
pub struct LcrqHandle<'q> {
    q: &'q Lcrq,
    hazard: HazardThread<'q>,
}

impl Lcrq {
    /// Creates an empty queue with the paper's ring size (2^12).
    pub fn new() -> Self {
        Self::with_ring_order(DEFAULT_RING_ORDER)
    }

    /// Creates an empty queue with `2^order` cells per ring.
    pub fn with_ring_order(order: u32) -> Self {
        let first = crq_alloc(order);
        Self {
            head: CachePadded::new(AtomicPtr::new(first)),
            tail: CachePadded::new(AtomicPtr::new(first)),
            domain: Domain::new(),
            ring_order: order,
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> LcrqHandle<'_> {
        LcrqHandle {
            q: self,
            hazard: self.domain.register(),
        }
    }
}

impl Default for Lcrq {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Lcrq {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; CRQs were Box-allocated.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

impl LcrqHandle<'_> {
    /// Enqueues `v`.
    pub fn enqueue(&mut self, v: u64) {
        loop {
            let crq = self.hazard.protect(0, &self.q.tail);
            inject!("lcrq::enq::tail_protected");
            // SAFETY: protected.
            let next = unsafe { (*crq).next.load(Ordering::Acquire) };
            if !next.is_null() {
                // Tail lags: help swing it forward and retry.
                let _ =
                    self.q
                        .tail
                        .compare_exchange(crq, next, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            // SAFETY: protected.
            if unsafe { (*crq).enqueue(v) } == CrqPush::Ok {
                self.hazard.clear(0);
                return;
            }
            // Ring closed: append a fresh CRQ seeded with our value.
            inject!("lcrq::enq::ring_closed");
            let fresh = crq_alloc(self.q.ring_order);
            // SAFETY: fresh is exclusively ours; seeding cannot fail on an
            // empty open ring.
            let seeded = unsafe { (*fresh).enqueue(v) };
            debug_assert_eq!(seeded, CrqPush::Ok);
            // SAFETY: crq protected.
            if unsafe {
                (*crq)
                    .next
                    .compare_exchange(
                        core::ptr::null_mut(),
                        fresh,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
            } {
                let _ =
                    self.q
                        .tail
                        .compare_exchange(crq, fresh, Ordering::SeqCst, Ordering::SeqCst);
                self.hazard.clear(0);
                return;
            }
            // Lost the append race; discard ours and retry on the winner.
            // SAFETY: never published.
            unsafe { drop(Box::from_raw(fresh)) };
        }
    }

    /// Dequeues the oldest value.
    pub fn dequeue(&mut self) -> Option<u64> {
        loop {
            let crq = self.hazard.protect(0, &self.q.head);
            // SAFETY: protected.
            if let Some(v) = unsafe { (*crq).dequeue() } {
                self.hazard.clear(0);
                return Some(v);
            }
            // This ring observed empty. If it has no successor the whole
            // queue is empty; otherwise the ring is closed and drained, so
            // unlink and retire it.
            // SAFETY: protected.
            let next = unsafe { (*crq).next.load(Ordering::Acquire) };
            if next.is_null() {
                self.hazard.clear(0);
                return None;
            }
            // A closed ring can still receive no new values; but a value
            // enqueued concurrently before the close must not be skipped —
            // re-check emptiness now that we know a successor exists.
            // SAFETY: protected.
            if let Some(v) = unsafe { (*crq).dequeue() } {
                self.hazard.clear(0);
                return Some(v);
            }
            inject!("lcrq::deq::pre_unlink");
            if self
                .q
                .head
                .compare_exchange(crq, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // SAFETY: unlinked by our CAS; unreachable to new readers.
                unsafe { self.hazard.retire(crq as *mut u8, crq_deleter) };
            }
        }
    }
}

impl QueueHandle for LcrqHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        LcrqHandle::enqueue(self, v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        LcrqHandle::dequeue(self)
    }
}

impl BenchQueue for Lcrq {
    type Handle<'q> = LcrqHandle<'q>;
    const NAME: &'static str = "LCRQ";
    fn new() -> Self {
        Lcrq::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        Lcrq::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<Lcrq>();
    }

    #[test]
    fn interleaved() {
        conformance::interleaved_single_thread::<Lcrq>();
    }

    #[test]
    fn batch_roundtrip() {
        conformance::batch_roundtrip::<Lcrq>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<Lcrq>(2, 2, 3_000);
    }

    #[test]
    fn survives_ring_transitions() {
        // Tiny rings force frequent close-and-append.
        let q = Lcrq::with_ring_order(3);
        let mut h = q.register();
        for v in 1..=5_000u64 {
            h.enqueue(v);
        }
        for v in 1..=5_000u64 {
            assert_eq!(h.dequeue(), Some(v), "lost order at {v}");
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn ring_transitions_under_concurrency() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = Lcrq::with_ring_order(4);
        let sum = AtomicU64::new(0);
        const TOTAL: u64 = 8_000;
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..TOTAL / 2 {
                        h.enqueue(t * (TOTAL / 2) + v + 1);
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum = &sum;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut got = 0;
                    while got < TOTAL / 2 {
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            got += 1;
                        }
                    }
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=TOTAL).sum::<u64>());
    }

    #[test]
    fn drop_with_leftovers() {
        let q = Lcrq::with_ring_order(3);
        let mut h = q.register();
        for v in 1..=1_000 {
            h.enqueue(v);
        }
        drop(h);
        drop(q);
    }
}
