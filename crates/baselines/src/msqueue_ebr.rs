//! MS-Queue over epoch-based reclamation — the control arm for the
//! paper's §3.6 reclamation-overhead claims.
//!
//! Identical algorithm to [`crate::msqueue`], but nodes are protected by
//! pinning an epoch for the whole operation instead of publishing per-node
//! hazard pointers. Per operation that trades two hazard
//! publish-fence-revalidate cycles for one pin fence — the `reclaim`
//! criterion group measures the difference, alongside the wait-free
//! queue's scheme (which needs no extra fence at all on its fast path).

use core::sync::atomic::{AtomicPtr, Ordering};

use wfq_reclaim::ebr::{EbrDomain, EbrThread};
use wfq_sync::{Backoff, CachePadded};

use crate::{BenchQueue, QueueHandle};

struct Node {
    val: u64,
    next: AtomicPtr<Node>,
}

impl Node {
    fn alloc(val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            val,
            next: AtomicPtr::new(core::ptr::null_mut()),
        }))
    }
}

unsafe fn node_deleter(p: *mut u8) {
    // SAFETY: only invoked on Node::alloc pointers.
    unsafe { drop(Box::from_raw(p as *mut Node)) };
}

/// Michael–Scott queue with epoch-based reclamation.
pub struct MsQueueEbr {
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    domain: EbrDomain,
}

// SAFETY: as for MsQueue; EBR defers frees past all pinned readers.
unsafe impl Send for MsQueueEbr {}
unsafe impl Sync for MsQueueEbr {}

/// Per-thread handle for [`MsQueueEbr`].
pub struct MsEbrHandle<'q> {
    q: &'q MsQueueEbr,
    epoch: EbrThread<'q>,
}

impl MsQueueEbr {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = Node::alloc(0);
        Self {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            domain: EbrDomain::new(),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> MsEbrHandle<'_> {
        MsEbrHandle {
            q: self,
            epoch: self.domain.register(),
        }
    }
}

impl Default for MsQueueEbr {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MsQueueEbr {
    fn drop(&mut self) {
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access at drop.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

impl MsEbrHandle<'_> {
    /// Enqueues `v`.
    pub fn enqueue(&mut self, v: u64) {
        let node = Node::alloc(v);
        let guard = self.epoch.pin();
        let backoff = Backoff::new();
        loop {
            let tail = self.q.tail.load(Ordering::Acquire);
            // SAFETY: pinned — tail cannot be freed under us.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if tail != self.q.tail.load(Ordering::Acquire) {
                continue;
            }
            if next.is_null() {
                // SAFETY: pinned.
                if unsafe {
                    (*tail)
                        .next
                        .compare_exchange(
                            core::ptr::null_mut(),
                            node,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                } {
                    let _ = self.q.tail.compare_exchange(
                        tail,
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    break;
                }
                backoff.spin();
            } else {
                let _ =
                    self.q
                        .tail
                        .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
        drop(guard);
    }

    /// Dequeues the oldest value.
    pub fn dequeue(&mut self) -> Option<u64> {
        let guard = self.epoch.pin();
        let backoff = Backoff::new();
        let unlinked = loop {
            let head = self.q.head.load(Ordering::Acquire);
            let tail = self.q.tail.load(Ordering::Acquire);
            // SAFETY: pinned.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            if head != self.q.head.load(Ordering::Acquire) {
                continue;
            }
            if next.is_null() {
                break None;
            }
            if head == tail {
                let _ =
                    self.q
                        .tail
                        .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            // SAFETY: pinned; next is reachable.
            let val = unsafe { (*next).val };
            if self
                .q
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                break Some((head, val));
            }
            backoff.spin();
        };
        drop(guard);
        unlinked.map(|(head, val)| {
            // SAFETY: unlinked by our CAS; EBR defers the free past every
            // reader pinned at retirement time.
            unsafe { self.epoch.retire(head as *mut u8, node_deleter) };
            val
        })
    }
}

impl QueueHandle for MsEbrHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        MsEbrHandle::enqueue(self, v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        MsEbrHandle::dequeue(self)
    }
}

impl BenchQueue for MsQueueEbr {
    type Handle<'q> = MsEbrHandle<'q>;
    const NAME: &'static str = "MSQUEUE-EBR";
    fn new() -> Self {
        MsQueueEbr::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        MsQueueEbr::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<MsQueueEbr>();
    }

    #[test]
    fn interleaved() {
        conformance::interleaved_single_thread::<MsQueueEbr>();
    }

    #[test]
    fn batch_roundtrip() {
        conformance::batch_roundtrip::<MsQueueEbr>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<MsQueueEbr>(2, 2, 3_000);
    }

    #[test]
    fn nodes_reclaim_during_run() {
        let q = MsQueueEbr::new();
        let mut h = q.register();
        for round in 0..200u64 {
            for v in 1..=64 {
                h.enqueue(round * 64 + v);
            }
            for v in 1..=64 {
                assert_eq!(h.dequeue(), Some(round * 64 + v));
            }
        }
        // Garbage is bounded by the collect threshold plus one grace
        // period's worth, far below the 12800 nodes retired.
        assert!(h.epoch.retired_len() < 1_000);
    }

    #[test]
    fn drop_with_leftovers() {
        let q = MsQueueEbr::new();
        let mut h = q.register();
        for v in 1..=500 {
            h.enqueue(v);
        }
        drop(h);
        drop(q);
    }
}
