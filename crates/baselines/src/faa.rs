//! The fetch-and-add microbenchmark (paper §5, "F&A" in Figure 2).
//!
//! *"We also include a microbenchmark that simulates enqueue and dequeue
//! operations with FAA primitives on two shared variables: one for enqueues
//! and the other for dequeues. This simple microbenchmark provides a
//! practical upper bound for the throughput of all queue implementations
//! based on FAA."*
//!
//! It is **not a queue** — no value is transferred — but it implements the
//! harness interface so it rides the same measurement machinery. A
//! "dequeue" always reports a (meaningless) value so workloads never treat
//! it as empty.

use core::sync::atomic::{AtomicU64, Ordering};

use wfq_sync::CachePadded;

use crate::{BenchQueue, QueueHandle};

/// Two padded counters; each operation is exactly one `lock xadd`.
pub struct FaaBench {
    enq_counter: CachePadded<AtomicU64>,
    deq_counter: CachePadded<AtomicU64>,
}

/// Per-thread handle for [`FaaBench`].
pub struct FaaHandle<'q> {
    q: &'q FaaBench,
}

impl FaaBench {
    /// Creates the two counters.
    pub fn new() -> Self {
        Self {
            enq_counter: CachePadded::new(AtomicU64::new(0)),
            deq_counter: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> FaaHandle<'_> {
        FaaHandle { q: self }
    }

    /// Totals of both counters (simulated enqueues, simulated dequeues).
    pub fn totals(&self) -> (u64, u64) {
        (
            self.enq_counter.load(Ordering::Relaxed),
            self.deq_counter.load(Ordering::Relaxed),
        )
    }
}

impl Default for FaaBench {
    fn default() -> Self {
        Self::new()
    }
}

impl QueueHandle for FaaHandle<'_> {
    #[inline]
    fn enqueue(&mut self, _v: u64) {
        self.q.enq_counter.fetch_add(1, Ordering::SeqCst);
    }

    #[inline]
    fn dequeue(&mut self) -> Option<u64> {
        Some(self.q.deq_counter.fetch_add(1, Ordering::SeqCst) + 1)
    }
}

impl BenchQueue for FaaBench {
    type Handle<'q> = FaaHandle<'q>;
    const NAME: &'static str = "F&A";
    fn new() -> Self {
        FaaBench::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        FaaBench::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operations_count_exactly() {
        let q = FaaBench::new();
        let mut h = q.register();
        for _ in 0..10 {
            h.enqueue(1);
        }
        for _ in 0..7 {
            assert!(h.dequeue().is_some());
        }
        assert_eq!(q.totals(), (10, 7));
    }

    #[test]
    fn concurrent_counts_do_not_lose_increments() {
        let q = FaaBench::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for _ in 0..10_000 {
                        h.enqueue(1);
                        h.dequeue();
                    }
                });
            }
        });
        assert_eq!(q.totals(), (40_000, 40_000));
    }

    #[test]
    fn dequeue_never_reports_empty() {
        let q = FaaBench::new();
        let mut h = q.register();
        assert!(h.dequeue().is_some());
    }
}
