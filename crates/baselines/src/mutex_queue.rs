//! Lock-based reference queue: `Mutex<VecDeque<u64>>`.
//!
//! Not in the paper's Figure 2 (the paper compares against non-blocking and
//! combining designs), but indispensable as a sanity reference: it bounds
//! what "just use a lock" buys, and its latency tail under oversubscription
//! motivates the non-blocking designs — a descheduled lock holder stalls
//! everyone, which the `telemetry` example demonstrates.

use std::collections::VecDeque;

use std::sync::Mutex;

use crate::{BenchQueue, QueueHandle};

/// A mutex-protected ring-buffer queue.
pub struct MutexQueue {
    inner: Mutex<VecDeque<u64>>,
}

/// Per-thread handle for [`MutexQueue`] (stateless; the lock is global).
pub struct MutexHandle<'q> {
    q: &'q MutexQueue,
}

impl MutexQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::with_capacity(1024)),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> MutexHandle<'_> {
        MutexHandle { q: self }
    }

    /// Exact current length (takes the lock).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the queue is currently empty (takes the lock).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

impl Default for MutexQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl MutexHandle<'_> {
    /// Enqueues `v`.
    pub fn enqueue(&mut self, v: u64) {
        self.q.inner.lock().unwrap().push_back(v);
    }

    /// Dequeues the oldest value.
    pub fn dequeue(&mut self) -> Option<u64> {
        self.q.inner.lock().unwrap().pop_front()
    }
}

impl QueueHandle for MutexHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        MutexHandle::enqueue(self, v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        MutexHandle::dequeue(self)
    }
}

impl BenchQueue for MutexQueue {
    type Handle<'q> = MutexHandle<'q>;
    const NAME: &'static str = "MUTEX";
    fn new() -> Self {
        MutexQueue::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        MutexQueue::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<MutexQueue>();
    }

    #[test]
    fn interleaved() {
        conformance::interleaved_single_thread::<MutexQueue>();
    }

    #[test]
    fn batch_roundtrip() {
        conformance::batch_roundtrip::<MutexQueue>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<MutexQueue>(2, 2, 3_000);
    }

    #[test]
    fn len_is_exact() {
        let q = MutexQueue::new();
        let mut h = q.register();
        assert!(q.is_empty());
        h.enqueue(1);
        h.enqueue(2);
        assert_eq!(q.len(), 2);
        h.dequeue();
        assert_eq!(q.len(), 1);
    }
}
