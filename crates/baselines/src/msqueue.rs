//! The Michael–Scott lock-free queue (PODC 1996), with hazard pointers.
//!
//! The classic CAS-based non-blocking queue and the paper's example of the
//! *CAS retry problem*: under contention most head/tail CASes fail and the
//! work behind them is discarded, so throughput collapses as threads are
//! added (paper §2, Figure 2 where MS-Queue is the bottom line everywhere).
//!
//! Reclamation follows Michael's own hazard-pointer recipe (two hazards:
//! one for the node being inspected, one for its successor), matching the
//! paper's retrofit. CAS retry loops use bounded exponential backoff so the
//! baseline is a competently tuned one, not a straw man.

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use wfq_reclaim::{Domain, HazardThread};
use wfq_sync::{inject, Backoff, CachePadded};

use crate::{BenchQueue, QueueHandle};

struct Node {
    val: u64,
    next: AtomicPtr<Node>,
}

impl Node {
    fn alloc(val: u64) -> *mut Node {
        Box::into_raw(Box::new(Node {
            val,
            next: AtomicPtr::new(core::ptr::null_mut()),
        }))
    }
}

unsafe fn node_deleter(p: *mut u8) {
    // SAFETY: deleter is only invoked on nodes produced by Node::alloc.
    unsafe { drop(Box::from_raw(p as *mut Node)) };
}

/// Michael & Scott's two-pointer lock-free queue.
///
/// ```
/// use wfq_baselines::{BenchQueue, QueueHandle, MsQueue};
/// let q = MsQueue::new();
/// let mut h = q.register();
/// h.enqueue(1);
/// assert_eq!(h.dequeue(), Some(1));
/// assert_eq!(h.dequeue(), None);
/// ```
pub struct MsQueue {
    head: CachePadded<AtomicPtr<Node>>,
    tail: CachePadded<AtomicPtr<Node>>,
    domain: Domain,
    /// Approximate outstanding-node counter (observability only).
    len_hint: AtomicU64,
}

// SAFETY: nodes are owned by the queue; all access is via atomics with
// hazard-pointer protection.
unsafe impl Send for MsQueue {}
unsafe impl Sync for MsQueue {}

/// Per-thread handle for [`MsQueue`].
pub struct MsHandle<'q> {
    q: &'q MsQueue,
    hazard: HazardThread<'q>,
}

impl MsQueue {
    /// Creates an empty queue (one dummy node).
    pub fn new() -> Self {
        let dummy = Node::alloc(0);
        Self {
            head: CachePadded::new(AtomicPtr::new(dummy)),
            tail: CachePadded::new(AtomicPtr::new(dummy)),
            domain: Domain::new(),
            len_hint: AtomicU64::new(0),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> MsHandle<'_> {
        MsHandle {
            q: self,
            hazard: self.domain.register(),
        }
    }

    /// Approximate number of enqueued-but-not-dequeued values.
    pub fn len_hint(&self) -> u64 {
        self.len_hint.load(Ordering::Relaxed)
    }
}

impl Default for MsQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for MsQueue {
    fn drop(&mut self) {
        // Exclusive access: free the remaining chain including the dummy.
        let mut cur = *self.head.get_mut();
        while !cur.is_null() {
            // SAFETY: exclusive access; nodes were Box-allocated.
            let next = unsafe { (*cur).next.load(Ordering::Relaxed) };
            unsafe { drop(Box::from_raw(cur)) };
            cur = next;
        }
    }
}

impl MsHandle<'_> {
    /// Enqueues `v` (MS-Queue pseudocode E1–E12).
    pub fn enqueue(&mut self, v: u64) {
        let node = Node::alloc(v);
        let backoff = Backoff::new();
        loop {
            // Protect the tail we are about to inspect.
            let tail = self.hazard.protect(0, &self.q.tail);
            inject!("msq::enq::tail_protected");
            // SAFETY: `tail` is hazard-protected.
            let next = unsafe { (*tail).next.load(Ordering::Acquire) };
            if tail != self.q.tail.load(Ordering::Acquire) {
                continue; // stale snapshot
            }
            if next.is_null() {
                // SAFETY: as above.
                if unsafe {
                    (*tail)
                        .next
                        .compare_exchange(
                            core::ptr::null_mut(),
                            node,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                } {
                    // Swing tail; failure is fine (someone else did it).
                    let _ = self.q.tail.compare_exchange(
                        tail,
                        node,
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    break;
                }
                backoff.spin(); // CAS retry problem, softened
            } else {
                // Help lagging tail forward.
                let _ =
                    self.q
                        .tail
                        .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
            }
        }
        self.hazard.clear(0);
        self.q.len_hint.fetch_add(1, Ordering::Relaxed);
    }

    /// Dequeues the oldest value (MS-Queue pseudocode D1–D20).
    pub fn dequeue(&mut self) -> Option<u64> {
        let backoff = Backoff::new();
        let result = loop {
            let head = self.hazard.protect(0, &self.q.head);
            let tail = self.q.tail.load(Ordering::Acquire);
            // SAFETY: `head` is hazard-protected.
            let next = unsafe { (*head).next.load(Ordering::Acquire) };
            // Protect `next` before dereferencing it.
            self.hazard.set(1, next);
            inject!("msq::deq::next_protected");
            if head != self.q.head.load(Ordering::Acquire) {
                continue; // head moved; next may be junk
            }
            if next.is_null() {
                break None; // empty
            }
            if head == tail {
                // Tail is lagging: help it, then retry.
                let _ =
                    self.q
                        .tail
                        .compare_exchange(tail, next, Ordering::SeqCst, Ordering::SeqCst);
                continue;
            }
            // SAFETY: `next` is hazard-protected and validated reachable.
            let val = unsafe { (*next).val };
            inject!("msq::deq::pre_unlink");
            if self
                .q
                .head
                .compare_exchange(head, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // SAFETY: `head` was unlinked by our CAS; nobody can reach
                // it again; hazard scan defers the actual free.
                unsafe { self.hazard.retire(head as *mut u8, node_deleter) };
                break Some(val);
            }
            backoff.spin();
        };
        self.hazard.clear(0);
        self.hazard.clear(1);
        if result.is_some() {
            self.q.len_hint.fetch_sub(1, Ordering::Relaxed);
        }
        result
    }
}

impl QueueHandle for MsHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        MsHandle::enqueue(self, v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        MsHandle::dequeue(self)
    }
}

impl BenchQueue for MsQueue {
    type Handle<'q> = MsHandle<'q>;
    const NAME: &'static str = "MSQUEUE";
    fn new() -> Self {
        MsQueue::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        MsQueue::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<MsQueue>();
    }

    #[test]
    fn interleaved() {
        conformance::interleaved_single_thread::<MsQueue>();
    }

    #[test]
    fn batch_roundtrip() {
        conformance::batch_roundtrip::<MsQueue>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<MsQueue>(2, 2, 3_000);
    }

    #[test]
    fn len_hint_tracks_net_traffic() {
        let q = MsQueue::new();
        let mut h = q.register();
        for v in 1..=10 {
            h.enqueue(v);
        }
        assert_eq!(q.len_hint(), 10);
        for _ in 0..4 {
            h.dequeue();
        }
        assert_eq!(q.len_hint(), 6);
    }

    #[test]
    fn drop_with_leftovers_does_not_leak_or_crash() {
        let q = MsQueue::new();
        let mut h = q.register();
        for v in 1..=100 {
            h.enqueue(v);
        }
        drop(h);
        drop(q); // frees the remaining 100 nodes + dummy
    }

    #[test]
    fn nodes_are_reclaimed_during_operation() {
        // Run enough traffic that hazard scans must fire; the real check is
        // that this doesn't crash under ASAN-like conditions and values
        // stay intact.
        let q = MsQueue::new();
        let mut h = q.register();
        for round in 0..200u64 {
            for v in 1..=64 {
                h.enqueue(round * 64 + v);
            }
            for v in 1..=64 {
                assert_eq!(h.dequeue(), Some(round * 64 + v));
            }
        }
    }
}
