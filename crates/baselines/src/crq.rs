//! CRQ — the Concurrent Ring Queue of Morrison & Afek (PPoPP 2013).
//!
//! A bounded ring of `R` cells indexed by unbounded head/tail counters.
//! Enqueue and dequeue each claim an index with one FAA, then settle the
//! cell with a double-width CAS over its `(val, safe|idx)` pair. A cell's
//! 63-bit `idx` remembers which "round" (`index / R`) it is valid for; the
//! `safe` bit records whether a slow dequeuer may have abandoned the round,
//! in which case an enqueuer must re-check `head` before using the cell.
//!
//! A CRQ can become *closed* (tail's top bit): when the ring is full or an
//! enqueuer is starving, enqueues stop permanently and the LCRQ layer links
//! a fresh CRQ behind it. This file is the ring only; see [`crate::lcrq`]
//! for the list-of-CRQs queue the paper benchmarks.

use core::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use wfq_sync::dwcas::AtomicU128;
use wfq_sync::CachePadded;

/// Default ring order: the paper uses 2^12 cells per CRQ for LCRQ.
pub const DEFAULT_RING_ORDER: u32 = 12;

/// Sentinel for "no value" in a cell.
const EMPTY_VAL: u64 = 0;
/// Closed bit on the tail counter.
const CLOSED_BIT: u64 = 1 << 63;
/// Safe bit within a cell's `safe|idx` word.
const SAFE_BIT: u64 = 1 << 63;
const IDX_MASK: u64 = SAFE_BIT - 1;

/// Enqueue attempt outcomes at the ring level.
#[derive(Debug, PartialEq, Eq)]
pub enum CrqPush {
    /// Value stored.
    Ok,
    /// The ring is closed; the caller must move to (or create) a successor.
    Closed,
}

#[inline]
const fn pack_idx(safe: bool, idx: u64) -> u64 {
    (idx & IDX_MASK) | if safe { SAFE_BIT } else { 0 }
}

#[inline]
const fn idx_of(word: u64) -> u64 {
    word & IDX_MASK
}

#[inline]
const fn is_safe(word: u64) -> bool {
    word & SAFE_BIT != 0
}

/// One ring queue. Cells store `(safe|idx, val)` in a 16-byte CAS2 unit.
pub struct Crq {
    head: CachePadded<AtomicU64>,
    /// Tail counter; bit 63 = closed.
    tail: CachePadded<AtomicU64>,
    /// Next CRQ in the LCRQ list.
    pub(crate) next: AtomicPtr<Crq>,
    ring: Box<[AtomicU128]>,
    order: u32,
}

impl Crq {
    /// Creates an empty ring of `2^order` cells.
    pub fn new(order: u32) -> Self {
        let size = 1usize << order;
        let ring: Box<[AtomicU128]> = (0..size as u64)
            // lo = safe|idx (initially safe, idx = cell number), hi = val.
            .map(|i| AtomicU128::new(pack_idx(true, i), EMPTY_VAL))
            .collect();
        Self {
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            next: AtomicPtr::new(core::ptr::null_mut()),
            ring,
            order,
        }
    }

    /// Ring capacity.
    #[inline]
    pub fn capacity(&self) -> u64 {
        1 << self.order
    }

    #[inline]
    fn cell(&self, index: u64) -> &AtomicU128 {
        &self.ring[(index & (self.capacity() - 1)) as usize]
    }

    /// Whether enqueues are permanently rejected.
    pub fn is_closed(&self) -> bool {
        self.tail.load(Ordering::SeqCst) & CLOSED_BIT != 0
    }

    /// Closes the ring (idempotent).
    pub fn close(&self) {
        self.tail.fetch_or(CLOSED_BIT, Ordering::SeqCst);
    }

    /// Current head index (for drain checks).
    pub fn head_index(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Current tail index with the closed bit stripped.
    pub fn tail_index(&self) -> u64 {
        self.tail.load(Ordering::SeqCst) & !CLOSED_BIT
    }

    /// Enqueues `v` (must be non-zero and below `u64::MAX`).
    pub fn enqueue(&self, v: u64) -> CrqPush {
        debug_assert!(v != EMPTY_VAL && v != u64::MAX);
        let mut attempts = 0u32;
        loop {
            let t_raw = self.tail.fetch_add(1, Ordering::SeqCst);
            if t_raw & CLOSED_BIT != 0 {
                return CrqPush::Closed;
            }
            let t = t_raw & !CLOSED_BIT;
            let cell = self.cell(t);
            let (cidx, cval) = cell.load();
            let idx = idx_of(cidx);
            let safe = is_safe(cidx);
            // The cell is usable for round t if it is empty, its idx hasn't
            // been advanced past t by a dequeuer, and either it is safe or
            // the head proves no dequeuer is waiting at t.
            if cval == EMPTY_VAL
                && idx <= t
                && (safe || self.head.load(Ordering::SeqCst) <= t)
                && cell
                    .compare_exchange((cidx, cval), (pack_idx(true, t), v))
                    .is_ok()
            {
                return CrqPush::Ok;
            }
            // Failed this index: close if the ring is full or we starve.
            let h = self.head.load(Ordering::SeqCst);
            attempts += 1;
            if t.wrapping_sub(h) >= self.capacity() || attempts >= 16 {
                self.close();
                return CrqPush::Closed;
            }
        }
    }

    /// Dequeues the oldest value, or `None` if the ring was observed empty
    /// (which for a closed ring is permanent).
    pub fn dequeue(&self) -> Option<u64> {
        loop {
            let h = self.head.fetch_add(1, Ordering::SeqCst);
            let cell = self.cell(h);
            loop {
                let (cidx, cval) = cell.load();
                let idx = idx_of(cidx);
                let safe = is_safe(cidx);
                if idx > h {
                    break; // cell already belongs to a later round
                }
                if cval != EMPTY_VAL {
                    if idx == h {
                        // The value for our round: take it, bumping the
                        // cell to the next round.
                        if cell
                            .compare_exchange((cidx, cval), (pack_idx(safe, h + self.capacity()), EMPTY_VAL))
                            .is_ok()
                        {
                            return Some(cval);
                        }
                    } else {
                        // A value from an earlier round is stuck here: mark
                        // the cell unsafe so its enqueuer round can't be
                        // harvested twice, then give up on this index.
                        if cell
                            .compare_exchange((cidx, cval), (pack_idx(false, idx), cval))
                            .is_ok()
                        {
                            break;
                        }
                    }
                } else {
                    // Empty: advance the cell's round so a late enqueuer of
                    // round h cannot deposit a value we already passed.
                    if cell
                        .compare_exchange((cidx, cval), (pack_idx(safe, h + self.capacity()), EMPTY_VAL))
                        .is_ok()
                    {
                        break;
                    }
                }
            }
            // This index yielded nothing; if the ring has caught up, it is
            // empty — repair head/tail and report.
            let t = self.tail_index();
            if t <= h + 1 {
                self.fix_state();
                return None;
            }
        }
    }

    /// Repairs `head > tail` inversions left by failed dequeues racing
    /// enqueues (Morrison & Afek's `fixState`).
    fn fix_state(&self) {
        loop {
            let t_raw = self.tail.load(Ordering::SeqCst);
            let h = self.head.load(Ordering::SeqCst);
            if self.tail.load(Ordering::SeqCst) != t_raw {
                continue;
            }
            let t = t_raw & !CLOSED_BIT;
            if h <= t {
                return; // nothing to fix
            }
            let fixed = (t_raw & CLOSED_BIT) | h;
            if self
                .tail
                .compare_exchange(t_raw, fixed, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let q = Crq::new(8);
        for v in 1..=100 {
            assert_eq!(q.enqueue(v), CrqPush::Ok);
        }
        for v in 1..=100 {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn wraps_rounds_repeatedly() {
        let q = Crq::new(4); // 16 cells
        for round in 0..50u64 {
            for v in 1..=10 {
                assert_eq!(q.enqueue(round * 10 + v), CrqPush::Ok);
            }
            for v in 1..=10 {
                assert_eq!(q.dequeue(), Some(round * 10 + v));
            }
        }
    }

    #[test]
    fn fills_and_closes() {
        let q = Crq::new(3); // 8 cells
        let mut pushed = 0;
        for v in 1..=100 {
            match q.enqueue(v) {
                CrqPush::Ok => pushed += 1,
                CrqPush::Closed => break,
            }
        }
        assert!(pushed >= 8, "ring should at least fill before closing");
        assert!(q.is_closed());
        // Everything pushed is still dequeueable in order.
        for v in 1..=pushed {
            assert_eq!(q.dequeue(), Some(v));
        }
        assert_eq!(q.dequeue(), None);
    }

    #[test]
    fn closed_ring_rejects_enqueues() {
        let q = Crq::new(4);
        q.close();
        assert_eq!(q.enqueue(1), CrqPush::Closed);
        assert!(q.is_closed());
    }

    #[test]
    fn fix_state_repairs_overshoot() {
        let q = Crq::new(4);
        // Dequeue on empty overshoots head past tail...
        assert_eq!(q.dequeue(), None);
        assert_eq!(q.dequeue(), None);
        // ...but fix_state keeps the ring usable.
        assert_eq!(q.enqueue(7), CrqPush::Ok);
        assert_eq!(q.dequeue(), Some(7));
    }

    #[test]
    fn concurrent_ring_traffic_conserves_values() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = Crq::new(10);
        let sum = AtomicU64::new(0);
        let got = AtomicU64::new(0);
        let pushed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let q = &q;
                let pushed = &pushed;
                s.spawn(move || {
                    for v in 0..400 {
                        if q.enqueue(t * 400 + v + 1) == CrqPush::Ok {
                            pushed.fetch_add(t * 400 + v + 1, Ordering::Relaxed);
                        }
                        // Ring may close under pathological interleavings;
                        // the LCRQ layer handles that. Here we just stop.
                        if q.is_closed() {
                            break;
                        }
                    }
                });
            }
            for _ in 0..2 {
                let q = &q;
                let sum = &sum;
                let got = &got;
                s.spawn(move || {
                    let mut idle = 0;
                    while idle < 10_000 {
                        match q.dequeue() {
                            Some(v) => {
                                sum.fetch_add(v, Ordering::Relaxed);
                                got.fetch_add(1, Ordering::Relaxed);
                                idle = 0;
                            }
                            None => idle += 1,
                        }
                    }
                });
            }
        });
        // Every successfully enqueued value must come out exactly once.
        assert_eq!(sum.load(Ordering::Relaxed), pushed.load(Ordering::Relaxed));
    }
}
