//! CC-Queue: a blocking queue built on the CC-Synch combining technique
//! (Fatourou & Kallimanis, PPoPP 2012).
//!
//! Threads with pending operations form a list by SWAPping a shared tail;
//! the thread at the head becomes the *combiner* and executes everyone's
//! operations against a plain sequential queue, up to a bound, then hands
//! the combiner role down the list. Synchronization cost is one SWAP plus
//! one cache-line handoff per operation — low, but the combiner serializes
//! work that FAA-based designs perform in parallel, which is exactly the
//! limitation the paper calls out (§2: "it sacrifices parallelism which
//! limits its performance").
//!
//! The paper uses two combining instances (one lock for the head, one for
//! the tail of the FIFO). We use a single combining instance over a
//! `VecDeque`, which is the simpler published variant; the serialization
//! behaviour under study is identical. Blocking caveat: a descheduled
//! combiner stalls every pending operation.

use core::cell::UnsafeCell;
use core::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::collections::VecDeque;

use std::sync::Mutex;
use wfq_sync::CachePadded;

use crate::{BenchQueue, QueueHandle};

/// Combiner bound: how many pending operations one combiner applies before
/// handing off (the papers use a few hundred; this keeps latency bounded).
const COMBINER_LIMIT: usize = 256;

/// Operation kinds flowing through the combining list.
const OP_NONE: u64 = 0;
const OP_ENQ: u64 = 1;
const OP_DEQ: u64 = 2;

/// A combining-list node. One node is "owned" by each waiting thread; the
/// node identities rotate as the list advances (each op donates its fresh
/// node and adopts its predecessor).
struct CcNode {
    /// OP_ENQ / OP_DEQ, written by the requester before publishing `next`.
    op: AtomicU64,
    /// Enqueue argument.
    arg: AtomicU64,
    /// Dequeue result (u64::MAX = empty).
    ret: AtomicU64,
    /// Requester spins on this.
    wait: AtomicBool,
    /// Set by the combiner when the request has been applied.
    completed: AtomicBool,
    next: AtomicPtr<CcNode>,
}

impl CcNode {
    fn alloc() -> *mut CcNode {
        Box::into_raw(Box::new(CcNode {
            op: AtomicU64::new(OP_NONE),
            arg: AtomicU64::new(0),
            ret: AtomicU64::new(0),
            wait: AtomicBool::new(false),
            completed: AtomicBool::new(false),
            next: AtomicPtr::new(core::ptr::null_mut()),
        }))
    }
}

/// The CC-Synch combining queue.
pub struct CcQueue {
    /// Tail of the combining list (SWAP target).
    clist_tail: CachePadded<AtomicPtr<CcNode>>,
    /// The sequential queue, touched only by the current combiner.
    seq: UnsafeCell<VecDeque<u64>>,
    /// All nodes ever allocated (freed on drop).
    nodes: Mutex<Vec<*mut CcNode>>,
}

// SAFETY: `seq` is only accessed by the unique combiner (mutual exclusion
// by the combining protocol); nodes are shared via atomics.
unsafe impl Send for CcQueue {}
unsafe impl Sync for CcQueue {}

/// Per-thread handle for [`CcQueue`].
pub struct CcHandle<'q> {
    q: &'q CcQueue,
    /// This thread's spare node, donated on the next operation.
    spare: *mut CcNode,
}

// SAFETY: the spare node is exclusively owned by this handle.
unsafe impl Send for CcHandle<'_> {}

impl CcQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        let dummy = CcNode::alloc();
        // The initial list is a single dummy whose owner-to-be is the first
        // SWAPper; it must not wait.
        // SAFETY: dummy is exclusively owned here.
        unsafe {
            (*dummy).wait.store(false, Ordering::Relaxed);
            (*dummy).completed.store(false, Ordering::Relaxed);
        }
        Self {
            clist_tail: CachePadded::new(AtomicPtr::new(dummy)),
            seq: UnsafeCell::new(VecDeque::with_capacity(1024)),
            nodes: Mutex::new(vec![dummy]),
        }
    }

    /// Registers the calling thread.
    pub fn register(&self) -> CcHandle<'_> {
        let spare = CcNode::alloc();
        self.nodes.lock().unwrap().push(spare);
        CcHandle { q: self, spare }
    }

    /// Executes one operation through the combining protocol.
    fn combine(&self, h: &mut CcHandle<'_>, op: u64, arg: u64) -> u64 {
        let next = h.spare;
        // SAFETY: we own `next` until the SWAP publishes it.
        unsafe {
            (*next).wait.store(true, Ordering::Relaxed);
            (*next).completed.store(false, Ordering::Relaxed);
            (*next).next.store(core::ptr::null_mut(), Ordering::Relaxed);
        }
        // Publish our node as the new tail; the displaced node is ours to
        // fill with the request.
        let cur = self.clist_tail.swap(next, Ordering::AcqRel);
        // SAFETY: `cur` is ours exclusively until we set cur.next below,
        // and remains valid until queue drop.
        unsafe {
            (*cur).op.store(op, Ordering::Relaxed);
            (*cur).arg.store(arg, Ordering::Relaxed);
            // Publishing `next` releases the request fields to the combiner.
            (*cur).next.store(next, Ordering::Release);
        }
        h.spare = cur; // adopt the displaced node for our next op

        // Wait until a combiner serves us or hands us the combiner role.
        // Spin with periodic yields: a blocking design must cooperate with
        // the scheduler under oversubscription (its weak spot, §2).
        // SAFETY: cur stays valid (nodes freed only at queue drop).
        let mut spins = 0u32;
        while unsafe { (*cur).wait.load(Ordering::Acquire) } {
            spins += 1;
            if spins % 256 == 0 {
                std::thread::yield_now();
            } else {
                core::hint::spin_loop();
            }
        }
        if unsafe { (*cur).completed.load(Ordering::Acquire) } {
            return unsafe { (*cur).ret.load(Ordering::Acquire) };
        }

        // We are the combiner: apply requests from `cur` down the list.
        // SAFETY: combiner role is exclusive, so &mut on seq is unique.
        let seq = unsafe { &mut *self.seq.get() };
        let mut tmp = cur;
        let mut served = 0;
        loop {
            // SAFETY: list nodes are valid; `next` non-null means the
            // owner finished publishing its request (release/acquire).
            let nxt = unsafe { (*tmp).next.load(Ordering::Acquire) };
            if nxt.is_null() || served >= COMBINER_LIMIT {
                break;
            }
            // SAFETY: request fields are visible per the release above.
            unsafe {
                match (*tmp).op.load(Ordering::Relaxed) {
                    OP_ENQ => {
                        seq.push_back((*tmp).arg.load(Ordering::Relaxed));
                        (*tmp).ret.store(0, Ordering::Relaxed);
                    }
                    OP_DEQ => {
                        let v = seq.pop_front().unwrap_or(u64::MAX);
                        (*tmp).ret.store(v, Ordering::Relaxed);
                    }
                    _ => unreachable!("request published without an op"),
                }
                (*tmp).completed.store(true, Ordering::Release);
                (*tmp).wait.store(false, Ordering::Release);
            }
            served += 1;
            tmp = nxt;
        }
        // Hand the combiner role to the owner of `tmp` (completed stays
        // false, so it will combine when it wakes).
        // SAFETY: as above.
        unsafe { (*tmp).wait.store(false, Ordering::Release) };
        // Our own request was the first applied.
        unsafe { (*cur).ret.load(Ordering::Acquire) }
    }
}

impl Default for CcQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for CcQueue {
    fn drop(&mut self) {
        for &n in self.nodes.get_mut().unwrap().iter() {
            // SAFETY: exclusive access; handles (and their spare pointers)
            // are gone by the lifetime rules.
            unsafe { drop(Box::from_raw(n)) };
        }
    }
}

impl CcHandle<'_> {
    /// Enqueues `v`.
    pub fn enqueue(&mut self, v: u64) {
        let q = self.q;
        q.combine(self, OP_ENQ, v);
    }

    /// Dequeues the oldest value.
    pub fn dequeue(&mut self) -> Option<u64> {
        let q = self.q;
        let r = q.combine(self, OP_DEQ, 0);
        if r == u64::MAX {
            None
        } else {
            Some(r)
        }
    }
}

impl QueueHandle for CcHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        CcHandle::enqueue(self, v);
    }
    fn dequeue(&mut self) -> Option<u64> {
        CcHandle::dequeue(self)
    }
}

impl BenchQueue for CcQueue {
    type Handle<'q> = CcHandle<'q>;
    const NAME: &'static str = "CCQUEUE";
    fn new() -> Self {
        CcQueue::new()
    }
    fn register(&self) -> Self::Handle<'_> {
        CcQueue::register(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<CcQueue>();
    }

    #[test]
    fn interleaved() {
        conformance::interleaved_single_thread::<CcQueue>();
    }

    #[test]
    fn batch_roundtrip() {
        conformance::batch_roundtrip::<CcQueue>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<CcQueue>(2, 2, 3_000);
    }

    #[test]
    fn combiner_applies_batches() {
        // With several threads hammering, at least one combining pass must
        // serve more than one request; we can't observe that directly, but
        // we can verify heavy mixed traffic stays coherent.
        let q = CcQueue::new();
        let total = AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                let total = &total;
                s.spawn(move || {
                    let mut h = q.register();
                    let mut sum = 0u64;
                    for i in 0..2_000u64 {
                        h.enqueue(t * 2_000 + i + 1);
                        if let Some(v) = h.dequeue() {
                            sum += v;
                        }
                    }
                    total.fetch_add(sum, Ordering::Relaxed);
                });
            }
        });
        // Every enqueued value is dequeued exactly once (pairs workload
        // never leaves the queue more than 4 deep, and ends empty).
        let expect: u64 = (1..=8_000u64).sum();
        assert_eq!(total.load(Ordering::Relaxed), expect);
    }

    #[test]
    fn empty_dequeue_returns_none() {
        let q = CcQueue::new();
        let mut h = q.register();
        assert_eq!(h.dequeue(), None);
        h.enqueue(9);
        assert_eq!(h.dequeue(), Some(9));
        assert_eq!(h.dequeue(), None);
    }
}
