//! SCQ — the Scalable Circular Queue of Nikolaev (DISC 2019,
//! arXiv 1908.04511), §4.
//!
//! A bounded lock-free FIFO built from *two* index rings over one data
//! array of `n` slots: `aq` holds the indices of slots currently carrying
//! values, `fq` holds the free indices (initially `0..n`). Enqueue moves
//! an index from `fq` to `aq` (writing the value in between); dequeue
//! moves it back. Indirection is what lets the ring use plain 64-bit CAS
//! instead of LCRQ's CAS2: an entry packs `(cycle, isSafe, index)` into
//! one word because the index is small.
//!
//! Each ring has `2n` entries — twice the capacity — which is SCQ's
//! central trick ("⌈n/2⌉-spaced indices"): with at most `n` live indices
//! in a `2n` ring, an enqueuer's FAA-claimed slot is empty often enough
//! that livelock cannot occur. The other SCQ ingredients, all per the
//! paper:
//!
//! - **cycle tags**: a ring of `2n` entries indexed by unbounded
//!   head/tail tickets; entry cycle = `ticket / 2n`. An entry is
//!   consumable only by the dequeuer whose ticket matches its cycle.
//! - **`⊥` and unsafe bits**: empty entries hold `⊥`; a dequeuer that
//!   overtakes a stuck old-cycle value clears the entry's *safe* bit so
//!   its enqueuer learns the value may no longer be harvested for that
//!   cycle (it re-checks `head` before reusing the slot).
//! - **threshold counter**: reset to `3n - 1` after every successful
//!   enqueue, decremented by every dequeue ticket that finds nothing;
//!   once it drops below zero the queue was observably empty and
//!   dequeuers stop burning tickets. This bounds the head/tail gap and is
//!   what makes the empty-probe path cheap (one load).
//! - **`catchup`**: repairs `head > tail` overshoot left by empty probes
//!   (the analogue of CRQ's `fixState`).
//!
//! This implementation adds one refinement for the wCQ layer built on top
//! ([`crate::wcq`]): a dequeuer that abandons an *empty* entry advances it
//! to its own cycle with the distinct [`KILLED`] pattern instead of `⊥`,
//! so "this ticket was consumed" and "this ticket was declared dead" are
//! distinguishable states. Plain SCQ does not need the distinction
//! (both mean "move on"), and the eligibility tests here treat `⊥` and
//! `KILLED` identically, so the algorithm is unchanged.
//!
//! Progress: lock-free (an operation retries only because another
//! operation succeeded). The [`Scq`] wrapper's blocking `enqueue` spins on
//! a full ring — use `try_enqueue` for backpressure, as the bounded-mode
//! tests do. Values are restricted to `1 ..= u64::MAX - 2` like every
//! queue in this crate.

use core::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use wfq_sync::{inject, CachePadded};
use wfqueue::{BackendHandle, Full, QueueBackend, QueueStats};

/// Default ring order: capacity `2^15` slots (each index ring has `2^16`
/// entries). Large enough that every repo workload stays below capacity.
pub const DEFAULT_ORDER: u32 = 15;

/// Largest supported order (the index field packs into 24 bits so the
/// wCQ layer can borrow the upper bits for its helping markers).
pub const MAX_ORDER: u32 = 24;

/// Entry layout: `cycle << 33 | safe << 32 | idx`.
pub(crate) const IDX_MASK: u64 = u32::MAX as u64;
pub(crate) const SAFE_BIT: u64 = 1 << 32;
const CYCLE_SHIFT: u32 = 33;

/// `⊥`: the empty index. All ones, so a consuming `fetch_or(IDX_MASK)`
/// turns any entry into an empty one in a single atomic OR.
pub(crate) const BOT: u64 = IDX_MASK;
/// A dequeuer-abandoned ticket (see module docs). Distinct from [`BOT`]
/// but equally "no value here".
pub(crate) const KILLED: u64 = IDX_MASK - 1;

#[inline]
pub(crate) const fn pack(cycle: u64, safe: bool, idx: u64) -> u64 {
    (cycle << CYCLE_SHIFT) | if safe { SAFE_BIT } else { 0 } | idx
}

#[inline]
pub(crate) const fn ecycle(e: u64) -> u64 {
    e >> CYCLE_SHIFT
}

#[inline]
pub(crate) const fn eidx(e: u64) -> u64 {
    e & IDX_MASK
}

#[inline]
pub(crate) const fn esafe(e: u64) -> bool {
    e & SAFE_BIT != 0
}

/// Whether an index field denotes "no value" (`⊥` or a killed ticket).
#[inline]
pub(crate) const fn is_empty_idx(idx: u64) -> bool {
    idx >= KILLED
}

/// One SCQ index ring of `2^(order+1)` entries holding up to `2^order`
/// live indices. This is the reusable core: [`Scq`] composes two of them
/// (`aq`/`fq`), and [`crate::wcq`] reuses it for its free ring.
pub struct ScqRing {
    pub(crate) head: CachePadded<AtomicU64>,
    pub(crate) tail: CachePadded<AtomicU64>,
    /// SCQ's emptiness certificate; `< 0` means "observably empty".
    pub(crate) threshold: CachePadded<AtomicI64>,
    entries: Box<[AtomicU64]>,
    /// log2 of the entry count (= order + 1).
    ring_order: u32,
}

impl ScqRing {
    /// Creates a ring of capacity `2^order`, pre-filled with the indices
    /// `0..prefill` (pass 0 for an empty ring). Pre-filling is done
    /// arithmetically — the resulting state is exactly what `prefill`
    /// sequential enqueues into a fresh ring would produce.
    pub fn new(order: u32, prefill: u64) -> Self {
        assert!(order >= 1 && order <= MAX_ORDER, "scq order out of range");
        let ring_order = order + 1;
        let size = 1u64 << ring_order;
        assert!(prefill <= (1 << order), "prefill exceeds capacity");
        let ring = Self {
            head: CachePadded::new(AtomicU64::new(size)),
            tail: CachePadded::new(AtomicU64::new(size + prefill)),
            threshold: CachePadded::new(AtomicI64::new(if prefill == 0 {
                -1
            } else {
                3 * (1 << order) - 1
            })),
            entries: (0..size)
                .map(|_| AtomicU64::new(pack(0, true, BOT)))
                .collect(),
            ring_order,
        };
        for i in 0..prefill {
            let t = size + i; // cycle 1, like a real enqueue ticket
            ring.entries[ring.remap(t)].store(pack(ring.cycle(t), true, i), Ordering::Relaxed);
        }
        ring
    }

    /// Ring capacity (`n`): the most live indices it can hold.
    #[inline]
    pub fn capacity(&self) -> u64 {
        1 << (self.ring_order - 1)
    }

    /// Entry count (`2n`).
    #[inline]
    fn size(&self) -> u64 {
        1 << self.ring_order
    }

    #[inline]
    pub(crate) fn cycle(&self, ticket: u64) -> u64 {
        ticket >> self.ring_order
    }

    /// Maps a ticket to an entry, spreading consecutive tickets across
    /// cache lines (the paper's `cache_remap`; identity on tiny rings).
    #[inline]
    pub(crate) fn remap(&self, ticket: u64) -> usize {
        let j = ticket & (self.size() - 1);
        if self.ring_order >= 6 {
            let lines = self.size() >> 3; // 8 u64 entries per cache line
            (((j & (lines - 1)) << 3) | (j >> (self.ring_order - 3))) as usize
        } else {
            j as usize
        }
    }

    #[inline]
    fn threshold_init(&self) -> i64 {
        3 * self.capacity() as i64 - 1
    }

    #[inline]
    pub(crate) fn entry(&self, ticket: u64) -> &AtomicU64 {
        &self.entries[self.remap(ticket)]
    }

    /// Resets the emptiness certificate after a successful insert.
    #[inline]
    pub(crate) fn reset_threshold(&self) {
        inject!("scq::enq::threshold_reset");
        let init = self.threshold_init();
        if self.threshold.load(Ordering::SeqCst) != init {
            self.threshold.store(init, Ordering::SeqCst);
        }
    }

    /// Inserts `index` (must be `< capacity`). Never fails: the caller
    /// keeps at most `capacity` indices live, so some entry is always
    /// eventually claimable (the paper's livelock-freedom argument).
    pub fn enqueue(&self, index: u64) {
        debug_assert!(index < self.capacity());
        loop {
            let t = self.tail.fetch_add(1, Ordering::SeqCst);
            let tcycle = self.cycle(t);
            let entry = self.entry(t);
            let mut e = entry.load(Ordering::SeqCst);
            loop {
                // Claimable iff: from an older cycle, holding no value, and
                // either safe or provably not awaited by a lagging dequeuer.
                if ecycle(e) < tcycle
                    && is_empty_idx(eidx(e))
                    && (esafe(e) || self.head.load(Ordering::SeqCst) <= t)
                {
                    inject!("scq::enq::pre_cas");
                    match entry.compare_exchange(
                        e,
                        pack(tcycle, true, index),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => {
                            self.reset_threshold();
                            return;
                        }
                        Err(seen) => {
                            e = seen;
                            continue;
                        }
                    }
                }
                break; // entry not claimable for this ticket: take a new one
            }
        }
    }

    /// Removes the oldest index, or `None` if the ring was observably
    /// empty during the call.
    pub fn dequeue(&self) -> Option<u64> {
        if self.threshold.load(Ordering::SeqCst) < 0 {
            return None; // certified empty: don't burn a ticket
        }
        loop {
            let h = self.head.fetch_add(1, Ordering::SeqCst);
            let hcycle = self.cycle(h);
            let entry = self.entry(h);
            let mut e = entry.load(Ordering::SeqCst);
            loop {
                if ecycle(e) == hcycle && !is_empty_idx(eidx(e)) {
                    // Our cycle's value. Only ticket h may consume it and
                    // in-cycle transitions preserve the idx bits, so the
                    // loaded index stays valid; fetch_or turns the entry
                    // into ⊥ whatever its concurrent safe-bit fate.
                    inject!("scq::deq::pre_consume");
                    entry.fetch_or(IDX_MASK, Ordering::SeqCst);
                    return Some(eidx(e));
                }
                if ecycle(e) < hcycle {
                    inject!("scq::deq::slot_advance");
                    let new = if is_empty_idx(eidx(e)) {
                        // Nothing to wait for: advance the entry to our
                        // cycle (KILLED) so a late enqueuer of ticket h
                        // cannot deposit a value we already passed.
                        pack(hcycle, esafe(e), KILLED)
                    } else {
                        // A value from an earlier cycle is stuck here: mark
                        // it unsafe so its cycle cannot be harvested twice.
                        e & !SAFE_BIT
                    };
                    match entry.compare_exchange(e, new, Ordering::SeqCst, Ordering::SeqCst) {
                        Ok(_) => {}
                        Err(seen) => {
                            e = seen;
                            continue;
                        }
                    }
                }
                break; // ticket h yields nothing
            }
            let t = self.tail.load(Ordering::SeqCst);
            if t <= h + 1 {
                // The ring has caught up: it *was* empty at the FAA.
                inject!("scq::deq::catchup");
                self.catchup(t, h + 1);
                self.threshold.fetch_sub(1, Ordering::SeqCst);
                return None;
            }
            inject!("scq::deq::threshold_decrement");
            if self.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 {
                return None;
            }
        }
    }

    /// Repairs `head > tail` overshoot left by empty probes (the paper's
    /// `catchup`, mirroring CRQ's `fixState`).
    pub(crate) fn catchup(&self, mut tail: u64, mut head: u64) {
        while self
            .tail
            .compare_exchange(tail, head, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            head = self.head.load(Ordering::SeqCst);
            tail = self.tail.load(Ordering::SeqCst);
            if tail >= head {
                break;
            }
        }
    }
}

/// Aggregated operation counters, flushed from handles on drop (hot paths
/// count in plain locals so the shared cache line is touched once per
/// handle lifetime, not once per op — same policy as the WF queue).
#[derive(Default)]
pub(crate) struct RingCounters {
    pub(crate) enq: AtomicU64,
    pub(crate) deq: AtomicU64,
    pub(crate) empty: AtomicU64,
    pub(crate) rejected: AtomicU64,
}

/// The full SCQ queue: two index rings around a data array.
pub struct Scq {
    /// Indices of slots currently holding values.
    aq: ScqRing,
    /// Free slot indices; starts holding `0..n`.
    fq: ScqRing,
    data: Box<[AtomicU64]>,
    counters: RingCounters,
}

impl Scq {
    /// Creates an SCQ with `2^order` slots of capacity.
    pub fn with_order(order: u32) -> Self {
        let n = 1u64 << order;
        Scq {
            aq: ScqRing::new(order, 0),
            fq: ScqRing::new(order, n),
            data: (0..n).map(|_| AtomicU64::new(0)).collect(),
            counters: RingCounters::default(),
        }
    }

    /// Slot capacity.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    fn push(&self, v: u64) -> Result<(), Full> {
        // Move a free slot index to the allocated ring, with the value in
        // the slot in between. fq empty <=> all n slots live <=> full.
        let Some(i) = self.fq.dequeue() else {
            return Err(Full(()));
        };
        self.data[i as usize].store(v, Ordering::SeqCst);
        self.aq.enqueue(i);
        Ok(())
    }

    fn pop(&self) -> Option<u64> {
        let i = self.aq.dequeue()?;
        let v = self.data[i as usize].load(Ordering::SeqCst);
        self.fq.enqueue(i);
        Some(v)
    }
}

/// Per-thread handle for [`Scq`].
pub struct ScqHandle<'q> {
    q: &'q Scq,
    enq: u64,
    deq: u64,
    empty: u64,
    rejected: u64,
}

impl Drop for ScqHandle<'_> {
    fn drop(&mut self) {
        let c = &self.q.counters;
        c.enq.fetch_add(self.enq, Ordering::Relaxed);
        c.deq.fetch_add(self.deq, Ordering::Relaxed);
        c.empty.fetch_add(self.empty, Ordering::Relaxed);
        c.rejected.fetch_add(self.rejected, Ordering::Relaxed);
    }
}

impl BackendHandle for ScqHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        // Blocking flavor of a fixed-capacity queue: spin until space.
        while self.try_enqueue(v).is_err() {
            core::hint::spin_loop();
        }
    }

    fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
        match self.q.push(v) {
            Ok(()) => {
                self.enq += 1;
                Ok(())
            }
            Err(full) => {
                self.rejected += 1;
                Err(full)
            }
        }
    }

    fn dequeue(&mut self) -> Option<u64> {
        match self.q.pop() {
            Some(v) => {
                self.deq += 1;
                Some(v)
            }
            None => {
                self.empty += 1;
                None
            }
        }
    }
}

impl QueueBackend for Scq {
    type Handle<'q> = ScqHandle<'q>;
    const NAME: &'static str = "SCQ";
    const FIXED_CAPACITY: bool = true;

    fn new() -> Self {
        Scq::with_order(DEFAULT_ORDER)
    }

    fn register(&self) -> Self::Handle<'_> {
        ScqHandle {
            q: self,
            enq: 0,
            deq: 0,
            empty: 0,
            rejected: 0,
        }
    }

    fn stats(&self) -> QueueStats {
        // Ring ops have one (FAA, CAS) shape — everything maps to the
        // taxonomy's fast path, plus EMPTY probes and full rejections.
        let c = &self.counters;
        QueueStats {
            enq_fast: c.enq.load(Ordering::Relaxed),
            deq_fast: c.deq.load(Ordering::Relaxed),
            deq_empty: c.empty.load(Ordering::Relaxed),
            enq_rejected: c.rejected.load(Ordering::Relaxed),
            ..QueueStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    #[test]
    fn ring_prefill_matches_sequential_enqueues() {
        let by_fill = ScqRing::new(4, 16);
        let by_hand = ScqRing::new(4, 0);
        for i in 0..16 {
            by_hand.enqueue(i);
        }
        for want in 0..16 {
            assert_eq!(by_fill.dequeue(), Some(want));
            assert_eq!(by_hand.dequeue(), Some(want));
        }
        assert_eq!(by_fill.dequeue(), None);
        assert_eq!(by_hand.dequeue(), None);
    }

    #[test]
    fn ring_wraps_cycles() {
        let r = ScqRing::new(3, 0); // capacity 8, 16 entries
        for round in 0..100u64 {
            for i in 0..8 {
                r.enqueue(i);
            }
            for i in 0..8 {
                assert_eq!(r.dequeue(), Some(i), "round {round}");
            }
            assert_eq!(r.dequeue(), None, "round {round}");
        }
    }

    #[test]
    fn threshold_makes_empty_probes_cheap() {
        let r = ScqRing::new(3, 0);
        assert_eq!(r.dequeue(), None);
        let head_after_first = r.head.load(Ordering::SeqCst);
        // Once certified empty, further probes must not burn tickets.
        for _ in 0..100 {
            assert_eq!(r.dequeue(), None);
        }
        assert_eq!(r.head.load(Ordering::SeqCst), head_after_first);
        // ...and an enqueue resurrects the ring.
        r.enqueue(5);
        assert_eq!(r.dequeue(), Some(5));
    }

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<Scq>();
    }

    #[test]
    fn interleaved_single_thread() {
        conformance::interleaved_single_thread::<Scq>();
    }

    #[test]
    fn batch_roundtrip_via_defaults() {
        conformance::batch_roundtrip::<Scq>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<Scq>(3, 3, 2_000);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let q = Scq::with_order(3); // capacity 8
        let mut h = q.register();
        for v in 1..=8 {
            assert_eq!(h.try_enqueue(v), Ok(()));
        }
        assert_eq!(h.try_enqueue(9), Err(Full(())));
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.try_enqueue(9), Ok(()));
        for want in 2..=9 {
            assert_eq!(h.dequeue(), Some(want));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn stats_count_all_outcomes() {
        let q = Scq::with_order(3);
        let mut h = q.register();
        for v in 1..=8 {
            h.enqueue(v);
        }
        let _ = h.try_enqueue(99); // rejected
        while h.dequeue().is_some() {}
        drop(h); // flush
        let s = QueueBackend::stats(&q);
        assert_eq!(s.enq_fast, 8);
        assert_eq!(s.deq_fast, 8);
        assert_eq!(s.enq_rejected, 1);
        assert!(s.deq_empty >= 1);
    }
}
