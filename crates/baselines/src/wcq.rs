//! wCQ — the wait-free circular queue of Nikolaev & Ravindran
//! (PPoPP 2022, arXiv 2201.02179), §3: SCQ plus per-thread *helping
//! records* so stalled ring operations are completed by their peers.
//!
//! Structure is exactly [`crate::scq`]: two index rings (`aq`
//! allocated / `fq` free) around a data array. What changes is the `aq`
//! protocol. Each handle owns one **help record** — a 128-bit control
//! word `(state, position)` updated by double-width CAS plus a value
//! cell. An operation that exhausts its *patience* on the fast path
//! publishes its record and from then on is driven to completion
//! cooperatively:
//!
//! - **slow enqueue**: the owner claims a ring ticket with FAA and CAS-es
//!   it into the record; any peer that sees the record can then install
//!   the entry (tagged `SLOW_ENQ | tid | index` so it is attributable),
//!   finalize the record, and reset the threshold. Identical installs are
//!   idempotent — two helpers racing write the same bit pattern, so the
//!   loser's CAS simply fails onto the winner's result.
//! - **slow dequeue**: peers *consume-mark* the ticket's entry
//!   (`SLOW_DEQ | tid | index`, keeping the index visible) and finalize
//!   the record; only the owner then clears the marked entry and returns
//!   the index to `fq`, so the result cannot be lost or double-freed.
//! - **takeover**: a dequeuer meeting a `SLOW_ENQ`-tagged entry finalizes
//!   the (possibly parked) enqueuer's record before consuming, so the
//!   enqueuer cannot later re-claim a new ticket and duplicate the value.
//!
//! Correctness of helping leans on two invariants, both inherited from
//! the SCQ entry discipline and checked in the proofs sketched inline:
//! entry words are **ABA-free** (a given 64-bit entry value is never
//! revisited: cycles are monotone and within a cycle the index field only
//! moves `⊥ → value → ⊥`), and a record's round may only be **advanced
//! after its ticket's slot is permanently dead** (cycle moved past, or
//! killed at-cycle). Together they make a lagging helper's CAS fail
//! rather than resurrect an abandoned ticket.
//!
//! **Deviation from the paper, documented honestly:** in full wCQ even
//! the ticket-claiming FAA is helped (via `Head`/`Tail` version counters
//! and per-slot sequence numbers), making every step of every operation
//! completable by peers. Here the FAA stays with the owner — a thread
//! parked *between* publishing and claiming strands only its own
//! operation (exactly like a parked fast-path claimant), while the
//! already-claimed ticket is always completable by helpers. Ring-level
//! progress is lock-free with helped completion; per-operation
//! wait-freedom holds once the position is claimed. The slow dequeuer
//! whose ticket lands on a stuck *older-cycle* value also waits for that
//! value's consumer before it can safely declare the ticket dead (full
//! wCQ sidesteps this with per-slot seqnums). DESIGN.md §11 carries the
//! full argument.

use core::sync::atomic::{AtomicU64, Ordering};

use wfq_sync::dwcas::AtomicU128;
use wfq_sync::{inject, CachePadded};
use wfqueue::{BackendHandle, Full, QueueBackend, QueueStats};

use crate::scq::{ecycle, eidx, esafe, is_empty_idx, pack, ScqRing, BOT, IDX_MASK, KILLED, SAFE_BIT};

/// Default capacity order (same geometry as [`crate::scq::DEFAULT_ORDER`]).
pub const DEFAULT_ORDER: u32 = 15;
/// Fast-path attempts before an operation goes through its help record.
pub const DEFAULT_PATIENCE: u32 = 16;
/// Maximum registered handles (the help-record array is fixed).
pub const MAX_HANDLES: usize = 64;
/// Orders above 23 would collide the data index with the marker bits.
pub const MAX_ORDER: u32 = 23;

/// Bound on the work a *helper* invests in someone else's record per
/// visit (owners loop until completion).
const HELP_STEPS: u32 = 128;

// Index-field sublayout (32 bits, see scq.rs for the outer layout):
// bit 31 = SLOW_ENQ, bit 30 = SLOW_DEQ, bits 24..30 = tid, 0..24 = index.
const SLOW_ENQ: u64 = 1 << 31;
const SLOW_DEQ: u64 = 1 << 30;
const TID_SHIFT: u32 = 24;
const TID_MASK: u64 = 0x3F << TID_SHIFT;
const DATA_MASK: u64 = (1 << TID_SHIFT) - 1;

// Record state word: kind in bits 0..2, DONE bit 2, EMPTY bit 3,
// monotone round/op sequence from bit 4 (bumped on publish and on every
// round advance, so a (state, position) pair never recurs).
const K_IDLE: u64 = 0;
const K_ENQ: u64 = 1;
const K_DEQ: u64 = 2;
const ST_DONE: u64 = 1 << 2;
const ST_EMPTY: u64 = 1 << 3;
const SEQ_ONE: u64 = 1 << 4;

/// `position` value while the owner has not yet claimed a ticket.
const UNSET: u64 = u64::MAX;

#[inline]
const fn st_kind(st: u64) -> u64 {
    st & 3
}

#[inline]
const fn st_done(st: u64) -> bool {
    st & ST_DONE != 0
}

/// An untorn read of a 128-bit pair: two consecutive equal tearing loads
/// bracket a moment where both halves held these values (valid because
/// control words never revisit a value — seq strictly grows).
#[inline]
fn snapshot(c: &AtomicU128) -> (u64, u64) {
    loop {
        let a = c.load();
        if c.load() == a {
            return a;
        }
        core::hint::spin_loop();
    }
}

/// One per-handle helping record.
struct HelpRecord {
    /// `(state, position)`; all transitions are full-pair CAS.
    ctrl: AtomicU128,
    /// For slow enqueues: the data index to install. Written by the owner
    /// strictly before publishing, so any helper that proves the record
    /// round current (via a successful entry CAS) read the right value.
    value: AtomicU64,
}

/// Outcome of a bounded fast-path dequeue.
enum FastDeq {
    /// Data index consumed.
    Got(u64),
    /// Certified empty.
    Empty,
    /// Patience exhausted; go through the record.
    GiveUp,
}

/// Per-handle operation counters (flushed on handle drop).
#[derive(Default)]
struct Local {
    enq_fast: u64,
    enq_slow: u64,
    deq_fast: u64,
    deq_slow: u64,
    deq_empty: u64,
    rejected: u64,
    help_enq: u64,
    help_deq: u64,
    takeovers: u64,
}

#[derive(Default)]
struct Counters {
    enq_fast: AtomicU64,
    enq_slow: AtomicU64,
    deq_fast: AtomicU64,
    deq_slow: AtomicU64,
    deq_empty: AtomicU64,
    rejected: AtomicU64,
    help_enq: AtomicU64,
    help_deq: AtomicU64,
    takeovers: AtomicU64,
}

/// The wCQ queue.
pub struct Wcq {
    /// Allocated-index ring, driven by the helped protocol below (its
    /// `ScqRing::enqueue`/`dequeue` methods are *not* used).
    aq: ScqRing,
    /// Free-index ring, standard SCQ protocol (lock-free; see module docs).
    fq: ScqRing,
    data: Box<[AtomicU64]>,
    records: Box<[CachePadded<HelpRecord>]>,
    /// Bit `t` set ⇔ tid `t` is a live handle.
    tids: AtomicU64,
    patience: u32,
    counters: Counters,
}

impl Wcq {
    /// Creates a wCQ with `2^order` slots and the given fast-path
    /// patience (0 forces every operation through its help record —
    /// used by the deterministic slow-path tests).
    pub fn with_params(order: u32, patience: u32) -> Self {
        assert!(order <= MAX_ORDER, "wcq order exceeds data-index field");
        let n = 1u64 << order;
        Wcq {
            aq: ScqRing::new(order, 0),
            fq: ScqRing::new(order, n),
            data: (0..n).map(|_| AtomicU64::new(0)).collect(),
            records: (0..MAX_HANDLES)
                .map(|_| {
                    CachePadded::new(HelpRecord {
                        ctrl: AtomicU128::new(K_IDLE, UNSET),
                        value: AtomicU64::new(0),
                    })
                })
                .collect(),
            tids: AtomicU64::new(0),
            patience,
            counters: Counters::default(),
        }
    }

    /// Creates a wCQ with the given patience at the default capacity.
    pub fn with_patience(patience: u32) -> Self {
        Self::with_params(DEFAULT_ORDER, patience)
    }

    /// Slot capacity.
    pub fn capacity(&self) -> u64 {
        self.data.len() as u64
    }

    // ------------------------------------------------------------------
    // Fast paths: SCQ with bounded patience and marker awareness.
    // ------------------------------------------------------------------

    /// Bounded SCQ-style enqueue of data index `i` into `aq`.
    fn enq_fast(&self, i: u64) -> bool {
        for _ in 0..self.patience {
            let t = self.aq.tail.fetch_add(1, Ordering::SeqCst);
            let tc = self.aq.cycle(t);
            let entry = self.aq.entry(t);
            let mut e = entry.load(Ordering::SeqCst);
            loop {
                if ecycle(e) < tc
                    && is_empty_idx(eidx(e))
                    && (esafe(e) || self.aq.head.load(Ordering::SeqCst) <= t)
                {
                    match entry.compare_exchange(
                        e,
                        pack(tc, true, i),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    ) {
                        Ok(_) => {
                            self.aq.reset_threshold();
                            return true;
                        }
                        Err(seen) => {
                            e = seen;
                            continue;
                        }
                    }
                }
                break;
            }
        }
        false
    }

    /// Bounded SCQ-style dequeue from `aq`.
    fn deq_fast(&self, local: &mut Local) -> FastDeq {
        if self.aq.threshold.load(Ordering::SeqCst) < 0 {
            return FastDeq::Empty;
        }
        for _ in 0..self.patience {
            let h = self.aq.head.fetch_add(1, Ordering::SeqCst);
            let hc = self.aq.cycle(h);
            let entry = self.aq.entry(h);
            let mut e = entry.load(Ordering::SeqCst);
            loop {
                if ecycle(e) == hc && !is_empty_idx(eidx(e)) {
                    // Ticket h's value. SLOW_DEQ at our own cycle is
                    // impossible (only ticket h's record marks it, and
                    // ticket h is ours, fast).
                    debug_assert_eq!(eidx(e) & SLOW_DEQ, 0);
                    if eidx(e) & SLOW_ENQ != 0 {
                        // A parked slow enqueuer's entry: finalize its
                        // record before consuming (else it could re-claim
                        // a ticket and duplicate the value).
                        self.resolve_slow_enq(e, h, local);
                    }
                    // Only ticket h consumes, and in-cycle transitions
                    // preserve the idx bits, so the loaded index is valid.
                    entry.fetch_or(IDX_MASK, Ordering::SeqCst);
                    return FastDeq::Got(eidx(e) & DATA_MASK);
                }
                if ecycle(e) < hc {
                    let new = if is_empty_idx(eidx(e)) {
                        pack(hc, esafe(e), KILLED)
                    } else {
                        e & !SAFE_BIT // value overtaken: mark unsafe
                    };
                    match entry.compare_exchange(e, new, Ordering::SeqCst, Ordering::SeqCst) {
                        Ok(_) => {}
                        Err(seen) => {
                            e = seen;
                            continue;
                        }
                    }
                }
                break;
            }
            let t = self.aq.tail.load(Ordering::SeqCst);
            if t <= h + 1 {
                self.aq.catchup(t, h + 1);
                self.aq.threshold.fetch_sub(1, Ordering::SeqCst);
                return FastDeq::Empty;
            }
            if self.aq.threshold.fetch_sub(1, Ordering::SeqCst) <= 0 {
                return FastDeq::Empty;
            }
        }
        FastDeq::GiveUp
    }

    /// Finalizes a peer's pending slow-enqueue record whose entry at
    /// `ticket` we are about to consume.
    fn resolve_slow_enq(&self, e: u64, ticket: u64, local: &mut Local) {
        let tid = ((eidx(e) & TID_MASK) >> TID_SHIFT) as usize;
        let rec = &self.records[tid];
        let (st, pos) = snapshot(&rec.ctrl);
        if st_kind(st) == K_ENQ && !st_done(st) && pos == ticket {
            inject!("wcq::help::takeover");
            if rec.ctrl.compare_exchange((st, pos), (st | ST_DONE, pos)).is_ok() {
                local.takeovers += 1;
            }
        }
        // Any other state: the record already moved on, which (by the
        // round-advance-needs-permanent-death rule) proves this install
        // was finalized before — consuming is safe.
    }

    // ------------------------------------------------------------------
    // Slow paths: record publication + cooperative completion.
    // ------------------------------------------------------------------

    /// Publishes `(kind, UNSET)` on our record, bumping the sequence.
    fn publish(&self, tid: usize, kind: u64) {
        let rec = &self.records[tid];
        loop {
            let (st, pos) = snapshot(&rec.ctrl);
            debug_assert!(st_kind(st) == K_IDLE || st_done(st), "republishing a live record");
            let seq = st >> 4;
            let new_st = kind | ((seq + 1) << 4);
            if rec.ctrl.compare_exchange((st, pos), (new_st, UNSET)).is_ok() {
                return;
            }
            // Only stale helper finalize-CASes can contend here, and they
            // fail, not us — but retry harmlessly if the snapshot tore.
        }
    }

    /// Slow enqueue of data index `i`: publish, then drive to completion.
    fn enq_slow(&self, tid: usize, i: u64) {
        self.records[tid].value.store(i, Ordering::SeqCst);
        self.publish(tid, K_ENQ);
        inject!("wcq::enq_slow::published");
        loop {
            self.help_enq(tid, true, u32::MAX);
            let (st, _) = snapshot(&self.records[tid].ctrl);
            if st_done(st) {
                return;
            }
            core::hint::spin_loop();
        }
    }

    /// Drives `tid`'s pending slow enqueue. `owner` may claim tickets;
    /// helpers only complete already-claimed ones and give up after
    /// `max_steps`.
    fn help_enq(&self, tid: usize, owner: bool, max_steps: u32) {
        let rec = &self.records[tid];
        let mut steps = 0;
        loop {
            steps += 1;
            if steps > max_steps {
                return;
            }
            let (st, pos) = snapshot(&rec.ctrl);
            if st_kind(st) != K_ENQ || st_done(st) {
                return;
            }
            if pos == UNSET {
                if !owner {
                    return; // ticket claiming is owner-only (module docs)
                }
                let t = self.aq.tail.fetch_add(1, Ordering::SeqCst);
                let _ = rec.ctrl.compare_exchange((st, UNSET), (st, t));
                continue;
            }
            let ticket = pos;
            let tc = self.aq.cycle(ticket);
            let entry = self.aq.entry(ticket);
            let val = rec.value.load(Ordering::SeqCst);
            let pattern = SLOW_ENQ | ((tid as u64) << TID_SHIFT) | val;
            let e = entry.load(Ordering::SeqCst);

            if ecycle(e) == tc {
                if eidx(e) == pattern || eidx(e) == BOT {
                    // Installed (and possibly already consumed — a (tc, ⊥)
                    // entry at our exclusive ticket can only be our
                    // consumed install): finalize. The threshold reset is
                    // unconditional: whoever finalized, the install did
                    // land, and dequeuers gating on `threshold < 0` must
                    // learn the ring is non-empty again.
                    inject!("wcq::enq_slow::finalize");
                    let _ = rec.ctrl.compare_exchange((st, pos), (st | ST_DONE, pos));
                    self.aq.reset_threshold();
                    return;
                }
                if eidx(e) == KILLED {
                    // A dequeuer declared our ticket dead before we
                    // installed: permanent — advance the round.
                    let _ = rec
                        .ctrl
                        .compare_exchange((st, pos), (st + SEQ_ONE, UNSET));
                    continue;
                }
                // A foreign value at our exclusive ticket is impossible.
                debug_assert!(false, "foreign entry at exclusive enq ticket");
                return;
            }
            if ecycle(e) > tc {
                // Slot recycled past our cycle without an install (had we
                // installed, the record would have been finalized before
                // the slot could move on — see takeover): permanent death.
                let _ = rec
                    .ctrl
                    .compare_exchange((st, pos), (st + SEQ_ONE, UNSET));
                continue;
            }
            // ecycle(e) < tc: the slot is from an older cycle.
            if is_empty_idx(eidx(e)) {
                if esafe(e) || self.aq.head.load(Ordering::SeqCst) <= ticket {
                    // Claimable: install our tagged entry.
                    inject!("wcq::enq_slow::install");
                    if entry
                        .compare_exchange(e, pack(tc, true, pattern), Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        inject!("wcq::enq_slow::finalize");
                        let _ = rec.ctrl.compare_exchange((st, pos), (st | ST_DONE, pos));
                        self.aq.reset_threshold();
                        return;
                    }
                    continue; // entry moved; re-evaluate
                }
                // Empty but unsafe with a lagging head: unusable forever
                // for this ticket. Kill it (it holds no value) so death
                // is permanent, then advance.
                let _ = entry.compare_exchange(
                    e,
                    pack(tc, esafe(e), KILLED),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                continue;
            }
            // A stuck older-cycle *value*: killing it would drop a live
            // element and advancing without permanence could duplicate
            // ours, so wait for its consumer (owner spins, helper bails).
            if !owner {
                return;
            }
            core::hint::spin_loop();
        }
    }

    /// Slow dequeue: publish, drive to completion, harvest. Returns the
    /// consumed data index, or `None` if certified empty.
    fn deq_slow(&self, tid: usize, local: &mut Local) -> Option<u64> {
        if self.aq.threshold.load(Ordering::SeqCst) < 0 {
            return None;
        }
        self.publish(tid, K_DEQ);
        inject!("wcq::deq_slow::published");
        let rec = &self.records[tid];
        loop {
            self.help_deq(tid, true, u32::MAX, local);
            let (st, pos) = snapshot(&rec.ctrl);
            if st_done(st) {
                if st & ST_EMPTY != 0 {
                    return None;
                }
                return Some(self.harvest(tid, pos));
            }
            core::hint::spin_loop();
        }
    }

    /// Owner-only: clears our `SLOW_DEQ`-marked entry at `ticket` and
    /// returns the data index it carried. Helpers never clear, so the
    /// result cannot be lost; concurrent unsafe-marking only toggles the
    /// safe bit, which the retry absorbs.
    fn harvest(&self, tid: usize, ticket: u64) -> u64 {
        let entry = self.aq.entry(ticket);
        loop {
            let e = entry.load(Ordering::SeqCst);
            debug_assert_ne!(eidx(e) & SLOW_DEQ, 0, "harvest of an unmarked entry");
            debug_assert_eq!((eidx(e) & TID_MASK) >> TID_SHIFT, tid as u64);
            let i = eidx(e) & DATA_MASK;
            if entry
                .compare_exchange(
                    e,
                    pack(ecycle(e), esafe(e), BOT),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                )
                .is_ok()
            {
                return i;
            }
        }
    }

    /// Drives `tid`'s pending slow dequeue (same owner/helper contract as
    /// [`Self::help_enq`]).
    fn help_deq(&self, tid: usize, owner: bool, max_steps: u32, local: &mut Local) {
        let rec = &self.records[tid];
        let mut steps = 0;
        loop {
            steps += 1;
            if steps > max_steps {
                return;
            }
            let (st, pos) = snapshot(&rec.ctrl);
            if st_kind(st) != K_DEQ || st_done(st) {
                return;
            }
            if pos == UNSET {
                if !owner {
                    return;
                }
                let h = self.aq.head.fetch_add(1, Ordering::SeqCst);
                let _ = rec.ctrl.compare_exchange((st, UNSET), (st, h));
                continue;
            }
            let ticket = pos;
            let hc = self.aq.cycle(ticket);
            let entry = self.aq.entry(ticket);
            let e = entry.load(Ordering::SeqCst);

            if ecycle(e) == hc && !is_empty_idx(eidx(e)) {
                if eidx(e) & SLOW_DEQ != 0 {
                    // Already consume-marked (necessarily by our record —
                    // only ticket holders mark): finalize.
                    debug_assert_eq!((eidx(e) & TID_MASK) >> TID_SHIFT, tid as u64);
                    inject!("wcq::deq_slow::finalize");
                    let _ = rec.ctrl.compare_exchange((st, pos), (st | ST_DONE, pos));
                    return;
                }
                if eidx(e) & SLOW_ENQ != 0 {
                    self.resolve_slow_enq(e, ticket, local);
                }
                // Consume-mark: commit this value to our record while
                // keeping the index visible for the owner's harvest.
                let marked = SLOW_DEQ | ((tid as u64) << TID_SHIFT) | (eidx(e) & DATA_MASK);
                inject!("wcq::deq_slow::consume_mark");
                if entry
                    .compare_exchange(e, pack(hc, esafe(e), marked), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    inject!("wcq::deq_slow::finalize");
                    let _ = rec.ctrl.compare_exchange((st, pos), (st | ST_DONE, pos));
                    return;
                }
                continue;
            }

            let dead = ecycle(e) > hc || (ecycle(e) == hc && eidx(e) == KILLED);
            if !dead {
                if ecycle(e) == hc && eidx(e) == BOT {
                    // Our exclusive ticket shows consumed: only the
                    // owner's harvest does that, so the record is already
                    // done and this snapshot is stale.
                    return;
                }
                // Older cycle: make the ticket's fate permanent before any
                // record transition (the lagging-helper consume-mark must
                // be impossible once we move on).
                if is_empty_idx(eidx(e)) {
                    let _ = entry.compare_exchange(
                        e,
                        pack(hc, esafe(e), KILLED),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    );
                    continue; // re-evaluate (a value may have won the race)
                }
                // Stuck older-cycle value: mark unsafe, then wait for its
                // consumer — we may neither kill (drops a value) nor
                // advance (not yet permanent).
                let _ = entry.compare_exchange(e, e & !SAFE_BIT, Ordering::SeqCst, Ordering::SeqCst);
                if !owner {
                    return;
                }
                core::hint::spin_loop();
                continue;
            }

            // Ticket permanently dead: empty-check, then advance. All
            // threshold decrements are gated by winning the ctrl CAS so a
            // helper crowd can't over-decrement into a false EMPTY.
            let t = self.aq.tail.load(Ordering::SeqCst);
            if t <= ticket + 1 {
                self.aq.catchup(t, ticket + 1);
                inject!("wcq::deq_slow::finalize");
                if rec
                    .ctrl
                    .compare_exchange((st, pos), (st | ST_DONE | ST_EMPTY, pos))
                    .is_ok()
                {
                    self.aq.threshold.fetch_sub(1, Ordering::SeqCst);
                }
                return;
            }
            if self.aq.threshold.load(Ordering::SeqCst) < 0 {
                inject!("wcq::deq_slow::finalize");
                let _ = rec
                    .ctrl
                    .compare_exchange((st, pos), (st | ST_DONE | ST_EMPTY, pos));
                return;
            }
            if rec
                .ctrl
                .compare_exchange((st, pos), (st + SEQ_ONE, UNSET))
                .is_ok()
            {
                self.aq.threshold.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }

    /// Round-robin peer helping: at most one record per call, bounded
    /// work. This is what turns a parked peer's published operation into
    /// everyone's business.
    fn maybe_help(&self, own_tid: usize, cursor: &mut usize, local: &mut Local) {
        *cursor = (*cursor + 1) % MAX_HANDLES;
        let peer = *cursor;
        if peer == own_tid {
            return;
        }
        let (st, _) = snapshot(&self.records[peer].ctrl);
        if st_done(st) {
            return;
        }
        match st_kind(st) {
            K_ENQ => {
                local.help_enq += 1;
                self.help_enq(peer, false, HELP_STEPS);
            }
            K_DEQ => {
                local.help_deq += 1;
                self.help_deq(peer, false, HELP_STEPS, local);
            }
            _ => {}
        }
    }

    fn push(&self, tid: usize, cursor: &mut usize, v: u64, local: &mut Local) -> Result<(), Full> {
        self.maybe_help(tid, cursor, local);
        let Some(i) = self.fq.dequeue() else {
            local.rejected += 1;
            return Err(Full(()));
        };
        self.data[i as usize].store(v, Ordering::SeqCst);
        if self.enq_fast(i) {
            local.enq_fast += 1;
        } else {
            self.enq_slow(tid, i);
            local.enq_slow += 1;
        }
        Ok(())
    }

    fn pop(&self, tid: usize, cursor: &mut usize, local: &mut Local) -> Option<u64> {
        self.maybe_help(tid, cursor, local);
        let (i, slow) = match self.deq_fast(local) {
            FastDeq::Got(i) => (i, false),
            FastDeq::Empty => {
                local.deq_empty += 1;
                return None;
            }
            FastDeq::GiveUp => match self.deq_slow(tid, local) {
                Some(i) => (i, true),
                None => {
                    local.deq_empty += 1;
                    return None;
                }
            },
        };
        if slow {
            local.deq_slow += 1;
        } else {
            local.deq_fast += 1;
        }
        let v = self.data[i as usize].load(Ordering::SeqCst);
        self.fq.enqueue(i);
        Some(v)
    }
}

/// Per-thread handle for [`Wcq`].
pub struct WcqHandle<'q> {
    q: &'q Wcq,
    tid: usize,
    cursor: usize,
    local: Local,
}

impl Drop for WcqHandle<'_> {
    fn drop(&mut self) {
        let c = &self.q.counters;
        let l = &self.local;
        c.enq_fast.fetch_add(l.enq_fast, Ordering::Relaxed);
        c.enq_slow.fetch_add(l.enq_slow, Ordering::Relaxed);
        c.deq_fast.fetch_add(l.deq_fast, Ordering::Relaxed);
        c.deq_slow.fetch_add(l.deq_slow, Ordering::Relaxed);
        c.deq_empty.fetch_add(l.deq_empty, Ordering::Relaxed);
        c.rejected.fetch_add(l.rejected, Ordering::Relaxed);
        c.help_enq.fetch_add(l.help_enq, Ordering::Relaxed);
        c.help_deq.fetch_add(l.help_deq, Ordering::Relaxed);
        c.takeovers.fetch_add(l.takeovers, Ordering::Relaxed);
        self.q.tids.fetch_and(!(1 << self.tid), Ordering::SeqCst);
    }
}

impl BackendHandle for WcqHandle<'_> {
    fn enqueue(&mut self, v: u64) {
        while self.try_enqueue(v).is_err() {
            core::hint::spin_loop();
        }
    }

    fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
        let mut cursor = self.cursor;
        let r = self.q.push(self.tid, &mut cursor, v, &mut self.local);
        self.cursor = cursor;
        r
    }

    fn dequeue(&mut self) -> Option<u64> {
        let mut cursor = self.cursor;
        let r = self.q.pop(self.tid, &mut cursor, &mut self.local);
        self.cursor = cursor;
        r
    }
}

impl QueueBackend for Wcq {
    type Handle<'q> = WcqHandle<'q>;
    const NAME: &'static str = "wCQ";
    const FIXED_CAPACITY: bool = true;

    fn new() -> Self {
        Wcq::with_params(DEFAULT_ORDER, DEFAULT_PATIENCE)
    }

    fn register(&self) -> Self::Handle<'_> {
        // Claim a free record slot.
        loop {
            let cur = self.tids.load(Ordering::SeqCst);
            let free = (!cur).trailing_zeros() as usize;
            assert!(free < MAX_HANDLES, "wCQ supports at most 64 live handles");
            if self
                .tids
                .compare_exchange(cur, cur | (1 << free), Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return WcqHandle {
                    q: self,
                    tid: free,
                    cursor: free,
                    local: Local::default(),
                };
            }
        }
    }

    fn stats(&self) -> QueueStats {
        let c = &self.counters;
        QueueStats {
            enq_fast: c.enq_fast.load(Ordering::Relaxed),
            enq_slow: c.enq_slow.load(Ordering::Relaxed),
            deq_fast: c.deq_fast.load(Ordering::Relaxed),
            deq_slow: c.deq_slow.load(Ordering::Relaxed),
            deq_empty: c.deq_empty.load(Ordering::Relaxed),
            enq_rejected: c.rejected.load(Ordering::Relaxed),
            help_enq: c.help_enq.load(Ordering::Relaxed),
            help_deq: c.help_deq.load(Ordering::Relaxed),
            enq_slow_helped: c.takeovers.load(Ordering::Relaxed),
            ..QueueStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;

    /// Patience-0 wCQ: every operation takes the record path.
    struct Wcq0(Wcq);
    struct Wcq0Handle<'q>(WcqHandle<'q>);
    impl BackendHandle for Wcq0Handle<'_> {
        fn enqueue(&mut self, v: u64) {
            self.0.enqueue(v);
        }
        fn dequeue(&mut self) -> Option<u64> {
            self.0.dequeue()
        }
        fn try_enqueue(&mut self, v: u64) -> Result<(), Full> {
            self.0.try_enqueue(v)
        }
    }
    impl QueueBackend for Wcq0 {
        type Handle<'q> = Wcq0Handle<'q>;
        const NAME: &'static str = "wCQ-0";
        const FIXED_CAPACITY: bool = true;
        fn new() -> Self {
            Wcq0(Wcq::with_params(10, 0))
        }
        fn register(&self) -> Self::Handle<'_> {
            Wcq0Handle(self.0.register())
        }
    }

    #[test]
    fn fifo_single_thread() {
        conformance::fifo_single_thread::<Wcq>();
    }

    #[test]
    fn interleaved_single_thread() {
        conformance::interleaved_single_thread::<Wcq>();
    }

    #[test]
    fn batch_roundtrip_via_defaults() {
        conformance::batch_roundtrip::<Wcq>();
    }

    #[test]
    fn mpmc_conservation() {
        conformance::mpmc_conservation::<Wcq>(3, 3, 2_000);
    }

    #[test]
    fn slow_paths_fifo_single_thread() {
        conformance::fifo_single_thread::<Wcq0>();
        conformance::interleaved_single_thread::<Wcq0>();
    }

    #[test]
    fn slow_paths_mpmc_conservation() {
        conformance::mpmc_conservation::<Wcq0>(3, 3, 1_000);
    }

    #[test]
    fn slow_paths_are_counted() {
        let q = Wcq::with_params(6, 0);
        let mut h = q.register();
        for v in 1..=20 {
            h.enqueue(v);
        }
        for want in 1..=20 {
            assert_eq!(h.dequeue(), Some(want));
        }
        assert_eq!(h.dequeue(), None);
        drop(h);
        let s = QueueBackend::stats(&q);
        assert_eq!(s.enq_slow, 20, "patience 0 must route all enqueues slow");
        assert_eq!(s.deq_slow, 20, "patience 0 must route all dequeues slow");
        assert_eq!(s.enq_fast + s.deq_fast, 0);
        assert!(s.deq_empty >= 1);
    }

    #[test]
    fn full_ring_rejects_and_recovers() {
        let q = Wcq::with_params(3, 0); // capacity 8, all-slow
        let mut h = q.register();
        for v in 1..=8 {
            assert_eq!(h.try_enqueue(v), Ok(()));
        }
        assert_eq!(h.try_enqueue(9), Err(Full(())));
        assert_eq!(h.dequeue(), Some(1));
        assert_eq!(h.try_enqueue(9), Ok(()));
        for want in 2..=9 {
            assert_eq!(h.dequeue(), Some(want));
        }
        assert_eq!(h.dequeue(), None);
    }

    #[test]
    fn ring_cycles_wrap_under_slow_paths() {
        let q = Wcq::with_params(3, 0);
        let mut h = q.register();
        for round in 0..200u64 {
            for v in 1..=8 {
                h.enqueue(round * 8 + v);
            }
            for v in 1..=8 {
                assert_eq!(h.dequeue(), Some(round * 8 + v), "round {round}");
            }
        }
    }

    #[test]
    fn tids_are_reused_after_drop() {
        let q = Wcq::new();
        for _ in 0..1_000 {
            let h = q.register();
            assert!(h.tid < MAX_HANDLES);
            drop(h);
        }
        let handles: Vec<_> = (0..MAX_HANDLES).map(|_| q.register()).collect();
        let mut tids: Vec<_> = handles.iter().map(|h| h.tid).collect();
        tids.sort_unstable();
        assert_eq!(tids, (0..MAX_HANDLES).collect::<Vec<_>>());
    }

    #[test]
    fn mixed_patience_threads_interoperate() {
        // Fast-path threads and all-slow threads on one queue: the
        // helping protocol must keep them linearizable together.
        use std::sync::atomic::{AtomicU64, Ordering};
        let q = Wcq::with_params(8, 4);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        let total = 4 * 2_000u64;
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let q = &q;
                s.spawn(move || {
                    let mut h = q.register();
                    for v in 0..2_000 {
                        h.enqueue(t * 2_000 + v + 1);
                    }
                });
            }
            for _ in 0..4 {
                let q = &q;
                let sum = &sum;
                let count = &count;
                s.spawn(move || {
                    let mut h = q.register();
                    while count.load(Ordering::Relaxed) < total {
                        if let Some(v) = h.dequeue() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), total);
        assert_eq!(sum.load(Ordering::Relaxed), (1..=total).sum::<u64>());
    }
}
