//! Platform introspection and thread pinning.
//!
//! The paper pins software threads compactly — "each software thread is
//! mapped to the hardware thread that is closest to previously mapped
//! threads" — and reports platform characteristics in Table 1. This module
//! provides both: [`pin_to_cpu`] via `sched_setaffinity`, and
//! [`PlatformInfo::detect`] from `/proc/cpuinfo`.

use std::fs;

/// Summary of the machine, i.e. one row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlatformInfo {
    /// CPU model string.
    pub model: String,
    /// Number of online logical CPUs (hardware threads).
    pub logical_cpus: usize,
    /// Number of distinct physical packages (sockets), if reported.
    pub sockets: usize,
    /// Number of distinct physical cores, if reported.
    pub cores: usize,
    /// Whether the target natively supports fetch-and-add (x86_64 does;
    /// the paper's Power7 does not and pays for it).
    pub native_faa: bool,
    /// Whether double-width CAS is lock-free here (LCRQ eligibility).
    pub native_cas2: bool,
}

impl PlatformInfo {
    /// Reads `/proc/cpuinfo`; falls back to conservative defaults off-Linux.
    pub fn detect() -> Self {
        let cpuinfo = fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let mut model = String::from("unknown");
        let mut logical = 0usize;
        let mut sockets = std::collections::BTreeSet::new();
        let mut cores = std::collections::BTreeSet::new();
        let mut cur_socket = 0u64;
        for line in cpuinfo.lines() {
            let mut parts = line.splitn(2, ':');
            let key = parts.next().unwrap_or("").trim();
            let val = parts.next().unwrap_or("").trim();
            match key {
                "processor" => logical += 1,
                "model name" if model == "unknown" => model = val.to_string(),
                "physical id" => {
                    cur_socket = val.parse().unwrap_or(0);
                    sockets.insert(cur_socket);
                }
                "core id" => {
                    cores.insert((cur_socket, val.parse::<u64>().unwrap_or(0)));
                }
                _ => {}
            }
        }
        if logical == 0 {
            logical = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
        }
        Self {
            model,
            logical_cpus: logical,
            sockets: sockets.len().max(1),
            cores: cores.len().max(1),
            native_faa: cfg!(target_arch = "x86_64") || cfg!(target_arch = "aarch64"),
            native_cas2: wfq_sync::dwcas::IS_LOCK_FREE,
        }
    }

    /// Renders the Table 1 row as markdown.
    pub fn markdown_row(&self) -> String {
        format!(
            "| {} | {} | {} | {} | {} | {} |",
            self.model,
            self.sockets,
            self.cores,
            self.logical_cpus,
            if self.native_faa { "yes" } else { "no" },
            if self.native_cas2 { "yes" } else { "no" },
        )
    }
}

// Minimal libc surface declared directly (the build must work without the
// `libc` crate): `cpu_set_t` is a 1024-bit mask on Linux, and both symbols
// live in the libc every Rust binary already links against.
#[cfg(target_os = "linux")]
mod ffi {
    /// `CPU_SETSIZE / (8 * sizeof(unsigned long))` on 64-bit Linux.
    pub const CPU_SET_WORDS: usize = 1024 / 64;

    extern "C" {
        pub fn sysconf(name: i32) -> i64;
        pub fn sched_setaffinity(
            pid: i32,
            cpusetsize: usize,
            mask: *const u64,
        ) -> i32;
    }

    /// `_SC_NPROCESSORS_ONLN` on Linux.
    pub const SC_NPROCESSORS_ONLN: i32 = 84;
}

/// Number of online logical CPUs.
pub fn num_cpus() -> usize {
    #[cfg(target_os = "linux")]
    {
        // SAFETY: plain libc query, no preconditions.
        let n = unsafe { ffi::sysconf(ffi::SC_NPROCESSORS_ONLN) };
        if n > 0 {
            return n as usize;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pins the calling thread to `cpu mod num_cpus` — the paper's compact
/// mapping degenerates to this on a machine whose logical CPUs are already
/// enumerated core-adjacent (Linux enumerates SMT siblings together on the
/// platforms we target). Returns false if the affinity call failed
/// (e.g. restricted container), in which case the thread runs unpinned.
pub fn pin_to_cpu(cpu: usize) -> bool {
    let ncpu = num_cpus();
    let target = cpu % ncpu;
    #[cfg(target_os = "linux")]
    {
        let mut set = [0u64; ffi::CPU_SET_WORDS];
        set[target / 64] |= 1u64 << (target % 64);
        // SAFETY: the mask is a plain bitmask of the documented size; pid 0
        // means the calling thread.
        return unsafe {
            ffi::sched_setaffinity(0, core::mem::size_of_val(&set), set.as_ptr()) == 0
        };
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = target;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_reports_at_least_one_cpu() {
        let p = PlatformInfo::detect();
        assert!(p.logical_cpus >= 1);
        assert!(p.sockets >= 1);
        assert!(p.cores >= 1);
        assert!(!p.model.is_empty());
    }

    #[test]
    fn x86_has_native_primitives() {
        if cfg!(target_arch = "x86_64") {
            let p = PlatformInfo::detect();
            assert!(p.native_faa);
            assert!(p.native_cas2);
        }
    }

    #[test]
    fn num_cpus_positive() {
        assert!(num_cpus() >= 1);
    }

    #[test]
    fn pinning_to_each_cpu_succeeds_or_degrades_gracefully() {
        // In a containerized environment pinning may be restricted; the
        // call must never panic and must wrap around ncpus.
        for cpu in 0..2 * num_cpus() {
            let _ = pin_to_cpu(cpu);
        }
    }

    #[test]
    fn markdown_row_has_six_columns() {
        let p = PlatformInfo::detect();
        let row = p.markdown_row();
        assert_eq!(row.matches('|').count(), 7, "6 columns need 7 pipes");
    }
}
