//! Metrics exposition and trace artifacts.
//!
//! Two output formats for the queue's observability data:
//!
//! - **Prometheus text exposition** ([`render_prometheus`]): the monotone
//!   [`QueueStats`] counters as `wfq_*_total` counters plus the
//!   instantaneous [`Gauges`] (live segments, hazard lag, helping-record
//!   occupancy). The output follows the Prometheus text format 0.0.4
//!   (`# HELP` / `# TYPE` headers, one sample per line), so it can be
//!   scraped from a file or served as-is.
//! - **Chrome trace JSON** ([`dump_chrome_trace`]): drains every flight
//!   recorder registered in this process (see `wfq-obs`) and writes a
//!   Perfetto-loadable trace. In builds without the `trace` feature the
//!   drain is empty and the file holds an empty `traceEvents` array.

use std::io;
use std::path::Path;

use wfqueue::{Gauges, QueueStats};

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Renders queue statistics (and, when given, gauges) in the Prometheus
/// text exposition format.
pub fn render_prometheus(stats: &QueueStats, gauges: Option<&Gauges>) -> String {
    let mut out = String::new();
    let s = stats;
    counter(&mut out, "wfq_enq_fast_total", "Enqueues completed on the fast path", s.enq_fast);
    counter(&mut out, "wfq_enq_slow_total", "Enqueues that fell back to the slow path", s.enq_slow);
    counter(&mut out, "wfq_deq_fast_total", "Dequeues completed on the fast path", s.deq_fast);
    counter(&mut out, "wfq_deq_slow_total", "Dequeues that fell back to the slow path", s.deq_slow);
    counter(&mut out, "wfq_deq_empty_total", "Dequeues that returned EMPTY", s.deq_empty);
    counter(&mut out, "wfq_help_enq_total", "Calls helping a peer's enqueue request", s.help_enq);
    counter(&mut out, "wfq_help_enq_commit_total", "help_enq calls that committed a peer's value", s.help_enq_commit);
    counter(&mut out, "wfq_help_enq_seal_total", "Cells sealed unusable by help_enq", s.help_enq_seal);
    counter(&mut out, "wfq_help_deq_total", "Calls helping a peer's dequeue request", s.help_deq);
    counter(&mut out, "wfq_help_deq_announce_total", "Candidate cells announced by help_deq", s.help_deq_announce);
    counter(&mut out, "wfq_help_deq_complete_total", "Dequeue requests completed by help_deq", s.help_deq_complete);
    counter(&mut out, "wfq_cleanups_total", "Reclamation passes executed", s.cleanups);
    counter(&mut out, "wfq_reclaim_noop_total", "Reclamation passes that found nothing", s.reclaim_noop);
    counter(&mut out, "wfq_reclaim_conceded_total", "Reclamation boundary concessions", s.reclaim_conceded);
    counter(&mut out, "wfq_reclaim_backward_clamp_total", "Backward-pass hazard clamps", s.reclaim_backward_clamp);
    counter(&mut out, "wfq_segs_alloc_total", "Segments allocated and published", s.segs_alloc);
    counter(&mut out, "wfq_segs_freed_total", "Segments reclaimed", s.segs_freed);
    counter(&mut out, "wfq_segs_recycled_total", "Segments recycled into the bounded-mode pool", s.segs_recycled);
    counter(&mut out, "wfq_enq_rejected_total", "Enqueues rejected at the segment ceiling", s.enq_rejected);
    counter(&mut out, "wfq_forced_cleanups_total", "Enqueuer-elected (forced) reclamation passes", s.forced_cleanups);
    counter(&mut out, "wfq_enq_batches_total", "Batch enqueue calls (one FAA each)", s.enq_batches);
    counter(&mut out, "wfq_enq_batched_vals_total", "Values enqueued through batch calls", s.enq_batched_vals);
    counter(&mut out, "wfq_enq_batch_stragglers_total", "Batch enqueue elements that fell to the slow path", s.enq_batch_stragglers);
    counter(&mut out, "wfq_enq_batch_abandoned_total", "Pre-claimed cells abandoned after a batch straggler", s.enq_batch_abandoned);
    counter(&mut out, "wfq_deq_batches_total", "Batch dequeue calls (including empty fast-outs)", s.deq_batches);
    counter(&mut out, "wfq_deq_batched_vals_total", "Values dequeued through batch calls", s.deq_batched_vals);
    counter(&mut out, "wfq_deq_batch_partial_total", "Batch dequeue claims trimmed below the requested width", s.deq_batch_partial);
    counter(&mut out, "wfq_deq_batch_stragglers_total", "Batch dequeue cells that fell to the slow path", s.deq_batch_stragglers);
    if s.enq_batches > 0 {
        gauge(
            &mut out,
            "wfq_enq_batch_avg_width",
            "Mean claimed width of batch enqueues (absent: no batches ran)",
            s.avg_enq_batch_width(),
        );
    }
    if s.deq_batches > 0 {
        gauge(
            &mut out,
            "wfq_deq_batch_avg_width",
            "Mean delivered width of batch dequeues (absent: no batches ran)",
            s.avg_deq_batch_width(),
        );
    }
    if let Some(g) = gauges {
        gauge(&mut out, "wfq_head_index", "Head index H (dequeue FAA counter)", g.head_index as f64);
        gauge(&mut out, "wfq_tail_index", "Tail index T (enqueue FAA counter)", g.tail_index as f64);
        gauge(&mut out, "wfq_oldest_segment_id", "Oldest live segment id I (-1: cleaner active)", g.oldest_segment_id as f64);
        gauge(&mut out, "wfq_live_segments", "Segments currently in the list", g.live_segments as f64);
        gauge(
            &mut out,
            "wfq_hazard_lag_segments",
            "Segments pinned behind the dequeue frontier by the laggiest hazard",
            g.hazard_lag_segments as f64,
        );
        if let Some(mh) = g.min_hazard {
            gauge(
                &mut out,
                "wfq_min_hazard",
                "Oldest published hazard segment id (absent: no hazard live)",
                mh as f64,
            );
        }
        gauge(&mut out, "wfq_active_handles", "Handles currently owned", g.active_handles as f64);
        gauge(
            &mut out,
            "wfq_help_ring_occupancy",
            "Pending helping records as a fraction of request slots",
            g.help_ring_occupancy(),
        );
        gauge(&mut out, "wfq_pending_enq_reqs", "Enqueue helping records pending", g.pending_enq_reqs as f64);
        gauge(&mut out, "wfq_pending_deq_reqs", "Dequeue helping records pending", g.pending_deq_reqs as f64);
        gauge(&mut out, "wfq_pooled_segments", "Scrubbed segments parked in the bounded-mode pool", g.pooled_segments as f64);
        if let Some(c) = g.segment_ceiling {
            gauge(&mut out, "wfq_segment_ceiling", "Configured segment ceiling (absent: unbounded)", c as f64);
        }
        if let Some(hr) = g.ceiling_headroom {
            gauge(
                &mut out,
                "wfq_ceiling_headroom",
                "Fresh segments still allocatable below the ceiling",
                hr as f64,
            );
        }
    }
    gauge(
        &mut out,
        "wfq_trace_recorders",
        "Flight recorders registered in this process",
        wfq_obs::recorder_count() as f64,
    );
    out
}

/// Writes [`render_prometheus`] output to a file.
pub fn write_metrics(
    path: &Path,
    stats: &QueueStats,
    gauges: Option<&Gauges>,
) -> io::Result<()> {
    std::fs::write(path, render_prometheus(stats, gauges))
}

/// Drains every registered flight recorder and writes a Chrome trace-event
/// JSON file. Returns the number of events serialized (0 in builds without
/// the `trace` feature — the file is still written, with an empty event
/// array, so tooling never has to special-case the disabled build).
pub fn dump_chrome_trace(path: &Path) -> io::Result<usize> {
    let traces = wfq_obs::drain();
    std::fs::write(path, wfq_obs::chrome_trace_json(&traces))?;
    Ok(traces.iter().map(|t| t.events.len()).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_output_has_counters_and_headers() {
        let s = QueueStats {
            enq_fast: 5,
            deq_empty: 2,
            ..Default::default()
        };
        let out = render_prometheus(&s, None);
        assert!(out.contains("# TYPE wfq_enq_fast_total counter"));
        assert!(out.contains("wfq_enq_fast_total 5\n"));
        assert!(out.contains("wfq_deq_empty_total 2\n"));
        assert!(!out.contains("wfq_live_segments"), "no gauges requested");
        // Every sample line is `name value` (format sanity).
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn prometheus_output_includes_gauges_when_given() {
        let g = Gauges {
            live_segments: 3,
            hazard_lag_segments: 1,
            total_handles: 2,
            pending_enq_reqs: 1,
            ..Default::default()
        };
        let out = render_prometheus(&QueueStats::default(), Some(&g));
        assert!(out.contains("wfq_live_segments 3\n"));
        assert!(out.contains("wfq_hazard_lag_segments 1\n"));
        assert!(out.contains("wfq_help_ring_occupancy 0.25\n"));
        assert!(out.contains("# TYPE wfq_live_segments gauge"));
    }

    #[test]
    fn bounded_gauges_render_only_for_bounded_queues() {
        let unbounded = Gauges::default();
        let out = render_prometheus(&QueueStats::default(), Some(&unbounded));
        assert!(out.contains("wfq_pooled_segments 0\n"));
        assert!(!out.contains("wfq_segment_ceiling"), "unbounded: no ceiling");
        assert!(!out.contains("wfq_ceiling_headroom"));
        assert!(out.contains("wfq_enq_rejected_total 0\n"));

        let bounded = Gauges {
            pooled_segments: 3,
            segment_ceiling: Some(64),
            ceiling_headroom: Some(12),
            ..Default::default()
        };
        let out = render_prometheus(&QueueStats::default(), Some(&bounded));
        assert!(out.contains("wfq_pooled_segments 3\n"));
        assert!(out.contains("wfq_segment_ceiling 64\n"));
        assert!(out.contains("wfq_ceiling_headroom 12\n"));
    }

    #[test]
    fn batch_counters_always_render_and_widths_only_when_batches_ran() {
        let idle = render_prometheus(&QueueStats::default(), None);
        assert!(idle.contains("wfq_enq_batches_total 0\n"));
        assert!(idle.contains("wfq_deq_batch_stragglers_total 0\n"));
        assert!(!idle.contains("wfq_enq_batch_avg_width"), "no batches ran");
        assert!(!idle.contains("wfq_deq_batch_avg_width"));

        let s = QueueStats {
            enq_batches: 2,
            enq_batched_vals: 16,
            deq_batches: 4,
            deq_batched_vals: 10,
            deq_batch_partial: 1,
            ..Default::default()
        };
        let out = render_prometheus(&s, None);
        assert!(out.contains("wfq_enq_batched_vals_total 16\n"));
        assert!(out.contains("wfq_deq_batch_partial_total 1\n"));
        assert!(out.contains("wfq_enq_batch_avg_width 8\n"));
        assert!(out.contains("wfq_deq_batch_avg_width 2.5\n"));
        assert!(out.contains("# TYPE wfq_enq_batch_avg_width gauge"));
    }

    #[test]
    fn chrome_trace_dump_writes_a_parsable_document() {
        let dir = std::env::temp_dir().join("wfq-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-empty.json");
        dump_chrome_trace(&path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(&doc).expect("trace JSON must parse");
        assert!(v.get("traceEvents").unwrap().as_arr().is_some());
        std::fs::remove_file(&path).ok();
    }
}
