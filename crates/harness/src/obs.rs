//! Metrics exposition and trace artifacts.
//!
//! Two output formats for the queue's observability data:
//!
//! - **Prometheus text exposition** ([`render_prometheus`]): the monotone
//!   [`QueueStats`] counters as `wfq_*_total` counters plus the
//!   instantaneous [`Gauges`] (live segments, hazard lag, helping-record
//!   occupancy). The output follows the Prometheus text format 0.0.4
//!   (`# HELP` / `# TYPE` headers, one sample per line), so it can be
//!   scraped from a file or served as-is.
//! - **Chrome trace JSON** ([`dump_chrome_trace`]): drains every flight
//!   recorder registered in this process (see `wfq-obs`) and writes a
//!   Perfetto-loadable trace. In builds without the `trace` feature the
//!   drain is empty and the file holds an empty `traceEvents` array.

use std::io;
use std::path::Path;

use wfqueue::{Gauges, QueueStats};

fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

fn gauge(out: &mut String, name: &str, help: &str, value: f64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Help text for one [`QueueStats`] counter field (the exposition derives
/// its metric list from [`QueueStats::for_each_counter`], so this lookup —
/// not the list — is the only thing to extend for a new counter, and a
/// forgotten entry degrades to a generic line instead of a missing metric).
fn counter_help(field: &str) -> &'static str {
    match field {
        "enq_fast" => "Enqueues completed on the fast path",
        "enq_slow" => "Enqueues that fell back to the slow path",
        "deq_fast" => "Dequeues completed on the fast path",
        "deq_slow" => "Dequeues that fell back to the slow path",
        "deq_empty" => "Dequeues that returned EMPTY",
        "help_enq" => "Calls helping a peer's enqueue request",
        "help_deq" => "Calls helping a peer's dequeue request",
        "cleanups" => "Reclamation passes executed",
        "segs_alloc" => "Segments allocated and published",
        "segs_freed" => "Segments reclaimed",
        "enq_slow_helped" => "Slow-path enqueues finished by a helper",
        "help_enq_commit" => "help_enq calls that committed a peer's value",
        "help_enq_seal" => "Cells sealed unusable by help_enq",
        "deq_slow_empty" => "Slow-path dequeues that returned EMPTY",
        "help_deq_announce" => "Candidate cells announced by help_deq",
        "help_deq_complete" => "Dequeue requests completed by help_deq",
        "reclaim_conceded" => "Reclamation boundary concessions",
        "reclaim_backward_clamp" => "Backward-pass hazard clamps",
        "reclaim_noop" => "Reclamation passes that found nothing",
        "enq_rejected" => "Enqueues rejected at the segment ceiling",
        "forced_cleanups" => "Enqueuer-elected (forced) reclamation passes",
        "segs_recycled" => "Segments recycled into the bounded-mode pool",
        "enq_batches" => "Batch enqueue calls (one FAA each)",
        "enq_batched_vals" => "Values enqueued through batch calls",
        "enq_batch_stragglers" => "Batch enqueue elements that fell to the slow path",
        "enq_batch_abandoned" => "Pre-claimed cells abandoned after a batch straggler",
        "deq_batches" => "Batch dequeue calls (including empty fast-outs)",
        "deq_batched_vals" => "Values dequeued through batch calls",
        "deq_batch_partial" => "Batch dequeue claims trimmed below the requested width",
        "deq_batch_stragglers" => "Batch dequeue cells that fell to the slow path",
        _ => "Queue protocol counter",
    }
}

/// Renders queue statistics (and, when given, gauges) in the Prometheus
/// text exposition format.
pub fn render_prometheus(stats: &QueueStats, gauges: Option<&Gauges>) -> String {
    let mut out = String::new();
    let s = stats;
    // Counters come from the canonical enumeration in the core crate:
    // parity with `QueueStats` is by construction, not by keeping two
    // hand-written lists in sync.
    s.for_each_counter(|field, value| {
        counter(
            &mut out,
            &format!("wfq_{field}_total"),
            counter_help(field),
            value,
        );
    });
    if s.enq_batches > 0 {
        gauge(
            &mut out,
            "wfq_enq_batch_avg_width",
            "Mean claimed width of batch enqueues (absent: no batches ran)",
            s.avg_enq_batch_width(),
        );
    }
    if s.deq_batches > 0 {
        gauge(
            &mut out,
            "wfq_deq_batch_avg_width",
            "Mean delivered width of batch dequeues (absent: no batches ran)",
            s.avg_deq_batch_width(),
        );
    }
    if let Some(g) = gauges {
        gauge(&mut out, "wfq_head_index", "Head index H (dequeue FAA counter)", g.head_index as f64);
        gauge(&mut out, "wfq_tail_index", "Tail index T (enqueue FAA counter)", g.tail_index as f64);
        gauge(&mut out, "wfq_oldest_segment_id", "Oldest live segment id I (-1: cleaner active)", g.oldest_segment_id as f64);
        gauge(&mut out, "wfq_live_segments", "Segments currently in the list", g.live_segments as f64);
        gauge(
            &mut out,
            "wfq_hazard_lag_segments",
            "Segments pinned behind the dequeue frontier by the laggiest hazard",
            g.hazard_lag_segments as f64,
        );
        if let Some(mh) = g.min_hazard {
            gauge(
                &mut out,
                "wfq_min_hazard",
                "Oldest published hazard segment id (absent: no hazard live)",
                mh as f64,
            );
        }
        gauge(&mut out, "wfq_active_handles", "Handles currently owned", g.active_handles as f64);
        gauge(
            &mut out,
            "wfq_help_ring_occupancy",
            "Pending helping records as a fraction of request slots",
            g.help_ring_occupancy(),
        );
        gauge(&mut out, "wfq_pending_enq_reqs", "Enqueue helping records pending", g.pending_enq_reqs as f64);
        gauge(&mut out, "wfq_pending_deq_reqs", "Dequeue helping records pending", g.pending_deq_reqs as f64);
        gauge(&mut out, "wfq_pooled_segments", "Scrubbed segments parked in the bounded-mode pool", g.pooled_segments as f64);
        if let Some(c) = g.segment_ceiling {
            gauge(&mut out, "wfq_segment_ceiling", "Configured segment ceiling (absent: unbounded)", c as f64);
        }
        if let Some(hr) = g.ceiling_headroom {
            gauge(
                &mut out,
                "wfq_ceiling_headroom",
                "Fresh segments still allocatable below the ceiling",
                hr as f64,
            );
        }
    }
    gauge(
        &mut out,
        "wfq_trace_recorders",
        "Flight recorders registered in this process",
        wfq_obs::recorder_count() as f64,
    );
    out
}

/// Renders per-backend operation-latency histograms as a Prometheus
/// *summary* metric (`wfq_op_latency_ns`): one `quantile`-labeled sample
/// per exported quantile (0.5, 0.99, 0.999) per backend, plus the
/// conventional `_sum`/`_count` companions. The `queue` label carries the
/// backend display name, so one scrape compares tails across backends.
pub fn render_latency_prometheus(series: &[(&str, &crate::histogram::Histogram)]) -> String {
    let mut out = String::from(
        "# HELP wfq_op_latency_ns Open-loop operation latency (intended start to completion), nanoseconds\n# TYPE wfq_op_latency_ns summary\n",
    );
    for (queue, h) in series {
        for (label, q) in [("0.5", 0.50), ("0.99", 0.99), ("0.999", 0.999)] {
            out.push_str(&format!(
                "wfq_op_latency_ns{{queue=\"{queue}\",quantile=\"{label}\"}} {}\n",
                h.quantile(q)
            ));
        }
        out.push_str(&format!(
            "wfq_op_latency_ns_sum{{queue=\"{queue}\"}} {}\n",
            h.sum()
        ));
        out.push_str(&format!(
            "wfq_op_latency_ns_count{{queue=\"{queue}\"}} {}\n",
            h.count()
        ));
    }
    out
}

/// Writes [`render_prometheus`] output to a file.
pub fn write_metrics(
    path: &Path,
    stats: &QueueStats,
    gauges: Option<&Gauges>,
) -> io::Result<()> {
    std::fs::write(path, render_prometheus(stats, gauges))
}

/// Drains every registered flight recorder and writes a Chrome trace-event
/// JSON file. Returns the number of events serialized (0 in builds without
/// the `trace` feature — the file is still written, with an empty event
/// array, so tooling never has to special-case the disabled build).
pub fn dump_chrome_trace(path: &Path) -> io::Result<usize> {
    let traces = wfq_obs::drain();
    std::fs::write(path, wfq_obs::chrome_trace_json(&traces))?;
    Ok(traces.iter().map(|t| t.events.len()).sum())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_output_has_counters_and_headers() {
        let s = QueueStats {
            enq_fast: 5,
            deq_empty: 2,
            ..Default::default()
        };
        let out = render_prometheus(&s, None);
        assert!(out.contains("# TYPE wfq_enq_fast_total counter"));
        assert!(out.contains("wfq_enq_fast_total 5\n"));
        assert!(out.contains("wfq_deq_empty_total 2\n"));
        assert!(!out.contains("wfq_live_segments"), "no gauges requested");
        // Every sample line is `name value` (format sanity).
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn prometheus_output_includes_gauges_when_given() {
        let g = Gauges {
            live_segments: 3,
            hazard_lag_segments: 1,
            total_handles: 2,
            pending_enq_reqs: 1,
            ..Default::default()
        };
        let out = render_prometheus(&QueueStats::default(), Some(&g));
        assert!(out.contains("wfq_live_segments 3\n"));
        assert!(out.contains("wfq_hazard_lag_segments 1\n"));
        assert!(out.contains("wfq_help_ring_occupancy 0.25\n"));
        assert!(out.contains("# TYPE wfq_live_segments gauge"));
    }

    #[test]
    fn bounded_gauges_render_only_for_bounded_queues() {
        let unbounded = Gauges::default();
        let out = render_prometheus(&QueueStats::default(), Some(&unbounded));
        assert!(out.contains("wfq_pooled_segments 0\n"));
        assert!(!out.contains("wfq_segment_ceiling"), "unbounded: no ceiling");
        assert!(!out.contains("wfq_ceiling_headroom"));
        assert!(out.contains("wfq_enq_rejected_total 0\n"));

        let bounded = Gauges {
            pooled_segments: 3,
            segment_ceiling: Some(64),
            ceiling_headroom: Some(12),
            ..Default::default()
        };
        let out = render_prometheus(&QueueStats::default(), Some(&bounded));
        assert!(out.contains("wfq_pooled_segments 3\n"));
        assert!(out.contains("wfq_segment_ceiling 64\n"));
        assert!(out.contains("wfq_ceiling_headroom 12\n"));
    }

    #[test]
    fn batch_counters_always_render_and_widths_only_when_batches_ran() {
        let idle = render_prometheus(&QueueStats::default(), None);
        assert!(idle.contains("wfq_enq_batches_total 0\n"));
        assert!(idle.contains("wfq_deq_batch_stragglers_total 0\n"));
        assert!(!idle.contains("wfq_enq_batch_avg_width"), "no batches ran");
        assert!(!idle.contains("wfq_deq_batch_avg_width"));

        let s = QueueStats {
            enq_batches: 2,
            enq_batched_vals: 16,
            deq_batches: 4,
            deq_batched_vals: 10,
            deq_batch_partial: 1,
            ..Default::default()
        };
        let out = render_prometheus(&s, None);
        assert!(out.contains("wfq_enq_batched_vals_total 16\n"));
        assert!(out.contains("wfq_deq_batch_partial_total 1\n"));
        assert!(out.contains("wfq_enq_batch_avg_width 8\n"));
        assert!(out.contains("wfq_deq_batch_avg_width 2.5\n"));
        assert!(out.contains("# TYPE wfq_enq_batch_avg_width gauge"));
    }

    #[test]
    fn every_counter_appears_in_both_display_and_exposition() {
        // Satellite guard for stats/exposition drift: fill every counter
        // with a unique sentinel and require each to surface in both the
        // Prometheus exposition and `Display for QueueStats`. The batch
        // `*_batched_vals` masses surface in Display as computed mean
        // widths, so those two are asserted through the width strings.
        let mut s = QueueStats::default();
        let mut fields: Vec<&'static str> = Vec::new();
        s.for_each_counter(|name, _| fields.push(name));
        // Unique 4-digit sentinels, assigned in enumeration order via a
        // second pass over a by-name setter (fields are pub).
        let set = |s: &mut QueueStats, name: &str, v: u64| match name {
            "enq_fast" => s.enq_fast = v,
            "enq_slow" => s.enq_slow = v,
            "deq_fast" => s.deq_fast = v,
            "deq_slow" => s.deq_slow = v,
            "deq_empty" => s.deq_empty = v,
            "help_enq" => s.help_enq = v,
            "help_deq" => s.help_deq = v,
            "cleanups" => s.cleanups = v,
            "segs_alloc" => s.segs_alloc = v,
            "segs_freed" => s.segs_freed = v,
            "enq_slow_helped" => s.enq_slow_helped = v,
            "help_enq_commit" => s.help_enq_commit = v,
            "help_enq_seal" => s.help_enq_seal = v,
            "deq_slow_empty" => s.deq_slow_empty = v,
            "help_deq_announce" => s.help_deq_announce = v,
            "help_deq_complete" => s.help_deq_complete = v,
            "reclaim_conceded" => s.reclaim_conceded = v,
            "reclaim_backward_clamp" => s.reclaim_backward_clamp = v,
            "reclaim_noop" => s.reclaim_noop = v,
            "enq_rejected" => s.enq_rejected = v,
            "forced_cleanups" => s.forced_cleanups = v,
            "segs_recycled" => s.segs_recycled = v,
            "enq_batches" => s.enq_batches = v,
            "enq_batched_vals" => s.enq_batched_vals = v,
            "enq_batch_stragglers" => s.enq_batch_stragglers = v,
            "enq_batch_abandoned" => s.enq_batch_abandoned = v,
            "deq_batches" => s.deq_batches = v,
            "deq_batched_vals" => s.deq_batched_vals = v,
            "deq_batch_partial" => s.deq_batch_partial = v,
            "deq_batch_stragglers" => s.deq_batch_stragglers = v,
            other => panic!("for_each_counter emitted unknown field {other}"),
        };
        for (i, name) in fields.iter().enumerate() {
            set(&mut s, name, 5001 + i as u64);
        }

        let exposition = render_prometheus(&s, None);
        let display = s.to_string();
        s.for_each_counter(|name, value| {
            let line = format!("wfq_{name}_total {value}\n");
            assert!(
                exposition.contains(&line),
                "counter {name} missing from exposition: wanted {line:?}"
            );
            if name == "enq_batched_vals" || name == "deq_batched_vals" {
                return; // asserted via the width strings below
            }
            assert!(
                display.contains(&value.to_string()),
                "counter {name}={value} missing from Display:\n{display}"
            );
        });
        // The two width masses show up as `count×width` in Display and as
        // avg-width gauges in the exposition.
        let enq_width = format!("{}×{:.1}", s.enq_batches, s.avg_enq_batch_width());
        let deq_width = format!("{}×{:.1}", s.deq_batches, s.avg_deq_batch_width());
        assert!(display.contains(&enq_width), "{display}");
        assert!(display.contains(&deq_width), "{display}");
        assert!(exposition.contains("wfq_enq_batch_avg_width"));
        assert!(exposition.contains("wfq_deq_batch_avg_width"));
    }

    #[test]
    fn previously_missing_counters_are_now_exposed() {
        // The PR-2 exposition hand-list silently lacked these two; the
        // for_each_counter refactor closes the gap permanently.
        let s = QueueStats {
            enq_slow_helped: 7,
            deq_slow_empty: 9,
            ..Default::default()
        };
        let out = render_prometheus(&s, None);
        assert!(out.contains("wfq_enq_slow_helped_total 7\n"), "{out}");
        assert!(out.contains("wfq_deq_slow_empty_total 9\n"), "{out}");
    }

    #[test]
    fn latency_summary_exposes_quantiles_per_backend() {
        use crate::histogram::Histogram;
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=1000u64 {
            a.record(i);
            b.record(i * 100);
        }
        let out = render_latency_prometheus(&[("WF-10", &a), ("FAA", &b)]);
        assert!(out.contains("# TYPE wfq_op_latency_ns summary"));
        for q in ["0.5", "0.99", "0.999"] {
            assert!(
                out.contains(&format!("wfq_op_latency_ns{{queue=\"WF-10\",quantile=\"{q}\"}} ")),
                "{out}"
            );
            assert!(
                out.contains(&format!("wfq_op_latency_ns{{queue=\"FAA\",quantile=\"{q}\"}} ")),
                "{out}"
            );
        }
        assert!(out.contains("wfq_op_latency_ns_count{queue=\"WF-10\"} 1000\n"));
        assert!(out.contains(&format!(
            "wfq_op_latency_ns_sum{{queue=\"WF-10\"}} {}\n",
            (1..=1000u64).sum::<u64>()
        )));
        // Summary quantile samples carry no TYPE line of their own and the
        // label set renders one sample per line.
        for line in out.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad sample line: {line}");
        }
    }

    #[test]
    fn chrome_trace_dump_writes_a_parsable_document() {
        let dir = std::env::temp_dir().join("wfq-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace-empty.json");
        dump_chrome_trace(&path).unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        let v = crate::json::parse(&doc).expect("trace JSON must parse");
        assert!(v.get("traceEvents").unwrap().as_arr().is_some());
        std::fs::remove_file(&path).ok();
    }
}
