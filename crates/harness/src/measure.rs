//! The invocation/iteration measurement protocol (Georges et al., §5.1).

use wfq_baselines::BenchQueue;
use wfq_sync::delay::SpinDelay;

use crate::stats;
use crate::workload::{run_iteration, BenchConfig};

/// Result of measuring one queue at one thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Mean of the invocation means, Mops/s.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci_half: f64,
    /// Per-invocation steady-state means.
    pub invocations: Vec<f64>,
    /// Per-invocation COV of the chosen steady window (diagnostics).
    pub windows_cov: Vec<f64>,
}

/// Runs one *invocation*: a fresh queue, up to `max_iterations` iterations,
/// steady-state detection, and the mean over the steady window.
///
/// Returns `(steady_mean, window_cov)`.
pub fn measure_invocation<Q: BenchQueue>(
    cfg: &BenchConfig,
    delay: &SpinDelay,
    invocation: u64,
) -> (f64, f64) {
    let q = Q::with_ceiling(cfg.segment_ceiling);
    let mut iters: Vec<f64> = Vec::with_capacity(cfg.max_iterations);
    for i in 0..cfg.max_iterations {
        let round = invocation * 1_000 + i as u64;
        iters.push(run_iteration(&q, cfg, delay, round));
        // Early exit as soon as a steady window exists below threshold
        // (the paper's "determine the iteration s_i in which steady-state
        // performance is reached").
        if iters.len() >= cfg.window {
            let tail = &iters[iters.len() - cfg.window..];
            if stats::cov(tail) < cfg.cov_threshold {
                return (stats::mean(tail), stats::cov(tail));
            }
        }
    }
    // Never settled: lowest-COV window of the full run (paper fallback).
    let (start, c) = stats::steady_state_window(&iters, cfg.window.min(iters.len()), cfg.cov_threshold)
        .expect("at least one window exists");
    let w = &iters[start..start + cfg.window.min(iters.len())];
    (stats::mean(w), c)
}

/// Full protocol: `cfg.invocations` invocations, each reduced to its
/// steady-state mean; returns the grand mean with a 95% CI.
pub fn measure_queue<Q: BenchQueue>(cfg: &BenchConfig) -> Measurement {
    let delay = SpinDelay::calibrate();
    let mut means = Vec::with_capacity(cfg.invocations);
    let mut covs = Vec::with_capacity(cfg.invocations);
    for inv in 0..cfg.invocations {
        let (m, c) = measure_invocation::<Q>(cfg, &delay, inv as u64);
        means.push(m);
        covs.push(c);
    }
    let (mean, ci_half) = stats::confidence_interval_95(&means);
    Measurement {
        mean,
        ci_half,
        invocations: means,
        windows_cov: covs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use wfq_baselines::MutexQueue;

    fn tiny() -> BenchConfig {
        BenchConfig {
            threads: 2,
            total_ops: 10_000,
            workload: Workload::Pairs,
            delay_ns: (0, 0),
            max_iterations: 6,
            window: 3,
            invocations: 3,
            pin: false,
            ..Default::default()
        }
    }

    #[test]
    fn invocation_produces_a_steady_mean() {
        let delay = SpinDelay::calibrate();
        let (m, c) = measure_invocation::<MutexQueue>(&tiny(), &delay, 0);
        assert!(m > 0.0);
        assert!(c.is_finite());
    }

    #[test]
    fn full_measurement_reports_ci() {
        let m = measure_queue::<MutexQueue>(&tiny());
        assert_eq!(m.invocations.len(), 3);
        assert!(m.mean > 0.0);
        assert!(m.ci_half >= 0.0);
        assert!(m.ci_half.is_finite());
    }
}
