//! The invocation/iteration measurement protocol (Georges et al., §5.1),
//! for both the paper's closed-loop throughput runs and the open-loop
//! latency observatory (quantiles with Student-t CIs over invocations).

use wfq_baselines::BenchQueue;
use wfq_sync::delay::SpinDelay;

use crate::attribution::Attribution;
use crate::histogram::Histogram;
use crate::stats;
use crate::workload::{run_iteration, run_open_loop_iteration, BenchConfig, OpenLoopConfig};

/// Result of measuring one queue at one thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Mean of the invocation means, Mops/s.
    pub mean: f64,
    /// Half-width of the 95% confidence interval.
    pub ci_half: f64,
    /// Per-invocation steady-state means.
    pub invocations: Vec<f64>,
    /// Per-invocation COV of the chosen steady window (diagnostics).
    pub windows_cov: Vec<f64>,
}

/// Runs one *invocation*: a fresh queue, up to `max_iterations` iterations,
/// steady-state detection, and the mean over the steady window.
///
/// Returns `(steady_mean, window_cov)`.
pub fn measure_invocation<Q: BenchQueue>(
    cfg: &BenchConfig,
    delay: &SpinDelay,
    invocation: u64,
) -> (f64, f64) {
    let q = Q::with_ceiling(cfg.segment_ceiling);
    let mut iters: Vec<f64> = Vec::with_capacity(cfg.max_iterations);
    for i in 0..cfg.max_iterations {
        let round = invocation * 1_000 + i as u64;
        iters.push(run_iteration(&q, cfg, delay, round));
        // Early exit as soon as a steady window exists below threshold
        // (the paper's "determine the iteration s_i in which steady-state
        // performance is reached").
        if iters.len() >= cfg.window {
            let tail = &iters[iters.len() - cfg.window..];
            if stats::cov(tail) < cfg.cov_threshold {
                return (stats::mean(tail), stats::cov(tail));
            }
        }
    }
    // Never settled: lowest-COV window of the full run (paper fallback).
    let (start, c) = stats::steady_state_window(&iters, cfg.window.min(iters.len()), cfg.cov_threshold)
        .expect("at least one window exists");
    let w = &iters[start..start + cfg.window.min(iters.len())];
    (stats::mean(w), c)
}

/// Full protocol: `cfg.invocations` invocations, each reduced to its
/// steady-state mean; returns the grand mean with a 95% CI.
pub fn measure_queue<Q: BenchQueue>(cfg: &BenchConfig) -> Measurement {
    let delay = SpinDelay::calibrate();
    let mut means = Vec::with_capacity(cfg.invocations);
    let mut covs = Vec::with_capacity(cfg.invocations);
    for inv in 0..cfg.invocations {
        let (m, c) = measure_invocation::<Q>(cfg, &delay, inv as u64);
        means.push(m);
        covs.push(c);
    }
    let (mean, ci_half) = stats::confidence_interval_95(&means);
    Measurement {
        mean,
        ci_half,
        invocations: means,
        windows_cov: covs,
    }
}

// ----------------------------------------------------------------------
// Open-loop measurement (latency observatory)
// ----------------------------------------------------------------------

/// One latency quantile with its Student-t 95% CI over invocations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileStat {
    /// Mean of the per-invocation quantile values, nanoseconds.
    pub mean_ns: f64,
    /// Half-width of the 95% confidence interval.
    pub ci_half_ns: f64,
}

/// Result of measuring one backend at one offered rate in the open loop.
#[derive(Debug, Clone)]
pub struct OpenLoopMeasurement {
    /// The offered (intended) aggregate arrival rate, ops/s.
    pub offered_rate: f64,
    /// Mean achieved completion rate over invocations, ops/s.
    pub achieved_rate: f64,
    /// p50 across invocations.
    pub p50: QuantileStat,
    /// p90 across invocations.
    pub p90: QuantileStat,
    /// p99 across invocations.
    pub p99: QuantileStat,
    /// p99.9 across invocations.
    pub p999: QuantileStat,
    /// Max across invocations.
    pub max: QuantileStat,
    /// All invocations' samples merged (Prometheus export, reports).
    pub merged: Histogram,
    /// Merged per-path attribution (empty without `op-sample` backends).
    pub attribution: Attribution,
    /// Whether a majority of invocations ended saturated (generator lag
    /// above 10% of the intended span).
    pub saturated: bool,
    /// Total rejected enqueues across invocations (overload mode).
    pub drops: u64,
    /// Worst generator lag seen in any invocation, ns.
    pub max_lag_ns: u64,
    /// Mean end-of-run backlog (enqueues − dequeues delivered).
    pub backlog: i64,
}

/// Open-loop protocol: `cfg.invocations` invocations against fresh
/// queues; each invocation's histogram is reduced to its quantiles, and
/// quantiles get a mean + Student-t 95% CI across invocations (the same
/// machinery as the throughput protocol — a quantile estimate from one
/// run is itself a noisy statistic).
pub fn measure_open_loop<Q: BenchQueue>(cfg: &OpenLoopConfig) -> OpenLoopMeasurement {
    let delay = SpinDelay::calibrate();
    let n = cfg.invocations.max(1);
    let mut q50 = Vec::with_capacity(n);
    let mut q90 = Vec::with_capacity(n);
    let mut q99 = Vec::with_capacity(n);
    let mut q999 = Vec::with_capacity(n);
    let mut qmax = Vec::with_capacity(n);
    let mut rates = Vec::with_capacity(n);
    let mut merged = Histogram::new();
    let mut attribution = Attribution::new();
    let mut saturated_runs = 0usize;
    let (mut drops, mut max_lag) = (0u64, 0u64);
    let mut backlogs = 0i64;
    for inv in 0..n {
        let q = Q::with_ceiling(cfg.segment_ceiling);
        let it = run_open_loop_iteration(&q, cfg, &delay, inv as u64);
        q50.push(it.latency.quantile(0.50) as f64);
        q90.push(it.latency.quantile(0.90) as f64);
        q99.push(it.latency.quantile(0.99) as f64);
        q999.push(it.latency.quantile(0.999) as f64);
        qmax.push(it.latency.max() as f64);
        rates.push(it.achieved_rate);
        merged.merge(&it.latency);
        attribution.merge(&it.attribution);
        saturated_runs += it.saturated() as usize;
        drops += it.drops;
        max_lag = max_lag.max(it.max_lag_ns);
        backlogs += it.backlog;
    }
    let stat = |xs: &[f64]| {
        let (m, ci) = stats::confidence_interval_95(xs);
        QuantileStat {
            mean_ns: m,
            ci_half_ns: ci,
        }
    };
    OpenLoopMeasurement {
        offered_rate: cfg.rate_ops_per_sec,
        achieved_rate: stats::mean(&rates),
        p50: stat(&q50),
        p90: stat(&q90),
        p99: stat(&q99),
        p999: stat(&q999),
        max: stat(&qmax),
        merged,
        attribution,
        saturated: saturated_runs * 2 > n,
        drops,
        max_lag_ns: max_lag,
        backlog: backlogs / n as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use wfq_baselines::MutexQueue;

    fn tiny() -> BenchConfig {
        BenchConfig {
            threads: 2,
            total_ops: 10_000,
            workload: Workload::Pairs,
            delay_ns: (0, 0),
            max_iterations: 6,
            window: 3,
            invocations: 3,
            pin: false,
            ..Default::default()
        }
    }

    #[test]
    fn invocation_produces_a_steady_mean() {
        let delay = SpinDelay::calibrate();
        let (m, c) = measure_invocation::<MutexQueue>(&tiny(), &delay, 0);
        assert!(m > 0.0);
        assert!(c.is_finite());
    }

    #[test]
    fn full_measurement_reports_ci() {
        let m = measure_queue::<MutexQueue>(&tiny());
        assert_eq!(m.invocations.len(), 3);
        assert!(m.mean > 0.0);
        assert!(m.ci_half >= 0.0);
        assert!(m.ci_half.is_finite());
    }

    #[test]
    fn open_loop_measurement_reports_quantile_cis() {
        let cfg = OpenLoopConfig {
            threads: 1,
            rate_ops_per_sec: 2e6,
            total_ops: 3_000,
            invocations: 3,
            pin: false,
            ..Default::default()
        };
        let m = measure_open_loop::<MutexQueue>(&cfg);
        assert_eq!(m.merged.count(), 3 * 3_000);
        assert!(m.p50.mean_ns > 0.0);
        assert!(m.p50.ci_half_ns.is_finite());
        // Quantile means must be ordered p50 ≤ p90 ≤ p99 ≤ p99.9 ≤ max.
        assert!(m.p50.mean_ns <= m.p90.mean_ns);
        assert!(m.p90.mean_ns <= m.p99.mean_ns);
        assert!(m.p99.mean_ns <= m.p999.mean_ns);
        assert!(m.p999.mean_ns <= m.max.mean_ns);
        assert!(m.achieved_rate > 0.0);
        assert_eq!(m.drops, 0);
        assert!(m.attribution.counts_are_sound());
    }
}
