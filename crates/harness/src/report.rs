//! Result series and renderers (markdown tables for EXPERIMENTS.md, CSV
//! for plotting).

/// One (thread count → throughput) point of a Figure 2 line.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Concurrency level.
    pub threads: usize,
    /// Mean throughput, Mops/s.
    pub mean_mops: f64,
    /// 95% CI half-width.
    pub ci_half: f64,
}

/// One queue's line in a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Queue display name.
    pub name: String,
    /// Sweep points, ascending thread counts.
    pub points: Vec<SeriesPoint>,
}

/// Renders a set of series as a markdown table: one row per thread count,
/// one column per queue, `mean ± ci`.
pub fn render_markdown(series: &[Series], caption: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("**{caption}** (Mops/s, mean ± 95% CI)\n\n"));
    if series.is_empty() {
        return out;
    }
    let threads: Vec<usize> = series[0].points.iter().map(|p| p.threads).collect();
    out.push_str("| threads |");
    for s in series {
        out.push_str(&format!(" {} |", s.name));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    for (i, t) in threads.iter().enumerate() {
        out.push_str(&format!("| {t} |"));
        for s in series {
            match s.points.get(i) {
                Some(p) => out.push_str(&format!(" {:.2} ± {:.2} |", p.mean_mops, p.ci_half)),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders series as a machine-readable JSON document (the format of the
/// committed `results/BENCH_*.json` snapshots):
///
/// ```json
/// {"benchmark": "...", "workload": "...", "series": [
///   {"queue": "WF-10", "points": [
///     {"threads": 1, "mean_mops": 10.5, "ci_half": 0.2}]}]}
/// ```
///
/// Hand-rolled (no serde in the build environment); the numbers are plain
/// `{:.6}` decimals, so the output is also stable for diffing snapshots.
pub fn render_json(benchmark: &str, workload: &str, series: &[Series]) -> String {
    render_json_with_commit(benchmark, workload, None, series)
}

/// [`render_json`] plus the optional `"commit"` field of the normalized
/// snapshot schema (see EXPERIMENTS.md): snapshots committed to `results/`
/// name the commit they measured, so `wfq-regress` comparisons and the
/// recorded trajectory stay attributable.
pub fn render_json_with_commit(
    benchmark: &str,
    workload: &str,
    commit: Option<&str>,
    series: &[Series],
) -> String {
    let mut out = String::new();
    out.push('{');
    out.push('\n');
    if let Some(c) = commit {
        out.push_str(&format!(
            "  \"commit\": \"{}\",\n",
            c.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str(&format!(
        "  \"benchmark\": \"{benchmark}\",\n  \"workload\": \"{workload}\",\n  \"series\": [\n"
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"queue\": \"{}\", \"points\": [\n",
            s.name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"threads\": {}, \"mean_mops\": {:.6}, \"ci_half\": {:.6}}}{}\n",
                p.threads,
                p.mean_mops,
                p.ci_half,
                if pi + 1 == s.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 == series.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders series as CSV: `queue,threads,mean_mops,ci_half`.
pub fn render_csv(series: &[Series]) -> String {
    let mut out = String::from("queue,threads,mean_mops,ci_half\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                s.name, p.threads, p.mean_mops, p.ci_half
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                name: "WF-10".into(),
                points: vec![
                    SeriesPoint { threads: 1, mean_mops: 10.0, ci_half: 0.5 },
                    SeriesPoint { threads: 2, mean_mops: 12.0, ci_half: 0.7 },
                ],
            },
            Series {
                name: "MSQUEUE".into(),
                points: vec![
                    SeriesPoint { threads: 1, mean_mops: 9.0, ci_half: 0.1 },
                    SeriesPoint { threads: 2, mean_mops: 5.0, ci_half: 0.2 },
                ],
            },
        ]
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = render_markdown(&sample(), "pairs");
        assert!(md.contains("| threads | WF-10 | MSQUEUE |"));
        assert!(md.contains("| 1 | 10.00 ± 0.50 | 9.00 ± 0.10 |"));
        assert!(md.contains("| 2 | 12.00 ± 0.70 | 5.00 ± 0.20 |"));
    }

    #[test]
    fn csv_has_one_line_per_point() {
        let csv = render_csv(&sample());
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("queue,threads,"));
        assert!(csv.contains("WF-10,2,12.000000,0.700000"));
    }

    #[test]
    fn empty_series_render_gracefully() {
        assert!(render_markdown(&[], "x").contains("**x**"));
        assert_eq!(render_csv(&[]).lines().count(), 1);
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let doc = render_json("figure2", "pairwise", &sample());
        let v = crate::json::parse(&doc).expect("render_json must emit valid JSON");
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("figure2"));
        assert_eq!(v.get("workload").unwrap().as_str(), Some("pairwise"));
        let series = v.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].get("queue").unwrap().as_str(), Some("WF-10"));
        let pts = series[0].get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].get("threads").unwrap().as_num(), Some(2.0));
        assert_eq!(pts[1].get("mean_mops").unwrap().as_num(), Some(12.0));
    }

    #[test]
    fn json_with_commit_carries_the_field_and_still_parses() {
        let doc = render_json_with_commit("figure2", "pairwise", Some("abc1234"), &sample());
        let v = crate::json::parse(&doc).unwrap();
        assert_eq!(v.get("commit").unwrap().as_str(), Some("abc1234"));
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("figure2"));
        // Without a commit the field is absent, keeping old snapshots and
        // new ones in one schema.
        let v = crate::json::parse(&render_json("figure2", "pairwise", &sample())).unwrap();
        assert!(v.get("commit").is_none());
    }

    #[test]
    fn json_of_empty_series_is_valid() {
        let doc = render_json("figure2", "pairwise", &[]);
        let v = crate::json::parse(&doc).unwrap();
        assert_eq!(v.get("series").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn ragged_series_render_dashes() {
        let mut s = sample();
        s[1].points.pop();
        let md = render_markdown(&s, "ragged");
        assert!(md.contains("| 2 | 12.00 ± 0.70 | — |"));
    }
}
