//! Result series and renderers (markdown tables for EXPERIMENTS.md, CSV
//! for plotting).

/// One (thread count → throughput) point of a Figure 2 line.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Concurrency level.
    pub threads: usize,
    /// Mean throughput, Mops/s.
    pub mean_mops: f64,
    /// 95% CI half-width.
    pub ci_half: f64,
}

/// One queue's line in a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Queue display name.
    pub name: String,
    /// Sweep points, ascending thread counts.
    pub points: Vec<SeriesPoint>,
}

/// Renders a set of series as a markdown table: one row per thread count,
/// one column per queue, `mean ± ci`.
pub fn render_markdown(series: &[Series], caption: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("**{caption}** (Mops/s, mean ± 95% CI)\n\n"));
    if series.is_empty() {
        return out;
    }
    let threads: Vec<usize> = series[0].points.iter().map(|p| p.threads).collect();
    out.push_str("| threads |");
    for s in series {
        out.push_str(&format!(" {} |", s.name));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    for (i, t) in threads.iter().enumerate() {
        out.push_str(&format!("| {t} |"));
        for s in series {
            match s.points.get(i) {
                Some(p) => out.push_str(&format!(" {:.2} ± {:.2} |", p.mean_mops, p.ci_half)),
                None => out.push_str(" — |"),
            }
        }
        out.push('\n');
    }
    out
}

/// Renders series as a machine-readable JSON document (the format of the
/// committed `results/BENCH_*.json` snapshots):
///
/// ```json
/// {"benchmark": "...", "workload": "...", "series": [
///   {"queue": "WF-10", "points": [
///     {"threads": 1, "mean_mops": 10.5, "ci_half": 0.2}]}]}
/// ```
///
/// Hand-rolled (no serde in the build environment); the numbers are plain
/// `{:.6}` decimals, so the output is also stable for diffing snapshots.
pub fn render_json(benchmark: &str, workload: &str, series: &[Series]) -> String {
    render_json_with_commit(benchmark, workload, None, series)
}

/// [`render_json`] plus the optional `"commit"` field of the normalized
/// snapshot schema (see EXPERIMENTS.md): snapshots committed to `results/`
/// name the commit they measured, so `wfq-regress` comparisons and the
/// recorded trajectory stay attributable.
pub fn render_json_with_commit(
    benchmark: &str,
    workload: &str,
    commit: Option<&str>,
    series: &[Series],
) -> String {
    let mut out = String::new();
    out.push('{');
    out.push('\n');
    if let Some(c) = commit {
        out.push_str(&format!(
            "  \"commit\": \"{}\",\n",
            c.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str(&format!(
        "  \"benchmark\": \"{benchmark}\",\n  \"workload\": \"{workload}\",\n  \"series\": [\n"
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"queue\": \"{}\", \"points\": [\n",
            s.name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"threads\": {}, \"mean_mops\": {:.6}, \"ci_half\": {:.6}}}{}\n",
                p.threads,
                p.mean_mops,
                p.ci_half,
                if pi + 1 == s.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 == series.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ----------------------------------------------------------------------
// Latency-observatory snapshot schema (BENCH_latency.json)
// ----------------------------------------------------------------------

/// One (offered rate → tail latency) point of a latency-observatory
/// frontier line. Quantiles are means over invocations with Student-t 95%
/// half-widths (`*_ci`), all in nanoseconds; `share_*` are the attribution
/// fractions of `sampled` operations (zero when the backend exposes no
/// `op-sample` hooks).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyPoint {
    /// Offered arrival rate, kops/s.
    pub rate_kops: f64,
    /// Achieved completion rate, kops/s.
    pub achieved_kops: f64,
    /// Majority of invocations ended with generator lag > 10% of span.
    pub saturated: bool,
    /// Rejected enqueues (overload mode; 0 otherwise).
    pub drops: u64,
    /// Worst generator lag in any invocation, ns.
    pub max_lag_ns: u64,
    /// Mean end-of-run queue growth (enqueues − dequeues).
    pub backlog: i64,
    /// p50 mean, ns.
    pub p50_ns: f64,
    /// p50 95% CI half-width.
    pub p50_ci: f64,
    /// p90 mean, ns.
    pub p90_ns: f64,
    /// p90 95% CI half-width.
    pub p90_ci: f64,
    /// p99 mean, ns (the regression-gate quantile).
    pub p99_ns: f64,
    /// p99 95% CI half-width.
    pub p99_ci: f64,
    /// p99.9 mean, ns.
    pub p999_ns: f64,
    /// p99.9 95% CI half-width.
    pub p999_ci: f64,
    /// Max mean, ns.
    pub max_ns: f64,
    /// Max 95% CI half-width.
    pub max_ci: f64,
    /// Fraction of sampled ops that completed on the fast path.
    pub share_fast: f64,
    /// Fraction that entered the slow path and finished it themselves.
    pub share_slow: f64,
    /// Fraction completed by a helper.
    pub share_helped: f64,
    /// Operations with a path sample (0 without `op-sample`).
    pub sampled: u64,
}

/// One queue's latency frontier (ascending offered rates).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySeries {
    /// Queue display name.
    pub name: String,
    /// Frontier points, ascending `rate_kops`.
    pub points: Vec<LatencyPoint>,
}

/// Renders latency-observatory results as the committed
/// `results/BENCH_latency.json` schema (see docs/OBSERVABILITY.md):
/// top-level `commit`/`benchmark`/`workload` mirror the throughput
/// snapshots so tooling can key on the same fields, plus `schedule` and
/// `threads` which are per-document here (one sweep = one shape × one
/// thread count).
pub fn render_latency_json(
    schedule: &str,
    threads: usize,
    commit: Option<&str>,
    series: &[LatencySeries],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    if let Some(c) = commit {
        out.push_str(&format!(
            "  \"commit\": \"{}\",\n",
            c.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str(&format!(
        "  \"benchmark\": \"latency_observatory\",\n  \"workload\": \"open_loop_pairs\",\n  \"schedule\": \"{schedule}\",\n  \"threads\": {threads},\n  \"series\": [\n"
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"queue\": \"{}\", \"points\": [\n",
            s.name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        for (pi, p) in s.points.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"rate_kops\": {:.3}, \"achieved_kops\": {:.3}, \"saturated\": {}, \"drops\": {}, \"max_lag_ns\": {}, \"backlog\": {}, \
                 \"p50_ns\": {:.1}, \"p50_ci\": {:.1}, \"p90_ns\": {:.1}, \"p90_ci\": {:.1}, \"p99_ns\": {:.1}, \"p99_ci\": {:.1}, \
                 \"p999_ns\": {:.1}, \"p999_ci\": {:.1}, \"max_ns\": {:.1}, \"max_ci\": {:.1}, \
                 \"share_fast\": {:.6}, \"share_slow\": {:.6}, \"share_helped\": {:.6}, \"sampled\": {}}}{}\n",
                p.rate_kops,
                p.achieved_kops,
                p.saturated,
                p.drops,
                p.max_lag_ns,
                p.backlog,
                p.p50_ns,
                p.p50_ci,
                p.p90_ns,
                p.p90_ci,
                p.p99_ns,
                p.p99_ci,
                p.p999_ns,
                p.p999_ci,
                p.max_ns,
                p.max_ci,
                p.share_fast,
                p.share_slow,
                p.share_helped,
                p.sampled,
                if pi + 1 == s.points.len() { "" } else { "," }
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if si + 1 == series.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders series as CSV: `queue,threads,mean_mops,ci_half`.
pub fn render_csv(series: &[Series]) -> String {
    let mut out = String::from("queue,threads,mean_mops,ci_half\n");
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{},{},{:.6},{:.6}\n",
                s.name, p.threads, p.mean_mops, p.ci_half
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Series> {
        vec![
            Series {
                name: "WF-10".into(),
                points: vec![
                    SeriesPoint { threads: 1, mean_mops: 10.0, ci_half: 0.5 },
                    SeriesPoint { threads: 2, mean_mops: 12.0, ci_half: 0.7 },
                ],
            },
            Series {
                name: "MSQUEUE".into(),
                points: vec![
                    SeriesPoint { threads: 1, mean_mops: 9.0, ci_half: 0.1 },
                    SeriesPoint { threads: 2, mean_mops: 5.0, ci_half: 0.2 },
                ],
            },
        ]
    }

    #[test]
    fn markdown_has_header_and_rows() {
        let md = render_markdown(&sample(), "pairs");
        assert!(md.contains("| threads | WF-10 | MSQUEUE |"));
        assert!(md.contains("| 1 | 10.00 ± 0.50 | 9.00 ± 0.10 |"));
        assert!(md.contains("| 2 | 12.00 ± 0.70 | 5.00 ± 0.20 |"));
    }

    #[test]
    fn csv_has_one_line_per_point() {
        let csv = render_csv(&sample());
        assert_eq!(csv.lines().count(), 1 + 4);
        assert!(csv.starts_with("queue,threads,"));
        assert!(csv.contains("WF-10,2,12.000000,0.700000"));
    }

    #[test]
    fn empty_series_render_gracefully() {
        assert!(render_markdown(&[], "x").contains("**x**"));
        assert_eq!(render_csv(&[]).lines().count(), 1);
    }

    #[test]
    fn json_roundtrips_through_the_parser() {
        let doc = render_json("figure2", "pairwise", &sample());
        let v = crate::json::parse(&doc).expect("render_json must emit valid JSON");
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("figure2"));
        assert_eq!(v.get("workload").unwrap().as_str(), Some("pairwise"));
        let series = v.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].get("queue").unwrap().as_str(), Some("WF-10"));
        let pts = series[0].get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[1].get("threads").unwrap().as_num(), Some(2.0));
        assert_eq!(pts[1].get("mean_mops").unwrap().as_num(), Some(12.0));
    }

    #[test]
    fn json_with_commit_carries_the_field_and_still_parses() {
        let doc = render_json_with_commit("figure2", "pairwise", Some("abc1234"), &sample());
        let v = crate::json::parse(&doc).unwrap();
        assert_eq!(v.get("commit").unwrap().as_str(), Some("abc1234"));
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("figure2"));
        // Without a commit the field is absent, keeping old snapshots and
        // new ones in one schema.
        let v = crate::json::parse(&render_json("figure2", "pairwise", &sample())).unwrap();
        assert!(v.get("commit").is_none());
    }

    #[test]
    fn json_of_empty_series_is_valid() {
        let doc = render_json("figure2", "pairwise", &[]);
        let v = crate::json::parse(&doc).unwrap();
        assert_eq!(v.get("series").unwrap().as_arr().unwrap().len(), 0);
    }

    fn latency_sample() -> Vec<LatencySeries> {
        let point = |rate: f64, p99: f64| LatencyPoint {
            rate_kops: rate,
            achieved_kops: rate * 0.99,
            saturated: false,
            drops: 0,
            max_lag_ns: 1_200,
            backlog: -1,
            p50_ns: p99 * 0.2,
            p50_ci: 4.0,
            p90_ns: p99 * 0.5,
            p90_ci: 6.0,
            p99_ns: p99,
            p99_ci: 10.0,
            p999_ns: p99 * 2.0,
            p999_ci: 25.0,
            max_ns: p99 * 8.0,
            max_ci: 100.0,
            share_fast: 0.96,
            share_slow: 0.03,
            share_helped: 0.01,
            sampled: 40_000,
        };
        vec![
            LatencySeries {
                name: "WF-10".into(),
                points: vec![point(250.0, 800.0), point(1000.0, 1100.0)],
            },
            LatencySeries {
                name: "FAA".into(),
                points: vec![point(250.0, 700.0), point(1000.0, 900.0)],
            },
        ]
    }

    #[test]
    fn latency_json_roundtrips_through_the_parser() {
        let doc = render_latency_json("fixed", 2, Some("abc1234"), &latency_sample());
        let v = crate::json::parse(&doc).expect("render_latency_json must emit valid JSON");
        assert_eq!(v.get("benchmark").unwrap().as_str(), Some("latency_observatory"));
        assert_eq!(v.get("workload").unwrap().as_str(), Some("open_loop_pairs"));
        assert_eq!(v.get("schedule").unwrap().as_str(), Some("fixed"));
        assert_eq!(v.get("threads").unwrap().as_num(), Some(2.0));
        let series = v.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series.len(), 2);
        let pts = series[0].get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].get("rate_kops").unwrap().as_num(), Some(250.0));
        assert_eq!(pts[0].get("p99_ns").unwrap().as_num(), Some(800.0));
        assert_eq!(pts[0].get("saturated").unwrap(), &crate::json::Value::Bool(false));
        assert_eq!(pts[0].get("backlog").unwrap().as_num(), Some(-1.0));
        assert_eq!(pts[0].get("share_fast").unwrap().as_num(), Some(0.96));
    }

    #[test]
    fn ragged_series_render_dashes() {
        let mut s = sample();
        s[1].points.pop();
        let md = render_markdown(&s, "ragged");
        assert!(md.contains("| 2 | 12.00 ± 0.70 | — |"));
    }
}
