//! Statistical benchmark-snapshot comparison — the engine of `wfq-regress`.
//!
//! Snapshots are the committed `results/BENCH_*.json` documents (the
//! normalized schema of [`report::render_json_with_commit`]: optional
//! `commit`, `benchmark`, `workload`, `series[]` of per-queue
//! `(threads, mean_mops, ci_half)` points, where `ci_half` is the Student-t
//! 95% half-width computed by `stats::confidence_interval_95` over
//! benchmark invocations, per Georges et al. §5.1). Two snapshots are
//! compared point-by-point on the `(queue, threads)` key:
//!
//! A point **regresses** when all three hold —
//!
//! 1. the candidate mean is *lower* than the baseline mean,
//! 2. the relative drop exceeds the threshold (default 5%), and
//! 3. the two 95% CIs do not overlap (`|Δmean| > ci_b + ci_c`),
//!
//! so a noisy run with wide CIs cannot fail the gate, and a statistically
//! significant but sub-threshold wobble cannot either. Improvements are
//! reported but never fail.

use crate::json::{self, Value};
use crate::report::{LatencyPoint, LatencySeries, Series, SeriesPoint};

/// A parsed benchmark snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Commit the snapshot measured (absent in pre-normalized snapshots).
    pub commit: Option<String>,
    /// Benchmark name (`figure2`, …).
    pub benchmark: String,
    /// Workload label (`pairwise`, `batch_pairs`, …).
    pub workload: String,
    /// One series per queue.
    pub series: Vec<Series>,
}

/// Parses a snapshot JSON document (the `results/BENCH_*.json` schema).
///
/// Rejects (rather than silently accepting) documents that a gate could
/// never meaningfully compare: an empty `series` array, a series with an
/// empty `points` array, and non-finite numbers. A truncated or
/// mis-generated snapshot must fail loudly at parse time — a comparison
/// over zero points would otherwise print `PASS` and mean nothing.
pub fn parse_snapshot(doc: &str) -> Result<Snapshot, String> {
    let v = json::parse(doc)?;
    let str_field = |v: &Value, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(|x| x.as_str().map(str::to_string))
            .ok_or_else(|| format!("snapshot missing string field {k:?}"))
    };
    let num_field = |v: &Value, k: &str| -> Result<f64, String> {
        let n = v
            .get(k)
            .and_then(|x| x.as_num())
            .ok_or_else(|| format!("snapshot point missing number field {k:?}"))?;
        if !n.is_finite() {
            return Err(format!("snapshot point field {k:?} is not a finite number"));
        }
        Ok(n)
    };
    let mut series = Vec::new();
    for s in v
        .get("series")
        .and_then(|x| x.as_arr())
        .ok_or("snapshot missing series array")?
    {
        let name = str_field(&s, "queue")?;
        let mut points = Vec::new();
        for p in s
            .get("points")
            .and_then(|x| x.as_arr())
            .ok_or("series missing points array")?
        {
            points.push(SeriesPoint {
                threads: num_field(&p, "threads")? as usize,
                mean_mops: num_field(&p, "mean_mops")?,
                ci_half: num_field(&p, "ci_half")?,
            });
        }
        if points.is_empty() {
            return Err(format!(
                "series {name:?} has no points — refusing a snapshot the gate cannot compare"
            ));
        }
        series.push(Series { name, points });
    }
    if series.is_empty() {
        return Err("snapshot has no series — refusing a snapshot the gate cannot compare".into());
    }
    Ok(Snapshot {
        commit: v.get("commit").and_then(|x| x.as_str().map(str::to_string)),
        benchmark: str_field(&v, "benchmark")?,
        workload: str_field(&v, "workload")?,
        series,
    })
}

/// One `(queue, threads)` comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Queue display name.
    pub queue: String,
    /// Concurrency level.
    pub threads: usize,
    /// Baseline `(mean_mops, ci_half)`.
    pub base: (f64, f64),
    /// Candidate `(mean_mops, ci_half)`.
    pub cand: (f64, f64),
    /// Relative mean change, percent (negative = slower).
    pub pct_change: f64,
    /// Whether the 95% CIs do not overlap.
    pub significant: bool,
    /// Significant slowdown past the threshold: fails the gate.
    pub regressed: bool,
    /// Significant speedup past the threshold: reported, never fails.
    pub improved: bool,
}

/// The result of comparing a candidate snapshot against a baseline.
#[derive(Debug)]
pub struct Comparison {
    /// Every matched `(queue, threads)` point.
    pub deltas: Vec<Delta>,
    /// `(queue, threads)` keys present in only one snapshot.
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// The deltas that fail the gate.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>18} {:>18} {:>8}  verdict",
            "queue", "threads", "baseline", "candidate", "delta"
        );
        for d in &self.deltas {
            let verdict = if d.regressed {
                "REGRESSION"
            } else if d.improved {
                "improved"
            } else if d.significant {
                "within threshold"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>11.3} ±{:<5.3} {:>11.3} ±{:<5.3} {:>+7.1}%  {}",
                d.queue,
                d.threads,
                d.base.0,
                d.base.1,
                d.cand.0,
                d.cand.1,
                d.pct_change,
                verdict
            );
        }
        for u in &self.unmatched {
            let _ = writeln!(out, "unmatched: {u}");
        }
        out
    }
}

/// Compares candidate against baseline. `threshold_pct` is the minimum
/// relative mean drop (percent) a significant slowdown must exceed to
/// count as a regression (the gate's default is 5).
pub fn compare(base: &Snapshot, cand: &Snapshot, threshold_pct: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for bs in &base.series {
        let Some(cs) = cand.series.iter().find(|s| s.name == bs.name) else {
            unmatched.push(format!("{} (baseline only)", bs.name));
            continue;
        };
        for bp in &bs.points {
            let Some(cp) = cs.points.iter().find(|p| p.threads == bp.threads) else {
                unmatched.push(format!("{} @{} (baseline only)", bs.name, bp.threads));
                continue;
            };
            let diff = cp.mean_mops - bp.mean_mops;
            let pct_change = if bp.mean_mops == 0.0 {
                0.0
            } else {
                100.0 * diff / bp.mean_mops
            };
            let significant = diff.abs() > bp.ci_half + cp.ci_half;
            deltas.push(Delta {
                queue: bs.name.clone(),
                threads: bp.threads,
                base: (bp.mean_mops, bp.ci_half),
                cand: (cp.mean_mops, cp.ci_half),
                pct_change,
                significant,
                regressed: significant && pct_change < -threshold_pct,
                improved: significant && pct_change > threshold_pct,
            });
        }
    }
    for cs in &cand.series {
        if !base.series.iter().any(|s| s.name == cs.name) {
            unmatched.push(format!("{} (candidate only)", cs.name));
        }
    }
    Comparison { deltas, unmatched }
}

/// Renders one snapshot as a single normalized JSON line for the
/// append-only trajectory file (`results/trajectory.jsonl`): same fields
/// as the snapshot schema, compacted so each `--record` appends one line
/// per benchmark run and the perf history stays `git diff`-able.
pub fn trajectory_line(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    if let Some(c) = &snap.commit {
        out.push_str(&format!(
            "\"commit\": \"{}\", ",
            c.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str(&format!(
        "\"benchmark\": \"{}\", \"workload\": \"{}\", \"series\": [",
        snap.benchmark, snap.workload
    ));
    for (si, s) in snap.series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"queue\": \"{}\", \"points\": [",
            s.name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        for (pi, p) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"threads\": {}, \"mean_mops\": {:.6}, \"ci_half\": {:.6}}}",
                p.threads, p.mean_mops, p.ci_half
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

// ----------------------------------------------------------------------
// Latency snapshots (the p99 regression gate)
// ----------------------------------------------------------------------

/// A parsed latency-observatory snapshot (`results/BENCH_latency.json`,
/// the schema of [`report::render_latency_json`]).
#[derive(Debug, Clone)]
pub struct LatencySnapshot {
    /// Commit the snapshot measured.
    pub commit: Option<String>,
    /// Benchmark name (`latency_observatory`).
    pub benchmark: String,
    /// Workload label (`open_loop_pairs`).
    pub workload: String,
    /// Arrival-schedule shape (`fixed`, `poisson`, `bursty`).
    pub schedule: String,
    /// Generator thread count.
    pub threads: usize,
    /// One frontier per queue.
    pub series: Vec<LatencySeries>,
}

/// Parses a latency snapshot JSON document. Same strictness as
/// [`parse_snapshot`]: empty `series`/`points` and non-finite numbers are
/// parse errors, not vacuous gate passes.
pub fn parse_latency_snapshot(doc: &str) -> Result<LatencySnapshot, String> {
    let v = json::parse(doc)?;
    let str_field = |v: &Value, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(|x| x.as_str().map(str::to_string))
            .ok_or_else(|| format!("latency snapshot missing string field {k:?}"))
    };
    let num_field = |v: &Value, k: &str| -> Result<f64, String> {
        let n = v
            .get(k)
            .and_then(|x| x.as_num())
            .ok_or_else(|| format!("latency point missing number field {k:?}"))?;
        if !n.is_finite() {
            return Err(format!("latency point field {k:?} is not a finite number"));
        }
        Ok(n)
    };
    let bool_field = |v: &Value, k: &str| -> Result<bool, String> {
        match v.get(k) {
            Some(Value::Bool(b)) => Ok(*b),
            _ => Err(format!("latency point missing bool field {k:?}")),
        }
    };
    let mut series = Vec::new();
    for s in v
        .get("series")
        .and_then(|x| x.as_arr())
        .ok_or("latency snapshot missing series array")?
    {
        let name = str_field(&s, "queue")?;
        let mut points = Vec::new();
        for p in s
            .get("points")
            .and_then(|x| x.as_arr())
            .ok_or("latency series missing points array")?
        {
            points.push(LatencyPoint {
                rate_kops: num_field(&p, "rate_kops")?,
                achieved_kops: num_field(&p, "achieved_kops")?,
                saturated: bool_field(&p, "saturated")?,
                drops: num_field(&p, "drops")? as u64,
                max_lag_ns: num_field(&p, "max_lag_ns")? as u64,
                backlog: num_field(&p, "backlog")? as i64,
                p50_ns: num_field(&p, "p50_ns")?,
                p50_ci: num_field(&p, "p50_ci")?,
                p90_ns: num_field(&p, "p90_ns")?,
                p90_ci: num_field(&p, "p90_ci")?,
                p99_ns: num_field(&p, "p99_ns")?,
                p99_ci: num_field(&p, "p99_ci")?,
                p999_ns: num_field(&p, "p999_ns")?,
                p999_ci: num_field(&p, "p999_ci")?,
                max_ns: num_field(&p, "max_ns")?,
                max_ci: num_field(&p, "max_ci")?,
                share_fast: num_field(&p, "share_fast")?,
                share_slow: num_field(&p, "share_slow")?,
                share_helped: num_field(&p, "share_helped")?,
                sampled: num_field(&p, "sampled")? as u64,
            });
        }
        if points.is_empty() {
            return Err(format!(
                "latency series {name:?} has no points — refusing a snapshot the gate cannot compare"
            ));
        }
        series.push(LatencySeries { name, points });
    }
    if series.is_empty() {
        return Err(
            "latency snapshot has no series — refusing a snapshot the gate cannot compare".into(),
        );
    }
    Ok(LatencySnapshot {
        commit: v.get("commit").and_then(|x| x.as_str().map(str::to_string)),
        benchmark: str_field(&v, "benchmark")?,
        workload: str_field(&v, "workload")?,
        schedule: str_field(&v, "schedule")?,
        threads: v
            .get("threads")
            .and_then(|x| x.as_num())
            .ok_or("latency snapshot missing threads")? as usize,
        series,
    })
}

/// One `(queue, rate_kops)` p99 comparison. The polarity is the mirror of
/// throughput [`Delta`]: here **higher is worse**.
#[derive(Debug, Clone)]
pub struct LatencyDelta {
    /// Queue display name.
    pub queue: String,
    /// Offered rate, kops/s.
    pub rate_kops: f64,
    /// Baseline `(p99_ns, ci_half)`.
    pub base: (f64, f64),
    /// Candidate `(p99_ns, ci_half)`.
    pub cand: (f64, f64),
    /// Relative p99 change, percent (positive = slower).
    pub pct_change: f64,
    /// Whether the 95% CIs do not overlap.
    pub significant: bool,
    /// Candidate saturates at a rate the baseline served: always gates
    /// (the frontier itself moved, regardless of the quantile delta).
    pub saturation_onset: bool,
    /// Fails the gate.
    pub regressed: bool,
    /// Significant speedup past the threshold: reported, never fails.
    pub improved: bool,
}

/// The result of comparing candidate latency against a baseline.
#[derive(Debug)]
pub struct LatencyComparison {
    /// Every matched `(queue, rate_kops)` point.
    pub deltas: Vec<LatencyDelta>,
    /// `(queue, rate)` keys present in only one snapshot.
    pub unmatched: Vec<String>,
}

impl LatencyComparison {
    /// The deltas that fail the gate.
    pub fn regressions(&self) -> Vec<&LatencyDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable comparison table (p99 in ns).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>20} {:>20} {:>8}  verdict",
            "queue", "rate_kops", "baseline p99", "candidate p99", "delta"
        );
        for d in &self.deltas {
            let verdict = if d.saturation_onset {
                "REGRESSION (saturates)"
            } else if d.regressed {
                "REGRESSION"
            } else if d.improved {
                "improved"
            } else if d.significant {
                "within threshold"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<12} {:>10.0} {:>12.0} ±{:<6.0} {:>12.0} ±{:<6.0} {:>+7.1}%  {}",
                d.queue,
                d.rate_kops,
                d.base.0,
                d.base.1,
                d.cand.0,
                d.cand.1,
                d.pct_change,
                verdict
            );
        }
        for u in &self.unmatched {
            let _ = writeln!(out, "unmatched: {u}");
        }
        out
    }
}

/// Compares candidate latency against baseline on the `(queue, rate_kops)`
/// key. A point **regresses** when the candidate p99 is *higher*, the
/// relative increase exceeds `threshold_pct` (the gate's default is 10 —
/// quantiles are noisier than means), and the 95% CIs do not overlap —
/// the same three-part test as the throughput gate with the polarity
/// flipped. A candidate that *saturates* at a rate the baseline served
/// regresses unconditionally: its measured p99 under overload is not
/// comparable (the open loop's lag means the point no longer measures the
/// offered schedule), but the lost headroom is itself the regression.
pub fn compare_latency(
    base: &LatencySnapshot,
    cand: &LatencySnapshot,
    threshold_pct: f64,
) -> LatencyComparison {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for bs in &base.series {
        let Some(cs) = cand.series.iter().find(|s| s.name == bs.name) else {
            unmatched.push(format!("{} (baseline only)", bs.name));
            continue;
        };
        for bp in &bs.points {
            let Some(cp) = cs
                .points
                .iter()
                .find(|p| (p.rate_kops - bp.rate_kops).abs() < 1e-6)
            else {
                unmatched.push(format!("{} @{}k (baseline only)", bs.name, bp.rate_kops));
                continue;
            };
            let diff = cp.p99_ns - bp.p99_ns;
            let pct_change = if bp.p99_ns == 0.0 {
                0.0
            } else {
                100.0 * diff / bp.p99_ns
            };
            let significant = diff.abs() > bp.p99_ci + cp.p99_ci;
            let saturation_onset = cp.saturated && !bp.saturated;
            deltas.push(LatencyDelta {
                queue: bs.name.clone(),
                rate_kops: bp.rate_kops,
                base: (bp.p99_ns, bp.p99_ci),
                cand: (cp.p99_ns, cp.p99_ci),
                pct_change,
                significant,
                saturation_onset,
                regressed: saturation_onset
                    || (significant && pct_change > threshold_pct),
                improved: significant && pct_change < -threshold_pct,
            });
        }
    }
    for cs in &cand.series {
        if !base.series.iter().any(|s| s.name == cs.name) {
            unmatched.push(format!("{} (candidate only)", cs.name));
        }
    }
    LatencyComparison { deltas, unmatched }
}

/// Renders one latency snapshot as a single normalized JSON line for
/// `results/trajectory.jsonl` — compacted to the trajectory quantiles
/// (p50/p99/p99.9) so the tail history stays `git diff`-able next to the
/// throughput lines.
pub fn latency_trajectory_line(snap: &LatencySnapshot) -> String {
    let mut out = String::from("{");
    if let Some(c) = &snap.commit {
        out.push_str(&format!(
            "\"commit\": \"{}\", ",
            c.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str(&format!(
        "\"benchmark\": \"{}\", \"workload\": \"{}\", \"schedule\": \"{}\", \"threads\": {}, \"series\": [",
        snap.benchmark, snap.workload, snap.schedule, snap.threads
    ));
    for (si, s) in snap.series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"queue\": \"{}\", \"points\": [",
            s.name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        for (pi, p) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"rate_kops\": {:.3}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}, \"p99_ci\": {:.1}, \"p999_ns\": {:.1}, \"saturated\": {}}}",
                p.rate_kops, p.p50_ns, p.p99_ns, p.p99_ci, p.p999_ns, p.saturated
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_json_with_commit;

    fn snap(scale: f64, ci: f64) -> Snapshot {
        Snapshot {
            commit: Some("deadbee".into()),
            benchmark: "figure2".into(),
            workload: "pairwise".into(),
            series: vec![Series {
                name: "WF-10".into(),
                points: vec![
                    SeriesPoint { threads: 1, mean_mops: 10.0 * scale, ci_half: ci },
                    SeriesPoint { threads: 2, mean_mops: 8.0 * scale, ci_half: ci },
                ],
            }],
        }
    }

    #[test]
    fn self_comparison_of_identical_runs_passes() {
        let a = snap(1.0, 0.2);
        let cmp = compare(&a, &a, 5.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| !d.significant));
        assert!(cmp.unmatched.is_empty());
    }

    #[test]
    fn a_twenty_percent_slowdown_with_tight_cis_regresses() {
        // The acceptance criterion: a synthetic ≥20% slowdown must fail.
        let base = snap(1.0, 0.1);
        let cand = snap(0.8, 0.1);
        let cmp = compare(&base, &cand, 5.0);
        assert_eq!(cmp.regressions().len(), 2, "{}", cmp.render());
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn wide_cis_mask_even_large_deltas() {
        // CIs overlap (10−8=2 < 1.5+1.5): not statistically significant,
        // so the gate must not fire on noise.
        let base = snap(1.0, 1.5);
        let cand = snap(0.8, 1.5);
        let cmp = compare(&base, &cand, 5.0);
        assert!(cmp.regressions().is_empty(), "{}", cmp.render());
    }

    #[test]
    fn a_significant_but_sub_threshold_drop_passes() {
        let base = snap(1.0, 0.01);
        let cand = snap(0.97, 0.01); // −3%, tight CIs
        let cmp = compare(&base, &cand, 5.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| d.significant));
        assert!(cmp.render().contains("within threshold"));
    }

    #[test]
    fn improvements_are_reported_but_never_fail() {
        let base = snap(1.0, 0.05);
        let cand = snap(1.5, 0.05);
        let cmp = compare(&base, &cand, 5.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| d.improved));
        assert!(cmp.render().contains("improved"));
    }

    #[test]
    fn snapshots_roundtrip_through_render_and_parse() {
        let s = snap(1.0, 0.2);
        let doc = render_json_with_commit(
            &s.benchmark,
            &s.workload,
            s.commit.as_deref(),
            &s.series,
        );
        let back = parse_snapshot(&doc).unwrap();
        assert_eq!(back.commit.as_deref(), Some("deadbee"));
        assert_eq!(back.benchmark, "figure2");
        assert_eq!(back.workload, "pairwise");
        assert_eq!(back.series, s.series);
    }

    #[test]
    fn legacy_snapshots_without_commit_still_parse() {
        let doc = crate::report::render_json("figure2", "pairwise", &snap(1.0, 0.2).series);
        let back = parse_snapshot(&doc).unwrap();
        assert_eq!(back.commit, None);
        assert_eq!(back.series.len(), 1);
    }

    #[test]
    fn missing_points_surface_as_unmatched_not_panics() {
        let base = snap(1.0, 0.2);
        let mut cand = snap(1.0, 0.2);
        cand.series[0].points.pop();
        cand.series.push(Series { name: "EXTRA".into(), points: vec![] });
        let cmp = compare(&base, &cand, 5.0);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.unmatched.len(), 2, "{:?}", cmp.unmatched);
    }

    #[test]
    fn trajectory_line_is_one_line_of_valid_json() {
        let line = trajectory_line(&snap(1.0, 0.2));
        assert_eq!(line.lines().count(), 1);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("commit").unwrap().as_str(), Some("deadbee"));
        let series = v.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series[0].get("queue").unwrap().as_str(), Some("WF-10"));
    }

    #[test]
    fn malformed_snapshots_return_errors() {
        assert!(parse_snapshot("not json").is_err());
        assert!(parse_snapshot("{\"benchmark\": \"x\"}").is_err());
        assert!(
            parse_snapshot("{\"benchmark\": \"x\", \"workload\": \"y\", \"series\": 3}").is_err()
        );
    }

    #[test]
    fn truncated_point_missing_ci_half_is_a_parse_error() {
        let doc = "{\"benchmark\": \"figure2\", \"workload\": \"pairwise\", \"series\": [\
                   {\"queue\": \"WF-10\", \"points\": [\
                   {\"threads\": 1, \"mean_mops\": 10.0}]}]}";
        let err = parse_snapshot(doc).unwrap_err();
        assert!(err.contains("ci_half"), "message must name the field: {err}");
    }

    #[test]
    fn empty_series_and_empty_points_are_parse_errors_not_vacuous_passes() {
        // Zero series: the gate would compare nothing and print PASS.
        let doc = "{\"benchmark\": \"x\", \"workload\": \"y\", \"series\": []}";
        let err = parse_snapshot(doc).unwrap_err();
        assert!(err.contains("no series"), "{err}");
        // A series with zero points: same vacuity, one level down.
        let doc = "{\"benchmark\": \"x\", \"workload\": \"y\", \"series\": [\
                   {\"queue\": \"WF-10\", \"points\": []}]}";
        let err = parse_snapshot(doc).unwrap_err();
        assert!(err.contains("no points") && err.contains("WF-10"), "{err}");
    }

    #[test]
    fn non_finite_numbers_are_parse_errors() {
        // `1e999` overflows f64 to +inf, which `str::parse` accepts — a
        // CI comparison against infinity would never be significant.
        let doc = "{\"benchmark\": \"x\", \"workload\": \"y\", \"series\": [\
                   {\"queue\": \"WF-10\", \"points\": [\
                   {\"threads\": 1, \"mean_mops\": 1e999, \"ci_half\": 0.1}]}]}";
        let err = parse_snapshot(doc).unwrap_err();
        assert!(err.contains("finite"), "{err}");
    }

    // ------------------------------------------------------------------
    // Latency gate
    // ------------------------------------------------------------------

    fn lat_point(rate: f64, p99: f64, ci: f64, saturated: bool) -> LatencyPoint {
        LatencyPoint {
            rate_kops: rate,
            achieved_kops: rate,
            saturated,
            drops: 0,
            max_lag_ns: 0,
            backlog: 0,
            p50_ns: p99 * 0.3,
            p50_ci: ci,
            p90_ns: p99 * 0.6,
            p90_ci: ci,
            p99_ns: p99,
            p99_ci: ci,
            p999_ns: p99 * 2.0,
            p999_ci: ci,
            max_ns: p99 * 5.0,
            max_ci: ci,
            share_fast: 1.0,
            share_slow: 0.0,
            share_helped: 0.0,
            sampled: 10_000,
        }
    }

    fn lat_snap(scale: f64, ci: f64) -> LatencySnapshot {
        LatencySnapshot {
            commit: Some("deadbee".into()),
            benchmark: "latency_observatory".into(),
            workload: "open_loop_pairs".into(),
            schedule: "fixed".into(),
            threads: 2,
            series: vec![LatencySeries {
                name: "WF-10".into(),
                points: vec![
                    lat_point(250.0, 800.0 * scale, ci, false),
                    lat_point(1000.0, 1200.0 * scale, ci, false),
                ],
            }],
        }
    }

    #[test]
    fn latency_self_comparison_passes() {
        let a = lat_snap(1.0, 10.0);
        let cmp = compare_latency(&a, &a, 10.0);
        assert!(cmp.regressions().is_empty(), "{}", cmp.render());
        assert!(cmp.unmatched.is_empty());
    }

    #[test]
    fn a_significant_p99_inflation_regresses() {
        // Higher-is-worse polarity: +50% p99 with tight CIs must fail.
        let base = lat_snap(1.0, 10.0);
        let cand = lat_snap(1.5, 10.0);
        let cmp = compare_latency(&base, &cand, 10.0);
        assert_eq!(cmp.regressions().len(), 2, "{}", cmp.render());
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn a_p99_drop_is_an_improvement_not_a_regression() {
        let base = lat_snap(1.0, 10.0);
        let cand = lat_snap(0.5, 10.0);
        let cmp = compare_latency(&base, &cand, 10.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| d.improved));
        assert!(cmp.render().contains("improved"));
    }

    #[test]
    fn overlapping_cis_mask_latency_deltas() {
        // |Δ| = 160 ns at the low point < 100+100: not significant.
        let base = lat_snap(1.0, 500.0);
        let cand = lat_snap(1.2, 500.0);
        let cmp = compare_latency(&base, &cand, 10.0);
        assert!(cmp.regressions().is_empty(), "{}", cmp.render());
    }

    #[test]
    fn sub_threshold_latency_inflation_passes() {
        let base = lat_snap(1.0, 0.5);
        let cand = lat_snap(1.05, 0.5); // +5% < 10% threshold, tight CIs
        let cmp = compare_latency(&base, &cand, 10.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| d.significant));
    }

    #[test]
    fn saturation_onset_regresses_even_with_equal_p99() {
        let base = lat_snap(1.0, 10.0);
        let mut cand = lat_snap(1.0, 10.0);
        cand.series[0].points[1].saturated = true;
        let cmp = compare_latency(&base, &cand, 10.0);
        assert_eq!(cmp.regressions().len(), 1);
        assert!(cmp.render().contains("saturates"), "{}", cmp.render());
        // The reverse direction (candidate de-saturates) never fails.
        let cmp = compare_latency(&cand, &base, 10.0);
        assert!(cmp.regressions().is_empty());
    }

    #[test]
    fn latency_snapshots_roundtrip_through_render_and_parse() {
        let s = lat_snap(1.0, 10.0);
        let doc = crate::report::render_latency_json(
            &s.schedule,
            s.threads,
            s.commit.as_deref(),
            &s.series,
        );
        let back = parse_latency_snapshot(&doc).unwrap();
        assert_eq!(back.commit.as_deref(), Some("deadbee"));
        assert_eq!(back.benchmark, "latency_observatory");
        assert_eq!(back.schedule, "fixed");
        assert_eq!(back.threads, 2);
        assert_eq!(back.series, s.series);
    }

    #[test]
    fn latency_trajectory_line_is_one_line_of_valid_json() {
        let line = latency_trajectory_line(&lat_snap(1.0, 10.0));
        assert_eq!(line.lines().count(), 1);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(
            v.get("benchmark").unwrap().as_str(),
            Some("latency_observatory")
        );
        let series = v.get("series").unwrap().as_arr().unwrap();
        let pts = series[0].get("points").unwrap().as_arr().unwrap();
        assert_eq!(pts[0].get("p99_ns").unwrap().as_num(), Some(800.0));
    }

    #[test]
    fn malformed_latency_snapshots_return_errors() {
        assert!(parse_latency_snapshot("not json").is_err());
        // A throughput snapshot is not a latency snapshot (missing
        // schedule/threads and the per-point latency fields).
        let tp = crate::report::render_json("figure2", "pairwise", &snap(1.0, 0.2).series);
        assert!(parse_latency_snapshot(&tp).is_err());
    }

    #[test]
    fn empty_latency_series_and_points_are_parse_errors() {
        let doc = "{\"benchmark\": \"latency_observatory\", \"workload\": \"w\", \
                   \"schedule\": \"fixed\", \"threads\": 2, \"series\": []}";
        assert!(parse_latency_snapshot(doc).unwrap_err().contains("no series"));
        let doc = "{\"benchmark\": \"latency_observatory\", \"workload\": \"w\", \
                   \"schedule\": \"fixed\", \"threads\": 2, \"series\": [\
                   {\"queue\": \"WF-10\", \"points\": []}]}";
        assert!(parse_latency_snapshot(doc).unwrap_err().contains("no points"));
    }

    #[test]
    fn latency_rate_mismatches_surface_as_unmatched() {
        let base = lat_snap(1.0, 10.0);
        let mut cand = lat_snap(1.0, 10.0);
        cand.series[0].points[1].rate_kops = 4000.0;
        let cmp = compare_latency(&base, &cand, 10.0);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.unmatched.len(), 1, "{:?}", cmp.unmatched);
    }
}
