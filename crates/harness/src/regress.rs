//! Statistical benchmark-snapshot comparison — the engine of `wfq-regress`.
//!
//! Snapshots are the committed `results/BENCH_*.json` documents (the
//! normalized schema of [`report::render_json_with_commit`]: optional
//! `commit`, `benchmark`, `workload`, `series[]` of per-queue
//! `(threads, mean_mops, ci_half)` points, where `ci_half` is the Student-t
//! 95% half-width computed by `stats::confidence_interval_95` over
//! benchmark invocations, per Georges et al. §5.1). Two snapshots are
//! compared point-by-point on the `(queue, threads)` key:
//!
//! A point **regresses** when all three hold —
//!
//! 1. the candidate mean is *lower* than the baseline mean,
//! 2. the relative drop exceeds the threshold (default 5%), and
//! 3. the two 95% CIs do not overlap (`|Δmean| > ci_b + ci_c`),
//!
//! so a noisy run with wide CIs cannot fail the gate, and a statistically
//! significant but sub-threshold wobble cannot either. Improvements are
//! reported but never fail.

use crate::json::{self, Value};
use crate::report::{Series, SeriesPoint};

/// A parsed benchmark snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Commit the snapshot measured (absent in pre-normalized snapshots).
    pub commit: Option<String>,
    /// Benchmark name (`figure2`, …).
    pub benchmark: String,
    /// Workload label (`pairwise`, `batch_pairs`, …).
    pub workload: String,
    /// One series per queue.
    pub series: Vec<Series>,
}

/// Parses a snapshot JSON document (the `results/BENCH_*.json` schema).
pub fn parse_snapshot(doc: &str) -> Result<Snapshot, String> {
    let v = json::parse(doc)?;
    let str_field = |v: &Value, k: &str| -> Result<String, String> {
        v.get(k)
            .and_then(|x| x.as_str().map(str::to_string))
            .ok_or_else(|| format!("snapshot missing string field {k:?}"))
    };
    let num_field = |v: &Value, k: &str| -> Result<f64, String> {
        v.get(k)
            .and_then(|x| x.as_num())
            .ok_or_else(|| format!("snapshot point missing number field {k:?}"))
    };
    let mut series = Vec::new();
    for s in v
        .get("series")
        .and_then(|x| x.as_arr())
        .ok_or("snapshot missing series array")?
    {
        let mut points = Vec::new();
        for p in s
            .get("points")
            .and_then(|x| x.as_arr())
            .ok_or("series missing points array")?
        {
            points.push(SeriesPoint {
                threads: num_field(&p, "threads")? as usize,
                mean_mops: num_field(&p, "mean_mops")?,
                ci_half: num_field(&p, "ci_half")?,
            });
        }
        series.push(Series {
            name: str_field(&s, "queue")?,
            points,
        });
    }
    Ok(Snapshot {
        commit: v.get("commit").and_then(|x| x.as_str().map(str::to_string)),
        benchmark: str_field(&v, "benchmark")?,
        workload: str_field(&v, "workload")?,
        series,
    })
}

/// One `(queue, threads)` comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Queue display name.
    pub queue: String,
    /// Concurrency level.
    pub threads: usize,
    /// Baseline `(mean_mops, ci_half)`.
    pub base: (f64, f64),
    /// Candidate `(mean_mops, ci_half)`.
    pub cand: (f64, f64),
    /// Relative mean change, percent (negative = slower).
    pub pct_change: f64,
    /// Whether the 95% CIs do not overlap.
    pub significant: bool,
    /// Significant slowdown past the threshold: fails the gate.
    pub regressed: bool,
    /// Significant speedup past the threshold: reported, never fails.
    pub improved: bool,
}

/// The result of comparing a candidate snapshot against a baseline.
#[derive(Debug)]
pub struct Comparison {
    /// Every matched `(queue, threads)` point.
    pub deltas: Vec<Delta>,
    /// `(queue, threads)` keys present in only one snapshot.
    pub unmatched: Vec<String>,
}

impl Comparison {
    /// The deltas that fail the gate.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// Human-readable comparison table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>7} {:>18} {:>18} {:>8}  verdict",
            "queue", "threads", "baseline", "candidate", "delta"
        );
        for d in &self.deltas {
            let verdict = if d.regressed {
                "REGRESSION"
            } else if d.improved {
                "improved"
            } else if d.significant {
                "within threshold"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "{:<12} {:>7} {:>11.3} ±{:<5.3} {:>11.3} ±{:<5.3} {:>+7.1}%  {}",
                d.queue,
                d.threads,
                d.base.0,
                d.base.1,
                d.cand.0,
                d.cand.1,
                d.pct_change,
                verdict
            );
        }
        for u in &self.unmatched {
            let _ = writeln!(out, "unmatched: {u}");
        }
        out
    }
}

/// Compares candidate against baseline. `threshold_pct` is the minimum
/// relative mean drop (percent) a significant slowdown must exceed to
/// count as a regression (the gate's default is 5).
pub fn compare(base: &Snapshot, cand: &Snapshot, threshold_pct: f64) -> Comparison {
    let mut deltas = Vec::new();
    let mut unmatched = Vec::new();
    for bs in &base.series {
        let Some(cs) = cand.series.iter().find(|s| s.name == bs.name) else {
            unmatched.push(format!("{} (baseline only)", bs.name));
            continue;
        };
        for bp in &bs.points {
            let Some(cp) = cs.points.iter().find(|p| p.threads == bp.threads) else {
                unmatched.push(format!("{} @{} (baseline only)", bs.name, bp.threads));
                continue;
            };
            let diff = cp.mean_mops - bp.mean_mops;
            let pct_change = if bp.mean_mops == 0.0 {
                0.0
            } else {
                100.0 * diff / bp.mean_mops
            };
            let significant = diff.abs() > bp.ci_half + cp.ci_half;
            deltas.push(Delta {
                queue: bs.name.clone(),
                threads: bp.threads,
                base: (bp.mean_mops, bp.ci_half),
                cand: (cp.mean_mops, cp.ci_half),
                pct_change,
                significant,
                regressed: significant && pct_change < -threshold_pct,
                improved: significant && pct_change > threshold_pct,
            });
        }
    }
    for cs in &cand.series {
        if !base.series.iter().any(|s| s.name == cs.name) {
            unmatched.push(format!("{} (candidate only)", cs.name));
        }
    }
    Comparison { deltas, unmatched }
}

/// Renders one snapshot as a single normalized JSON line for the
/// append-only trajectory file (`results/trajectory.jsonl`): same fields
/// as the snapshot schema, compacted so each `--record` appends one line
/// per benchmark run and the perf history stays `git diff`-able.
pub fn trajectory_line(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    if let Some(c) = &snap.commit {
        out.push_str(&format!(
            "\"commit\": \"{}\", ",
            c.replace('\\', "\\\\").replace('"', "\\\"")
        ));
    }
    out.push_str(&format!(
        "\"benchmark\": \"{}\", \"workload\": \"{}\", \"series\": [",
        snap.benchmark, snap.workload
    ));
    for (si, s) in snap.series.iter().enumerate() {
        if si > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"queue\": \"{}\", \"points\": [",
            s.name.replace('\\', "\\\\").replace('"', "\\\"")
        ));
        for (pi, p) in s.points.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"threads\": {}, \"mean_mops\": {:.6}, \"ci_half\": {:.6}}}",
                p.threads, p.mean_mops, p.ci_half
            ));
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::render_json_with_commit;

    fn snap(scale: f64, ci: f64) -> Snapshot {
        Snapshot {
            commit: Some("deadbee".into()),
            benchmark: "figure2".into(),
            workload: "pairwise".into(),
            series: vec![Series {
                name: "WF-10".into(),
                points: vec![
                    SeriesPoint { threads: 1, mean_mops: 10.0 * scale, ci_half: ci },
                    SeriesPoint { threads: 2, mean_mops: 8.0 * scale, ci_half: ci },
                ],
            }],
        }
    }

    #[test]
    fn self_comparison_of_identical_runs_passes() {
        let a = snap(1.0, 0.2);
        let cmp = compare(&a, &a, 5.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| !d.significant));
        assert!(cmp.unmatched.is_empty());
    }

    #[test]
    fn a_twenty_percent_slowdown_with_tight_cis_regresses() {
        // The acceptance criterion: a synthetic ≥20% slowdown must fail.
        let base = snap(1.0, 0.1);
        let cand = snap(0.8, 0.1);
        let cmp = compare(&base, &cand, 5.0);
        assert_eq!(cmp.regressions().len(), 2, "{}", cmp.render());
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn wide_cis_mask_even_large_deltas() {
        // CIs overlap (10−8=2 < 1.5+1.5): not statistically significant,
        // so the gate must not fire on noise.
        let base = snap(1.0, 1.5);
        let cand = snap(0.8, 1.5);
        let cmp = compare(&base, &cand, 5.0);
        assert!(cmp.regressions().is_empty(), "{}", cmp.render());
    }

    #[test]
    fn a_significant_but_sub_threshold_drop_passes() {
        let base = snap(1.0, 0.01);
        let cand = snap(0.97, 0.01); // −3%, tight CIs
        let cmp = compare(&base, &cand, 5.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| d.significant));
        assert!(cmp.render().contains("within threshold"));
    }

    #[test]
    fn improvements_are_reported_but_never_fail() {
        let base = snap(1.0, 0.05);
        let cand = snap(1.5, 0.05);
        let cmp = compare(&base, &cand, 5.0);
        assert!(cmp.regressions().is_empty());
        assert!(cmp.deltas.iter().all(|d| d.improved));
        assert!(cmp.render().contains("improved"));
    }

    #[test]
    fn snapshots_roundtrip_through_render_and_parse() {
        let s = snap(1.0, 0.2);
        let doc = render_json_with_commit(
            &s.benchmark,
            &s.workload,
            s.commit.as_deref(),
            &s.series,
        );
        let back = parse_snapshot(&doc).unwrap();
        assert_eq!(back.commit.as_deref(), Some("deadbee"));
        assert_eq!(back.benchmark, "figure2");
        assert_eq!(back.workload, "pairwise");
        assert_eq!(back.series, s.series);
    }

    #[test]
    fn legacy_snapshots_without_commit_still_parse() {
        let doc = crate::report::render_json("figure2", "pairwise", &snap(1.0, 0.2).series);
        let back = parse_snapshot(&doc).unwrap();
        assert_eq!(back.commit, None);
        assert_eq!(back.series.len(), 1);
    }

    #[test]
    fn missing_points_surface_as_unmatched_not_panics() {
        let base = snap(1.0, 0.2);
        let mut cand = snap(1.0, 0.2);
        cand.series[0].points.pop();
        cand.series.push(Series { name: "EXTRA".into(), points: vec![] });
        let cmp = compare(&base, &cand, 5.0);
        assert_eq!(cmp.deltas.len(), 1);
        assert_eq!(cmp.unmatched.len(), 2, "{:?}", cmp.unmatched);
    }

    #[test]
    fn trajectory_line_is_one_line_of_valid_json() {
        let line = trajectory_line(&snap(1.0, 0.2));
        assert_eq!(line.lines().count(), 1);
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("commit").unwrap().as_str(), Some("deadbee"));
        let series = v.get("series").unwrap().as_arr().unwrap();
        assert_eq!(series[0].get("queue").unwrap().as_str(), Some("WF-10"));
    }

    #[test]
    fn malformed_snapshots_return_errors() {
        assert!(parse_snapshot("not json").is_err());
        assert!(parse_snapshot("{\"benchmark\": \"x\"}").is_err());
        assert!(
            parse_snapshot("{\"benchmark\": \"x\", \"workload\": \"y\", \"series\": 3}").is_err()
        );
    }
}
