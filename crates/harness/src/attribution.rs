//! Latency attribution: decomposing measured op latencies by the protocol
//! path each op actually took.
//!
//! The paper's wait-freedom claim predicts a specific *shape* for the
//! latency distribution: the one-FAA fast path dominates the body, and the
//! tail is populated by help-ring episodes whose length the helping scheme
//! bounds. Throughput numbers cannot test that prediction; a single merged
//! latency histogram cannot either, because it does not say *why* a sample
//! is slow. This module joins the two per-op channels the repo already
//! has:
//!
//! 1. the **sampling hook** (`wfqueue` feature `op-sample`,
//!    [`wfqueue::OpSample`]) — the handle's own classification of its most
//!    recent operation as fast / slow / helped, read by the open-loop
//!    engine right after timing the op, and
//! 2. the **PR-5 help-chain spans** ([`crate::spans`], feature `trace`) —
//!    the offline reconstruction keyed by the same `(side, op)` ids, which
//!    can see what the requester cannot: whether *other* threads' helper
//!    hops landed inside the episode.
//!
//! The taxonomy ([`OpClass`]):
//!
//! - **Fast** — completed on the one-FAA path (for dequeues this includes
//!   EMPTY results and the `H > T` fast-out).
//! - **Slow** — a help-ring episode the requester finished itself.
//! - **Helped** — an episode a helper materially participated in: the
//!   hook reports this directly for enqueues (the `enq_slow_helped`
//!   branch is requester-visible), and [`Attribution::with_spans`]
//!   upgrades `Slow` samples whose reconstructed chain is multi-hop —
//!   the only way to classify helped *dequeues*, where `deq_slow`'s
//!   self-help hides peer completion from the requester.
//!
//! **Soundness invariant**: every sampled op lands in exactly one class,
//! so `fast + slow + helped == sampled` always — asserted by the 16-thread
//! acceptance test in `tests/tests/openloop.rs` and checked cheaply by
//! [`Attribution::counts_are_sound`].

use crate::histogram::{fmt_ns, Histogram};
use crate::spans::{Side, SpanReport};
use wfqueue::{OpPath, OpSample, OpSide};

/// Attribution class of one sampled operation (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// One-FAA fast path.
    Fast,
    /// Help-ring episode finished by the requester.
    Slow,
    /// Help-ring episode a helper participated in.
    Helped,
}

impl OpClass {
    /// The hook's own classification of a sample (span-blind: slow
    /// dequeues stay `Slow` until [`Attribution::with_spans`]).
    pub fn of(sample: &OpSample) -> OpClass {
        match sample.path {
            OpPath::Fast => OpClass::Fast,
            OpPath::Slow => OpClass::Slow,
            OpPath::Helped => OpClass::Helped,
        }
    }

    /// Lower-case display name (JSON share keys use these).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Fast => "fast",
            OpClass::Slow => "slow",
            OpClass::Helped => "helped",
        }
    }
}

/// One retained slow-path sample, kept for the offline span join.
#[derive(Debug, Clone, Copy)]
pub struct SlowSample {
    /// Which side the episode ran on (span op ids are per-side).
    pub side: Side,
    /// The episode's publish id (the span reconstruction key).
    pub op: u64,
    /// The op's measured latency, nanoseconds.
    pub ns: u64,
}

/// Cap on retained slow samples per [`Attribution`]. Slow paths are rare
/// by design (patience keeps most ops on the fast path), so the cap only
/// trips under extreme contention; past it, new slow samples still count
/// in the histograms but can no longer be re-classified by a span join.
const SLOW_SAMPLE_CAP: usize = 1 << 16;

/// Per-class latency decomposition of a sampled-op population.
#[derive(Debug, Clone, Default)]
pub struct Attribution {
    /// Latencies of fast-path ops.
    pub fast: Histogram,
    /// Latencies of requester-finished slow-path ops.
    pub slow: Histogram,
    /// Latencies of helper-assisted ops.
    pub helped: Histogram,
    /// Retained `Slow`-class samples for [`Attribution::with_spans`]
    /// (capped at `SLOW_SAMPLE_CAP`).
    pub slow_ops: Vec<SlowSample>,
    /// Slow samples recorded past the cap (a span join would be partial).
    pub slow_ops_dropped: u64,
}

impl Attribution {
    /// An empty attribution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sampled op: its hook classification and its measured
    /// latency. `Slow` samples are additionally retained (up to the cap)
    /// so a later span join can upgrade them to `Helped`.
    pub fn record(&mut self, sample: &OpSample, ns: u64) {
        match OpClass::of(sample) {
            OpClass::Fast => self.fast.record(ns),
            OpClass::Helped => self.helped.record(ns),
            OpClass::Slow => {
                self.slow.record(ns);
                if self.slow_ops.len() < SLOW_SAMPLE_CAP {
                    self.slow_ops.push(SlowSample {
                        side: match sample.side {
                            OpSide::Enq => Side::Enq,
                            OpSide::Deq => Side::Deq,
                        },
                        op: sample.op,
                        ns,
                    });
                } else {
                    self.slow_ops_dropped += 1;
                }
            }
        }
    }

    /// Total sampled ops across all classes.
    pub fn sampled(&self) -> u64 {
        self.fast.count() + self.slow.count() + self.helped.count()
    }

    /// `(fast, slow, helped)` shares of the sampled population, each in
    /// `[0, 1]` and summing to 1 (all zero when nothing was sampled).
    pub fn shares(&self) -> (f64, f64, f64) {
        let total = self.sampled();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.fast.count() as f64 / t,
            self.slow.count() as f64 / t,
            self.helped.count() as f64 / t,
        )
    }

    /// The soundness invariant: per-class counts partition the sampled
    /// population (and the retained slow samples tally with the slow
    /// histogram). `true` means every sampled op is accounted for.
    pub fn counts_are_sound(&self) -> bool {
        self.fast.count() + self.slow.count() + self.helped.count() == self.sampled()
            && self.slow_ops.len() as u64 + self.slow_ops_dropped == self.slow.count()
    }

    /// Merges another attribution into this one (per-class histograms,
    /// retained samples up to the cap).
    pub fn merge(&mut self, other: &Attribution) {
        self.fast.merge(&other.fast);
        self.slow.merge(&other.slow);
        self.helped.merge(&other.helped);
        for s in &other.slow_ops {
            if self.slow_ops.len() < SLOW_SAMPLE_CAP {
                self.slow_ops.push(*s);
            } else {
                self.slow_ops_dropped += 1;
            }
        }
        self.slow_ops_dropped += other.slow_ops_dropped;
    }

    /// Joins the retained slow samples with a PR-5 span reconstruction:
    /// every `Slow` sample whose `(side, op)` episode has a **multi-hop**
    /// help chain (hops from more than one thread — cross-thread help the
    /// requester could not observe) moves to `Helped`. Fast and
    /// hook-classified helped samples are untouched.
    ///
    /// If the retention cap was exceeded (`slow_ops_dropped > 0`) the join
    /// would mis-partition the population (dropped samples cannot be
    /// re-bucketed), so the attribution is returned unchanged — sums stay
    /// sound either way.
    pub fn with_spans(&self, report: &SpanReport) -> Attribution {
        if self.slow_ops_dropped > 0 {
            return self.clone();
        }
        let multi_hop: std::collections::HashSet<(Side, u64)> = report
            .chains
            .iter()
            .filter(|c| c.is_multi_hop())
            .map(|c| (c.span.side, c.span.op))
            .collect();
        let mut out = Attribution {
            fast: self.fast.clone(),
            helped: self.helped.clone(),
            ..Attribution::new()
        };
        for s in &self.slow_ops {
            if multi_hop.contains(&(s.side, s.op)) {
                out.helped.record(s.ns);
            } else {
                out.slow.record(s.ns);
                out.slow_ops.push(*s);
            }
        }
        out
    }

    /// Human-readable share/latency table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let (f, s, h) = self.shares();
        let _ = writeln!(
            out,
            "attribution over {} sampled ops (fast {:.2}% / slow {:.2}% / helped {:.2}%)",
            self.sampled(),
            f * 100.0,
            s * 100.0,
            h * 100.0
        );
        for (name, hist) in [("fast", &self.fast), ("slow", &self.slow), ("helped", &self.helped)] {
            if hist.count() > 0 {
                let _ = writeln!(
                    out,
                    "  {name:<6} n={:<9} p50 {}  p99 {}  max {}",
                    hist.count(),
                    fmt_ns(hist.quantile(0.50)),
                    fmt_ns(hist.quantile(0.99)),
                    fmt_ns(hist.max())
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans::{HelpChain, SlowSpan};

    fn sample(side: OpSide, path: OpPath, op: u64) -> OpSample {
        OpSample { side, path, op }
    }

    fn chain(side: Side, op: u64, helpers: Vec<u64>) -> HelpChain {
        HelpChain {
            span: SlowSpan {
                recorder: 1,
                side,
                op,
                start_ns: 0,
                end_ns: 100,
                final_cell: op,
            },
            hops: Vec::new(),
            helpers,
            depth: 1,
        }
    }

    #[test]
    fn every_sample_lands_in_exactly_one_class() {
        let mut a = Attribution::new();
        a.record(&sample(OpSide::Enq, OpPath::Fast, 1), 50);
        a.record(&sample(OpSide::Deq, OpPath::Fast, 2), 60);
        a.record(&sample(OpSide::Enq, OpPath::Slow, 3), 900);
        a.record(&sample(OpSide::Deq, OpPath::Slow, 4), 1_000);
        a.record(&sample(OpSide::Enq, OpPath::Helped, 5), 1_100);
        assert_eq!(a.sampled(), 5);
        assert_eq!(a.fast.count(), 2);
        assert_eq!(a.slow.count(), 2);
        assert_eq!(a.helped.count(), 1);
        assert!(a.counts_are_sound());
        let (f, s, h) = a.shares();
        assert!((f + s + h - 1.0).abs() < 1e-12, "shares must sum to 1");
    }

    #[test]
    fn empty_attribution_has_zero_shares() {
        let a = Attribution::new();
        assert_eq!(a.sampled(), 0);
        assert_eq!(a.shares(), (0.0, 0.0, 0.0));
        assert!(a.counts_are_sound());
    }

    #[test]
    fn merge_preserves_totals_and_soundness() {
        let mut a = Attribution::new();
        let mut b = Attribution::new();
        a.record(&sample(OpSide::Enq, OpPath::Fast, 1), 10);
        a.record(&sample(OpSide::Enq, OpPath::Slow, 2), 500);
        b.record(&sample(OpSide::Deq, OpPath::Slow, 3), 700);
        b.record(&sample(OpSide::Enq, OpPath::Helped, 4), 800);
        a.merge(&b);
        assert_eq!(a.sampled(), 4);
        assert_eq!(a.slow_ops.len(), 2);
        assert!(a.counts_are_sound());
    }

    #[test]
    fn span_join_upgrades_multi_hop_slow_samples() {
        let mut a = Attribution::new();
        a.record(&sample(OpSide::Deq, OpPath::Slow, 42), 2_000); // multi-hop below
        a.record(&sample(OpSide::Deq, OpPath::Slow, 43), 1_500); // single-hop
        a.record(&sample(OpSide::Enq, OpPath::Fast, 44), 80);
        let report = SpanReport {
            chains: vec![
                chain(Side::Deq, 42, vec![2]), // a peer helped: multi-hop
                chain(Side::Deq, 43, vec![]),  // self-completed: stays slow
            ],
            ..SpanReport::default()
        };
        let joined = a.with_spans(&report);
        assert_eq!(joined.sampled(), 3, "join must not lose samples");
        assert_eq!(joined.helped.count(), 1);
        assert_eq!(joined.slow.count(), 1);
        assert_eq!(joined.fast.count(), 1);
        assert!(joined.counts_are_sound());
    }

    #[test]
    fn span_join_keys_on_side_so_enq_and_deq_ids_do_not_collide() {
        // Op ids are per-side FAA indices: a Deq episode with op 7 must not
        // be upgraded by an Enq chain with the same id.
        let mut a = Attribution::new();
        a.record(&sample(OpSide::Deq, OpPath::Slow, 7), 1_000);
        let report = SpanReport {
            chains: vec![chain(Side::Enq, 7, vec![1, 2])],
            ..SpanReport::default()
        };
        let joined = a.with_spans(&report);
        assert_eq!(joined.slow.count(), 1, "cross-side id must not match");
        assert_eq!(joined.helped.count(), 0);
    }

    #[test]
    fn render_mentions_all_classes() {
        let mut a = Attribution::new();
        a.record(&sample(OpSide::Enq, OpPath::Fast, 1), 100);
        a.record(&sample(OpSide::Enq, OpPath::Helped, 2), 900);
        let r = a.render();
        assert!(r.contains("fast"), "{r}");
        assert!(r.contains("helped"), "{r}");
        assert_eq!(OpClass::Fast.name(), "fast");
        assert_eq!(OpClass::of(&sample(OpSide::Enq, OpPath::Helped, 0)), OpClass::Helped);
    }
}
