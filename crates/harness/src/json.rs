//! A minimal JSON parser for validating emitted artifacts.
//!
//! The repository builds in a container without network access, so no
//! serde: this is a small recursive-descent parser covering exactly the
//! JSON this workspace *emits* (Chrome trace documents, benchmark result
//! files). It exists so tests and CI can check those artifacts actually
//! parse, not to be a general-purpose JSON library — numbers are `f64`,
//! objects keep insertion order in a `Vec`, and `\uXXXX` escapes outside
//! the BMP are rejected rather than paired.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a complete JSON document (rejecting trailing garbage).
pub fn parse(src: &str) -> Result<Value, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                b as char,
                self.pos.saturating_sub(1)
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(format!("expected '{kw}' at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(members)),
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let start = self.pos;
                        let end = start.checked_add(4).filter(|&e| e <= self.bytes.len());
                        let hex = end
                            .and_then(|e| std::str::from_utf8(&self.bytes[start..e]).ok())
                            .ok_or("bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        out.push(
                            char::from_u32(code)
                                .ok_or("surrogate \\u escape unsupported")?,
                        );
                        self.pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                // Multi-byte UTF-8: the input is a &str, so just carry the
                // raw bytes through (they are valid by construction).
                Some(b) if b < 0x20 => {
                    return Err("unescaped control character in string".into())
                }
                Some(b) => {
                    let ch_start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = ch_start + width;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[ch_start..end])
                            .map_err(|_| "invalid UTF-8 in string")?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at offset {start}"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn nested_structures_parse() {
        let v = parse(r#"{"a": [1, {"b": "c"}, null], "d": {}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(arr[2], Value::Null);
        assert_eq!(v.get("d").unwrap(), &Value::Obj(vec![]));
    }

    #[test]
    fn escapes_unescape() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn non_ascii_strings_survive() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{ }").unwrap(), Value::Obj(vec![]));
    }
}
