//! Statistics: mean, standard deviation, coefficient of variation, and
//! Student-t 95% confidence intervals (Georges et al., the methodology the
//! paper adopts in §5.1).

/// Arithmetic mean. Empty input yields 0.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n − 1 denominator). Fewer than two samples
/// yield 0.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Coefficient of variation, `s / x̄`. Zero mean yields infinity (so a COV
/// threshold test fails, which is the conservative outcome).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        f64::INFINITY
    } else {
        stddev(xs) / m
    }
}

/// Two-sided 95% critical values of Student's t distribution, indexed by
/// degrees of freedom 1..=30 (the standard table; the paper's n = 10
/// invocations use df = 9 → 2.262).
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// 95% critical value for the given degrees of freedom (≥ 1). Beyond the
/// table it converges to the normal quantile 1.960.
pub fn t_critical_95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_95[df - 1],
        31..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// Mean and 95% confidence half-width over invocation means, per Georges
/// et al.: `x̄ ± t(0.975, n−1) · s / √n`.
pub fn confidence_interval_95(xs: &[f64]) -> (f64, f64) {
    let n = xs.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    if n == 1 {
        return (xs[0], 0.0);
    }
    let m = mean(xs);
    let half = t_critical_95(n - 1) * stddev(xs) / (n as f64).sqrt();
    (m, half)
}

/// Finds the steady-state window per the paper: the first window of
/// `window` consecutive iterations whose COV falls below `threshold`,
/// else the window with the lowest COV. Returns `(start_index, cov)`;
/// `None` if fewer than `window` samples exist.
pub fn steady_state_window(xs: &[f64], window: usize, threshold: f64) -> Option<(usize, f64)> {
    if xs.len() < window || window == 0 {
        return None;
    }
    let mut best = (0usize, f64::INFINITY);
    for start in 0..=(xs.len() - window) {
        let c = cov(&xs[start..start + window]);
        if c < threshold {
            return Some((start, c));
        }
        if c < best.1 {
            best = (start, c);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample stddev of this classic set is ~2.138.
        assert!((stddev(&xs) - 2.1380899352993947).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
        assert_eq!(cov(&[0.0, 0.0]), f64::INFINITY);
    }

    #[test]
    fn cov_of_constant_series_is_zero() {
        assert_eq!(cov(&[3.0, 3.0, 3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn t_table_matches_known_values() {
        assert!((t_critical_95(9) - 2.262).abs() < 1e-9, "paper's df = 9");
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.960).abs() < 1e-9);
        assert_eq!(t_critical_95(0), f64::INFINITY);
    }

    #[test]
    fn confidence_interval_for_ten_invocations() {
        // Ten identical values: zero-width interval.
        let xs = [5.0; 10];
        let (m, h) = confidence_interval_95(&xs);
        assert_eq!(m, 5.0);
        assert_eq!(h, 0.0);
        // Known case: mean 10, s = 1, n = 10 → half = 2.262/√10.
        let xs: Vec<f64> = (0..10).map(|i| 10.0 + ((i % 2) as f64 * 2.0 - 1.0)).collect();
        let (_, h) = confidence_interval_95(&xs);
        let expect = 2.262 * stddev(&xs) / 10f64.sqrt();
        assert!((h - expect).abs() < 1e-12);
    }

    #[test]
    fn steady_state_finds_first_quiet_window() {
        // Noisy warmup, then steady.
        let xs = [1.0, 9.0, 2.0, 8.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0];
        let (start, c) = steady_state_window(&xs, 5, 0.02).unwrap();
        assert_eq!(start, 4, "first all-steady window begins at index 4");
        assert_eq!(c, 0.0);
    }

    #[test]
    fn steady_state_falls_back_to_lowest_cov() {
        // Never below threshold: pick the quietest window.
        let xs = [1.0, 2.0, 1.0, 2.0, 1.0, 2.0, 1.9, 2.0, 2.1, 1.8];
        let (start, c) = steady_state_window(&xs, 5, 0.0001).unwrap();
        assert!(c > 0.0001);
        assert!(start >= 4, "quietest window is near the tail, got {start}");
    }

    #[test]
    fn steady_state_requires_enough_samples() {
        assert!(steady_state_window(&[1.0, 2.0], 5, 0.02).is_none());
    }
}
